//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access to crates.io, so this
//! in-workspace crate provides the subset of the proptest API the test
//! suites use: `proptest!`, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range and tuple strategies, `prop_map`,
//! and `proptest::collection::vec`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * sampling is **deterministic** — the RNG is seeded from the test
//!   function's name, so a failing case reproduces without a
//!   `proptest-regressions` file;
//! * there is **no shrinking** — the failing inputs are reported as-is.

use std::ops::Range;

/// Runner configuration: the number of cases sampled per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic SplitMix64 generator used to sample strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then one splitmix round to spread low-entropy names.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A sampleable value source — the proptest `Strategy` trait, minus
/// shrinking.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

/// Strategy that always returns a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed `usize` or a
    /// half-open `Range<usize>` (mirroring upstream's `SizeRange`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                start: len,
                end: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec length range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of `elem` samples with a length drawn
    /// from `len` (fixed, or uniform over a range).
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// case instead of panicking mid-property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Declares deterministic property tests. Supports the upstream
/// `proptest!` surface used in this workspace: an optional leading
/// `#![proptest_config(..)]`, then `#[test]` functions whose arguments
/// are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case + 1,
                            cfg.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let f = Strategy::sample(&(-2.0f32..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::sample(&(4usize..64), &mut rng);
            assert!((4..64).contains(&u));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = collection::vec(0.0f32..1.0, 16);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(x in 0.0f32..1.0, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(4), n);
        }
    }
}
