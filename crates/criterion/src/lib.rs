//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this in-workspace crate
//! provides the subset of the criterion API the bench targets use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Measurement is
//! a plain wall-clock loop — median-of-samples, printed as text — with
//! none of upstream's statistical machinery.

use std::hint;
use std::time::{Duration, Instant};

/// Benchmark driver: runs registered functions and prints timings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Times `f` and prints the median sample duration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up: run until the warm-up budget is spent.
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            f(&mut b);
            b.samples.clear();
        }
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "{name:<40} median {median:>12.3?} ({} samples)",
            b.samples.len()
        );
        self
    }
}

/// Per-benchmark timing helper handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` per call and records it as a sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declares a benchmark group: a function running each target under a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3).warm_up_time(Duration::from_millis(1));
        targets = quick
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
