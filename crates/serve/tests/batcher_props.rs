//! Property coverage for the dynamic-batcher state machine — the
//! invariants the serving engine's accounting and determinism contracts
//! stand on: every offered request lands in **exactly one** batch, no
//! batch exceeds `max_batch`, FIFO order survives batching, coalescing
//! respects the window, replay is bit-identical, and batch composition
//! is invariant both to redundant flushes and to *who* closes an
//! expired window (the engine's timer vs the next late arrival) — the
//! virtual-time flush-timing invariance the determinism suite relies
//! on.

use proptest::prelude::*;
use skynet_serve::batcher::{BatchPolicy, Batcher};

/// Items carry their stamp so window properties can be checked on the
/// closed batches afterwards.
type Item = (u64, u64); // (id, t_us)

/// Pushes the whole arrival sequence and final-flushes, collecting every
/// closed batch in order.
fn run_plain(policy: BatchPolicy, arrivals: &[Item]) -> Vec<Vec<Item>> {
    let mut b = Batcher::new(policy);
    let mut batches = Vec::new();
    for &(id, t) in arrivals {
        if let Some(done) = b.push((id, t), t) {
            batches.push(done);
        }
    }
    if let Some(done) = b.flush() {
        batches.push(done);
    }
    batches
}

/// Like [`run_plain`], but whenever the next arrival's stamp falls past
/// the open window the batch is closed by an explicit `flush()` *before*
/// the push — modelling the engine's wall-clock timer firing instead of
/// the late arrival itself forcing the close. Composition must not care
/// which of the two closed it.
fn run_timer_closed(policy: BatchPolicy, arrivals: &[Item]) -> Vec<Vec<Item>> {
    let mut b = Batcher::new(policy);
    let mut batches = Vec::new();
    for &(id, t) in arrivals {
        if let Some(deadline) = b.window_deadline_us() {
            if t > deadline {
                if let Some(done) = b.flush() {
                    batches.push(done);
                }
            }
        }
        if let Some(done) = b.push((id, t), t) {
            batches.push(done);
        }
    }
    if let Some(done) = b.flush() {
        batches.push(done);
    }
    batches
}

/// Like [`run_plain`], but with a `barrier()` fired whenever the batcher
/// is empty (the positions the engine may interleave control messages
/// at). A barrier on an empty batcher must never perturb composition.
fn run_with_empty_barriers(policy: BatchPolicy, arrivals: &[Item]) -> Vec<Vec<Item>> {
    let mut b = Batcher::new(policy);
    let mut batches = Vec::new();
    for &(id, t) in arrivals {
        if b.is_empty() {
            assert!(b.barrier().is_none(), "barrier on empty batcher yielded");
        }
        if let Some(done) = b.push((id, t), t) {
            batches.push(done);
        }
    }
    if let Some(done) = b.flush() {
        batches.push(done);
    }
    batches
}

/// Monotone arrival sequences: ids 0..n with non-decreasing stamps built
/// from bounded deltas (bursts included via zero deltas).
fn arrivals_from(deltas: &[u64]) -> Vec<Item> {
    let mut t = 0u64;
    deltas
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            t += d;
            (i as u64, t)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_item_lands_in_exactly_one_batch_in_fifo_order(
        max_batch in 1usize..9,
        max_delay_us in 0u64..5_000,
        deltas in proptest::collection::vec(0u64..2_500, 0..120),
    ) {
        let policy = BatchPolicy { max_batch, max_delay_us };
        let arrivals = arrivals_from(&deltas);
        let batches = run_plain(policy, &arrivals);
        for batch in &batches {
            prop_assert!(!batch.is_empty(), "batcher closed an empty batch");
            prop_assert!(
                batch.len() <= max_batch,
                "batch of {} exceeds max_batch {max_batch}",
                batch.len()
            );
        }
        // Concatenating the closed batches reproduces the arrival
        // sequence exactly: every item once, in FIFO order.
        let replayed: Vec<Item> = batches.iter().flatten().copied().collect();
        prop_assert_eq!(replayed, arrivals);
    }

    #[test]
    fn batches_never_span_more_than_the_coalescing_window(
        max_batch in 1usize..9,
        max_delay_us in 0u64..5_000,
        deltas in proptest::collection::vec(0u64..2_500, 0..120),
    ) {
        let policy = BatchPolicy { max_batch, max_delay_us };
        let arrivals = arrivals_from(&deltas);
        for batch in run_plain(policy, &arrivals) {
            let first = batch.first().expect("no empty batches").1;
            let last = batch.last().expect("no empty batches").1;
            prop_assert!(
                last.saturating_sub(first) <= max_delay_us,
                "batch spans {}us, window is {max_delay_us}us",
                last - first
            );
        }
    }

    #[test]
    fn replay_is_bit_identical(
        max_batch in 1usize..9,
        max_delay_us in 0u64..5_000,
        deltas in proptest::collection::vec(0u64..2_500, 0..120),
    ) {
        let policy = BatchPolicy { max_batch, max_delay_us };
        let arrivals = arrivals_from(&deltas);
        prop_assert_eq!(run_plain(policy, &arrivals), run_plain(policy, &arrivals));
    }

    #[test]
    fn composition_is_invariant_to_flush_timing(
        max_batch in 1usize..9,
        max_delay_us in 0u64..5_000,
        deltas in proptest::collection::vec(0u64..2_500, 0..120),
    ) {
        let policy = BatchPolicy { max_batch, max_delay_us };
        let arrivals = arrivals_from(&deltas);
        let plain = run_plain(policy, &arrivals);
        // Whether an expired window is closed by the engine's timer
        // (explicit flush) or by the late arrival's push, the resulting
        // batches are identical...
        prop_assert_eq!(&plain, &run_timer_closed(policy, &arrivals));
        // ...and barriers at empty-queue points change nothing at all.
        prop_assert_eq!(&plain, &run_with_empty_barriers(policy, &arrivals));
    }
}
