//! Replica lifecycle suite: health-scored quarantine with zero
//! admissions, supervised restart and permanent retirement, hot weight
//! swap with canary validation and rollback, bounded shutdown under a
//! stalled replica, structured handling of a killed replica thread, and
//! the virtual-time chaos replay that pins all of it bit-identically.

use skynet_core::head::Anchors;
use skynet_core::quant::{CalibMethod, Calibrator, QuantizedSkyNet};
use skynet_core::replica::DetectorBlueprint;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_hw::fault::{silence_injected_panics, Fault, FaultKind, FaultPlan, ReplicaFault};
use skynet_hw::pipeline::{DegradePolicy, StageId};
use skynet_nn::Act;
use skynet_serve::batcher::BatchPolicy;
use skynet_serve::engine::{Admission, Outcome, Response, ServeConfig, ServeEngine, ShedReason};
use skynet_serve::health::{HealthPolicy, ReplicaState};
use skynet_serve::loadgen::{synth_image, LoadSpec};
use skynet_serve::swap::{CanaryFailure, CanarySpec, SwapOutcome};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn blueprint(seed: u64) -> DetectorBlueprint {
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
    DetectorBlueprint::from_seed(cfg, Anchors::dac_sdc(), seed)
}

fn drain(inbox: &mpsc::Receiver<Response>) -> Vec<Response> {
    let mut out = Vec::new();
    while let Ok(r) = inbox.try_recv() {
        out.push(r);
    }
    out
}

/// Spin-waits for `cond` with a hard timeout — lifecycle transitions
/// happen on replica threads.
fn wait_for(mut cond: impl FnMut() -> bool, timeout: Duration, what: &str) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Instant-close batches: every request is its own batch, so health
/// scoring advances one request at a time.
fn singleton_batches() -> BatchPolicy {
    BatchPolicy {
        max_batch: 1,
        max_delay_us: 0,
    }
}

#[test]
fn quarantined_replica_receives_zero_admissions_until_restart() {
    // Replica 0 fails every batch until its (long-backoff) restart
    // clears the fault; while it sits in quarantine, admission must
    // route strictly around it.
    let bp = blueprint(31);
    let plan =
        FaultPlan::new().inject_replica(0, ReplicaFault::until_restarted(FaultKind::Error, 0));
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 64,
        batch: singleton_batches(),
        policy: DegradePolicy::DropFrame,
        max_retries: 0,
        health: HealthPolicy {
            consecutive_failures: 2,
            restart_budget: 3,
            backoff_base_ms: 1_500,
            backoff_max_ms: 1_500,
            ..HealthPolicy::default()
        },
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    // Feed both replicas until replica 0's score trips (2 consecutive
    // failed batches).
    let mut fed = 0u64;
    wait_for(
        || {
            engine.submit(fed % 4, synth_image(fed, 16, 32), &reply);
            fed += 1;
            std::thread::sleep(Duration::from_millis(1));
            engine.replica_states()[0] == ReplicaState::Quarantined
        },
        Duration::from_secs(20),
        "replica 0 to enter quarantine",
    );
    // Quarantine lasts the 1.5s backoff: this whole wave must admit on
    // replica 1 only — the zero-admissions guarantee.
    for i in 0..24u64 {
        match engine.submit(10 + i, synth_image(i, 16, 32), &reply) {
            Admission::Queued { replica } => {
                assert_ne!(replica, 0, "quarantined replica got an admission")
            }
            Admission::Rejected => {}
        }
    }
    assert_eq!(
        engine.replica_states()[0],
        ReplicaState::Quarantined,
        "wave outlasted the quarantine window; assertions above are void"
    );
    // Supervised restart brings it back, and the cleared fault lets it
    // serve again.
    wait_for(
        || engine.replica_states()[0] == ReplicaState::Healthy,
        Duration::from_secs(20),
        "replica 0 to restart into rotation",
    );
    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    assert!(report.counters.quarantines >= 1, "{:?}", report.counters);
    assert!(report.counters.restarts >= 1, "{:?}", report.counters);
    assert_eq!(report.counters.retired, 0, "{:?}", report.counters);
    let responses = drain(&inbox);
    assert_eq!(responses.len() as u64, report.counters.submitted);
}

#[test]
fn restart_budget_exhaustion_retires_the_replica_gracefully() {
    // Replica 0's fault survives restarts (dead hardware, not a wedged
    // process). With a zero restart budget the first quarantine retires
    // it permanently; the engine keeps serving on replica 1.
    let bp = blueprint(33);
    let plan = FaultPlan::new().inject_replica(0, ReplicaFault::persistent(FaultKind::Error, 0));
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 64,
        batch: singleton_batches(),
        policy: DegradePolicy::DropFrame,
        max_retries: 0,
        health: HealthPolicy {
            consecutive_failures: 1,
            restart_budget: 0,
            ..HealthPolicy::default()
        },
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let mut fed = 0u64;
    wait_for(
        || {
            engine.submit(fed, synth_image(fed, 16, 32), &reply);
            fed += 1;
            std::thread::sleep(Duration::from_millis(1));
            engine.replica_states()[0] == ReplicaState::Retired
        },
        Duration::from_secs(20),
        "replica 0 to retire",
    );
    // Capacity degrades gracefully: the survivor still serves fresh
    // requests, and nothing routes to the retiree.
    let (r2, inbox2) = mpsc::channel();
    for i in 0..12u64 {
        match engine.submit(100 + i, synth_image(i, 16, 32), &r2) {
            Admission::Queued { replica } => assert_eq!(replica, 1),
            Admission::Rejected => {}
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    assert_eq!(report.states[0], ReplicaState::Retired);
    assert_eq!(report.states[1], ReplicaState::Healthy);
    assert_eq!(report.counters.retired, 1, "{:?}", report.counters);
    assert_eq!(report.counters.restarts, 0, "{:?}", report.counters);
    let served_late = drain(&inbox2)
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Served(_)))
        .count();
    assert!(
        served_late > 0,
        "survivor must keep serving after retirement"
    );
    drop(inbox);
}

#[test]
fn hot_swap_promotes_a_canary_validated_generation_to_every_replica() {
    let bp_v1 = blueprint(41);
    let bp_v2 = blueprint(42);
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 64,
        batch: singleton_batches(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp_v1, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    engine.submit(0, synth_image(0, 16, 32), &reply);
    let before = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(before.generation, 0);

    let reference = synth_image(7, 16, 32);
    let spec = CanarySpec::for_blueprint(&bp_v2, reference).unwrap();
    let outcome = engine.publish(bp_v2.clone(), spec).unwrap();
    assert_eq!(
        outcome,
        SwapOutcome::Published {
            generation: 1,
            canary: 0
        }
    );
    assert_eq!(engine.generation(), 1);

    // Adopt commands precede any later submission in each replica's
    // FIFO, so everything submitted from here on serves generation 1 —
    // on both replicas.
    let (r2, inbox2) = mpsc::channel();
    for i in 0..8u64 {
        engine.submit(i, synth_image(100 + i, 16, 32), &r2);
    }
    let mut replicas_seen = [false; 2];
    for _ in 0..8 {
        let r = inbox2.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(r.outcome, Outcome::Served(_)), "{:?}", r.outcome);
        assert_eq!(r.generation, 1, "post-swap outcome on old weights");
        replicas_seen[r.replica.unwrap()] = true;
    }
    assert!(
        replicas_seen.iter().all(|&b| b),
        "both replicas must serve the new generation"
    );
    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    assert_eq!(report.counters.swaps_published, 1);
    assert_eq!(report.counters.swap_rolled_back, 0);
    assert_eq!(report.generation, 1);
    assert_eq!(report.weight_hash, bp_v2.weight_hash());
}

#[test]
fn int8_generation_publishes_through_canary_and_serves_the_integer_path() {
    // Publish a quantized generation: the blueprint carries a prebuilt
    // INT8 engine, so the canary probe — and every replica after
    // promotion — runs integer inference. The weight hash still
    // witnesses the float source weights, so `for_blueprint`'s
    // fat-finger guard holds for the quantized form of the same model.
    let bp_v1 = blueprint(45);
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 64,
        batch: singleton_batches(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp_v1, &cfg).unwrap();

    // Build the quantized generation from a live float model (the
    // calibrator folds its BN running statistics into the engine).
    let net_cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
    let mut net = SkyNet::new(net_cfg.clone(), &mut skynet_tensor::rng::SkyRng::new(46));
    let mut cal = Calibrator::new(Variant::C, CalibMethod::MaxAbs);
    for s in 0..4 {
        cal.observe(&mut net, &synth_image(200 + s, 16, 32))
            .unwrap();
    }
    let plan = cal.finish().unwrap();
    let int8 = Arc::new(QuantizedSkyNet::build(&net, &plan).unwrap());
    let mut blobs = Vec::new();
    skynet_nn::Layer::visit_params(&mut net, &mut |p| {
        blobs.push(p.value.as_slice().to_vec());
    });
    let bp_v2 = DetectorBlueprint::from_weights(net_cfg, Anchors::dac_sdc(), blobs).with_int8(int8);
    assert!(bp_v2.spawn().unwrap().int8_engine().is_some());

    let reference = synth_image(7, 16, 32);
    let spec = CanarySpec::for_blueprint(&bp_v2, reference).unwrap();
    let outcome = engine.publish(bp_v2.clone(), spec).unwrap();
    assert_eq!(
        outcome,
        SwapOutcome::Published {
            generation: 1,
            canary: 0
        }
    );

    // Every request from here on is answered by the integer path of
    // generation 1 on both replicas.
    let (reply, inbox) = mpsc::channel();
    for i in 0..8u64 {
        engine.submit(i, synth_image(300 + i, 16, 32), &reply);
    }
    let mut replicas_seen = [false; 2];
    for _ in 0..8 {
        let r = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(r.outcome, Outcome::Served(_)), "{:?}", r.outcome);
        assert_eq!(r.generation, 1);
        replicas_seen[r.replica.unwrap()] = true;
    }
    assert!(replicas_seen.iter().all(|&b| b));
    let report = engine.shutdown();
    assert_eq!(report.counters.swaps_published, 1);
    assert_eq!(report.weight_hash, bp_v2.weight_hash());
}

#[test]
fn canary_hash_mismatch_rolls_back_and_keeps_the_old_generation() {
    let bp_v1 = blueprint(51);
    let bp_v2 = blueprint(52);
    let cfg = ServeConfig {
        replicas: 2,
        batch: singleton_batches(),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp_v1, &cfg).unwrap();
    // The spec demands a hash the published blueprint does not carry —
    // the fat-finger publish. The canary must reject it.
    let spec = CanarySpec::new(synth_image(7, 16, 32)).expect_weight_hash(0xDEAD_BEEF);
    let outcome = engine.publish(bp_v2, spec).unwrap();
    match outcome {
        SwapOutcome::RolledBack {
            generation,
            failure: CanaryFailure::WeightHashMismatch { expected, .. },
            ..
        } => {
            assert_eq!(generation, 1);
            assert_eq!(expected, 0xDEAD_BEEF);
        }
        other => panic!("expected hash-mismatch rollback, got {other:?}"),
    }
    assert_eq!(
        engine.generation(),
        0,
        "rollback must not advance the generation"
    );
    let (reply, inbox) = mpsc::channel();
    engine.submit(0, synth_image(0, 16, 32), &reply);
    let r = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(r.generation, 0);
    let report = engine.shutdown();
    assert_eq!(report.counters.swap_canary_fail, 1);
    assert_eq!(report.counters.swap_rolled_back, 1);
    assert_eq!(report.counters.swaps_published, 0);
    assert_eq!(report.weight_hash, bp_v1.weight_hash());
}

#[test]
fn canary_fault_injection_forces_rollback() {
    silence_injected_panics();
    let bp_v1 = blueprint(61);
    let bp_v2 = blueprint(62);
    // The swap-window schedule panics the probe of generation 1: the
    // canary must catch it and roll back, not die.
    let plan = FaultPlan::new().inject_canary(1, Fault::permanent(FaultKind::Panic));
    let cfg = ServeConfig {
        replicas: 1,
        batch: singleton_batches(),
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp_v1, &cfg).unwrap();
    let outcome = engine
        .publish(bp_v2, CanarySpec::new(synth_image(7, 16, 32)))
        .unwrap();
    match outcome {
        SwapOutcome::RolledBack {
            failure: CanaryFailure::ProbePanicked,
            ..
        } => {}
        other => panic!("expected probe-panic rollback, got {other:?}"),
    }
    // The canary replica survived its own probe failure and still serves.
    let (reply, inbox) = mpsc::channel();
    engine.submit(0, synth_image(0, 16, 32), &reply);
    let r = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(matches!(r.outcome, Outcome::Served(_)));
    assert_eq!(r.generation, 0);
    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    assert_eq!(report.counters.swap_rolled_back, 1);
}

#[test]
fn bounded_shutdown_force_drains_a_stalled_replica() {
    // The only replica wedges for 2s per batch; the drain deadline is
    // 200ms. Shutdown must come back fast, record the loss, and answer
    // everything still pending — lost() == 0 even here.
    let bp = blueprint(71);
    let plan = FaultPlan::new().inject(
        StageId::Infer,
        0,
        Fault::permanent(FaultKind::Stall(Duration::from_secs(2))),
    );
    let cfg = ServeConfig {
        replicas: 1,
        queue_capacity: 8,
        batch: singleton_batches(),
        policy: DegradePolicy::DropFrame,
        max_retries: 0,
        fault_plan: Some(Arc::new(plan)),
        drain_deadline: Some(Duration::from_millis(200)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    for i in 0..3u64 {
        engine.submit(i, synth_image(i, 16, 32), &reply);
    }
    std::thread::sleep(Duration::from_millis(50)); // let batch 0 wedge
    let started = Instant::now();
    let report = engine.shutdown();
    assert!(
        started.elapsed() < Duration::from_millis(1_500),
        "shutdown must respect the drain deadline, took {:?}",
        started.elapsed()
    );
    assert_eq!(report.counters.submitted, 3);
    assert_eq!(report.counters.lost(), 0, "{:?}", report.counters);
    assert!(report.counters.force_drained >= 2, "{:?}", report.counters);
    assert_eq!(report.states[0], ReplicaState::Lost);
    assert_eq!(report.counters.replica_lost, 1);
    let responses = drain(&inbox);
    assert_eq!(responses.len(), 3, "every request still gets its outcome");
    assert!(responses
        .iter()
        .any(|r| r.outcome == Outcome::Shed(ShedReason::ReplicaUnavailable)));
}

#[test]
fn killed_replica_thread_is_a_structured_loss_not_a_drain_panic() {
    silence_injected_panics();
    // Replica 0's thread dies outside the per-batch unwind guard at its
    // first batch — the join-side handling must fold it into the report
    // instead of panicking shutdown, and its orphans must be answered.
    let bp = blueprint(81);
    let plan = FaultPlan::new().inject_replica(0, ReplicaFault::kill(0));
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 16,
        batch: singleton_batches(),
        policy: DegradePolicy::DropFrame,
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let total = 30u64;
    for i in 0..total {
        engine.submit(i, synth_image(i, 16, 32), &reply);
        std::thread::sleep(Duration::from_millis(1));
    }
    let report = engine.shutdown();
    assert_eq!(report.states[0], ReplicaState::Lost);
    assert_eq!(report.counters.replica_lost, 1, "{:?}", report.counters);
    assert_eq!(report.counters.submitted, total);
    assert_eq!(report.counters.lost(), 0, "{:?}", report.counters);
    assert!(report.counters.served > 0, "survivor keeps serving");
    assert!(
        report.batch_log[0].is_empty(),
        "lost log dies with the thread"
    );
    let responses = drain(&inbox);
    assert_eq!(responses.len() as u64, total, "one outcome per request");
}

/// The acceptance chaos replay: one replica, virtual time, a
/// wedged-until-restart fault window, one promoted hot swap and one
/// canary-failing rollback — run twice, the outcome fingerprints must be
/// bit-identical, with every outcome carrying its generation stamp.
#[test]
fn chaos_replay_with_faults_and_swaps_is_bit_identical() {
    type Print = (u64, u64, u8, u32, u64); // id, stream, kind, conf bits, generation

    fn run() -> (Vec<Print>, skynet_serve::engine::ServeReport) {
        let bp_v1 = blueprint(91);
        let bp_v2 = blueprint(92);
        let bp_bad = blueprint(93);
        let plan =
            FaultPlan::new().inject_replica(0, ReplicaFault::until_restarted(FaultKind::Error, 2));
        let cfg = ServeConfig {
            replicas: 1,
            queue_capacity: 256,
            batch: BatchPolicy {
                max_batch: 4,
                max_delay_us: 2_000,
            },
            policy: DegradePolicy::CoastLastGood,
            max_retries: 0,
            health: HealthPolicy {
                consecutive_failures: 1,
                restart_budget: 3,
                backoff_base_ms: 1, // decision recorded; sleep skipped in virtual time
                ..HealthPolicy::default()
            },
            virtual_time: true,
            paused: true,
            fault_plan: Some(Arc::new(plan)),
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(&bp_v1, &cfg).unwrap();
        let (reply, inbox) = mpsc::channel();
        // Wave 1 prefills the (paused) queue: its batch compositions and
        // the fault window at batch 2 are a pure function of the stamps.
        let schedule = LoadSpec::poisson(40, 2_000.0, 4).schedule(17);
        for a in &schedule {
            engine.submit_at(a.stream, synth_image(a.image_seed, 16, 32), a.at_us, &reply);
        }
        let wave1_end = schedule.last().unwrap().at_us;
        // Both publishes enqueue their canary commands *after* wave 1 in
        // the replica's FIFO — the swap barrier sits at a deterministic
        // batch boundary. The publisher blocks on the canary verdict, so
        // it runs alongside the resumed drain.
        let (good, bad) = std::thread::scope(|s| {
            let engine = &engine;
            let bp_v2 = bp_v2.clone();
            let publisher = s.spawn(move || {
                let reference = synth_image(7, 16, 32);
                let spec = CanarySpec::for_blueprint(&bp_v2, reference.clone()).unwrap();
                let good = engine.publish(bp_v2, spec).unwrap();
                let bad_spec = CanarySpec::new(reference).expect_weight_hash(0x0BAD_CAFE);
                let bad = engine.publish(bp_bad, bad_spec).unwrap();
                (good, bad)
            });
            // Give the publisher time to enqueue canary #1 before the
            // drain starts; FIFO position is deterministic regardless.
            std::thread::sleep(Duration::from_millis(20));
            engine.resume();
            publisher.join().unwrap()
        });
        assert_eq!(
            good,
            SwapOutcome::Published {
                generation: 1,
                canary: 0
            }
        );
        assert!(matches!(
            bad,
            SwapOutcome::RolledBack {
                generation: 2,
                failure: CanaryFailure::WeightHashMismatch { .. },
                ..
            }
        ));
        // Wave 2 rides the promoted generation: fault window cleared by
        // the restart, every outcome served on generation 1.
        let wave2 = LoadSpec::poisson(20, 2_000.0, 4).schedule(18);
        for a in &wave2 {
            engine.submit_at(
                a.stream,
                synth_image(400 + a.image_seed, 16, 32),
                wave1_end + 10_000 + a.at_us,
                &reply,
            );
        }
        let report = engine.shutdown();
        assert_eq!(report.counters.lost(), 0, "{:?}", report.counters);
        let mut prints: Vec<Print> = drain(&inbox)
            .iter()
            .map(|r| {
                let (kind, bits) = match r.outcome {
                    Outcome::Served(d) => (0u8, d.confidence.to_bits()),
                    Outcome::Degraded(d) => (1, d.confidence.to_bits()),
                    Outcome::Shed(ShedReason::QueueFull) => (2, 0),
                    Outcome::Shed(ShedReason::InferenceFailed) => (3, 0),
                    Outcome::Shed(ShedReason::ReplicaUnavailable) => (4, 0),
                };
                (r.id, r.stream, kind, bits, r.generation)
            })
            .collect();
        prints.sort();
        (prints, report)
    }

    let (prints_a, report_a) = run();
    let (prints_b, report_b) = run();
    assert_eq!(prints_a, prints_b, "chaos replay must be bit-identical");
    // Wave 2 is submitted live, so its *batch boundaries* may differ
    // between runs (queue-exhaustion flush is scheduler-timed); every
    // per-request outcome is composition-independent and compared above.
    let except_batches = |mut c: skynet_serve::engine::ServeCounters| {
        c.batches = 0;
        c
    };
    assert_eq!(
        except_batches(report_a.counters),
        except_batches(report_b.counters)
    );

    // The storm actually happened, exactly once each.
    assert_eq!(report_a.counters.quarantines, 1, "{:?}", report_a.counters);
    assert_eq!(report_a.counters.restarts, 1, "{:?}", report_a.counters);
    assert_eq!(report_a.counters.swaps_published, 1);
    assert_eq!(report_a.counters.swap_canary_fail, 1);
    assert_eq!(report_a.counters.swap_rolled_back, 1);
    assert_eq!(report_a.generation, 1);
    assert_eq!(report_a.weight_hash, blueprint(92).weight_hash());
    // Generation stamps: wave 1 (ids 0..40) predates the swap, wave 2
    // (ids 40..60) rides it; failed-window outcomes are degraded/shed.
    assert!(prints_a.iter().filter(|p| p.0 < 40).all(|p| p.4 == 0));
    assert!(prints_a.iter().filter(|p| p.0 >= 40).all(|p| p.4 == 1));
    assert!(prints_a.iter().filter(|p| p.0 >= 40).all(|p| p.2 == 0));
    assert!(
        prints_a.iter().any(|p| p.2 == 1 || p.2 == 3),
        "the fault window must have degraded or shed something"
    );
}
