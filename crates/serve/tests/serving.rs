//! Integration suite for the serving engine: batching determinism,
//! exactly-one-outcome accounting, drain-on-shutdown, admission-time
//! shedding, coast semantics, and zero loss under injected faults.

use skynet_core::head::Anchors;
use skynet_core::replica::DetectorBlueprint;
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_hw::fault::{silence_injected_panics, Fault, FaultKind, FaultPlan};
use skynet_hw::pipeline::{DegradePolicy, StageId};
use skynet_nn::Act;
use skynet_serve::batcher::BatchPolicy;
use skynet_serve::engine::{Outcome, Response, ServeConfig, ServeEngine, ShedReason};
use skynet_serve::loadgen::{synth_image, LoadSpec};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn blueprint(seed: u64) -> DetectorBlueprint {
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
    DetectorBlueprint::from_seed(cfg, Anchors::dac_sdc(), seed)
}

fn drain(inbox: &mpsc::Receiver<Response>) -> Vec<Response> {
    let mut out = Vec::new();
    while let Ok(r) = inbox.try_recv() {
        out.push(r);
    }
    out
}

/// Replay-stable view of one outcome: `(id, stream, outcome kind,
/// confidence bits, weight generation, (replica, batch seq, batch
/// size))` — everything a replayed run must reproduce, wall-clock
/// stamps excluded.
type Fingerprint = (u64, u64, u8, u32, u64, Option<(usize, u64, usize)>);

fn fingerprint(r: &Response) -> Fingerprint {
    let (kind, bits) = match r.outcome {
        Outcome::Served(d) => (0u8, d.confidence.to_bits()),
        Outcome::Degraded(d) => (1, d.confidence.to_bits()),
        Outcome::Shed(ShedReason::QueueFull) => (2, 0),
        Outcome::Shed(ShedReason::InferenceFailed) => (3, 0),
        Outcome::Shed(ShedReason::ReplicaUnavailable) => (4, 0),
    };
    let placement = r.batch.map(|(seq, size)| {
        (
            r.replica.expect("batched response has a replica"),
            seq,
            size,
        )
    });
    (r.id, r.stream, kind, bits, r.generation, placement)
}

/// One paused, prefilled, virtual-time run: submit the whole schedule,
/// release the replicas, shut down, and return (batch log, outcomes).
fn deterministic_run(seed: u64) -> (Vec<Vec<Vec<u64>>>, Vec<Fingerprint>) {
    let bp = blueprint(3);
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 256,
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_us: 2_000,
        },
        policy: DegradePolicy::CoastLastGood,
        max_retries: 1,
        virtual_time: true,
        paused: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let schedule = LoadSpec::poisson(96, 2_000.0, 4).schedule(seed);
    for a in &schedule {
        engine.submit_at(a.stream, synth_image(a.image_seed, 16, 32), a.at_us, &reply);
    }
    engine.resume();
    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    let mut outcomes: Vec<_> = drain(&inbox).iter().map(fingerprint).collect();
    outcomes.sort();
    (report.batch_log, outcomes)
}

#[test]
fn batch_composition_and_outcomes_are_bit_reproducible() {
    let (log_a, out_a) = deterministic_run(42);
    let (log_b, out_b) = deterministic_run(42);
    assert_eq!(
        log_a, log_b,
        "batch composition must replay bit-identically"
    );
    assert_eq!(out_a, out_b, "outcomes must replay bit-identically");
    // And a different arrival seed genuinely changes the composition.
    let (log_c, _) = deterministic_run(43);
    assert_ne!(log_a, log_c);
}

#[test]
fn virtual_time_batches_respect_policy_and_cover_every_request() {
    let (log, outcomes) = deterministic_run(7);
    let mut seen: Vec<u64> = Vec::new();
    for replica_log in &log {
        for batch in replica_log {
            assert!(!batch.is_empty());
            assert!(batch.len() <= 4, "batch {batch:?} exceeds max_batch");
            seen.extend_from_slice(batch);
        }
    }
    seen.sort_unstable();
    let expected: Vec<u64> = (0..96).collect();
    assert_eq!(
        seen, expected,
        "every queued request ran in exactly one batch"
    );
    assert_eq!(outcomes.len(), 96);
    assert!(
        outcomes.iter().all(|o| o.2 == 0),
        "prefilled run serves everything"
    );
}

#[test]
fn every_request_gets_exactly_one_outcome_through_shutdown_drain() {
    let bp = blueprint(5);
    let cfg = ServeConfig {
        replicas: 3,
        queue_capacity: 64,
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_us: 500,
        },
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let total = 150u64;
    for i in 0..total {
        engine.submit(i % 5, synth_image(i, 16, 32), &reply);
    }
    // Shut down immediately: most requests are still queued and must be
    // drained, not dropped.
    let report = engine.shutdown();
    assert_eq!(report.counters.submitted, total);
    assert_eq!(
        report.counters.lost(),
        0,
        "drain must account for every request"
    );
    let responses = drain(&inbox);
    assert_eq!(responses.len() as u64, total);
    let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len() as u64,
        total,
        "exactly one outcome per request id"
    );
    assert!(report.counters.served > 0);
}

#[test]
fn overload_sheds_at_admission_instead_of_queueing_unboundedly() {
    let bp = blueprint(1);
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 4,
        policy: DegradePolicy::DropFrame,
        paused: true, // replicas parked: queues can only fill
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let total = 100u64;
    for i in 0..total {
        engine.submit(i, synth_image(i, 16, 32), &reply);
    }
    // 2 replicas × capacity 4 slots fill; everything else is rejected
    // immediately with an explicit Shed outcome.
    let immediate = drain(&inbox);
    assert_eq!(immediate.len(), 92);
    assert!(immediate
        .iter()
        .all(|r| r.outcome == Outcome::Shed(ShedReason::QueueFull)));
    let report = engine.shutdown(); // resumes, drains the 8 queued
    assert_eq!(report.counters.shed_queue_full, 92);
    assert_eq!(report.counters.served, 8);
    assert_eq!(report.counters.lost(), 0);
}

#[test]
fn coast_last_good_answers_queue_full_with_stale_detection() {
    let bp = blueprint(9);
    // Batch of 1 so the worker starts immediately; a long infer stall on
    // the second batch holds the worker while we overfill the queue.
    let plan = FaultPlan::new().inject(
        StageId::Infer,
        1,
        Fault::permanent(FaultKind::Stall(Duration::from_millis(250))),
    );
    let cfg = ServeConfig {
        replicas: 1,
        queue_capacity: 1,
        batch: BatchPolicy {
            max_batch: 1,
            max_delay_us: 0,
        },
        policy: DegradePolicy::CoastLastGood,
        max_retries: 0,
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();

    // Batch 0: stream 7 gets a fresh detection (the future last-good).
    engine.submit(7, synth_image(100, 16, 32), &reply);
    let first = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
    let Outcome::Served(good) = first.outcome else {
        panic!("expected a served first request, got {:?}", first.outcome);
    };

    // Batch 1 stalls the only replica for 250ms...
    engine.submit(8, synth_image(101, 16, 32), &reply);
    std::thread::sleep(Duration::from_millis(50)); // let it get pulled
                                                   // ...so this one parks in the (capacity-1) queue...
    engine.submit(9, synth_image(102, 16, 32), &reply);
    // ...and admission is now full. Stream 7 coasts on its last good:
    let (r7, inbox7) = mpsc::channel();
    engine.submit(7, synth_image(103, 16, 32), &r7);
    let coasted = inbox7.recv_timeout(Duration::from_secs(1)).unwrap();
    match coasted.outcome {
        Outcome::Degraded(d) => {
            assert_eq!(d.confidence.to_bits(), good.confidence.to_bits());
            assert_eq!(d.bbox.cx.to_bits(), good.bbox.cx.to_bits());
        }
        other => panic!("expected coast, got {other:?}"),
    }
    // A stream with no good detection yet hits the first-frame rule: shed.
    let (r_new, inbox_new) = mpsc::channel();
    engine.submit(999, synth_image(104, 16, 32), &r_new);
    let fresh = inbox_new.recv_timeout(Duration::from_secs(1)).unwrap();
    assert_eq!(fresh.outcome, Outcome::Shed(ShedReason::QueueFull));

    let report = engine.shutdown();
    assert_eq!(report.counters.lost(), 0);
    assert_eq!(report.counters.degraded, 1);
    assert_eq!(report.counters.served, 3); // streams 7, 8, 9
}

#[test]
fn injected_faults_shed_or_degrade_but_never_lose_requests() {
    silence_injected_panics();
    let bp = blueprint(11);
    // Replica-local batch sequences both start at 0, so this plan hits
    // the first batches of *every* replica: a permanent panic, then a
    // transient error (recovered by retry), then a transient stall.
    let plan = FaultPlan::new()
        .inject(StageId::Infer, 0, Fault::permanent(FaultKind::Panic))
        .inject(StageId::Infer, 1, Fault::transient(FaultKind::Error))
        .inject(
            StageId::Infer,
            2,
            Fault::transient(FaultKind::Stall(Duration::from_millis(5))),
        )
        .inject(
            StageId::Post,
            3,
            Fault::transient(FaultKind::Stall(Duration::from_millis(5))),
        );
    let cfg = ServeConfig {
        replicas: 2,
        queue_capacity: 64,
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_us: 200,
        },
        policy: DegradePolicy::CoastLastGood,
        max_retries: 2,
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&bp, &cfg).unwrap();
    let (reply, inbox) = mpsc::channel();
    let total = 60u64;
    for i in 0..total {
        engine.submit(i % 3, synth_image(i, 16, 32), &reply);
        if i % 8 == 7 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.counters.submitted, total);
    assert_eq!(
        report.counters.lost(),
        0,
        "faults may shed or degrade but never lose: {:?}",
        report.counters
    );
    let responses = drain(&inbox);
    assert_eq!(responses.len() as u64, total);
    let mut per_id: HashMap<u64, u32> = HashMap::new();
    for r in &responses {
        *per_id.entry(r.id).or_default() += 1;
    }
    assert!(per_id.values().all(|&n| n == 1), "one outcome per request");
    // The permanent panic on each replica's batch 0 forces sheds or
    // coasts; later batches serve normally.
    assert!(report.counters.served > 0, "{:?}", report.counters);
    assert!(
        report.counters.shed + report.counters.degraded > 0,
        "{:?}",
        report.counters
    );
    assert!(report.counters.retried > 0, "{:?}", report.counters);
}

#[test]
fn replicas_serve_the_published_weight_hash() {
    let bp = blueprint(21);
    let engine = ServeEngine::start(&bp, &ServeConfig::default()).unwrap();
    let (reply, inbox) = mpsc::channel();
    engine.submit(0, synth_image(0, 16, 32), &reply);
    let _ = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
    let report = engine.shutdown();
    assert_eq!(report.weight_hash, bp.weight_hash());
}
