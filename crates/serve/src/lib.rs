//! # skynet-serve
//!
//! A batched async serving engine for the SkyNet detector — the
//! production-serving counterpart to the single-stream
//! `hw::pipeline` supervisor.
//!
//! The engine runs **N detector replicas** stamped from one immutable,
//! `Arc`-published weight set
//! ([`DetectorBlueprint`](skynet_core::replica::DetectorBlueprint)),
//! each behind its own **bounded request queue**. Three load-time
//! behaviours define it:
//!
//! * **Dynamic batching** ([`batcher`]): requests are coalesced until
//!   the batch reaches [`BatchPolicy::max_batch`](batcher::BatchPolicy)
//!   or the coalescing window expires, then fed to the detector's
//!   already batch-parallel forward in one stacked pass. The coalescing
//!   decision is a pure state machine over timestamps, so batch
//!   composition is bit-reproducible for a replayed arrival sequence.
//! * **Admission control + load-shedding** ([`engine`]): when every
//!   queue is full the engine answers immediately instead of queueing
//!   without bound — shedding the request, or coasting on the stream's
//!   last good detection under
//!   [`DegradePolicy::CoastLastGood`](skynet_hw::pipeline::DegradePolicy)
//!   (with the supervisor's first-frame rule: nothing to coast on yet →
//!   shed). Under overload, latency stays bounded and the pressure shows
//!   up in the `serve.requests.shed` counter where it belongs.
//! * **Exactly-one-outcome accounting**: every submitted request gets
//!   exactly one [`Outcome`] on its reply channel, and
//!   [`ServeEngine::shutdown`](engine::ServeEngine::shutdown) drains the
//!   queues before joining — zero requests lost, even with an armed
//!   [`FaultPlan`](skynet_hw::fault::FaultPlan) panicking and stalling
//!   the infer stage.
//!
//! On top of per-batch fault tolerance the engine is
//! **self-healing per replica** ([`health`]): every replica scores its
//! batch outcomes through a deterministic health state machine
//! (`Healthy → Degraded → Quarantined`), quarantined replicas receive
//! zero admissions and are supervised-restarted from the active
//! blueprint with exponential backoff until a bounded restart budget
//! retires them permanently. Weights can be **hot-swapped** into the
//! running engine ([`swap`]):
//! [`ServeEngine::publish`](engine::ServeEngine::publish) validates the
//! new blueprint on a single canary replica against a pinned reference
//! input before promoting it — or rolls back automatically — and every
//! [`Response`] records the weight generation that
//! served it.
//!
//! Replicas are isolated where it matters: scratch-arena reuse is
//! per-thread by construction, and telemetry is split per replica
//! (`serve.replica<i>.queue.depth` / `.state` gauges,
//! `serve.replica<i>.batches` / `.served` / `.restarts` /
//! `.quarantines` counters) on top of the engine-wide `serve.*`
//! counters, `serve.swap.*` counters and latency histograms. See
//! `docs/OBSERVABILITY.md` for the full metric inventory and
//! `bench/src/bin/serve_load.rs` for the open-loop load harness
//! ([`loadgen`]) — including its chaos-soak scenario — that produces
//! `bench_results/serve_load.md`.
//!
//! ```
//! use skynet_core::head::Anchors;
//! use skynet_core::replica::DetectorBlueprint;
//! use skynet_core::skynet::{SkyNetConfig, Variant};
//! use skynet_nn::Act;
//! use skynet_serve::engine::{ServeConfig, ServeEngine};
//! use skynet_serve::loadgen::synth_image;
//! use std::sync::mpsc;
//!
//! let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
//! let blueprint = DetectorBlueprint::from_seed(cfg, Anchors::dac_sdc(), 0);
//! let engine = ServeEngine::start(&blueprint, &ServeConfig::default()).unwrap();
//! let (reply, inbox) = mpsc::channel();
//! engine.submit(0, synth_image(1, 16, 32), &reply);
//! let response = inbox.recv().unwrap();
//! let report = engine.shutdown();
//! assert_eq!(report.counters.lost(), 0);
//! # let _ = response;
//! ```

#![deny(missing_docs)]

pub mod batcher;
pub mod engine;
pub mod health;
pub mod loadgen;
pub mod swap;

pub use batcher::{BatchPolicy, Batcher};
pub use engine::{
    Admission, Outcome, Response, ServeConfig, ServeCounters, ServeEngine, ServeReport, ShedReason,
};
pub use health::{HealthPolicy, HealthTracker, ReplicaState, RestartDecision};
pub use loadgen::{synth_image, Arrival, LoadSpec};
pub use swap::{CanaryFailure, CanarySpec, CanaryVerdict, SwapError, SwapOutcome};
