//! Hot weight swap: canary validation, promotion and rollback types.
//!
//! [`ServeEngine::publish`](crate::engine::ServeEngine::publish)
//! republishes a new [`DetectorBlueprint`] into a *running* engine
//! without dropping a request. The protocol is canary-first:
//!
//! 1. the blueprint is validated structurally on the publisher's thread
//!    (weights must fit the architecture);
//! 2. one healthy replica — the **canary** — adopts the new weights at
//!    its next batch boundary (no batch ever spans two weight
//!    generations) and runs a **validation probe**: a forward pass over
//!    the [`CanarySpec`]'s pinned reference input, checked against the
//!    expected `weight_hash` and detection/IoU bounds;
//! 3. on a passing probe the swap is **promoted**: every other replica
//!    adopts the blueprint at its own next batch boundary, and restarts
//!    from then on respawn from the new generation;
//! 4. on a failing probe the canary **rolls back** to the previous
//!    blueprint and the engine keeps serving the old generation — the
//!    failure is returned to the publisher and counted in
//!    `serve.swap.canary_fail` / `serve.swap.rolled_back`.
//!
//! Every published (or attempted) blueprint gets a monotonically
//! increasing **generation** number, and every
//! [`Response`](crate::engine::Response) records the generation that
//! served it — the audit trail that makes "which weights answered this
//! request?" answerable after the fact.

use skynet_core::head::Detection;
use skynet_core::replica::DetectorBlueprint;
use skynet_nn::CheckpointError;
use skynet_tensor::Tensor;

/// The validation contract a canary must meet before a new blueprint is
/// promoted to the whole engine.
#[derive(Debug, Clone)]
pub struct CanarySpec {
    /// Pinned reference input the probe runs on (batch dimension 1..N).
    pub reference: Tensor,
    /// Expected FNV-1a digest of the published weights; `None` skips
    /// the check. A mismatch means the publisher shipped different
    /// parameters than it intended — the canonical fat-finger guard.
    pub expected_weight_hash: Option<u64>,
    /// Expected detections on `reference` (one per batch item). Empty
    /// skips the comparison; the probe then only requires a successful
    /// forward pass.
    pub expected: Vec<Detection>,
    /// Minimum IoU between each probe detection and its expected box.
    pub min_iou: f32,
}

impl CanarySpec {
    /// A spec that only requires the probe forward pass to succeed on
    /// `reference` (no hash or detection expectations).
    pub fn new(reference: Tensor) -> Self {
        CanarySpec {
            reference,
            expected_weight_hash: None,
            expected: Vec::new(),
            min_iou: 0.5,
        }
    }

    /// Builds the full expectation for `blueprint` by probing it on the
    /// publisher's thread: records its weight hash and its detections on
    /// `reference`. The resulting spec accepts exactly this blueprint —
    /// the strongest (and usual) validation contract.
    ///
    /// # Errors
    ///
    /// [`SwapError::InvalidBlueprint`] when the weights do not fit the
    /// architecture; [`SwapError::ProbeFailed`] when the reference
    /// forward pass fails (wrong input geometry).
    pub fn for_blueprint(
        blueprint: &DetectorBlueprint,
        reference: Tensor,
    ) -> Result<Self, SwapError> {
        let mut det = blueprint.spawn().map_err(SwapError::InvalidBlueprint)?;
        let expected = det
            .predict(&reference)
            .map_err(|e| SwapError::ProbeFailed(e.to_string()))?;
        Ok(CanarySpec {
            reference,
            expected_weight_hash: Some(blueprint.weight_hash()),
            expected,
            min_iou: 0.5,
        })
    }

    /// Sets the expected weight hash (builder style).
    pub fn expect_weight_hash(mut self, hash: u64) -> Self {
        self.expected_weight_hash = Some(hash);
        self
    }

    /// Sets the IoU floor (builder style).
    pub fn with_min_iou(mut self, min_iou: f32) -> Self {
        self.min_iou = min_iou;
        self
    }
}

/// Why a canary probe rejected a published blueprint.
#[derive(Debug, Clone, PartialEq)]
pub enum CanaryFailure {
    /// The blueprint's weight hash is not the one the spec expected.
    WeightHashMismatch {
        /// Hash the spec demanded.
        expected: u64,
        /// Hash the published blueprint actually carries.
        got: u64,
    },
    /// Building a detector from the blueprint failed on the canary.
    SpawnFailed(String),
    /// The probe forward pass panicked (caught by the unwind guard).
    ProbePanicked,
    /// The probe forward pass returned an error.
    ProbeError(String),
    /// The probe produced a different number of detections than the
    /// spec expects.
    DetectionCount {
        /// Expected detections.
        expected: usize,
        /// Observed detections.
        got: usize,
    },
    /// A probe detection's IoU against its expected box fell below the
    /// spec's floor.
    IouBelowFloor {
        /// Index of the offending detection.
        index: usize,
        /// Observed IoU.
        iou: f32,
        /// The spec's floor.
        floor: f32,
    },
    /// The selected canary replica left rotation (retired/lost) between
    /// selection and probe execution.
    ReplicaUnavailable,
}

impl std::fmt::Display for CanaryFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanaryFailure::WeightHashMismatch { expected, got } => {
                write!(
                    f,
                    "weight hash mismatch: expected {expected:#018x}, got {got:#018x}"
                )
            }
            CanaryFailure::SpawnFailed(e) => write!(f, "canary spawn failed: {e}"),
            CanaryFailure::ProbePanicked => write!(f, "canary probe panicked"),
            CanaryFailure::ProbeError(e) => write!(f, "canary probe error: {e}"),
            CanaryFailure::DetectionCount { expected, got } => {
                write!(f, "canary detection count: expected {expected}, got {got}")
            }
            CanaryFailure::IouBelowFloor { index, iou, floor } => {
                write!(
                    f,
                    "canary detection {index} IoU {iou:.3} below floor {floor:.3}"
                )
            }
            CanaryFailure::ReplicaUnavailable => write!(f, "canary replica left rotation"),
        }
    }
}

/// The canary replica's answer to a publish request.
#[derive(Debug, Clone, PartialEq)]
pub enum CanaryVerdict {
    /// Probe passed; the canary is already serving the new generation.
    Pass,
    /// Probe failed; the canary rolled back to the previous blueprint.
    Fail(CanaryFailure),
}

/// What a completed [`publish`](crate::engine::ServeEngine::publish)
/// call did.
#[derive(Debug, Clone, PartialEq)]
pub enum SwapOutcome {
    /// The canary validated the blueprint and every replica adopts it at
    /// its next batch boundary.
    Published {
        /// The new active weight generation.
        generation: u64,
        /// Replica that served as canary.
        canary: usize,
    },
    /// The canary rejected the blueprint; the engine still serves the
    /// previous generation.
    RolledBack {
        /// The generation that was attempted (not activated).
        generation: u64,
        /// Replica that served as canary.
        canary: usize,
        /// Why the probe failed.
        failure: CanaryFailure,
    },
}

/// Why a publish attempt could not even reach a canary verdict.
#[derive(Debug)]
pub enum SwapError {
    /// The blueprint's weights do not fit its architecture config.
    InvalidBlueprint(CheckpointError),
    /// No replica is in an admitting state to act as canary.
    NoHealthyReplica,
    /// The canary did not answer within the configured deadline (engine
    /// paused, canary stalled past the deadline, or shut down).
    CanaryUnresponsive,
    /// A publisher-side probe failed (see [`CanarySpec::for_blueprint`]).
    ProbeFailed(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::InvalidBlueprint(e) => write!(f, "invalid blueprint: {e}"),
            SwapError::NoHealthyReplica => write!(f, "no healthy replica available as canary"),
            SwapError::CanaryUnresponsive => write!(f, "canary did not answer before the deadline"),
            SwapError::ProbeFailed(e) => write!(f, "publisher-side probe failed: {e}"),
        }
    }
}

impl std::error::Error for SwapError {}
