//! Deterministic open-loop synthetic load.
//!
//! Serving benchmarks lie when the load is closed-loop (each client
//! waits for its previous answer, so an overloaded server conveniently
//! slows its own offered load). The generator here is **open-loop**: a
//! seeded Poisson process decides every arrival time up front,
//! independent of how the engine is coping. The whole schedule — arrival
//! stamps, stream assignment, and each request's synthetic image — is a
//! pure function of `(LoadSpec, seed)`, so a run can be replayed
//! bit-for-bit: the determinism suite and the `serve_load` benchmark
//! both lean on that.
//!
//! Two arrival shapes are provided: a constant-rate Poisson process and
//! a **bursty** phase schedule (alternating calm/burst rates, the
//! overload pattern the admission controller exists for). Slow-client
//! behaviour is modelled separately, by arming the engine's `Post`-stage
//! fault plan with stalls — the schedule itself stays time-exact.

use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};

/// One scheduled request: when it arrives, whose stream it is, and the
/// seed its synthetic image is derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival stamp in microseconds from schedule start.
    pub at_us: u64,
    /// Client stream id (round-robined across `streams`).
    pub stream: u64,
    /// Seed for [`synth_image`] — unique per request.
    pub image_seed: u64,
}

/// Shape of the synthetic load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Total requests to schedule.
    pub requests: usize,
    /// Mean arrival rate in requests/second during calm phases.
    pub rate_rps: f64,
    /// Number of distinct client streams.
    pub streams: u64,
    /// Burstiness: every `burst_every`-th slice of `burst_len` requests
    /// arrives at `burst_multiplier × rate_rps`. Zero disables bursts.
    pub burst_every: usize,
    /// Length of each burst, in requests.
    pub burst_len: usize,
    /// Rate multiplier inside a burst.
    pub burst_multiplier: f64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            requests: 256,
            rate_rps: 200.0,
            streams: 4,
            burst_every: 64,
            burst_len: 16,
            burst_multiplier: 8.0,
        }
    }
}

impl LoadSpec {
    /// A constant-rate spec (no bursts).
    pub fn poisson(requests: usize, rate_rps: f64, streams: u64) -> Self {
        LoadSpec {
            requests,
            rate_rps,
            streams,
            burst_every: 0,
            burst_len: 0,
            burst_multiplier: 1.0,
        }
    }

    /// Materializes the full arrival schedule for `seed`. Inter-arrival
    /// gaps are exponential (`-ln(1-u)/rate`), giving a Poisson process;
    /// burst windows shrink the gaps by `burst_multiplier`.
    pub fn schedule(&self, seed: u64) -> Vec<Arrival> {
        let mut rng = SkyRng::new(seed);
        let mut t = 0.0f64;
        let mut out = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            let bursting = self.burst_every > 0
                && self.burst_len > 0
                && (i % self.burst_every) < self.burst_len
                && i >= self.burst_every; // let the first slice warm up calm
            let rate = if bursting {
                self.rate_rps * self.burst_multiplier
            } else {
                self.rate_rps
            };
            // Exponential inter-arrival; uniform() is f32 in [0,1).
            let u = f64::from(rng.uniform()).min(1.0 - 1e-9);
            t += -(1.0 - u).ln() / rate.max(1e-9);
            out.push(Arrival {
                at_us: (t * 1e6) as u64,
                stream: i as u64 % self.streams.max(1),
                image_seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            });
        }
        out
    }
}

/// Deterministic synthetic input frame: a `1×3×h×w` image whose pixels
/// are a pure function of `seed` — cheap structured content (per-channel
/// gradients plus seeded noise), not just white noise, so detector
/// outputs vary across requests.
pub fn synth_image(seed: u64, h: usize, w: usize) -> Tensor {
    let mut rng = SkyRng::new(seed);
    let mut img = Tensor::zeros(Shape::new(1, 3, h, w));
    {
        let data = img.as_mut_slice();
        let (hf, wf) = (h as f32, w as f32);
        for c in 0..3 {
            let gain = rng.range(0.25, 1.0);
            let noise = rng.range(0.0, 0.2);
            for y in 0..h {
                for x in 0..w {
                    let base = match c {
                        0 => x as f32 / wf,
                        1 => y as f32 / hf,
                        _ => (x + y) as f32 / (wf + hf),
                    };
                    data[(c * h + y) * w + x] = base * gain + noise * rng.uniform();
                }
            }
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_reproducible_and_monotonic() {
        let spec = LoadSpec::default();
        let a = spec.schedule(42);
        let b = spec.schedule(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.requests);
        for pair in a.windows(2) {
            assert!(pair[0].at_us <= pair[1].at_us);
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let spec = LoadSpec::poisson(64, 500.0, 2);
        assert_ne!(spec.schedule(1), spec.schedule(2));
    }

    #[test]
    fn bursts_compress_inter_arrival_gaps() {
        let spec = LoadSpec {
            requests: 256,
            rate_rps: 100.0,
            streams: 1,
            burst_every: 64,
            burst_len: 32,
            burst_multiplier: 16.0,
        };
        let sched = spec.schedule(7);
        let gap = |i: usize| sched[i].at_us.saturating_sub(sched[i - 1].at_us);
        // Mean gap inside a burst window vs a calm window.
        let burst_mean: u64 = (65..96).map(gap).sum::<u64>() / 31;
        let calm_mean: u64 = (97..128).map(gap).sum::<u64>() / 31;
        assert!(
            burst_mean * 4 < calm_mean,
            "burst gaps {burst_mean}µs should be ≪ calm gaps {calm_mean}µs"
        );
    }

    #[test]
    fn synth_images_are_deterministic_and_seed_sensitive() {
        let a = synth_image(9, 16, 32);
        let b = synth_image(9, 16, 32);
        let c = synth_image(10, 16, 32);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }
}
