//! Per-replica health scoring as a pure, deterministic state machine.
//!
//! The serving engine survives *per-batch* faults with retries and the
//! degrade policy, but a replica that fails persistently would keep
//! absorbing its round-robin share of traffic forever. This module
//! scores each replica from its own **batch outcome log** — nothing
//! else — and moves it through the lifecycle
//!
//! ```text
//!            window error rate ≥ degrade ‰
//!   Healthy ──────────────────────────────▶ Degraded
//!      ▲  ◀──────────────────────────────      │
//!      │        rate back under threshold      │
//!      │                                       │ consecutive failures
//!      │ restart                               │ ≥ threshold, or rate
//!      │ (budget left)                         ▼ ≥ quarantine ‰
//!      └───────────────────────────── Quarantined
//!                                              │ budget exhausted
//!                                              ▼
//!                                          Retired        (terminal)
//! ```
//!
//! plus a fifth, engine-assigned terminal state — [`ReplicaState::Lost`]
//! — for replicas whose thread died or never drained (the health score
//! cannot observe those from the outcome log; the engine records them).
//!
//! Two transition triggers feed quarantine, mirroring how real serving
//! fleets score replicas:
//!
//! * **consecutive failures** — `N` failed batches in a row is a wedged
//!   replica regardless of long-run rate;
//! * **sliding-window error rate** — a replica failing 50% of a full
//!   window is sick even if successes are interleaved.
//!
//! Every decision is a pure function of the recorded outcome sequence
//! and the [`HealthPolicy`] (integer per-mille thresholds; no floats, no
//! clocks), so a virtual-time replay of the same fault plan walks the
//! replica through bit-identical state transitions — the property the
//! lifecycle determinism suite pins.

use std::collections::VecDeque;

/// Lifecycle state of one detector replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Serving normally; receives admissions.
    Healthy,
    /// Sliding-window error rate is elevated but below the quarantine
    /// threshold. Still receives admissions — this state is the early
    /// warning surfaced in telemetry, not a traffic decision.
    Degraded,
    /// Health score tripped: receives **zero** admissions (its
    /// round-robin share spills over to the other replicas) while the
    /// supervisor restarts it from the active blueprint.
    Quarantined,
    /// Restart budget exhausted; permanently out of rotation. The
    /// engine degrades capacity gracefully instead of retry-looping.
    Retired,
    /// The replica's thread died (panicked outside the unwind guard) or
    /// failed to drain by the shutdown deadline. Terminal, assigned by
    /// the engine — the outcome log cannot observe it.
    Lost,
}

impl ReplicaState {
    /// Whether admission may route new requests to this replica.
    pub fn admits(self) -> bool {
        matches!(self, ReplicaState::Healthy | ReplicaState::Degraded)
    }

    /// Stable numeric code for the `serve.replica<i>.state` gauge.
    pub fn code(self) -> u8 {
        match self {
            ReplicaState::Healthy => 0,
            ReplicaState::Degraded => 1,
            ReplicaState::Quarantined => 2,
            ReplicaState::Retired => 3,
            ReplicaState::Lost => 4,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Self {
        match code {
            0 => ReplicaState::Healthy,
            1 => ReplicaState::Degraded,
            2 => ReplicaState::Quarantined,
            3 => ReplicaState::Retired,
            _ => ReplicaState::Lost,
        }
    }
}

impl std::fmt::Display for ReplicaState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ReplicaState::Healthy => "healthy",
            ReplicaState::Degraded => "degraded",
            ReplicaState::Quarantined => "quarantined",
            ReplicaState::Retired => "retired",
            ReplicaState::Lost => "lost",
        };
        write!(f, "{s}")
    }
}

/// Thresholds and budgets of the replica health score. All thresholds
/// are integers (error rates in per-mille) so scoring never touches
/// floating point — determinism by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failed batches that trip quarantine (min 1).
    pub consecutive_failures: u32,
    /// Sliding-window length in batches. The rate thresholds below only
    /// apply once the window is full; `0` disables rate-based scoring
    /// (consecutive failures still quarantine).
    pub window: usize,
    /// Window error rate (‰) at or above which a replica is `Degraded`.
    pub degrade_per_mille: u32,
    /// Window error rate (‰) at or above which a replica is quarantined
    /// even without a consecutive-failure streak.
    pub quarantine_per_mille: u32,
    /// Supervised restarts allowed before the replica is permanently
    /// retired.
    pub restart_budget: u32,
    /// Base of the deterministic exponential restart backoff:
    /// `min(backoff_base_ms << restarts, backoff_max_ms)`. The engine
    /// sleeps it in wall-clock mode and skips the sleep in virtual-time
    /// mode (the decision sequence is identical either way).
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            consecutive_failures: 3,
            window: 16,
            degrade_per_mille: 250,
            quarantine_per_mille: 500,
            restart_budget: 3,
            backoff_base_ms: 10,
            backoff_max_ms: 1_000,
        }
    }
}

/// What the supervisor should do with a quarantined replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartDecision {
    /// Budget left: back off for `backoff_ms`, then respawn from the
    /// active blueprint.
    Restart {
        /// Deterministic exponential backoff for this attempt.
        backoff_ms: u64,
    },
    /// Budget exhausted: permanently retire the replica.
    Retire,
}

/// The per-replica health score: a deterministic fold over the batch
/// outcome log.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    policy: HealthPolicy,
    state: ReplicaState,
    /// Most recent batch outcomes, `true` = failed; bounded by
    /// `policy.window`.
    window: VecDeque<bool>,
    consecutive: u32,
    restarts: u32,
    quarantines: u64,
}

impl HealthTracker {
    /// A healthy tracker under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        HealthTracker {
            policy,
            state: ReplicaState::Healthy,
            window: VecDeque::with_capacity(policy.window),
            consecutive: 0,
            restarts: 0,
            quarantines: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Supervised restarts performed so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Times this replica has entered quarantine.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Window error rate in per-mille (0 when the window is empty).
    pub fn error_per_mille(&self) -> u32 {
        if self.window.is_empty() {
            return 0;
        }
        let fails = self.window.iter().filter(|&&f| f).count() as u64;
        (fails * 1_000 / self.window.len() as u64) as u32
    }

    /// Records one batch outcome and returns the (possibly new) state.
    /// Only meaningful while the replica is in rotation; terminal states
    /// are sticky and quarantine is left via [`begin_restart`].
    ///
    /// [`begin_restart`]: Self::begin_restart
    pub fn record_batch(&mut self, failed: bool) -> ReplicaState {
        if !matches!(self.state, ReplicaState::Healthy | ReplicaState::Degraded) {
            return self.state;
        }
        if self.policy.window > 0 {
            if self.window.len() == self.policy.window {
                self.window.pop_front();
            }
            self.window.push_back(failed);
        }
        self.consecutive = if failed { self.consecutive + 1 } else { 0 };
        let rate_applies = self.policy.window > 0 && self.window.len() == self.policy.window;
        let rate = self.error_per_mille();
        self.state = if self.consecutive >= self.policy.consecutive_failures.max(1)
            || (rate_applies && rate >= self.policy.quarantine_per_mille)
        {
            self.quarantines += 1;
            ReplicaState::Quarantined
        } else if rate_applies && rate >= self.policy.degrade_per_mille {
            ReplicaState::Degraded
        } else {
            ReplicaState::Healthy
        };
        self.state
    }

    /// Decides a quarantined replica's fate: restart (with deterministic
    /// exponential backoff) while budget remains, otherwise retire. Must
    /// only be called in [`ReplicaState::Quarantined`].
    pub fn begin_restart(&mut self) -> RestartDecision {
        debug_assert_eq!(self.state, ReplicaState::Quarantined);
        if self.restarts >= self.policy.restart_budget {
            self.state = ReplicaState::Retired;
            return RestartDecision::Retire;
        }
        let shift = self.restarts.min(63);
        let backoff_ms = self
            .policy
            .backoff_base_ms
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.policy.backoff_max_ms);
        RestartDecision::Restart { backoff_ms }
    }

    /// Marks a supervised restart complete: the outcome log is cleared
    /// (the new detector's record starts fresh) and the replica rejoins
    /// rotation healthy.
    pub fn complete_restart(&mut self) {
        self.restarts += 1;
        self.consecutive = 0;
        self.window.clear();
        self.state = ReplicaState::Healthy;
    }

    /// Marks the replica lost (thread death / undrained at deadline).
    pub fn mark_lost(&mut self) {
        self.state = ReplicaState::Lost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            consecutive_failures: 3,
            window: 8,
            degrade_per_mille: 250,
            quarantine_per_mille: 500,
            restart_budget: 2,
            backoff_base_ms: 10,
            backoff_max_ms: 1_000,
        }
    }

    #[test]
    fn consecutive_failures_quarantine() {
        let mut h = HealthTracker::new(policy());
        assert_eq!(h.record_batch(true), ReplicaState::Healthy);
        assert_eq!(h.record_batch(true), ReplicaState::Healthy);
        assert_eq!(h.record_batch(true), ReplicaState::Quarantined);
        assert_eq!(h.quarantines(), 1);
    }

    #[test]
    fn success_resets_the_streak() {
        let mut h = HealthTracker::new(policy());
        for _ in 0..2 {
            h.record_batch(true);
        }
        assert_eq!(h.record_batch(false), ReplicaState::Healthy);
        for _ in 0..2 {
            h.record_batch(true);
        }
        assert_eq!(h.state(), ReplicaState::Healthy);
    }

    #[test]
    fn window_rate_degrades_then_quarantines() {
        let mut h = HealthTracker::new(policy());
        // Alternate failures so the consecutive streak never trips: 4/8
        // failed = 500‰ ≥ quarantine threshold once the window is full.
        let mut last = ReplicaState::Healthy;
        for i in 0..8 {
            last = h.record_batch(i % 2 == 0);
        }
        assert_eq!(last, ReplicaState::Quarantined);
        // A 2/8 window (250‰) only degrades.
        let mut h = HealthTracker::new(policy());
        for i in 0..8 {
            h.record_batch(i % 4 == 0);
        }
        assert_eq!(h.state(), ReplicaState::Degraded);
        // And recovery drops back to healthy as failures age out.
        for _ in 0..8 {
            h.record_batch(false);
        }
        assert_eq!(h.state(), ReplicaState::Healthy);
    }

    #[test]
    fn rate_rules_wait_for_a_full_window() {
        let mut h = HealthTracker::new(policy());
        // 1 failure in a 2-element window is 500‰, but the window isn't
        // full yet — no verdict from the rate rule.
        h.record_batch(true);
        assert_eq!(h.record_batch(false), ReplicaState::Healthy);
    }

    #[test]
    fn restart_budget_then_retire_with_exponential_backoff() {
        let mut h = HealthTracker::new(policy());
        for _ in 0..3 {
            h.record_batch(true);
        }
        assert_eq!(
            h.begin_restart(),
            RestartDecision::Restart { backoff_ms: 10 }
        );
        h.complete_restart();
        assert_eq!(h.state(), ReplicaState::Healthy);
        assert_eq!(h.restarts(), 1);
        for _ in 0..3 {
            h.record_batch(true);
        }
        assert_eq!(
            h.begin_restart(),
            RestartDecision::Restart { backoff_ms: 20 }
        );
        h.complete_restart();
        for _ in 0..3 {
            h.record_batch(true);
        }
        assert_eq!(h.begin_restart(), RestartDecision::Retire);
        assert_eq!(h.state(), ReplicaState::Retired);
        // Terminal: further outcomes don't move it.
        assert_eq!(h.record_batch(false), ReplicaState::Retired);
    }

    #[test]
    fn backoff_is_capped() {
        let mut p = policy();
        p.restart_budget = 20;
        p.backoff_base_ms = 100;
        p.backoff_max_ms = 400;
        let mut h = HealthTracker::new(p);
        for round in 0..5 {
            for _ in 0..3 {
                h.record_batch(true);
            }
            let RestartDecision::Restart { backoff_ms } = h.begin_restart() else {
                panic!("budget not exhausted yet");
            };
            assert_eq!(backoff_ms, (100u64 << round).min(400));
            h.complete_restart();
        }
    }

    #[test]
    fn scoring_is_a_pure_function_of_the_outcome_log() {
        let outcomes: Vec<bool> = (0..200)
            .map(|i| (i * 7) % 5 == 0 || (i % 11) == 3)
            .collect();
        let run = |log: &[bool]| {
            let mut h = HealthTracker::new(policy());
            let mut trace = Vec::new();
            for &f in log {
                let s = h.record_batch(f);
                if s == ReplicaState::Quarantined {
                    match h.begin_restart() {
                        RestartDecision::Restart { backoff_ms } => {
                            trace.push((s.code(), backoff_ms));
                            h.complete_restart();
                        }
                        RestartDecision::Retire => trace.push((ReplicaState::Retired.code(), 0)),
                    }
                } else {
                    trace.push((s.code(), 0));
                }
            }
            trace
        };
        assert_eq!(run(&outcomes), run(&outcomes));
    }

    #[test]
    fn state_codes_roundtrip() {
        for s in [
            ReplicaState::Healthy,
            ReplicaState::Degraded,
            ReplicaState::Quarantined,
            ReplicaState::Retired,
            ReplicaState::Lost,
        ] {
            assert_eq!(ReplicaState::from_code(s.code()), s);
        }
        assert!(ReplicaState::Healthy.admits());
        assert!(ReplicaState::Degraded.admits());
        assert!(!ReplicaState::Quarantined.admits());
        assert!(!ReplicaState::Retired.admits());
        assert!(!ReplicaState::Lost.admits());
    }
}
