//! The batched async serving engine with replica lifecycle management.
//!
//! N detector replicas (stamped from one `Arc`-published
//! [`DetectorBlueprint`]) each own a bounded request queue and a thread.
//! Admission round-robins requests across the queues of **admitting**
//! replicas with spill-over; when every admitting queue is full the
//! engine **sheds load** instead of growing latency without bound,
//! handling the rejected request per the supervisor's [`DegradePolicy`]:
//! [`DegradePolicy::DropFrame`] answers `Shed`,
//! [`DegradePolicy::CoastLastGood`] answers with the stream's last good
//! detection (`Degraded`) — or `Shed` when the stream has no good
//! detection yet, the same first-frame rule the pipeline supervisor
//! specifies. Each replica coalesces its queue through the deterministic
//! [`Batcher`] (close on size, window expiry, or queue exhaustion) and
//! feeds the already batch-parallel detector forward once per batch.
//!
//! **Replica lifecycle:** every replica scores its own batch outcomes
//! through the deterministic [`HealthTracker`]
//! (`Healthy → Degraded → Quarantined`); a quarantined replica receives
//! **zero admissions** (its round-robin share spills over to the
//! others) and is supervised-restarted from the active blueprint with
//! deterministic exponential backoff, until the restart budget runs out
//! and it is permanently **retired** — the engine then degrades
//! capacity gracefully, answering anything still routed at the retiree
//! via the degrade policy. A replica whose thread dies outside the
//! per-batch unwind guard is recorded as **lost** ([`ReplicaState::Lost`])
//! — a structured outcome in the report, never a panic in the drain
//! path — and its orphaned requests are answered at shutdown.
//!
//! **Hot weight swap:** [`ServeEngine::publish`] republishes a new
//! blueprint into the running engine between batches. One healthy
//! replica serves as **canary**: at its next batch boundary it runs a
//! validation probe over the [`CanarySpec`]'s pinned reference input
//! (expected `weight_hash`, detection IoU bounds) and either promotes
//! the new **generation** to every replica or **rolls back** to the
//! previous blueprint. Batches never span generations, and every
//! [`Response`] records the generation that served it.
//!
//! **Accounting invariant:** every submitted request receives exactly
//! one recorded outcome — `Served`, `Degraded` or `Shed` — delivered on
//! its reply channel and tallied in [`ServeCounters`]. Outcomes are
//! routed through a shared pending-reply registry whose entries are
//! *taken* exactly once, so even a replica lost mid-batch cannot lose or
//! double-answer a request. Shutdown drains the queues, bounded by
//! [`ServeConfig::drain_deadline`]: a replica stalled past the deadline
//! is detached and recorded lost, and its in-flight requests are
//! answered via the degrade policy — [`ServeCounters::lost`] is zero
//! after [`ServeEngine::shutdown`] even under injected kills and stalls.
//!
//! **Fault tolerance:** an optional [`FaultPlan`] (the same machinery
//! the pipeline supervisor is tested with) is applied per batch at the
//! `Infer` coordinate — panics are caught, errors retried up to
//! [`ServeConfig::max_retries`], and a batch whose retries are exhausted
//! degrades per-request under the policy. Replica-targeted windows
//! (`FaultPlan::inject_replica`) model wedged-until-restarted and
//! dead-hardware replicas plus outright thread kills; canary faults
//! (`FaultPlan::inject_canary`) force swap rollbacks. `Post`-coordinate
//! stalls delay reply delivery, modelling slow response consumers.
//!
//! **Isolation:** replicas share nothing mutable but the last-good map,
//! the pending registry and the counters. Scratch-arena reuse is
//! per-thread by construction (the arena is a `thread_local`), so one
//! replica's allocation pattern cannot perturb another's; per-replica
//! state gauges, restart/quarantine counters and queue-depth gauges keep
//! the telemetry separable.

use crate::batcher::{BatchPolicy, Batcher};
use crate::health::{HealthPolicy, HealthTracker, ReplicaState, RestartDecision};
use crate::swap::{CanaryFailure, CanarySpec, CanaryVerdict, SwapError, SwapOutcome};
use skynet_core::detector::Detector;
use skynet_core::head::Detection;
use skynet_core::replica::DetectorBlueprint;
use skynet_hw::fault::{FaultPlan, InjectedFault};
use skynet_hw::pipeline::{DegradePolicy, FrameCtx, StageId};
use skynet_nn::CheckpointError;
use skynet_tensor::{telemetry, Tensor};
use std::collections::HashMap;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving engine knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of detector replicas (threads), each with its own queue.
    pub replicas: usize,
    /// Bounded depth of each replica's request queue. Admission sheds
    /// when every admitting queue is full — this is the knob that
    /// converts overload into bounded latency plus explicit `Shed`
    /// outcomes.
    pub queue_capacity: usize,
    /// Dynamic-batching size and window (see [`BatchPolicy`]).
    pub batch: BatchPolicy,
    /// What to do with a request the engine cannot serve: shed it, or
    /// coast on the stream's last good detection (first-frame rule:
    /// coast with no prior good detection sheds).
    pub policy: DegradePolicy,
    /// Extra inference attempts per batch after the first.
    pub max_retries: u32,
    /// Health thresholds, restart budget and backoff driving the
    /// replica lifecycle (see [`HealthPolicy`]).
    pub health: HealthPolicy,
    /// Batching decisions use request *arrival* stamps and close batches
    /// on queue exhaustion instead of a wall-clock timer — composition
    /// becomes a pure function of the submitted sequence (the
    /// determinism suite runs in this mode). Wall-clock mode stamps
    /// requests at dequeue time and waits out the coalescing window.
    /// Virtual time also skips restart-backoff sleeps (the backoff
    /// *decisions* are identical either way).
    pub virtual_time: bool,
    /// Start with the replicas gated: requests queue up (and shed) but
    /// nothing is processed until [`ServeEngine::resume`].
    pub paused: bool,
    /// Deterministic fault schedule applied at the `Infer` coordinate
    /// per batch (panic / error / stall), the `Post` coordinate
    /// (reply-path stall), replica-targeted windows and canary faults —
    /// all keyed by replica-local batch sequence / weight generation.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Bounded-time shutdown: how long [`ServeEngine::shutdown`] waits
    /// for the replicas to drain before answering anything still
    /// pending via the degrade policy and detaching stalled threads
    /// (recorded as [`ReplicaState::Lost`]). `None` waits forever.
    pub drain_deadline: Option<Duration>,
    /// How long [`ServeEngine::publish`] waits for the canary verdict.
    pub canary_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 2,
            queue_capacity: 32,
            batch: BatchPolicy::default(),
            policy: DegradePolicy::CoastLastGood,
            max_retries: 2,
            health: HealthPolicy::default(),
            virtual_time: false,
            paused: false,
            fault_plan: None,
            drain_deadline: Some(Duration::from_secs(30)),
            canary_deadline: Duration::from_secs(30),
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Every admitting replica queue was full at admission.
    QueueFull,
    /// Inference failed after every retry and the stream had no last
    /// good detection to coast on (or the policy was `DropFrame`).
    InferenceFailed,
    /// The request was routed at a replica that left rotation (retired),
    /// or was still unanswered at the shutdown drain deadline, and the
    /// stream had nothing to coast on.
    ReplicaUnavailable,
}

/// The single recorded outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Inference ran on this request's batch; fresh detection.
    Served(Detection),
    /// Load-shedding answered with the stream's last good detection.
    Degraded(Detection),
    /// No answer could be produced; the request was shed.
    Shed(ShedReason),
}

/// Reply delivered on the request's response channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Request id assigned at submission (monotonic per engine).
    pub id: u64,
    /// Client stream the request belonged to.
    pub stream: u64,
    /// What happened — exactly one per request.
    pub outcome: Outcome,
    /// Replica that processed the batch (`None` for admission-time and
    /// shutdown-drain outcomes, which never reached a replica's
    /// detector).
    pub replica: Option<usize>,
    /// Replica-local batch sequence and size (`None` when no batch ran).
    pub batch: Option<(u64, usize)>,
    /// Weight generation in force when this outcome was produced — the
    /// audit stamp that answers "which weights served this request?".
    pub generation: u64,
    /// Engine-clock arrival stamp (µs).
    pub arrival_us: u64,
    /// Engine-clock completion stamp (µs).
    pub done_us: u64,
}

/// One queued request. Replies are delivered through the shared pending
/// registry (keyed by id), never through the request itself — so a
/// request trapped in a dead replica can still be answered at drain.
struct Request {
    id: u64,
    stream: u64,
    image: Tensor,
    arrival_us: u64,
}

/// The reply route for one in-flight request. Lives in
/// [`Shared::pending`] from admission until the moment its single
/// outcome is recorded; *taking* the entry is what makes the outcome
/// exactly-one.
struct PendingReply {
    stream: u64,
    arrival_us: u64,
    reply: Sender<Response>,
}

/// Everything a replica thread can receive on its queue.
enum Msg {
    /// A client request to batch and serve.
    Req(Request),
    /// Serve as canary for a publish: barrier-flush, probe, answer.
    Canary(CanaryCmd),
    /// A canary-validated blueprint to adopt at the next batch boundary.
    Adopt {
        generation: u64,
        blueprint: DetectorBlueprint,
    },
}

/// The canary half of a hot swap (see [`ServeEngine::publish`]).
struct CanaryCmd {
    generation: u64,
    blueprint: DetectorBlueprint,
    spec: CanarySpec,
    verdict: Sender<CanaryVerdict>,
}

/// Whether a submission was queued or answered immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued on the given replica's queue; the outcome arrives later.
    Queued {
        /// Replica whose queue accepted the request.
        replica: usize,
    },
    /// Every admitting queue was full (or no replica admits); the
    /// request was answered immediately (`Degraded` or `Shed`) on its
    /// reply channel.
    Rejected,
}

/// Monotonic totals over the engine's lifetime. `submitted` must equal
/// `served + degraded + shed` once [`ServeEngine::shutdown`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Requests offered to [`ServeEngine::submit`].
    pub submitted: u64,
    /// Requests answered with a fresh detection.
    pub served: u64,
    /// Requests answered by coasting on a last good detection.
    pub degraded: u64,
    /// Requests shed (queue-full, unrecoverable inference, or replica
    /// unavailable with nothing to coast on).
    pub shed: u64,
    /// Shed subset: rejected at admission.
    pub shed_queue_full: u64,
    /// Inference retry attempts across all batches.
    pub retried: u64,
    /// Batches executed across all replicas.
    pub batches: u64,
    /// Times any replica entered quarantine.
    pub quarantines: u64,
    /// Supervised replica restarts performed.
    pub restarts: u64,
    /// Replicas permanently retired (restart budget exhausted).
    pub retired: u64,
    /// Replicas recorded lost (thread death, or stalled past the
    /// shutdown drain deadline).
    pub replica_lost: u64,
    /// Requests answered via the degrade policy by the shutdown drain
    /// deadline instead of by a replica.
    pub force_drained: u64,
    /// Hot swaps promoted to the whole engine.
    pub swaps_published: u64,
    /// Canary probes that rejected a published blueprint.
    pub swap_canary_fail: u64,
    /// Swaps rolled back to the previous blueprint.
    pub swap_rolled_back: u64,
}

impl ServeCounters {
    /// Requests with no recorded outcome. Zero after a clean shutdown —
    /// the invariant the serving tests assert.
    pub fn lost(&self) -> u64 {
        self.submitted
            .saturating_sub(self.served + self.degraded + self.shed)
    }
}

/// Final report returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Lifetime totals (see [`ServeCounters::lost`]).
    pub counters: ServeCounters,
    /// Per-replica batch log: `batch_log[r][k]` is the request-id
    /// composition of replica `r`'s `k`-th batch, in execution order —
    /// the witness the determinism suite compares across runs. Empty for
    /// replicas recorded lost (their log died with their thread).
    pub batch_log: Vec<Vec<Vec<u64>>>,
    /// Final lifecycle state of every replica.
    pub states: Vec<ReplicaState>,
    /// Weight generation active at shutdown.
    pub generation: u64,
    /// Digest of the active blueprint's weights at shutdown.
    pub weight_hash: u64,
}

#[derive(Default)]
struct AtomicCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    shed_queue_full: AtomicU64,
    retried: AtomicU64,
    batches: AtomicU64,
    quarantines: AtomicU64,
    restarts: AtomicU64,
    retired: AtomicU64,
    replica_lost: AtomicU64,
    force_drained: AtomicU64,
    swaps_published: AtomicU64,
    swap_canary_fail: AtomicU64,
    swap_rolled_back: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            submitted: self.submitted.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            shed_queue_full: self.shed_queue_full.load(Ordering::SeqCst),
            retried: self.retried.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            quarantines: self.quarantines.load(Ordering::SeqCst),
            restarts: self.restarts.load(Ordering::SeqCst),
            retired: self.retired.load(Ordering::SeqCst),
            replica_lost: self.replica_lost.load(Ordering::SeqCst),
            force_drained: self.force_drained.load(Ordering::SeqCst),
            swaps_published: self.swaps_published.load(Ordering::SeqCst),
            swap_canary_fail: self.swap_canary_fail.load(Ordering::SeqCst),
            swap_rolled_back: self.swap_rolled_back.load(Ordering::SeqCst),
        }
    }
}

/// State shared between the admission side and every replica.
struct Shared {
    policy: DegradePolicy,
    max_retries: u32,
    virtual_time: bool,
    batch: BatchPolicy,
    health: HealthPolicy,
    plan: Option<Arc<FaultPlan>>,
    counters: AtomicCounters,
    last_good: Mutex<HashMap<u64, Detection>>,
    /// Reply routes of every in-flight request, keyed by id. An outcome
    /// is recorded by *taking* the entry — whoever takes it answers;
    /// everyone else backs off. This is the exactly-one-outcome lock.
    pending: Mutex<HashMap<u64, PendingReply>>,
    /// Lifecycle state per replica ([`ReplicaState::code`] values),
    /// readable lock-free by admission.
    states: Vec<AtomicU8>,
    /// The active (generation, blueprint) pair — what restarts respawn
    /// from and what `weight_hash` reports. Updated only on promotion.
    active: Mutex<(u64, DetectorBlueprint)>,
    /// Lock-free mirror of the active generation for outcome stamping.
    active_gen: AtomicU64,
    clock: Instant,
    /// Pause gate: workers wait until `true`.
    gate: (Mutex<bool>, Condvar),
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.clock.elapsed().as_micros() as u64
    }

    fn wait_until_running(&self) {
        let (lock, cv) = &self.gate;
        let mut running = lock.lock().expect("gate poisoned");
        while !*running {
            running = cv.wait(running).expect("gate poisoned");
        }
    }

    fn set_state(&self, replica: usize, state: ReplicaState) {
        self.states[replica].store(state.code(), Ordering::SeqCst);
        if telemetry::metrics_enabled() {
            telemetry::record_gauge(
                &format!("serve.replica{replica}.state"),
                f64::from(state.code()),
            );
        }
    }

    fn state_of(&self, replica: usize) -> ReplicaState {
        ReplicaState::from_code(self.states[replica].load(Ordering::SeqCst))
    }

    /// The degrade-policy answer for a request the engine cannot serve:
    /// coast on the stream's last good detection, or shed with `reason`
    /// (first-frame rule: nothing to coast on yet sheds).
    fn degrade_outcome(&self, stream: u64, reason: ShedReason) -> Outcome {
        match self.policy {
            DegradePolicy::CoastLastGood => {
                let good = self
                    .last_good
                    .lock()
                    .expect("last_good poisoned")
                    .get(&stream)
                    .copied();
                match good {
                    Some(d) => Outcome::Degraded(d),
                    None => Outcome::Shed(reason),
                }
            }
            DegradePolicy::DropFrame => Outcome::Shed(reason),
        }
    }

    /// Takes the pending entry for `id` and delivers its single
    /// outcome. Returns `false` when the request was already answered
    /// elsewhere (e.g. force-drained at the shutdown deadline) — the
    /// caller must then not record anything.
    fn answer(
        &self,
        id: u64,
        outcome: Outcome,
        replica: Option<usize>,
        batch: Option<(u64, usize)>,
        generation: u64,
    ) -> bool {
        let taken = self.pending.lock().expect("pending poisoned").remove(&id);
        let Some(p) = taken else {
            return false;
        };
        record_outcome(self, &outcome);
        let _ = p.reply.send(Response {
            id,
            stream: p.stream,
            outcome,
            replica,
            batch,
            generation,
            arrival_us: p.arrival_us,
            done_us: self.now_us(),
        });
        true
    }
}

/// The running engine: submit requests, [`publish`](Self::publish) new
/// weights, then [`shutdown`](Self::shutdown) to drain and collect the
/// report.
pub struct ServeEngine {
    txs: Vec<SyncSender<Msg>>,
    workers: Vec<std::thread::JoinHandle<Vec<Vec<u64>>>>,
    shared: Arc<Shared>,
    depth_gauges: Vec<&'static telemetry::Gauge>,
    rr: AtomicUsize,
    next_id: AtomicU64,
    /// Serializes publishes: one canary in flight at a time.
    swap_lock: Mutex<()>,
    drain_deadline: Option<Duration>,
    canary_deadline: Duration,
}

impl ServeEngine {
    /// Spawns the replicas and starts serving (or parks them gated when
    /// [`ServeConfig::paused`] is set).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ModelMismatch`] when the blueprint's
    /// published weights do not fit its architecture config.
    pub fn start(
        blueprint: &DetectorBlueprint,
        cfg: &ServeConfig,
    ) -> Result<Self, CheckpointError> {
        let replicas = cfg.replicas.max(1);
        let shared = Arc::new(Shared {
            policy: cfg.policy,
            max_retries: cfg.max_retries,
            virtual_time: cfg.virtual_time,
            batch: cfg.batch,
            health: cfg.health,
            plan: cfg.fault_plan.clone(),
            counters: AtomicCounters::default(),
            last_good: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            states: (0..replicas).map(|_| AtomicU8::new(0)).collect(),
            active: Mutex::new((0, blueprint.clone())),
            active_gen: AtomicU64::new(0),
            clock: Instant::now(),
            gate: (Mutex::new(!cfg.paused), Condvar::new()),
        });
        if telemetry::metrics_enabled() {
            telemetry::record_gauge("serve.replicas", replicas as f64);
            telemetry::record_gauge("serve.generation", 0.0);
        }
        let mut txs = Vec::with_capacity(replicas);
        let mut workers = Vec::with_capacity(replicas);
        let mut depth_gauges = Vec::with_capacity(replicas);
        // Validate the blueprint on the caller's thread so a bad weight
        // set is a structured error, not a worker panic. Detectors are
        // not Send (Box<dyn Layer>), so each replica builds its own from
        // the (Send) blueprint once inside its thread.
        drop(blueprint.spawn()?);
        for idx in 0..replicas {
            let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.queue_capacity.max(1));
            let depth = telemetry::gauge(&format!("serve.replica{idx}.queue.depth"));
            shared.set_state(idx, ReplicaState::Healthy);
            let sh = shared.clone();
            let bp = blueprint.clone();
            workers.push(std::thread::spawn(move || {
                let det = bp.spawn().expect("blueprint validated at start");
                Replica::new(idx, det, sh).run(rx)
            }));
            txs.push(tx);
            depth_gauges.push(depth);
        }
        Ok(ServeEngine {
            txs,
            workers,
            shared,
            depth_gauges,
            rr: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            swap_lock: Mutex::new(()),
            drain_deadline: cfg.drain_deadline,
            canary_deadline: cfg.canary_deadline,
        })
    }

    /// Releases replicas parked by [`ServeConfig::paused`]. Idempotent.
    pub fn resume(&self) {
        let (lock, cv) = &self.shared.gate;
        *lock.lock().expect("gate poisoned") = true;
        cv.notify_all();
    }

    /// Microseconds since the engine clock started — the timebase of
    /// every `arrival_us` / `done_us` stamp.
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// The lifecycle state of every replica, as last published.
    pub fn replica_states(&self) -> Vec<ReplicaState> {
        (0..self.txs.len())
            .map(|i| self.shared.state_of(i))
            .collect()
    }

    /// The weight generation currently active engine-wide.
    pub fn generation(&self) -> u64 {
        self.shared.active_gen.load(Ordering::SeqCst)
    }

    /// Submits a request stamped with the current engine clock.
    pub fn submit(&self, stream: u64, image: Tensor, reply: &Sender<Response>) -> Admission {
        let t = self.shared.now_us();
        self.submit_at(stream, image, t, reply)
    }

    /// Submits a request with an explicit arrival stamp (virtual-time
    /// mode: the stamp drives batch composition; the load generator and
    /// the determinism suite submit pre-computed Poisson schedules).
    ///
    /// The request's single outcome is delivered on `reply` — either
    /// immediately (admission-time shed/coast) or after its batch runs.
    /// Replicas outside rotation (quarantined / retired / lost) receive
    /// **zero admissions**; their round-robin share spills over.
    pub fn submit_at(
        &self,
        stream: u64,
        image: Tensor,
        arrival_us: u64,
        reply: &Sender<Response>,
    ) -> Admission {
        let shared = &self.shared;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        shared.counters.submitted.fetch_add(1, Ordering::SeqCst);
        if telemetry::metrics_enabled() {
            telemetry::counter("serve.requests.submitted").inc();
        }
        // Register the reply route *before* the queue can see the
        // request, so the answering side always finds the entry.
        shared.pending.lock().expect("pending poisoned").insert(
            id,
            PendingReply {
                stream,
                arrival_us,
                reply: reply.clone(),
            },
        );
        let mut req = Request {
            id,
            stream,
            image,
            arrival_us,
        };
        // Round-robin with spill-over across *admitting* replicas:
        // start at the cursor, try every admitting queue once. A
        // single-submitter sequence lands deterministically.
        let n = self.txs.len();
        let start = self.rr.fetch_add(1, Ordering::SeqCst) % n;
        for k in 0..n {
            let r = (start + k) % n;
            if !shared.state_of(r).admits() {
                continue;
            }
            match self.txs[r].try_send(Msg::Req(req)) {
                Ok(()) => {
                    if telemetry::metrics_enabled() {
                        self.depth_gauges[r].add(1.0);
                    }
                    return Admission::Queued { replica: r };
                }
                Err(TrySendError::Full(back)) => {
                    let Msg::Req(back) = back else { unreachable!() };
                    req = back;
                }
                Err(TrySendError::Disconnected(back)) => {
                    // The replica thread is gone: record the loss once
                    // and spill over.
                    if shared.state_of(r) != ReplicaState::Lost {
                        shared.set_state(r, ReplicaState::Lost);
                        shared.counters.replica_lost.fetch_add(1, Ordering::SeqCst);
                    }
                    let Msg::Req(back) = back else { unreachable!() };
                    req = back;
                }
            }
        }
        // No admitting queue took it: shed or coast, but always answer.
        let outcome = shared.degrade_outcome(stream, ShedReason::QueueFull);
        shared.answer(
            id,
            outcome,
            None,
            None,
            shared.active_gen.load(Ordering::SeqCst),
        );
        Admission::Rejected
    }

    /// Lifetime counters so far (exact only after [`shutdown`](Self::shutdown)).
    pub fn counters(&self) -> ServeCounters {
        self.shared.counters.snapshot()
    }

    /// Hot weight swap: republishes `blueprint` into the running engine
    /// between batches, canary-first (see [`crate::swap`] for the
    /// protocol). On a passing probe the new generation is promoted to
    /// every replica and becomes what restarts respawn from; on a
    /// failing probe the canary rolls back and the engine keeps serving
    /// the previous generation.
    ///
    /// Publishes are serialized; the engine must be running (a paused
    /// engine never answers the canary and the call times out after
    /// [`ServeConfig::canary_deadline`]).
    ///
    /// # Errors
    ///
    /// [`SwapError::InvalidBlueprint`] when the weights do not fit the
    /// architecture, [`SwapError::NoHealthyReplica`] when no replica can
    /// act as canary, [`SwapError::CanaryUnresponsive`] on deadline
    /// expiry. A canary *rejection* is not an error — it is the
    /// [`SwapOutcome::RolledBack`] arm.
    pub fn publish(
        &self,
        blueprint: DetectorBlueprint,
        spec: CanarySpec,
    ) -> Result<SwapOutcome, SwapError> {
        let _serialize = self.swap_lock.lock().expect("swap lock poisoned");
        let shared = &self.shared;
        drop(blueprint.spawn().map_err(SwapError::InvalidBlueprint)?);
        let canary = (0..self.txs.len())
            .find(|&r| shared.state_of(r).admits())
            .ok_or(SwapError::NoHealthyReplica)?;
        let generation = shared.active_gen.load(Ordering::SeqCst) + 1;
        let (vtx, vrx) = mpsc::channel();
        self.txs[canary]
            .send(Msg::Canary(CanaryCmd {
                generation,
                blueprint: blueprint.clone(),
                spec,
                verdict: vtx,
            }))
            .map_err(|_| SwapError::CanaryUnresponsive)?;
        let verdict = vrx
            .recv_timeout(self.canary_deadline)
            .map_err(|_| SwapError::CanaryUnresponsive)?;
        match verdict {
            CanaryVerdict::Pass => {
                {
                    let mut active = shared.active.lock().expect("active poisoned");
                    *active = (generation, blueprint.clone());
                }
                shared.active_gen.store(generation, Ordering::SeqCst);
                shared
                    .counters
                    .swaps_published
                    .fetch_add(1, Ordering::SeqCst);
                if telemetry::metrics_enabled() {
                    telemetry::counter("serve.swap.published").inc();
                    telemetry::record_gauge("serve.generation", generation as f64);
                }
                for (r, tx) in self.txs.iter().enumerate() {
                    if r != canary {
                        let _ = tx.send(Msg::Adopt {
                            generation,
                            blueprint: blueprint.clone(),
                        });
                    }
                }
                Ok(SwapOutcome::Published { generation, canary })
            }
            CanaryVerdict::Fail(failure) => {
                shared
                    .counters
                    .swap_canary_fail
                    .fetch_add(1, Ordering::SeqCst);
                shared
                    .counters
                    .swap_rolled_back
                    .fetch_add(1, Ordering::SeqCst);
                if telemetry::metrics_enabled() {
                    telemetry::counter("serve.swap.canary_fail").inc();
                    telemetry::counter("serve.swap.rolled_back").inc();
                }
                Ok(SwapOutcome::RolledBack {
                    generation,
                    canary,
                    failure,
                })
            }
        }
    }

    /// Closes admission, drains every queue, joins the replicas and
    /// returns the final report. Every request accepted before the call
    /// has its outcome recorded by the time this returns — bounded by
    /// [`ServeConfig::drain_deadline`]: replicas that have not drained
    /// by then are detached and recorded [`ReplicaState::Lost`], and
    /// their in-flight requests are answered via the degrade policy
    /// (`force_drained`), preserving `lost() == 0`. A replica thread
    /// that *panicked* is likewise a structured loss in the report, not
    /// a panic of the drain path.
    pub fn shutdown(mut self) -> ServeReport {
        // Wake gated replicas first or the drain never starts.
        self.resume();
        self.txs.clear(); // disconnect: workers drain and exit
        let shared = self.shared.clone();
        let n = self.workers.len();
        let mut handles: Vec<Option<std::thread::JoinHandle<Vec<Vec<u64>>>>> =
            self.workers.drain(..).map(Some).collect();
        if let Some(d) = self.drain_deadline {
            let deadline = Instant::now() + d;
            while Instant::now() < deadline && handles.iter().flatten().any(|h| !h.is_finished()) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let mut batch_log: Vec<Vec<Vec<u64>>> = vec![Vec::new(); n];
        let mark_lost = |idx: usize| {
            // Admission may already have recorded the loss (try_send saw
            // a disconnected queue): count each replica at most once.
            if shared.state_of(idx) == ReplicaState::Lost {
                return;
            }
            shared.set_state(idx, ReplicaState::Lost);
            shared.counters.replica_lost.fetch_add(1, Ordering::SeqCst);
            if telemetry::metrics_enabled() {
                telemetry::counter(&format!("serve.replica{idx}.lost")).inc();
            }
        };
        for (idx, slot) in handles.iter_mut().enumerate() {
            let handle = slot.take().expect("handle taken once");
            if self.drain_deadline.is_none() || handle.is_finished() {
                match handle.join() {
                    Ok(log) => batch_log[idx] = log,
                    // The replica thread panicked outside the per-batch
                    // unwind guard: a structured loss, not our panic.
                    Err(_) => mark_lost(idx),
                }
            } else {
                // Stalled past the drain deadline: detach the thread
                // (it can no longer answer anything — the pending
                // registry is about to be drained) and record the loss.
                mark_lost(idx);
                drop(handle);
            }
        }
        // Bounded drain: answer every still-pending request via the
        // degrade policy. Entries are *taken*, so a stalled replica that
        // later wakes finds nothing left to answer — exactly one
        // outcome either way.
        let mut orphans: Vec<(u64, PendingReply)> = shared
            .pending
            .lock()
            .expect("pending poisoned")
            .drain()
            .collect();
        orphans.sort_by_key(|(id, _)| *id);
        let generation = shared.active_gen.load(Ordering::SeqCst);
        for (id, p) in orphans {
            let outcome = shared.degrade_outcome(p.stream, ShedReason::ReplicaUnavailable);
            record_outcome(&shared, &outcome);
            shared.counters.force_drained.fetch_add(1, Ordering::SeqCst);
            if telemetry::metrics_enabled() {
                telemetry::counter("serve.drain.forced").inc();
            }
            let _ = p.reply.send(Response {
                id,
                stream: p.stream,
                outcome,
                replica: None,
                batch: None,
                generation,
                arrival_us: p.arrival_us,
                done_us: shared.now_us(),
            });
        }
        let weight_hash = {
            let active = shared.active.lock().expect("active poisoned");
            active.1.weight_hash()
        };
        ServeReport {
            counters: shared.counters.snapshot(),
            batch_log,
            states: (0..n).map(|i| shared.state_of(i)).collect(),
            generation,
            weight_hash,
        }
    }
}

/// Tallies one outcome into the shared counters and telemetry.
fn record_outcome(shared: &Shared, outcome: &Outcome) {
    let metrics = telemetry::metrics_enabled();
    match outcome {
        Outcome::Served(_) => {
            shared.counters.served.fetch_add(1, Ordering::SeqCst);
            if metrics {
                telemetry::counter("serve.requests.served").inc();
            }
        }
        Outcome::Degraded(_) => {
            shared.counters.degraded.fetch_add(1, Ordering::SeqCst);
            if metrics {
                telemetry::counter("serve.requests.degraded").inc();
            }
        }
        Outcome::Shed(reason) => {
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            if *reason == ShedReason::QueueFull {
                shared
                    .counters
                    .shed_queue_full
                    .fetch_add(1, Ordering::SeqCst);
            }
            if metrics {
                telemetry::counter("serve.requests.shed").inc();
                telemetry::counter(match reason {
                    ShedReason::QueueFull => "serve.shed.queue_full",
                    ShedReason::InferenceFailed => "serve.shed.infer",
                    ShedReason::ReplicaUnavailable => "serve.shed.unavailable",
                })
                .inc();
            }
        }
    }
}

/// One replica thread: queue → batcher → batched forward, scored by the
/// health tracker, restarted under supervision, swapped between batches.
struct Replica {
    idx: usize,
    shared: Arc<Shared>,
    /// `None` once retired (the detector is dropped with the broken
    /// replica's working set).
    det: Option<Detector>,
    /// Weight generation this replica currently serves.
    gen: u64,
    health: HealthTracker,
    batcher: Batcher<Request>,
    log: Vec<Vec<u64>>,
    seq: u64,
    depth: &'static telemetry::Gauge,
}

impl Replica {
    fn new(idx: usize, det: Detector, shared: Arc<Shared>) -> Self {
        let health = HealthTracker::new(shared.health);
        let batcher = Batcher::new(shared.batch);
        let depth = telemetry::gauge(&format!("serve.replica{idx}.queue.depth"));
        Replica {
            idx,
            shared,
            det: Some(det),
            gen: 0,
            health,
            batcher,
            log: Vec::new(),
            seq: 0,
            depth,
        }
    }

    /// Drains the queue until disconnect; returns the batch log.
    fn run(mut self, rx: Receiver<Msg>) -> Vec<Vec<u64>> {
        self.shared.wait_until_running();
        'outer: loop {
            match rx.try_recv() {
                Ok(msg) => self.on_msg(msg),
                Err(mpsc::TryRecvError::Empty) => {
                    if self.batcher.is_empty() {
                        // Nothing pending: block until work or disconnect.
                        match rx.recv() {
                            Ok(msg) => self.on_msg(msg),
                            Err(_) => break 'outer,
                        }
                    } else if self.shared.virtual_time {
                        // Virtual time: queue exhaustion closes the batch —
                        // no wall clock in the composition decision.
                        self.flush_and_run();
                    } else {
                        // Wall clock: wait out the remaining coalescing
                        // window, then flush.
                        let deadline = self
                            .batcher
                            .window_deadline_us()
                            .expect("non-empty batcher has a window");
                        let now = self.shared.now_us();
                        if now >= deadline {
                            self.flush_and_run();
                        } else {
                            match rx.recv_timeout(Duration::from_micros(deadline - now)) {
                                Ok(msg) => self.on_msg(msg),
                                Err(RecvTimeoutError::Timeout) => self.flush_and_run(),
                                Err(RecvTimeoutError::Disconnected) => {
                                    self.flush_and_run();
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    // Shutdown drain: everything already pulled must still
                    // get its outcome.
                    self.flush_and_run();
                    break 'outer;
                }
            }
        }
        self.log
    }

    fn on_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Req(r) => {
                if telemetry::metrics_enabled() {
                    self.depth.add(-1.0);
                }
                self.on_request(r);
            }
            Msg::Canary(cmd) => self.on_canary(cmd),
            Msg::Adopt {
                generation,
                blueprint,
            } => self.on_adopt(generation, blueprint),
        }
    }

    fn on_request(&mut self, r: Request) {
        if self.det.is_none() {
            // Retired: answer immediately via the degrade policy — the
            // graceful-capacity-degradation path for racy admissions.
            self.answer_unrotated(r);
            return;
        }
        let t = if self.shared.virtual_time {
            r.arrival_us
        } else {
            self.shared.now_us()
        };
        if let Some(batch) = self.batcher.push(r, t) {
            self.run_and_score(batch);
        }
    }

    /// Barrier-flush then execute whatever batch is open.
    fn flush_and_run(&mut self) {
        if let Some(batch) = self.batcher.flush() {
            self.run_and_score(batch);
        }
    }

    fn run_and_score(&mut self, batch: Vec<Request>) {
        let ok = self.exec_batch(batch);
        self.after_batch(ok);
    }

    /// Answers a request the replica can no longer serve (retired).
    fn answer_unrotated(&mut self, r: Request) {
        let outcome = self
            .shared
            .degrade_outcome(r.stream, ShedReason::ReplicaUnavailable);
        let gen = self.shared.active_gen.load(Ordering::SeqCst);
        self.shared.answer(r.id, outcome, Some(self.idx), None, gen);
    }

    /// Health bookkeeping after a batch: score the outcome, publish the
    /// state, and run the quarantine → supervised-restart → retire arc
    /// when the score trips.
    fn after_batch(&mut self, ok: bool) {
        let prev = self.health.state();
        let state = self.health.record_batch(!ok);
        if state != prev {
            self.shared.set_state(self.idx, state);
        }
        if state != ReplicaState::Quarantined {
            return;
        }
        self.shared
            .counters
            .quarantines
            .fetch_add(1, Ordering::SeqCst);
        if telemetry::metrics_enabled() {
            telemetry::counter(&format!("serve.replica{}.quarantines", self.idx)).inc();
        }
        match self.health.begin_restart() {
            RestartDecision::Restart { backoff_ms } => {
                // Deterministic exponential backoff; virtual-time mode
                // skips the sleep (identical decision sequence).
                if !self.shared.virtual_time && backoff_ms > 0 {
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                }
                let (gen, bp) = {
                    let active = self.shared.active.lock().expect("active poisoned");
                    active.clone()
                };
                match bp.spawn() {
                    Ok(d) => {
                        self.det = Some(d);
                        self.gen = gen;
                        self.health.complete_restart();
                        self.shared.counters.restarts.fetch_add(1, Ordering::SeqCst);
                        if telemetry::metrics_enabled() {
                            telemetry::counter(&format!("serve.replica{}.restarts", self.idx))
                                .inc();
                        }
                        self.shared.set_state(self.idx, self.health.state());
                    }
                    // Unreachable for validated blueprints; treated as a
                    // failed restart rather than a panic.
                    Err(_) => self.retire(),
                }
            }
            RestartDecision::Retire => self.retire(),
        }
    }

    /// Permanently removes this replica from rotation and answers
    /// whatever its batcher still holds via the degrade policy.
    fn retire(&mut self) {
        self.det = None;
        self.shared.counters.retired.fetch_add(1, Ordering::SeqCst);
        self.shared.set_state(self.idx, ReplicaState::Retired);
        if let Some(batch) = self.batcher.barrier() {
            for r in batch {
                self.answer_unrotated(r);
            }
        }
    }

    /// Canary phase of a hot swap: barrier-flush (the open batch runs on
    /// the old weights — no batch spans generations), probe the new
    /// blueprint on the pinned reference input, then either install the
    /// new generation or roll back.
    fn on_canary(&mut self, cmd: CanaryCmd) {
        if let Some(batch) = self.batcher.barrier() {
            self.run_and_score(batch);
        }
        // The barrier batch may have tripped the health score: a
        // replica that just retired cannot canary.
        if self.det.is_none() || !self.health.state().admits() {
            let _ = cmd
                .verdict
                .send(CanaryVerdict::Fail(CanaryFailure::ReplicaUnavailable));
            return;
        }
        match run_probe(&cmd, self.shared.plan.as_deref()) {
            Ok(new_det) => {
                self.det = Some(new_det);
                self.gen = cmd.generation;
                let _ = cmd.verdict.send(CanaryVerdict::Pass);
            }
            Err(failure) => {
                // Roll back: the old detector was never dropped — the
                // replica keeps serving the previous generation.
                let _ = cmd.verdict.send(CanaryVerdict::Fail(failure));
            }
        }
    }

    /// Adopts a canary-validated blueprint at the batch boundary.
    fn on_adopt(&mut self, generation: u64, blueprint: DetectorBlueprint) {
        if self.det.is_none() || generation <= self.gen {
            return; // retired, or a stale republication
        }
        if let Some(batch) = self.batcher.barrier() {
            self.run_and_score(batch);
        }
        if self.det.is_none() {
            return; // the barrier batch retired us
        }
        if let Ok(d) = blueprint.spawn() {
            self.det = Some(d);
            self.gen = generation;
        }
    }

    /// Executes one closed batch: stacked forward with fault injection
    /// and retries, then exactly one outcome per member request.
    /// Returns whether inference succeeded.
    fn exec_batch(&mut self, batch: Vec<Request>) -> bool {
        let shared = self.shared.clone();
        let idx = self.idx;
        let batch_seq = self.seq;
        self.seq += 1;
        let restarts = self.health.restarts();
        // Replica-kill window: the injected panic deliberately escapes
        // the per-batch unwind guard, modelling a dead replica thread.
        if let Some(plan) = &shared.plan {
            if plan.replica_kill_at(idx, batch_seq, restarts) {
                panic_any(InjectedFault {
                    stage: StageId::Infer,
                    frame: batch_seq as usize,
                });
            }
        }
        shared.counters.batches.fetch_add(1, Ordering::SeqCst);
        let metrics = telemetry::metrics_enabled();
        if metrics {
            telemetry::counter(&format!("serve.replica{idx}.batches")).inc();
        }
        self.log.push(batch.iter().map(|r| r.id).collect());
        let size = batch.len();
        let mut meta = Vec::with_capacity(size);
        let mut tensors = Vec::with_capacity(size);
        for r in batch {
            meta.push((r.id, r.stream, r.arrival_us));
            tensors.push(r.image);
        }
        if metrics {
            telemetry::histogram("serve.batch.size", &BATCH_BOUNDS).record(size as f64);
            let now = shared.now_us();
            for &(_, _, arrival) in &meta {
                telemetry::histogram("serve.queue_wait.ms", &telemetry::MS_BOUNDS)
                    .record(now.saturating_sub(arrival) as f64 / 1e3);
            }
        }
        // Batched forward under the fault plan, with panic isolation and
        // bounded retries — the same discipline as the pipeline
        // supervisor.
        let det = self
            .det
            .as_mut()
            .expect("in-rotation replica has a detector");
        let stacked = Tensor::stack(&tensors);
        let infer_started = Instant::now();
        let mut detections = None;
        if let Ok(input) = &stacked {
            for attempt in 0..=shared.max_retries {
                if attempt > 0 {
                    shared.counters.retried.fetch_add(1, Ordering::SeqCst);
                    if metrics {
                        telemetry::counter("serve.infer.retried").inc();
                    }
                }
                let ctx = FrameCtx {
                    frame: batch_seq as usize,
                    attempt,
                };
                let span = telemetry::span("serve.infer");
                // A panic mid-forward leaves no partial state we reuse:
                // the detector's transient routing state is reset by the
                // next forward, and Eval mode never touches the
                // parameters.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = &shared.plan {
                        plan.apply_replica(idx, batch_seq, restarts)
                            .map_err(|e| e.to_string())?;
                        plan.apply(StageId::Infer, &ctx)
                            .map_err(|e| e.to_string())?;
                    }
                    det.predict(input).map_err(|e| e.to_string())
                }));
                drop(span);
                if let Ok(Ok(dets)) = outcome {
                    detections = Some(dets);
                    break;
                }
            }
        }
        if metrics {
            telemetry::histogram("serve.infer.ms", &telemetry::MS_BOUNDS)
                .record(infer_started.elapsed().as_secs_f64() * 1e3);
            telemetry::counter("serve.batches").inc();
        }
        // Optional reply-path stall (slow response consumer).
        if let Some(plan) = &shared.plan {
            let ctx = FrameCtx {
                frame: batch_seq as usize,
                attempt: 0,
            };
            let _ = catch_unwind(AssertUnwindSafe(|| plan.apply(StageId::Post, &ctx)));
        }
        let ok = detections.is_some();
        match detections {
            Some(dets) => {
                debug_assert_eq!(dets.len(), meta.len());
                for ((id, stream, arrival_us), det_out) in meta.into_iter().zip(dets) {
                    self.shared
                        .last_good
                        .lock()
                        .expect("last_good poisoned")
                        .insert(stream, det_out);
                    let answered = shared.answer(
                        id,
                        Outcome::Served(det_out),
                        Some(idx),
                        Some((batch_seq, size)),
                        self.gen,
                    );
                    if answered && metrics {
                        telemetry::counter(&format!("serve.replica{idx}.served")).inc();
                        let done = shared.now_us();
                        telemetry::histogram("serve.e2e.ms", &telemetry::MS_BOUNDS)
                            .record(done.saturating_sub(arrival_us) as f64 / 1e3);
                    }
                }
            }
            None => {
                // Retries exhausted (or an impossible stack): degrade
                // each member per the policy — first-frame rule
                // included.
                for (id, stream, _arrival_us) in meta {
                    let outcome = shared.degrade_outcome(stream, ShedReason::InferenceFailed);
                    shared.answer(id, outcome, Some(idx), Some((batch_seq, size)), self.gen);
                }
            }
        }
        ok
    }
}

/// The canary validation probe (runs on the canary replica's thread):
/// weight-hash check, spawn, forward over the pinned reference input
/// under the swap-window fault schedule, detection/IoU comparison.
fn run_probe(cmd: &CanaryCmd, plan: Option<&FaultPlan>) -> Result<Detector, CanaryFailure> {
    if let Some(expected) = cmd.spec.expected_weight_hash {
        let got = cmd.blueprint.weight_hash();
        if got != expected {
            return Err(CanaryFailure::WeightHashMismatch { expected, got });
        }
    }
    let mut det = cmd
        .blueprint
        .spawn()
        .map_err(|e| CanaryFailure::SpawnFailed(e.to_string()))?;
    let probed = catch_unwind(AssertUnwindSafe(|| {
        if let Some(p) = plan {
            p.apply_canary(cmd.generation, 0)
                .map_err(|e| e.to_string())?;
        }
        det.predict(&cmd.spec.reference).map_err(|e| e.to_string())
    }));
    let dets = match probed {
        Ok(Ok(d)) => d,
        Ok(Err(e)) => return Err(CanaryFailure::ProbeError(e)),
        Err(_) => return Err(CanaryFailure::ProbePanicked),
    };
    if !cmd.spec.expected.is_empty() {
        if dets.len() != cmd.spec.expected.len() {
            return Err(CanaryFailure::DetectionCount {
                expected: cmd.spec.expected.len(),
                got: dets.len(),
            });
        }
        for (index, (got, want)) in dets.iter().zip(&cmd.spec.expected).enumerate() {
            let iou = got.bbox.iou(&want.bbox);
            if iou < cmd.spec.min_iou {
                return Err(CanaryFailure::IouBelowFloor {
                    index,
                    iou,
                    floor: cmd.spec.min_iou,
                });
            }
        }
    }
    Ok(det)
}

/// Batch-size histogram buckets (powers of two up to 64).
pub const BATCH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
