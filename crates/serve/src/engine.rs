//! The batched async serving engine.
//!
//! N detector replicas (stamped from one `Arc`-published
//! [`DetectorBlueprint`]) each own a bounded request queue and a thread.
//! Admission round-robins requests across the queues with spill-over;
//! when every queue is full the engine **sheds load** instead of growing
//! latency without bound, handling the rejected request per the
//! supervisor's [`DegradePolicy`]: [`DegradePolicy::DropFrame`] answers
//! `Shed`, [`DegradePolicy::CoastLastGood`] answers with the stream's
//! last good detection (`Degraded`) — or `Shed` when the stream has no
//! good detection yet, the same first-frame rule the pipeline supervisor
//! specifies. Each replica coalesces its queue through the deterministic
//! [`Batcher`] (close on size, window expiry, or queue exhaustion) and
//! feeds the already batch-parallel detector forward once per batch.
//!
//! **Accounting invariant:** every submitted request receives exactly
//! one recorded outcome — `Served`, `Degraded` or `Shed` — delivered on
//! its reply channel and tallied in [`ServeCounters`]. Shutdown drains
//! the queues before joining the workers, so
//! [`ServeCounters::lost`] is zero after [`ServeEngine::shutdown`] even
//! under injected faults; the serving test-suite and the `serve_load`
//! smoke run both pin that.
//!
//! **Fault tolerance:** an optional [`FaultPlan`] (the same machinery
//! the pipeline supervisor is tested with) is applied per batch at the
//! `Infer` coordinate — panics are caught, errors retried up to
//! [`ServeConfig::max_retries`], and a batch whose retries are exhausted
//! degrades per-request under the policy. `Post`-coordinate stalls delay
//! reply delivery, modelling slow response consumers.
//!
//! **Isolation:** replicas share nothing mutable but the last-good map
//! and the counters. Scratch-arena reuse is per-thread by construction
//! (the arena is a `thread_local`), so one replica's allocation pattern
//! cannot perturb another's; per-replica queue-depth gauges and
//! batch/served counters keep the telemetry separable.

use crate::batcher::{BatchPolicy, Batcher};
use skynet_core::head::Detection;
use skynet_core::replica::DetectorBlueprint;
use skynet_hw::fault::FaultPlan;
use skynet_hw::pipeline::{DegradePolicy, FrameCtx, StageId};
use skynet_nn::CheckpointError;
use skynet_tensor::{telemetry, Tensor};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serving engine knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of detector replicas (threads), each with its own queue.
    pub replicas: usize,
    /// Bounded depth of each replica's request queue. Admission sheds
    /// when every queue is full — this is the knob that converts
    /// overload into bounded latency plus explicit `Shed` outcomes.
    pub queue_capacity: usize,
    /// Dynamic-batching size and window (see [`BatchPolicy`]).
    pub batch: BatchPolicy,
    /// What to do with a request the engine cannot serve: shed it, or
    /// coast on the stream's last good detection (first-frame rule:
    /// coast with no prior good detection sheds).
    pub policy: DegradePolicy,
    /// Extra inference attempts per batch after the first.
    pub max_retries: u32,
    /// Batching decisions use request *arrival* stamps and close batches
    /// on queue exhaustion instead of a wall-clock timer — composition
    /// becomes a pure function of the submitted sequence (the
    /// determinism suite runs in this mode). Wall-clock mode stamps
    /// requests at dequeue time and waits out the coalescing window.
    pub virtual_time: bool,
    /// Start with the replicas gated: requests queue up (and shed) but
    /// nothing is processed until [`ServeEngine::resume`].
    pub paused: bool,
    /// Deterministic fault schedule applied at the `Infer` coordinate
    /// per batch (panic / error / stall) and the `Post` coordinate
    /// (reply-path stall), keyed by the replica-local batch sequence.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 2,
            queue_capacity: 32,
            batch: BatchPolicy::default(),
            policy: DegradePolicy::CoastLastGood,
            max_retries: 2,
            virtual_time: false,
            paused: false,
            fault_plan: None,
        }
    }
}

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Every replica queue was full at admission.
    QueueFull,
    /// Inference failed after every retry and the stream had no last
    /// good detection to coast on (or the policy was `DropFrame`).
    InferenceFailed,
}

/// The single recorded outcome of a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Inference ran on this request's batch; fresh detection.
    Served(Detection),
    /// Load-shedding answered with the stream's last good detection.
    Degraded(Detection),
    /// No answer could be produced; the request was shed.
    Shed(ShedReason),
}

/// Reply delivered on the request's response channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Request id assigned at submission (monotonic per engine).
    pub id: u64,
    /// Client stream the request belonged to.
    pub stream: u64,
    /// What happened — exactly one per request.
    pub outcome: Outcome,
    /// Replica that processed the batch (`None` for admission-time
    /// outcomes, which never reached a replica).
    pub replica: Option<usize>,
    /// Replica-local batch sequence and size (`None` at admission time).
    pub batch: Option<(u64, usize)>,
    /// Engine-clock arrival stamp (µs).
    pub arrival_us: u64,
    /// Engine-clock completion stamp (µs).
    pub done_us: u64,
}

/// One queued request.
struct Request {
    id: u64,
    stream: u64,
    image: Tensor,
    arrival_us: u64,
    reply: Sender<Response>,
}

/// Whether a submission was queued or answered immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued on the given replica's queue; the outcome arrives later.
    Queued {
        /// Replica whose queue accepted the request.
        replica: usize,
    },
    /// Every queue was full; the request was answered immediately
    /// (`Degraded` or `Shed`) on its reply channel.
    Rejected,
}

/// Monotonic totals over the engine's lifetime. `submitted` must equal
/// `served + degraded + shed` once [`ServeEngine::shutdown`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Requests offered to [`ServeEngine::submit`].
    pub submitted: u64,
    /// Requests answered with a fresh detection.
    pub served: u64,
    /// Requests answered by coasting on a last good detection.
    pub degraded: u64,
    /// Requests shed (queue-full or unrecoverable inference).
    pub shed: u64,
    /// Shed subset: rejected at admission.
    pub shed_queue_full: u64,
    /// Inference retry attempts across all batches.
    pub retried: u64,
    /// Batches executed across all replicas.
    pub batches: u64,
}

impl ServeCounters {
    /// Requests with no recorded outcome. Zero after a clean shutdown —
    /// the invariant the serving tests assert.
    pub fn lost(&self) -> u64 {
        self.submitted
            .saturating_sub(self.served + self.degraded + self.shed)
    }
}

/// Final report returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Lifetime totals (see [`ServeCounters::lost`]).
    pub counters: ServeCounters,
    /// Per-replica batch log: `batch_log[r][k]` is the request-id
    /// composition of replica `r`'s `k`-th batch, in execution order —
    /// the witness the determinism suite compares across runs.
    pub batch_log: Vec<Vec<Vec<u64>>>,
    /// Digest of the weights every replica served.
    pub weight_hash: u64,
}

#[derive(Default)]
struct AtomicCounters {
    submitted: AtomicU64,
    served: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    shed_queue_full: AtomicU64,
    retried: AtomicU64,
    batches: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            submitted: self.submitted.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            shed_queue_full: self.shed_queue_full.load(Ordering::SeqCst),
            retried: self.retried.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
        }
    }
}

/// State shared between the admission side and every replica.
struct Shared {
    policy: DegradePolicy,
    max_retries: u32,
    virtual_time: bool,
    batch: BatchPolicy,
    plan: Option<Arc<FaultPlan>>,
    counters: AtomicCounters,
    last_good: Mutex<HashMap<u64, Detection>>,
    clock: Instant,
    /// Pause gate: workers wait until `true`.
    gate: (Mutex<bool>, Condvar),
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.clock.elapsed().as_micros() as u64
    }

    fn wait_until_running(&self) {
        let (lock, cv) = &self.gate;
        let mut running = lock.lock().expect("gate poisoned");
        while !*running {
            running = cv.wait(running).expect("gate poisoned");
        }
    }
}

/// The running engine: submit requests, then [`shutdown`](Self::shutdown)
/// to drain and collect the report.
pub struct ServeEngine {
    txs: Vec<SyncSender<Request>>,
    workers: Vec<std::thread::JoinHandle<Vec<Vec<u64>>>>,
    shared: Arc<Shared>,
    depth_gauges: Vec<&'static telemetry::Gauge>,
    rr: AtomicUsize,
    next_id: AtomicU64,
    weight_hash: u64,
}

impl ServeEngine {
    /// Spawns the replicas and starts serving (or parks them gated when
    /// [`ServeConfig::paused`] is set).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ModelMismatch`] when the blueprint's
    /// published weights do not fit its architecture config.
    pub fn start(
        blueprint: &DetectorBlueprint,
        cfg: &ServeConfig,
    ) -> Result<Self, CheckpointError> {
        let replicas = cfg.replicas.max(1);
        let weight_hash = blueprint.weight_hash();
        let shared = Arc::new(Shared {
            policy: cfg.policy,
            max_retries: cfg.max_retries,
            virtual_time: cfg.virtual_time,
            batch: cfg.batch,
            plan: cfg.fault_plan.clone(),
            counters: AtomicCounters::default(),
            last_good: Mutex::new(HashMap::new()),
            clock: Instant::now(),
            gate: (Mutex::new(!cfg.paused), Condvar::new()),
        });
        if telemetry::metrics_enabled() {
            telemetry::record_gauge("serve.replicas", replicas as f64);
        }
        let mut txs = Vec::with_capacity(replicas);
        let mut workers = Vec::with_capacity(replicas);
        let mut depth_gauges = Vec::with_capacity(replicas);
        // Validate the blueprint on the caller's thread so a bad weight
        // set is a structured error, not a worker panic. Detectors are
        // not Send (Box<dyn Layer>), so each replica builds its own from
        // the (Send) blueprint once inside its thread.
        drop(blueprint.spawn()?);
        for idx in 0..replicas {
            let (tx, rx) = mpsc::sync_channel::<Request>(cfg.queue_capacity.max(1));
            let depth = telemetry::gauge(&format!("serve.replica{idx}.queue.depth"));
            let sh = shared.clone();
            let bp = blueprint.clone();
            workers.push(std::thread::spawn(move || {
                let det = bp.spawn().expect("blueprint validated at start");
                replica_loop(idx, det, rx, sh)
            }));
            txs.push(tx);
            depth_gauges.push(depth);
        }
        Ok(ServeEngine {
            txs,
            workers,
            shared,
            depth_gauges,
            rr: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            weight_hash,
        })
    }

    /// Releases replicas parked by [`ServeConfig::paused`]. Idempotent.
    pub fn resume(&self) {
        let (lock, cv) = &self.shared.gate;
        *lock.lock().expect("gate poisoned") = true;
        cv.notify_all();
    }

    /// Microseconds since the engine clock started — the timebase of
    /// every `arrival_us` / `done_us` stamp.
    pub fn now_us(&self) -> u64 {
        self.shared.now_us()
    }

    /// Submits a request stamped with the current engine clock.
    pub fn submit(&self, stream: u64, image: Tensor, reply: &Sender<Response>) -> Admission {
        let t = self.shared.now_us();
        self.submit_at(stream, image, t, reply)
    }

    /// Submits a request with an explicit arrival stamp (virtual-time
    /// mode: the stamp drives batch composition; the load generator and
    /// the determinism suite submit pre-computed Poisson schedules).
    ///
    /// The request's single outcome is delivered on `reply` — either
    /// immediately (admission-time shed/coast) or after its batch runs.
    pub fn submit_at(
        &self,
        stream: u64,
        image: Tensor,
        arrival_us: u64,
        reply: &Sender<Response>,
    ) -> Admission {
        let shared = &self.shared;
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        shared.counters.submitted.fetch_add(1, Ordering::SeqCst);
        if telemetry::metrics_enabled() {
            telemetry::counter("serve.requests.submitted").inc();
        }
        let mut req = Request {
            id,
            stream,
            image,
            arrival_us,
            reply: reply.clone(),
        };
        // Round-robin with spill-over: start at the cursor, try every
        // queue once. A single-submitter sequence lands deterministically.
        let n = self.txs.len();
        let start = self.rr.fetch_add(1, Ordering::SeqCst) % n;
        for k in 0..n {
            let r = (start + k) % n;
            match self.txs[r].try_send(req) {
                Ok(()) => {
                    if telemetry::metrics_enabled() {
                        self.depth_gauges[r].add(1.0);
                    }
                    return Admission::Queued { replica: r };
                }
                Err(TrySendError::Full(back)) | Err(TrySendError::Disconnected(back)) => {
                    req = back;
                }
            }
        }
        // Every queue full: shed or coast, but always answer.
        let outcome = match shared.policy {
            DegradePolicy::CoastLastGood => {
                let good = shared
                    .last_good
                    .lock()
                    .expect("last_good poisoned")
                    .get(&stream)
                    .copied();
                match good {
                    Some(d) => Outcome::Degraded(d),
                    // First-frame rule: nothing to coast on yet.
                    None => Outcome::Shed(ShedReason::QueueFull),
                }
            }
            DegradePolicy::DropFrame => Outcome::Shed(ShedReason::QueueFull),
        };
        record_outcome(shared, &outcome, true);
        let _ = req.reply.send(Response {
            id,
            stream,
            outcome,
            replica: None,
            batch: None,
            arrival_us,
            done_us: shared.now_us(),
        });
        Admission::Rejected
    }

    /// Lifetime counters so far (exact only after [`shutdown`](Self::shutdown)).
    pub fn counters(&self) -> ServeCounters {
        self.shared.counters.snapshot()
    }

    /// Closes admission, drains every queue, joins the replicas and
    /// returns the final report. Every request accepted before the call
    /// has its outcome recorded by the time this returns.
    pub fn shutdown(mut self) -> ServeReport {
        // Wake gated replicas first or the drain never starts.
        self.resume();
        self.txs.clear(); // disconnect: workers drain and exit
        let mut batch_log = Vec::with_capacity(self.workers.len());
        for w in self.workers.drain(..) {
            batch_log.push(w.join().expect("replica thread panicked"));
        }
        ServeReport {
            counters: self.shared.counters.snapshot(),
            batch_log,
            weight_hash: self.weight_hash,
        }
    }
}

/// Tallies one outcome into the shared counters and telemetry.
/// `at_admission` marks queue-full rejections for the shed breakdown.
fn record_outcome(shared: &Shared, outcome: &Outcome, at_admission: bool) {
    let metrics = telemetry::metrics_enabled();
    match outcome {
        Outcome::Served(_) => {
            shared.counters.served.fetch_add(1, Ordering::SeqCst);
            if metrics {
                telemetry::counter("serve.requests.served").inc();
            }
        }
        Outcome::Degraded(_) => {
            shared.counters.degraded.fetch_add(1, Ordering::SeqCst);
            if metrics {
                telemetry::counter("serve.requests.degraded").inc();
            }
        }
        Outcome::Shed(_) => {
            shared.counters.shed.fetch_add(1, Ordering::SeqCst);
            if at_admission {
                shared
                    .counters
                    .shed_queue_full
                    .fetch_add(1, Ordering::SeqCst);
            }
            if metrics {
                telemetry::counter("serve.requests.shed").inc();
                telemetry::counter(if at_admission {
                    "serve.shed.queue_full"
                } else {
                    "serve.shed.infer"
                })
                .inc();
            }
        }
    }
}

/// One replica: drain the queue through the deterministic batcher and
/// run a batched forward per closed batch. Returns the batch log.
fn replica_loop(
    idx: usize,
    mut det: skynet_core::detector::Detector,
    rx: Receiver<Request>,
    shared: Arc<Shared>,
) -> Vec<Vec<u64>> {
    shared.wait_until_running();
    let depth = telemetry::gauge(&format!("serve.replica{idx}.queue.depth"));
    let replica_batches = telemetry::counter(&format!("serve.replica{idx}.batches"));
    let mut batcher: Batcher<Request> = Batcher::new(shared.batch);
    let mut log: Vec<Vec<u64>> = Vec::new();
    let mut seq: u64 = 0;
    let stamp = |shared: &Shared, r: &Request| {
        if shared.virtual_time {
            r.arrival_us
        } else {
            shared.now_us()
        }
    };
    'outer: loop {
        // Pull without blocking while work is available.
        let pulled = rx.try_recv();
        match pulled {
            Ok(r) => {
                if telemetry::metrics_enabled() {
                    depth.add(-1.0);
                }
                let t = stamp(&shared, &r);
                if let Some(batch) = batcher.push(r, t) {
                    run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                    replica_batches.inc();
                }
            }
            Err(mpsc::TryRecvError::Empty) => {
                if batcher.is_empty() {
                    // Nothing pending: block until work or disconnect.
                    match rx.recv() {
                        Ok(r) => {
                            if telemetry::metrics_enabled() {
                                depth.add(-1.0);
                            }
                            let t = stamp(&shared, &r);
                            if let Some(batch) = batcher.push(r, t) {
                                run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                                replica_batches.inc();
                            }
                        }
                        Err(_) => break 'outer,
                    }
                } else if shared.virtual_time {
                    // Virtual time: queue exhaustion closes the batch —
                    // no wall clock in the composition decision.
                    if let Some(batch) = batcher.flush() {
                        run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                        replica_batches.inc();
                    }
                } else {
                    // Wall clock: wait out the remaining coalescing
                    // window, then flush.
                    let deadline = batcher
                        .window_deadline_us()
                        .expect("non-empty batcher has a window");
                    let now = shared.now_us();
                    if now >= deadline {
                        if let Some(batch) = batcher.flush() {
                            run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                            replica_batches.inc();
                        }
                    } else {
                        match rx.recv_timeout(Duration::from_micros(deadline - now)) {
                            Ok(r) => {
                                if telemetry::metrics_enabled() {
                                    depth.add(-1.0);
                                }
                                let t = stamp(&shared, &r);
                                if let Some(batch) = batcher.push(r, t) {
                                    run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                                    replica_batches.inc();
                                }
                            }
                            Err(RecvTimeoutError::Timeout) => {
                                if let Some(batch) = batcher.flush() {
                                    run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                                    replica_batches.inc();
                                }
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                if let Some(batch) = batcher.flush() {
                                    run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                                    replica_batches.inc();
                                }
                                break 'outer;
                            }
                        }
                    }
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                // Shutdown drain: everything already pulled must still
                // get its outcome.
                if let Some(batch) = batcher.flush() {
                    run_batch(idx, &mut det, batch, &shared, &mut log, &mut seq);
                    replica_batches.inc();
                }
                break 'outer;
            }
        }
    }
    log
}

/// Executes one closed batch: stacked forward with fault injection and
/// retries, then exactly one outcome per member request.
fn run_batch(
    idx: usize,
    det: &mut skynet_core::detector::Detector,
    batch: Vec<Request>,
    shared: &Shared,
    log: &mut Vec<Vec<u64>>,
    seq: &mut u64,
) {
    let batch_seq = *seq;
    *seq += 1;
    shared.counters.batches.fetch_add(1, Ordering::SeqCst);
    let metrics = telemetry::metrics_enabled();
    log.push(batch.iter().map(|r| r.id).collect());
    let size = batch.len();
    let mut meta = Vec::with_capacity(size);
    let mut tensors = Vec::with_capacity(size);
    for r in batch {
        meta.push((r.id, r.stream, r.arrival_us, r.reply));
        tensors.push(r.image);
    }
    if metrics {
        telemetry::histogram("serve.batch.size", &BATCH_BOUNDS).record(size as f64);
        let now = shared.now_us();
        for &(_, _, arrival, _) in &meta {
            telemetry::histogram("serve.queue_wait.ms", &telemetry::MS_BOUNDS)
                .record(now.saturating_sub(arrival) as f64 / 1e3);
        }
    }
    // Batched forward under the fault plan, with panic isolation and
    // bounded retries — the same discipline as the pipeline supervisor.
    let stacked = Tensor::stack(&tensors);
    let infer_started = Instant::now();
    let mut detections = None;
    if let Ok(input) = &stacked {
        for attempt in 0..=shared.max_retries {
            if attempt > 0 {
                shared.counters.retried.fetch_add(1, Ordering::SeqCst);
                if metrics {
                    telemetry::counter("serve.infer.retried").inc();
                }
            }
            let ctx = FrameCtx {
                frame: batch_seq as usize,
                attempt,
            };
            let span = telemetry::span("serve.infer");
            // A panic mid-forward leaves no partial state we reuse: the
            // detector's transient routing state is reset by the next
            // forward, and Eval mode never touches the parameters.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Some(plan) = &shared.plan {
                    plan.apply(StageId::Infer, &ctx)
                        .map_err(|e| e.to_string())?;
                }
                det.predict(input).map_err(|e| e.to_string())
            }));
            drop(span);
            if let Ok(Ok(dets)) = outcome {
                detections = Some(dets);
                break;
            }
        }
    }
    if metrics {
        telemetry::histogram("serve.infer.ms", &telemetry::MS_BOUNDS)
            .record(infer_started.elapsed().as_secs_f64() * 1e3);
        telemetry::counter("serve.batches").inc();
    }
    // Optional reply-path stall (slow response consumer).
    if let Some(plan) = &shared.plan {
        let ctx = FrameCtx {
            frame: batch_seq as usize,
            attempt: 0,
        };
        let _ = catch_unwind(AssertUnwindSafe(|| plan.apply(StageId::Post, &ctx)));
    }
    let replica_served = telemetry::counter(&format!("serve.replica{idx}.served"));
    match detections {
        Some(dets) => {
            debug_assert_eq!(dets.len(), meta.len());
            let mut good = shared.last_good.lock().expect("last_good poisoned");
            for ((id, stream, arrival_us, reply), det_out) in meta.into_iter().zip(dets) {
                good.insert(stream, det_out);
                let outcome = Outcome::Served(det_out);
                record_outcome(shared, &outcome, false);
                if metrics {
                    replica_served.inc();
                    let done = shared.now_us();
                    telemetry::histogram("serve.e2e.ms", &telemetry::MS_BOUNDS)
                        .record(done.saturating_sub(arrival_us) as f64 / 1e3);
                }
                let _ = reply.send(Response {
                    id,
                    stream,
                    outcome,
                    replica: Some(idx),
                    batch: Some((batch_seq, size)),
                    arrival_us,
                    done_us: shared.now_us(),
                });
            }
        }
        None => {
            // Retries exhausted (or an impossible stack): degrade each
            // member per the policy — first-frame rule included.
            let good = shared.last_good.lock().expect("last_good poisoned");
            for (id, stream, arrival_us, reply) in meta {
                let outcome = match shared.policy {
                    DegradePolicy::CoastLastGood => match good.get(&stream) {
                        Some(d) => Outcome::Degraded(*d),
                        None => Outcome::Shed(ShedReason::InferenceFailed),
                    },
                    DegradePolicy::DropFrame => Outcome::Shed(ShedReason::InferenceFailed),
                };
                record_outcome(shared, &outcome, false);
                let _ = reply.send(Response {
                    id,
                    stream,
                    outcome,
                    replica: Some(idx),
                    batch: Some((batch_seq, size)),
                    arrival_us,
                    done_us: shared.now_us(),
                });
            }
        }
    }
}

/// Batch-size histogram buckets (powers of two up to 64).
pub const BATCH_BOUNDS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
