//! The dynamic-batching policy as a pure state machine.
//!
//! Coalescing decisions — *which requests share a forward pass* — are
//! kept free of clocks, channels and threads so they can be specified
//! and tested exactly. A batch opens at the timestamp of its first
//! element and closes when one of three things happens:
//!
//! 1. **size**: it reaches [`BatchPolicy::max_batch`] elements;
//! 2. **deadline**: an arrival stamped past the open batch's coalescing
//!    window (`first.arrival + max_delay_us`) forces it closed — the
//!    late arrival opens the next batch;
//! 3. **flush**: the owner decides no more work is coming for now (the
//!    queue ran empty, or the engine is shutting down).
//!
//! Because every transition is a function of `(arrival order, arrival
//! timestamps, policy)`, batch composition is bit-reproducible for any
//! replayed arrival sequence — the property the serving determinism
//! suite pins. The engine's wall-clock mode feeds the same machine with
//! dequeue-time stamps and adds a real timer for rule 3; its
//! virtual-time mode feeds request arrival stamps and flushes on queue
//! exhaustion, removing the scheduler from the composition entirely.

/// Size and deadline knobs of the dynamic batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Maximum requests coalesced into one forward pass.
    pub max_batch: usize,
    /// Coalescing window in microseconds, measured from the first
    /// element's timestamp. `0` disables coalescing-by-wait: every
    /// arrival past the opener closes the batch.
    pub max_delay_us: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_delay_us: 2_000,
        }
    }
}

/// A timestamped element the batcher is coalescing.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending<T> {
    item: T,
    t_us: u64,
}

/// Deterministic dynamic-batching state machine over items of type `T`.
#[derive(Debug)]
pub struct Batcher<T> {
    policy: BatchPolicy,
    open: Vec<Pending<T>>,
}

impl<T> Batcher<T> {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        Batcher {
            policy,
            open: Vec::with_capacity(policy.max_batch.max(1)),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Whether no batch is currently open.
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// Number of elements in the open batch.
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// Timestamp at which the open batch's coalescing window expires, if
    /// a batch is open.
    pub fn window_deadline_us(&self) -> Option<u64> {
        self.open
            .first()
            .map(|p| p.t_us.saturating_add(self.policy.max_delay_us))
    }

    /// Offers one timestamped item. Returns a closed batch when the
    /// offer completes one — either the open batch reached `max_batch`
    /// with this item, or this item's timestamp falls outside the open
    /// window (the returned batch excludes it; the item opens the next
    /// batch).
    pub fn push(&mut self, item: T, t_us: u64) -> Option<Vec<T>> {
        if let Some(deadline) = self.window_deadline_us() {
            if t_us > deadline {
                let closed = self.take_open();
                self.open.push(Pending { item, t_us });
                return closed;
            }
        }
        self.open.push(Pending { item, t_us });
        if self.open.len() >= self.policy.max_batch.max(1) {
            self.take_open()
        } else {
            None
        }
    }

    /// Closes and returns the open batch, if any (rule 3: flush).
    pub fn flush(&mut self) -> Option<Vec<T>> {
        self.take_open()
    }

    /// The swap barrier: closes the open batch so that everything
    /// offered before this call is in a batch that precedes anything
    /// offered after it. Semantically identical to [`flush`](Self::flush)
    /// — the distinct name marks the call sites where the engine
    /// guarantees *no batch spans two weight generations* (canary,
    /// adopt, retire). A barrier on an empty batcher is a no-op, so
    /// barrier placement never changes the composition of already-closed
    /// batches.
    pub fn barrier(&mut self) -> Option<Vec<T>> {
        self.take_open()
    }

    fn take_open(&mut self) -> Option<Vec<T>> {
        if self.open.is_empty() {
            return None;
        }
        Some(
            std::mem::take(&mut self.open)
                .into_iter()
                .map(|p| p.item)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(max_batch: usize, delay: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch,
            max_delay_us: delay,
        }
    }

    #[test]
    fn closes_on_size() {
        let mut b = Batcher::new(policy(3, 1_000_000));
        assert_eq!(b.push(1, 0), None);
        assert_eq!(b.push(2, 1), None);
        assert_eq!(b.push(3, 2), Some(vec![1, 2, 3]));
        assert!(b.is_empty());
    }

    #[test]
    fn closes_on_deadline_and_reopens_with_late_arrival() {
        let mut b = Batcher::new(policy(8, 100));
        assert_eq!(b.push(1, 0), None);
        assert_eq!(b.push(2, 100), None); // exactly at the window edge: in
        assert_eq!(b.push(3, 101), Some(vec![1, 2]));
        assert_eq!(b.len(), 1); // 3 opened the next batch
        assert_eq!(b.flush(), Some(vec![3]));
    }

    #[test]
    fn zero_delay_means_singleton_batches_unless_simultaneous() {
        let mut b = Batcher::new(policy(8, 0));
        assert_eq!(b.push(1, 5), None);
        assert_eq!(b.push(2, 5), None); // same stamp: same batch
        assert_eq!(b.push(3, 6), Some(vec![1, 2]));
    }

    #[test]
    fn flush_on_empty_is_none() {
        let mut b: Batcher<u32> = Batcher::new(BatchPolicy::default());
        assert_eq!(b.flush(), None);
    }

    #[test]
    fn composition_is_a_pure_function_of_the_arrival_sequence() {
        let arrivals: Vec<(u64, u64)> = (0..200).map(|i| (i, (i * 37) % 1_000 + i * 50)).collect();
        let run = |arrivals: &[(u64, u64)]| {
            let mut b = Batcher::new(policy(4, 200));
            let mut batches = Vec::new();
            for &(id, t) in arrivals {
                if let Some(done) = b.push(id, t) {
                    batches.push(done);
                }
            }
            if let Some(done) = b.flush() {
                batches.push(done);
            }
            batches
        };
        assert_eq!(run(&arrivals), run(&arrivals));
        let total: usize = run(&arrivals).iter().map(Vec::len).sum();
        assert_eq!(total, arrivals.len(), "no element lost or duplicated");
    }

    #[test]
    fn max_batch_one_never_coalesces() {
        let mut b = Batcher::new(policy(1, 1_000));
        assert_eq!(b.push('a', 0), Some(vec!['a']));
        assert_eq!(b.push('b', 1), Some(vec!['b']));
        assert!(b.is_empty());
    }
}
