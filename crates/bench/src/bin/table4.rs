//! Table 4 — the SkyNet ablation: models A/B/C × ReLU/ReLU6, identical
//! training budget, validation IoU (§6.1).
//!
//! Paper shape: the bypass helps (B > A), the wider Bundle-6 helps
//! (C > B), and ReLU6 edges out ReLU within each model.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::Act;
use skynet_tensor::rng::SkyRng;

fn main() {
    let budget = Budget::from_env();
    let (train, val) = data::detection_split(budget);

    let paper: [((Variant, Act), (f64, f64)); 6] = [
        ((Variant::A, Act::Relu), (1.27, 0.653)),
        ((Variant::A, Act::Relu6), (1.27, 0.673)),
        ((Variant::B, Act::Relu), (1.57, 0.685)),
        ((Variant::B, Act::Relu6), (1.57, 0.703)),
        ((Variant::C, Act::Relu), (1.82, 0.713)),
        ((Variant::C, Act::Relu6), (1.82, 0.741)),
    ];

    table::header(
        "Table 4: SkyNet ablation (validation IoU)",
        &[
            ("model", 14),
            ("size MB(paper)", 14),
            ("IoU(paper)", 10),
            ("size MB(ours)", 13),
            ("IoU(ours)", 10),
        ],
    );
    let seeds: &[u64] = match budget {
        skynet_bench::Budget::Fast => &[40],
        // Two seeds per arm: single-run variance on the small synthetic
        // validation set is ±0.05 IoU, enough to scramble a six-way
        // ablation; averaging restores the architecture signal.
        skynet_bench::Budget::Full => &[40, 41],
    };
    let mut ours = Vec::new();
    for (i, ((variant, act), (paper_mb, paper_iou))) in paper.iter().enumerate() {
        let mut total = 0.0f32;
        for &seed in seeds {
            let mut rng = SkyRng::new(seed);
            let cfg = SkyNetConfig::new(*variant, *act).with_width_divisor(TRAIN_DIV);
            let out = train_detector(
                Box::new(SkyNet::new(cfg, &mut rng)),
                budget,
                &train,
                &val,
                false,
                seed * 100 + i as u64,
            )
            .expect("training succeeds");
            total += out.iou;
        }
        let iou = total / seeds.len() as f32;
        let paper_scale_params = SkyNetConfig::new(*variant, *act)
            .descriptor(160, 320)
            .total_params();
        table::row(&[
            (format!("SkyNet {variant} - {act}"), 14),
            (table::f(*paper_mb, 2), 14),
            (table::f(*paper_iou, 3), 10),
            (table::f(paper_scale_params as f64 * 4.0 / 1048576.0, 2), 13),
            (table::f(iou as f64, 3), 10),
        ]);
        ours.push(((*variant, *act), iou));
    }
    println!();
    let get = |v: Variant, a: Act| {
        ours.iter()
            .find(|((vv, aa), _)| *vv == v && *aa == a)
            .expect("arm present")
            .1
    };
    let c6 = get(Variant::C, Act::Relu6);
    let a6 = get(Variant::A, Act::Relu6);
    let b6 = get(Variant::B, Act::Relu6);
    println!(
        "shape check (ReLU6 column): A {:.3}  B {:.3}  C {:.3}  (paper: bypass helps, C best)",
        a6, b6, c6
    );
}
