//! Table 7 — post-training quantization schemes during the FPGA
//! implementation: float32 baseline and the four FM/W pairings, with the
//! validation IoU of each.
//!
//! Paper shape: accuracy degrades monotonically-ish from scheme 1 to 4
//! (drops of 1.4 % → 6.1 %), and the FM width matters more than the
//! weight width; scheme 1 (FM9/W11) is the deployment pick.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::evaluate_mode;
use skynet_hw::quant::{apply_scheme, QuantScheme};
use skynet_nn::Act;
use skynet_tensor::rng::SkyRng;

fn main() {
    let budget = Budget::from_env();
    let (train, val) = data::detection_split(budget);

    // Train the float model once.
    let mut rng = SkyRng::new(7);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
    let trained = train_detector(
        Box::new(SkyNet::new(cfg, &mut rng)),
        budget,
        &train,
        &val,
        false,
        7,
    )
    .expect("training succeeds");
    let float_iou = trained.iou as f64;
    let mut detector = trained.detector;

    let paper = [
        (QuantScheme::float32(), 0.741),
        (QuantScheme::new(11, 9), 0.727),
        (QuantScheme::new(10, 9), 0.714),
        (QuantScheme::new(11, 8), 0.690),
        (QuantScheme::new(10, 8), 0.680),
    ];
    table::header(
        "Table 7: quantization schemes (validation IoU)",
        &[
            ("scheme", 20),
            ("IoU(paper)", 10),
            ("IoU(ours)", 10),
            ("drop(ours)", 10),
        ],
    );
    // Keep pristine float weights: re-train is expensive, so snapshot the
    // parameters and restore between schemes.
    let mut snapshot: Vec<Vec<f32>> = Vec::new();
    detector
        .backbone_mut()
        .visit_params(&mut |p| snapshot.push(p.value.as_slice().to_vec()));

    for (scheme, paper_iou) in paper {
        // Restore float weights.
        let mut i = 0;
        detector.backbone_mut().visit_params(&mut |p| {
            p.value.as_mut_slice().copy_from_slice(&snapshot[i]);
            i += 1;
        });
        let mode = apply_scheme(detector.backbone_mut(), scheme);
        let iou = evaluate_mode(&mut detector, &val, 16, mode).expect("eval succeeds") as f64;
        table::row(&[
            (scheme.to_string(), 20),
            (table::f(paper_iou, 3), 10),
            (table::f(iou, 3), 10),
            (table::f(float_iou - iou, 3), 10),
        ]);
    }
    println!();
    println!("(paper drops: 0.014 / 0.027 / 0.051 / 0.061 — FM width dominates)");
}
