//! Table 1 — DAC-SDC winning entries and their optimization toolkits,
//! cross-referenced against what this reproduction implements.
//!
//! Informational: the paper uses this table to motivate the bottom-up
//! flow (every winner follows the top-down compress-a-reference-DNN
//! path). We print the recorded entries and map each optimization to the
//! module that implements it here.

use skynet_bench::table;

fn main() {
    table::header(
        "Table 1: DAC-SDC winning entries (top-down flows)",
        &[
            ("track", 6),
            ("rank", 8),
            ("team", 14),
            ("reference DNN", 26),
            ("optimizations", 18),
        ],
    );
    let rows = [
        (
            "GPU",
            "'19 2nd",
            "Thinker",
            "ShuffleNet + RetinaNet",
            "1 2 3 9",
        ),
        ("GPU", "'19 3rd", "DeepZS", "Tiny YOLO", "9"),
        ("GPU", "'18 1st", "ICT-CAS", "Tiny YOLO", "1 2 3 4"),
        ("GPU", "'18 2nd", "DeepZ", "Tiny YOLO", "9"),
        ("GPU", "'18 3rd", "SDU-Legend", "YOLOv2", "1 2 3 9"),
        (
            "FPGA",
            "'19 2nd",
            "XJTU Tripler",
            "ShuffleNetV2 + YOLO",
            "2 3 5 6 8",
        ),
        (
            "FPGA",
            "'19 3rd",
            "SystemsETHZ",
            "SqueezeNet + YOLO",
            "1 2 3 7",
        ),
        ("FPGA", "'18 1st", "TGIIF", "SSD", "1 2 3 5 6"),
        (
            "FPGA",
            "'18 2nd",
            "SystemsETHZ",
            "SqueezeNet + YOLO",
            "1 2 3 7",
        ),
        (
            "FPGA",
            "'18 3rd",
            "iSmart2",
            "MobileNet + YOLO",
            "1 2 3 5 7",
        ),
    ];
    for (track, rank, team, dnn, opts) in rows {
        table::row(&[
            (track.into(), 6),
            (rank.into(), 8),
            (team.into(), 14),
            (dnn.into(), 26),
            (opts.into(), 18),
        ]);
    }
    println!();
    println!("optimization key → where this reproduction implements it:");
    for (id, name, module) in [
        (
            "1",
            "input resizing",
            "skynet_tensor::ops::resize_bilinear (+ Fig. 2(b) sweep)",
        ),
        (
            "2",
            "network pruning",
            "subsumed by width scaling (SkyNetConfig::with_width_divisor)",
        ),
        (
            "3",
            "data quantization",
            "skynet_hw::quant + Mode::QuantEval (Tables 7, Fig. 2(a))",
        ),
        (
            "4",
            "TensorRT",
            "modeled by gpu::GpuDevice efficiency factors",
        ),
        (
            "5",
            "CPU-FPGA task partition",
            "skynet_hw::pipeline (Fig. 10)",
        ),
        (
            "6",
            "double-pumped DSP",
            "skynet_hw::fpga::dsp_per_mac packing rule (Fig. 2(c))",
        ),
        (
            "7",
            "fine-grained pipeline",
            "per-layer pipeline fill terms in fpga::estimate",
        ),
        ("8", "clock gating", "energy::PowerModel idle/dynamic split"),
        (
            "9",
            "multithreading",
            "skynet_hw::pipeline::run_pipelined (crossbeam threads)",
        ),
    ] {
        println!("  {id} {name:24} -> {module}");
    }
}
