//! Table 6 — DAC-SDC'19/'18 FPGA-track final results.
//!
//! As `table5`, but for the FPGA track: competitors re-scored with our
//! Eqs. 3–5 (`x = 2`), and our entry built from the trained + quantized
//! detector (Table 7 scheme 1), the Ultra96 shared-IP model with 4-input
//! tiling, and the calibrated power model.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::evaluate_mode;
use skynet_hw::energy::PowerModel;
use skynet_hw::fpga::{estimate, FpgaDevice};
use skynet_hw::quant::{apply_scheme, QuantScheme};
use skynet_hw::score::{score_field, table6_entries, Entry, Track};
use skynet_nn::Act;
use skynet_tensor::rng::SkyRng;

fn main() {
    let budget = Budget::from_env();

    // --- Train, then quantize with Table 7 scheme 1 (FM9/W11). ---
    let (train, val) = data::detection_split(budget);
    let mut rng = SkyRng::new(6);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
    let mut trained = train_detector(
        Box::new(SkyNet::new(cfg, &mut rng)),
        budget,
        &train,
        &val,
        false,
        6,
    )
    .expect("training succeeds");
    let scheme = QuantScheme::new(11, 9);
    let mode = apply_scheme(trained.detector.backbone_mut(), scheme);
    let float_iou = trained.iou;
    let quant_iou = evaluate_mode(&mut trained.detector, &val, 16, mode).expect("eval succeeds");

    // --- Ultra96 estimate with tiling batch 4. ---
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let est = estimate(&desc, &FpgaDevice::ultra96(), scheme, 4);
    let power = PowerModel::ultra96().power_w(0.95);

    let mut entries = table6_entries();
    entries.push(Entry::new(
        "SkyNet (ours, synthetic)",
        quant_iou as f64,
        est.fps,
        power,
    ));
    let scored = score_field(&entries, Track::Fpga);

    table::header(
        "Table 6: FPGA track (paper totals recomputed with our Eqs. 3-5)",
        &[
            ("team", 26),
            ("IoU", 7),
            ("FPS", 8),
            ("Power W", 8),
            ("Total", 7),
        ],
    );
    for s in &scored {
        table::row(&[
            (s.entry.name.clone(), 26),
            (table::f(s.entry.iou, 3), 7),
            (table::f(s.entry.fps, 2), 8),
            (table::f(s.entry.power_w, 2), 8),
            (table::f(s.total_score, 3), 7),
        ]);
    }
    println!();
    println!("paper-reported totals: SkyNet 1.526, XJTU Tripler 1.394, SystemsETHZ 1.318,");
    println!("                       TGIIF 1.267, SystemsETHZ'18 1.179, iSmart2 1.164");
    println!(
        "our entry: float IoU {:.3} -> FM9/W11 quantized IoU {:.3}; Ultra96 model \
         {:.1} ms/frame ({} DSP, {} BRAM18, feasible: {})",
        float_iou, quant_iou, est.latency_ms, est.dsp, est.bram18, est.feasible
    );
}
