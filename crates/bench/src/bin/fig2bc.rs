//! Fig. 2(b) and 2(c) — BRAM usage vs input resize factor × FM precision,
//! and DSP utilization vs weight × FM precision.
//!
//! Both panels come straight from the FPGA resource model. The Fig. 2(b)
//! accelerator double-buffers its **largest whole feature map** on chip
//! (the configuration the paper sweeps — this is why memory scales with
//! the *area* of the input and halves below a ~0.9 resize factor); DSP
//! counts use the packing rule with 128 parallel multipliers.

use skynet_bench::table;
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_hw::fpga::{bram_usage, dsp_usage};
use skynet_hw::quant::QuantScheme;
use skynet_nn::Act;

fn main() {
    // --- Fig. 2(b): BRAM vs resize factor for FM12..FM16. ---
    let factors = [1.00f64, 0.95, 0.90, 0.85, 0.80, 0.78, 0.75, 0.70];
    let fm_bits = [12u8, 13, 14, 15, 16];
    table::header(
        "Fig. 2(b): BRAM-18Kb blocks vs resize factor",
        &[
            ("resize", 7),
            ("FM12", 6),
            ("FM13", 6),
            ("FM14", 6),
            ("FM15", 6),
            ("FM16", 6),
        ],
    );
    let base_cfg = SkyNetConfig::new(Variant::C, Act::Relu6);
    for &f in &factors {
        let h = (160.0 * f) as usize;
        let w = (320.0 * f) as usize;
        let desc = base_cfg.descriptor(h.max(8), w.max(8));
        // Whole-map double buffering (the figure's design point).
        let tile = desc.peak_activation();
        let mut cells = vec![(format!("{f:.2}"), 7)];
        for &bits in &fm_bits {
            cells.push((format!("{}", bram_usage(tile, bits)), 6));
        }
        table::row(&cells);
    }
    println!("(paper: reducing the factor below ~0.9 roughly halves FM memory)");

    // --- Fig. 2(c): DSPs vs weight bits under FM12..FM16, 128 mults. ---
    let w_bits = [16u8, 15, 14, 13, 12, 11, 10];
    table::header(
        "Fig. 2(c): DSP slices for 128 multipliers",
        &[
            ("weights", 8),
            ("FM12", 6),
            ("FM13", 6),
            ("FM14", 6),
            ("FM15", 6),
            ("FM16", 6),
        ],
    );
    for &wb in &w_bits {
        let mut cells = vec![(format!("W{wb}"), 8)];
        for &fb in &fm_bits {
            cells.push((format!("{}", dsp_usage(128, QuantScheme::new(wb, fb))), 6));
        }
        table::row(&cells);
    }
    println!("(paper: under FM16 the count steps 128 → 64 between W15 and W14)");
}
