//! Serial-vs-parallel benchmark for the deterministic execution engine.
//!
//! The pool width (`SKYNET_THREADS`) is read once per process, so this
//! binary re-executes itself as a child process per thread count, times
//! data generation, one training epoch and batched evaluation in each
//! child, and then checks the engine's core guarantee: the FNV-1a hash
//! of the trained weight bits must be **identical** for every thread
//! count. The report is archived under `bench_results/`.
//!
//! Usage: `cargo run --release -p skynet-bench --bin parallel_speedup`
//! (optionally `SKYNET_SPEEDUP_THREADS=1,2,4,8` to pick the sweep).

use skynet_bench::data::detection_split;
use skynet_bench::Budget;
use skynet_core::checkpoint;
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{evaluate, TrainConfig, Trainer};
use skynet_nn::{Act, LrSchedule, Sgd};
use skynet_tensor::{parallel, rng::SkyRng};
use std::fmt::Write as _;
use std::process::Command;
use std::time::Instant;

const CHILD_FLAG: &str = "SKYNET_SPEEDUP_CHILD";

/// One child-process measurement.
#[derive(Debug, Clone)]
struct Measurement {
    threads: usize,
    gen_secs: f64,
    epoch_secs: f64,
    eval_ips: f64,
    weight_hash: u64,
}

fn main() {
    if std::env::var(CHILD_FLAG).is_ok() {
        child();
    } else {
        parent();
    }
}

/// Trains and evaluates under the current `SKYNET_THREADS` setting and
/// prints machine-readable `key=value` lines for the parent.
fn child() {
    let t0 = Instant::now();
    let (train, val) = detection_split(Budget::Fast);
    let gen_secs = t0.elapsed().as_secs_f64();

    let mut rng = SkyRng::new(42);
    let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(8);
    let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
    let mut opt = Sgd::new(LrSchedule::Constant(5e-3), 0.9, 1e-4);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 8,
        scales: Vec::new(),
        seed: 7,
    });

    let t1 = Instant::now();
    trainer
        .train(&mut det, &train, &mut opt)
        .expect("training epoch");
    let epoch_secs = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let iou = evaluate(&mut det, &val).expect("evaluation");
    let eval_secs = t2.elapsed().as_secs_f64();

    println!("threads={}", parallel::num_threads());
    println!("gen_secs={gen_secs:.4}");
    println!("epoch_secs={epoch_secs:.4}");
    println!("eval_ips={:.2}", val.len() as f64 / eval_secs.max(1e-9));
    println!("iou={iou:.6}");
    println!(
        "weight_hash={:#018x}",
        checkpoint::weight_hash(det.backbone_mut())
    );
}

/// Runs the sweep, verifies bit-identical weights, prints the table and
/// archives the report.
fn parent() {
    let sweep: Vec<usize> = std::env::var("SKYNET_SPEEDUP_THREADS")
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|_| vec![1, 2, 4]);
    let exe = std::env::current_exe().expect("own executable path");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut runs = Vec::new();
    for &t in &sweep {
        let out = Command::new(&exe)
            .env(CHILD_FLAG, "1")
            .env("SKYNET_THREADS", t.to_string())
            .env("SKYNET_BENCH_BUDGET", "fast")
            .output()
            .expect("spawn child benchmark");
        assert!(
            out.status.success(),
            "child (SKYNET_THREADS={t}) failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        runs.push(parse_child(&String::from_utf8_lossy(&out.stdout)));
    }

    let base = &runs[0];
    for r in &runs[1..] {
        assert_eq!(
            r.weight_hash, base.weight_hash,
            "weights diverged between {} and {} threads",
            base.threads, r.threads
        );
    }

    let mut report = String::new();
    let _ = writeln!(report, "# Parallel engine: serial vs parallel\n");
    let _ = writeln!(
        report,
        "Host cores: {host_cores}. One training epoch + batched eval of the\n\
         width/8 SkyNet-A detector on the fast DAC-SDC split (48 train /\n\
         16 val frames at 48×96), one child process per `SKYNET_THREADS`."
    );
    let _ = writeln!(
        report,
        "\n| threads | datagen (s) | epoch (s) | eval (img/s) | epoch speedup | weight hash |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|");
    for r in &runs {
        let _ = writeln!(
            report,
            "| {} | {:.3} | {:.3} | {:.1} | {:.2}× | {:#018x} |",
            r.threads,
            r.gen_secs,
            r.epoch_secs,
            r.eval_ips,
            base.epoch_secs / r.epoch_secs.max(1e-9),
            r.weight_hash,
        );
    }
    let _ = writeln!(
        report,
        "\nAll weight hashes are identical: training is bit-deterministic\n\
         across thread counts. Speedups are relative to the 1-thread run\n\
         on this host; with more threads than cores the extra workers\n\
         time-share, so speedup saturates at the core count."
    );

    print!("{report}");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/parallel_speedup.md", &report).expect("write report");
    println!("\nreport written to bench_results/parallel_speedup.md");
}

fn parse_child(stdout: &str) -> Measurement {
    let field = |key: &str| -> String {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("child output missing `{key}=`:\n{stdout}"))
            .to_string()
    };
    let hash = field("weight_hash");
    Measurement {
        threads: field("threads").parse().expect("threads"),
        gen_secs: field("gen_secs").parse().expect("gen_secs"),
        epoch_secs: field("epoch_secs").parse().expect("epoch_secs"),
        eval_ips: field("eval_ips").parse().expect("eval_ips"),
        weight_hash: u64::from_str_radix(hash.trim_start_matches("0x"), 16).expect("weight_hash"),
    }
}
