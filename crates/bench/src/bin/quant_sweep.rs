//! Table 7 by **execution** — the analytic fake-quant schemes next to
//! the real INT8 engine.
//!
//! `table7` reproduces the paper's accuracy/precision trade-off
//! analytically: weights snap to an n-bit grid but every multiply stays
//! f32. This sweep adds the executable point: the same trained model is
//! calibrated post-training (`skynet_core::quant::Calibrator`), folded
//! into `i8` weights, and evaluated through the `i8×i8→i32` kernels end
//! to end. The INT8 IoU must land within a documented bound of the
//! closest analytic scheme (FM8/W8), and the integer forward pass must
//! be CRC-identical on every available SIMD backend — the determinism
//! contract, witnessed by the bench itself.
//!
//! The report is archived under `bench_results/quant_sweep.md`.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::detector::Detector;
use skynet_core::quant::{CalibMethod, Calibrator, QuantizedSkyNet};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::evaluate_mode;
use skynet_core::Sample;
use skynet_hw::quant::{apply_scheme, QuantScheme};
use skynet_nn::Act;
use skynet_tensor::crc32::crc32;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd;
use skynet_tensor::Tensor;
use std::fmt::Write as _;
use std::sync::Arc;

/// Maximum allowed gap between the executable INT8 IoU and the closest
/// analytic scheme (FM8/W8). Both paths quantize the same trained
/// weights to 8 bits; they differ only in where rounding happens
/// (per-channel i8 grid + integer accumulation vs per-tensor fake-quant
/// + f32 arithmetic), so the accuracies must agree closely.
const INT8_VS_FAKE8_BOUND: f64 = 0.15;

fn stack_images(samples: &[&Sample]) -> Tensor {
    let imgs: Vec<Tensor> = samples.iter().map(|s| s.image.clone()).collect();
    Tensor::stack(&imgs).expect("stack images")
}

/// Mean validation IoU through the integer path — mirrors
/// `evaluate_mode`'s batching and sample-ordered reduction, but routes
/// through [`Detector::predict_int8`] (the `Mode`-based evaluator never
/// dispatches to the engine).
fn evaluate_int8(detector: &mut Detector, samples: &[Sample]) -> f32 {
    let mut total = 0.0f32;
    for chunk in samples.chunks(16) {
        let refs: Vec<&Sample> = chunk.iter().collect();
        let batch = stack_images(&refs);
        let dets = detector.predict_int8(&batch).expect("int8 predict");
        for (det, sample) in dets.iter().zip(chunk) {
            total += det.bbox.clamp_to_frame().iou(&sample.bbox);
        }
    }
    total / samples.len() as f32
}

fn tensor_crc(t: &Tensor) -> u32 {
    let bytes: Vec<u8> = t
        .as_slice()
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    crc32(&bytes)
}

fn main() {
    let budget = Budget::from_env();
    let (train, val) = data::detection_split(budget);

    // Train the float model once (same protocol and seed as `table7`).
    let mut rng = SkyRng::new(7);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
    let trained = train_detector(
        Box::new(SkyNet::new(cfg, &mut rng)),
        budget,
        &train,
        &val,
        false,
        7,
    )
    .expect("training succeeds");
    let float_iou = trained.iou as f64;
    let mut detector = trained.detector;

    // Calibrate on training images and build the INT8 engine *before*
    // any fake-quant pass: `apply_scheme` mutates weights in place, and
    // the engine must fold the pristine float parameters.
    let calib_images = budget.pick(32, 128).min(train.len());
    let (plan, engine) = {
        let sky = detector
            .backbone_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<SkyNet>())
            .expect("backbone is a SkyNet");
        let mut cal = Calibrator::new(Variant::C, CalibMethod::MaxAbs);
        let refs: Vec<&Sample> = train.iter().take(calib_images).collect();
        for chunk in refs.chunks(8) {
            cal.observe(sky, &stack_images(chunk)).expect("calibrate");
        }
        let plan = cal.finish().expect("calibration plan");
        let engine = QuantizedSkyNet::build(sky, &plan).expect("build INT8 engine");
        (plan, engine)
    };
    let engine = Arc::new(engine);
    detector.attach_int8(Arc::clone(&engine));

    // Cross-backend determinism witness: the integer forward pass on a
    // fixed probe batch must be CRC-identical on every backend.
    let probe_refs: Vec<&Sample> = val.iter().take(4.min(val.len())).collect();
    let probe = stack_images(&probe_refs);
    let prev = simd::active();
    let mut crcs: Vec<(&'static str, u32)> = Vec::new();
    for be in simd::available_backends() {
        simd::force(be);
        let y = engine.forward(&probe).expect("int8 forward");
        crcs.push((be.name(), tensor_crc(&y)));
    }
    simd::force(prev);
    let oracle_crc = crcs[0].1;
    assert!(
        crcs.iter().all(|&(_, c)| c == oracle_crc),
        "INT8 forward CRCs diverge across backends: {crcs:?}"
    );

    let int8_iou = evaluate_int8(&mut detector, &val) as f64;

    // Analytic rows: Table 7's four schemes plus FM8/W8, the closest
    // analytic point to the executable engine. Snapshot/restore the
    // float weights between schemes (fake-quant mutates in place).
    let mut snapshot: Vec<Vec<f32>> = Vec::new();
    detector
        .backbone_mut()
        .visit_params(&mut |p| snapshot.push(p.value.as_slice().to_vec()));
    let schemes: [(QuantScheme, Option<f64>); 6] = [
        (QuantScheme::float32(), Some(0.741)),
        (QuantScheme::new(11, 9), Some(0.727)),
        (QuantScheme::new(10, 9), Some(0.714)),
        (QuantScheme::new(11, 8), Some(0.690)),
        (QuantScheme::new(10, 8), Some(0.680)),
        (QuantScheme::new(8, 8), None),
    ];
    let mut rows: Vec<(String, String, Option<f64>, f64)> = Vec::new();
    let mut fake8_iou = None;
    for (scheme, paper_iou) in schemes {
        let mut i = 0;
        detector.backbone_mut().visit_params(&mut |p| {
            p.value.as_mut_slice().copy_from_slice(&snapshot[i]);
            i += 1;
        });
        let mode = apply_scheme(detector.backbone_mut(), scheme);
        let iou = evaluate_mode(&mut detector, &val, 16, mode).expect("eval succeeds") as f64;
        if scheme == QuantScheme::new(8, 8) {
            fake8_iou = Some(iou);
        }
        rows.push((scheme.to_string(), "analytic".into(), paper_iou, iou));
    }
    rows.push((
        "INT8 engine (W8/FM8)".into(),
        "executable".into(),
        None,
        int8_iou,
    ));

    let fake8_iou = fake8_iou.expect("FM8/W8 row evaluated");
    let gap = (int8_iou - fake8_iou).abs();
    assert!(
        gap <= INT8_VS_FAKE8_BOUND,
        "executable INT8 IoU {int8_iou:.3} deviates from analytic FM8/W8 \
         {fake8_iou:.3} by {gap:.3} (> {INT8_VS_FAKE8_BOUND})"
    );

    table::header(
        "Quantization sweep: analytic schemes vs executable INT8 (validation IoU)",
        &[
            ("scheme", 22),
            ("kind", 10),
            ("IoU(paper)", 10),
            ("IoU(ours)", 10),
            ("drop(ours)", 10),
        ],
    );
    for (name, kind, paper_iou, iou) in &rows {
        table::row(&[
            (name.clone(), 22),
            (kind.clone(), 10),
            (table::paper(*paper_iou, 3), 10),
            (table::f(*iou, 3), 10),
            (table::f(float_iou - iou, 3), 10),
        ]);
    }
    println!();
    println!(
        "INT8 vs analytic FM8/W8 gap: {gap:.3} (bound {INT8_VS_FAKE8_BOUND}); \
         calibration: {} samples, input scale {:.5}",
        plan.samples, plan.input_scale
    );

    // Archive the report.
    let mut report = String::new();
    let _ = writeln!(report, "# Quantization sweep (Table 7 by execution)\n");
    let _ = writeln!(
        report,
        "Variant C, width ÷{TRAIN_DIV}, budget {budget:?}. Float validation IoU {float_iou:.3}. \
         Analytic rows fake-quantize weights and feature maps but compute in f32; the \
         executable row runs the calibrated `i8×i8→i32` engine end to end \
         (per-channel weight scales, per-tensor activation scales from {} calibration \
         samples, MaxAbs).\n",
        plan.samples
    );
    let _ = writeln!(
        report,
        "| scheme | kind | IoU (paper) | IoU (ours) | drop |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|");
    for (name, kind, paper_iou, iou) in &rows {
        let _ = writeln!(
            report,
            "| {name} | {kind} | {} | {iou:.3} | {:.3} |",
            table::paper(*paper_iou, 3),
            float_iou - iou
        );
    }
    let _ = writeln!(
        report,
        "\nExecutable INT8 vs analytic FM8/W8 gap: **{gap:.3}** (asserted ≤ {INT8_VS_FAKE8_BOUND}).\n"
    );
    let _ = writeln!(report, "## Cross-backend determinism\n");
    let _ = writeln!(
        report,
        "CRC-32 of the INT8 forward output on a fixed {}-image probe batch, per backend \
         (asserted identical):\n",
        probe_refs.len()
    );
    let _ = writeln!(report, "| backend | crc32 |");
    let _ = writeln!(report, "|---|---|");
    for (name, crc) in &crcs {
        let _ = writeln!(report, "| {name} | 0x{crc:08x} |");
    }
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/quant_sweep.md", &report).expect("write report");
    println!("report written to bench_results/quant_sweep.md");
}
