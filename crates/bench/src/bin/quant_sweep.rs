//! Table 7 by **execution** — the analytic fake-quant schemes next to
//! the real INT8 engine.
//!
//! `table7` reproduces the paper's accuracy/precision trade-off
//! analytically: weights snap to an n-bit grid but every multiply stays
//! f32. This sweep adds the executable point: the same trained model is
//! calibrated post-training (`skynet_core::quant::Calibrator`), folded
//! into `i8` weights, and evaluated through the `i8×i8→i32` kernels end
//! to end. The INT8 IoU must land within a documented bound of the
//! closest analytic scheme (FM8/W8), and the integer forward pass must
//! be CRC-identical on every available SIMD backend — the determinism
//! contract, witnessed by the bench itself.
//!
//! PR 10 adds the **fused** execution row: the same engine with
//! `SKYNET_FUSION` forced on routes every bundle through the
//! cache-resident fused INT8 kernel
//! (`skynet_tensor::fused::qfused_bundle_forward`). Its end-to-end IoU
//! must be **bit-identical** to the unfused walk, with the
//! `quant.fused.*` counters proving the fused path actually executed
//! (and `quant.fused.fallback` proving the unfused control actually
//! didn't). A per-bundle saturation table (`quant.bundle<N>.*.saturated`)
//! rides along from the same telemetry snapshot.
//!
//! The report is archived under `bench_results/quant_sweep.md`.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::detector::Detector;
use skynet_core::quant::{CalibMethod, Calibrator, QuantizedSkyNet};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::evaluate_mode;
use skynet_core::Sample;
use skynet_hw::quant::{apply_scheme, QuantScheme};
use skynet_nn::Act;
use skynet_tensor::crc32::crc32;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::Tensor;
use skynet_tensor::{fusion, simd, telemetry};
use std::fmt::Write as _;
use std::sync::Arc;

/// Maximum allowed gap between the executable INT8 IoU and the closest
/// analytic scheme (FM8/W8). Both paths quantize the same trained
/// weights to 8 bits; they differ only in where rounding happens
/// (per-channel i8 grid + integer accumulation vs per-tensor fake-quant
/// + f32 arithmetic), so the accuracies must agree closely.
const INT8_VS_FAKE8_BOUND: f64 = 0.15;

fn stack_images(samples: &[&Sample]) -> Tensor {
    let imgs: Vec<Tensor> = samples.iter().map(|s| s.image.clone()).collect();
    Tensor::stack(&imgs).expect("stack images")
}

/// Mean validation IoU through the integer path — mirrors
/// `evaluate_mode`'s batching and sample-ordered reduction, but routes
/// through [`Detector::predict_int8`] (the `Mode`-based evaluator never
/// dispatches to the engine).
fn evaluate_int8(detector: &mut Detector, samples: &[Sample]) -> f32 {
    let mut total = 0.0f32;
    for chunk in samples.chunks(16) {
        let refs: Vec<&Sample> = chunk.iter().collect();
        let batch = stack_images(&refs);
        let dets = detector.predict_int8(&batch).expect("int8 predict");
        for (det, sample) in dets.iter().zip(chunk) {
            total += det.bbox.clamp_to_frame().iou(&sample.bbox);
        }
    }
    total / samples.len() as f32
}

fn tensor_crc(t: &Tensor) -> u32 {
    let bytes: Vec<u8> = t
        .as_slice()
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    crc32(&bytes)
}

fn main() {
    let budget = Budget::from_env();
    let (train, val) = data::detection_split(budget);

    // Train the float model once (same protocol and seed as `table7`).
    let mut rng = SkyRng::new(7);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
    let trained = train_detector(
        Box::new(SkyNet::new(cfg, &mut rng)),
        budget,
        &train,
        &val,
        false,
        7,
    )
    .expect("training succeeds");
    let float_iou = trained.iou as f64;
    let mut detector = trained.detector;

    // Calibrate on training images and build the INT8 engine *before*
    // any fake-quant pass: `apply_scheme` mutates weights in place, and
    // the engine must fold the pristine float parameters.
    let calib_images = budget.pick(32, 128).min(train.len());
    let (plan, engine) = {
        let sky = detector
            .backbone_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<SkyNet>())
            .expect("backbone is a SkyNet");
        let mut cal = Calibrator::new(Variant::C, CalibMethod::MaxAbs);
        let refs: Vec<&Sample> = train.iter().take(calib_images).collect();
        for chunk in refs.chunks(8) {
            cal.observe(sky, &stack_images(chunk)).expect("calibrate");
        }
        let plan = cal.finish().expect("calibration plan");
        let engine = QuantizedSkyNet::build(sky, &plan).expect("build INT8 engine");
        (plan, engine)
    };
    let engine = Arc::new(engine);
    detector.attach_int8(Arc::clone(&engine));

    // Cross-backend determinism witness: the integer forward pass on a
    // fixed probe batch must be CRC-identical on every backend.
    let probe_refs: Vec<&Sample> = val.iter().take(4.min(val.len())).collect();
    let probe = stack_images(&probe_refs);
    let prev = simd::active();
    let mut crcs: Vec<(&'static str, u32)> = Vec::new();
    for be in simd::available_backends() {
        simd::force(be);
        let y = engine.forward(&probe).expect("int8 forward");
        crcs.push((be.name(), tensor_crc(&y)));
    }
    simd::force(prev);
    let oracle_crc = crcs[0].1;
    assert!(
        crcs.iter().all(|&(_, c)| c == oracle_crc),
        "INT8 forward CRCs diverge across backends: {crcs:?}"
    );

    // Fused vs unfused engine on the probe batch: CRC-identical
    // outputs, with counters proving each mode actually took its path
    // (bundles_executed for the fused run, fallback for the unfused
    // control — a vacuous pass can't show both).
    telemetry::Builder::new().metrics(true).trace(false).apply();
    let fused_probe = |on: bool| {
        fusion::force(on);
        telemetry::reset_metrics();
        let y = engine.forward(&probe).expect("int8 forward");
        (tensor_crc(&y), telemetry::snapshot())
    };
    let (crc_fused, snap_fused) = fused_probe(true);
    let (crc_unfused, snap_unfused) = fused_probe(false);
    assert_eq!(
        crc_fused, crc_unfused,
        "fused INT8 engine output diverged from the unfused walk"
    );
    let fused_bundles = engine.plan().fused_bundles() as u64;
    assert_eq!(
        snap_fused.counter("quant.fused.bundles_executed"),
        Some(fused_bundles),
        "fused probe did not execute every lowered bundle"
    );
    assert_eq!(
        snap_fused.counter("quant.fused.fallback").unwrap_or(0),
        0,
        "fused probe fell back"
    );
    assert_eq!(
        snap_unfused
            .counter("quant.fused.bundles_executed")
            .unwrap_or(0),
        0,
        "unfused control ran fused bundles"
    );
    assert_eq!(
        snap_unfused.counter("quant.fused.fallback"),
        Some(fused_bundles),
        "unfused control did not count its fallbacks"
    );
    let dram_saved = snap_fused
        .counter("quant.fused.dram_bytes_saved")
        .unwrap_or(0);

    // Evaluate end to end both ways: the fused row must reproduce the
    // unfused IoU to the bit. Metrics stay on through both evals so the
    // per-bundle saturation counters can be compared stage for stage.
    fusion::force(false);
    telemetry::reset_metrics();
    let int8_iou = evaluate_int8(&mut detector, &val) as f64;
    let unfused_snap = telemetry::snapshot();
    fusion::force(true);
    telemetry::reset_metrics();
    let int8_fused_iou = evaluate_int8(&mut detector, &val) as f64;
    let sat_snap = telemetry::snapshot();
    assert_eq!(
        int8_fused_iou.to_bits(),
        int8_iou.to_bits(),
        "fused INT8 IoU {int8_fused_iou} != unfused {int8_iou}"
    );

    // Per-stage saturation totals, archived in the report. Three claims
    // get asserted, each exactly as strong as the math supports:
    //  * fused and unfused evals count identical per-bundle totals —
    //    saturation sums are commutative, so the band schedule cannot
    //    change them;
    //  * the input-quantization stage saturates zero elements on the
    //    calibration images — MaxAbs sets the input scale from the
    //    maximum over those very images, so round(x/scale) ≤ 127 by
    //    construction;
    //  * bundle-stage totals are *reported*, not forced to zero: the
    //    integer engine's activations sit within quantization error of
    //    the float activations MaxAbs observed, so a handful of
    //    extreme-tail elements may clip even on calibration data.
    let sat_counts = |snap: &telemetry::Snapshot| -> Vec<(usize, u64, u64)> {
        (1..=6)
            .map(|b| {
                let g = |stage: &str| {
                    snap.counter(&format!("quant.bundle{b}.{stage}.saturated"))
                        .unwrap_or(0)
                };
                (b, g("dw"), g("pw"))
            })
            .collect()
    };
    let sat_rows = sat_counts(&sat_snap);
    let val_sat: u64 = sat_rows.iter().map(|&(_, d, p)| d + p).sum();
    assert_eq!(
        sat_rows,
        sat_counts(&unfused_snap),
        "per-bundle saturation totals depend on the fusion schedule"
    );

    telemetry::reset_metrics();
    let calib_refs: Vec<&Sample> = train.iter().take(calib_images).collect();
    for chunk in calib_refs.chunks(8) {
        engine.forward(&stack_images(chunk)).expect("int8 forward");
    }
    let calib_snap = telemetry::snapshot();
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
    assert_eq!(
        calib_snap.counter("quant.input.saturated").unwrap_or(0),
        0,
        "MaxAbs input scale saturated on its own calibration images"
    );
    let calib_sat_rows = sat_counts(&calib_snap);

    // Analytic rows: Table 7's four schemes plus FM8/W8, the closest
    // analytic point to the executable engine. Snapshot/restore the
    // float weights between schemes (fake-quant mutates in place).
    let mut snapshot: Vec<Vec<f32>> = Vec::new();
    detector
        .backbone_mut()
        .visit_params(&mut |p| snapshot.push(p.value.as_slice().to_vec()));
    let schemes: [(QuantScheme, Option<f64>); 6] = [
        (QuantScheme::float32(), Some(0.741)),
        (QuantScheme::new(11, 9), Some(0.727)),
        (QuantScheme::new(10, 9), Some(0.714)),
        (QuantScheme::new(11, 8), Some(0.690)),
        (QuantScheme::new(10, 8), Some(0.680)),
        (QuantScheme::new(8, 8), None),
    ];
    let mut rows: Vec<(String, String, Option<f64>, f64)> = Vec::new();
    let mut fake8_iou = None;
    for (scheme, paper_iou) in schemes {
        let mut i = 0;
        detector.backbone_mut().visit_params(&mut |p| {
            p.value.as_mut_slice().copy_from_slice(&snapshot[i]);
            i += 1;
        });
        let mode = apply_scheme(detector.backbone_mut(), scheme);
        let iou = evaluate_mode(&mut detector, &val, 16, mode).expect("eval succeeds") as f64;
        if scheme == QuantScheme::new(8, 8) {
            fake8_iou = Some(iou);
        }
        rows.push((scheme.to_string(), "analytic".into(), paper_iou, iou));
    }
    rows.push((
        "INT8 engine (W8/FM8)".into(),
        "executable".into(),
        None,
        int8_iou,
    ));
    rows.push((
        "INT8 engine, fused".into(),
        "executable".into(),
        None,
        int8_fused_iou,
    ));

    let fake8_iou = fake8_iou.expect("FM8/W8 row evaluated");
    let gap = (int8_iou - fake8_iou).abs();
    assert!(
        gap <= INT8_VS_FAKE8_BOUND,
        "executable INT8 IoU {int8_iou:.3} deviates from analytic FM8/W8 \
         {fake8_iou:.3} by {gap:.3} (> {INT8_VS_FAKE8_BOUND})"
    );

    table::header(
        "Quantization sweep: analytic schemes vs executable INT8 (validation IoU)",
        &[
            ("scheme", 22),
            ("kind", 10),
            ("IoU(paper)", 10),
            ("IoU(ours)", 10),
            ("drop(ours)", 10),
        ],
    );
    for (name, kind, paper_iou, iou) in &rows {
        table::row(&[
            (name.clone(), 22),
            (kind.clone(), 10),
            (table::paper(*paper_iou, 3), 10),
            (table::f(*iou, 3), 10),
            (table::f(float_iou - iou, 3), 10),
        ]);
    }
    println!();
    println!(
        "INT8 vs analytic FM8/W8 gap: {gap:.3} (bound {INT8_VS_FAKE8_BOUND}); \
         calibration: {} samples, input scale {:.5}",
        plan.samples, plan.input_scale
    );
    println!(
        "fused row: bit-identical to unfused ({fused_bundles} bundles through the \
         fused kernel per forward, 0 fallbacks, {dram_saved} i8/i32 DRAM bytes \
         saved on the probe); saturations: {val_sat} over the val eval \
         (identical fused vs unfused), input stage 0 on the calibration \
         set (MaxAbs guarantee)"
    );

    // Archive the report.
    let mut report = String::new();
    let _ = writeln!(report, "# Quantization sweep (Table 7 by execution)\n");
    let _ = writeln!(
        report,
        "Variant C, width ÷{TRAIN_DIV}, budget {budget:?}. Float validation IoU {float_iou:.3}. \
         Analytic rows fake-quantize weights and feature maps but compute in f32; the \
         executable row runs the calibrated `i8×i8→i32` engine end to end \
         (per-channel weight scales, per-tensor activation scales from {} calibration \
         samples, MaxAbs).\n",
        plan.samples
    );
    let _ = writeln!(
        report,
        "| scheme | kind | IoU (paper) | IoU (ours) | drop |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|");
    for (name, kind, paper_iou, iou) in &rows {
        let _ = writeln!(
            report,
            "| {name} | {kind} | {} | {iou:.3} | {:.3} |",
            table::paper(*paper_iou, 3),
            float_iou - iou
        );
    }
    let _ = writeln!(
        report,
        "\nExecutable INT8 vs analytic FM8/W8 gap: **{gap:.3}** (asserted ≤ {INT8_VS_FAKE8_BOUND}).\n"
    );
    let _ = writeln!(report, "## Cross-backend determinism\n");
    let _ = writeln!(
        report,
        "CRC-32 of the INT8 forward output on a fixed {}-image probe batch, per backend \
         (asserted identical):\n",
        probe_refs.len()
    );
    let _ = writeln!(report, "| backend | crc32 |");
    let _ = writeln!(report, "|---|---|");
    for (name, crc) in &crcs {
        let _ = writeln!(report, "| {name} | 0x{crc:08x} |");
    }
    let _ = writeln!(report, "\n## Fused INT8 execution\n");
    let _ = writeln!(
        report,
        "The fused row runs every bundle through the cache-resident \
         DW→requant→PW→requant tile kernel (`SKYNET_FUSION=on`); its \
         validation IoU is asserted bit-identical to the unfused walk. \
         Counters from the probe forward (asserted):\n"
    );
    let _ = writeln!(report, "| counter | fused run | unfused run |");
    let _ = writeln!(report, "|---|---:|---:|");
    for name in [
        "quant.fused.fwd_calls",
        "quant.fused.bundles_executed",
        "quant.fused.fallback",
        "quant.fused.dram_bytes_saved",
    ] {
        let _ = writeln!(
            report,
            "| `{name}` | {} | {} |",
            snap_fused.counter(name).unwrap_or(0),
            snap_unfused.counter(name).unwrap_or(0),
        );
    }
    let _ = writeln!(report, "\n## Per-bundle saturation (MaxAbs, fused eval)\n");
    let _ = writeln!(
        report,
        "Requant saturation totals from the \
         `quant.bundle<N>.{{dw,pw}}.saturated` counters, over the whole \
         fused validation eval and over a forward of the {calib_images} \
         calibration images. The sweep asserts that fused and unfused \
         evals count identical per-bundle totals (saturation sums are \
         commutative, so the band schedule cannot change them) and that \
         the input-quantization stage saturates zero elements on the \
         calibration images (MaxAbs sets the input scale from the \
         maximum over those very images). Bundle-stage counts are \
         archived rather than forced to zero: the integer engine's \
         activations sit within quantization error of the float \
         activations MaxAbs observed, so a handful of extreme-tail \
         elements may clip.\n"
    );
    let _ = writeln!(report, "| bundle | val dw | val pw | calib dw | calib pw |");
    let _ = writeln!(report, "|---|---:|---:|---:|---:|");
    for (&(b, dw, pw), &(_, cdw, cpw)) in sat_rows.iter().zip(&calib_sat_rows) {
        let _ = writeln!(report, "| {b} | {dw} | {pw} | {cdw} | {cpw} |");
    }
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/quant_sweep.md", &report).expect("write report");
    println!("report written to bench_results/quant_sweep.md");
}
