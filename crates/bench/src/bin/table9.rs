//! Table 9 — SiamMask on (synthetic) GOT-10k with ResNet-50 vs SkyNet
//! backbones: AO, SR@0.50, SR@0.75 and measured FPS.
//!
//! Paper shape: SkyNet is 1.73× faster (30.15 vs 17.44 FPS) with slightly
//! **better** AO (0.390 vs 0.380) — the mask branch recovers the accuracy
//! the smaller backbone gives up.

use skynet_bench::{data, table, Budget};
use skynet_nn::{LrSchedule, Sgd};
use skynet_track::backbone::BackboneKind;
use skynet_track::eval::evaluate;
use skynet_track::siammask::{train_on_sequences, SiamMask};
use skynet_track::siamrpn::SiamConfig;

fn main() {
    let budget = Budget::from_env();
    let (train_seqs, eval_seqs) = data::tracking_split(budget);
    let epochs = budget.pick(2, 30);

    let paper = [
        (BackboneKind::ResNet50, (0.380, 0.439, 0.153, 17.44)),
        (BackboneKind::SkyNet, (0.390, 0.442, 0.158, 30.15)),
    ];

    table::header(
        "Table 9: SiamMask backbones on synthetic GOT-10k",
        &[
            ("backbone", 10),
            ("AO(p)", 6),
            ("AO", 6),
            ("SR.50", 6),
            ("SR.75", 6),
            ("FPS(p)", 7),
            ("FPS", 8),
        ],
    );
    let mut measured = Vec::new();
    for (kind, (p_ao, _s5, _s7, p_fps)) in paper {
        let mut tracker = SiamMask::new(SiamConfig::new(kind));
        let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 1e-4).with_grad_clip(1.0);
        train_on_sequences(&mut tracker, &train_seqs, epochs, &mut opt, 9)
            .expect("training succeeds");
        let report = evaluate(&mut tracker, &eval_seqs).expect("evaluation succeeds");
        table::row(&[
            (kind.name().into(), 10),
            (table::f(p_ao, 3), 6),
            (table::f(report.metrics.ao as f64, 3), 6),
            (table::f(report.metrics.sr50 as f64, 3), 6),
            (table::f(report.metrics.sr75 as f64, 3), 6),
            (table::f(p_fps, 2), 7),
            (table::f(report.fps, 2), 8),
        ]);
        measured.push((kind, report.metrics.ao, report.fps));
    }
    println!();
    let sky = measured
        .iter()
        .find(|(k, _, _)| *k == BackboneKind::SkyNet)
        .expect("SkyNet row");
    let r50 = measured
        .iter()
        .find(|(k, _, _)| *k == BackboneKind::ResNet50)
        .expect("ResNet row");
    println!(
        "shape check: SkyNet/ResNet-50 speedup {:.2}x (paper 1.73x); AO gap {:+.3} (paper +0.010)",
        sky.2 / r50.2,
        sky.1 - r50.1
    );
}
