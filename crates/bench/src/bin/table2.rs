//! Table 2 — backbone comparison on the (synthetic) DAC-SDC task:
//! ResNet-18/34/50 and VGG-16 vs the SkyNet backbone, all with the same
//! detection back-end and the same training budget.
//!
//! The paper's point: parameter count does not predict task accuracy
//! (ResNet-34/50 land far below ResNet-18), and the purpose-built SkyNet
//! dominates with ~25–50× fewer parameters. Paper-scale parameter counts
//! are computed analytically (matching the published 11.18 M / 21.28 M /
//! 23.51 M / 14.71 M / 0.44 M); accuracy comes from training the
//! reduced-scale models.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer};
use skynet_tensor::rng::SkyRng;
use skynet_zoo::{resnet, vgg};

type BackboneCtor = Box<dyn Fn(&mut SkyRng) -> Box<dyn Layer>>;

fn main() {
    let budget = Budget::from_env();
    let (train, val) = data::detection_split(budget);

    let rows: Vec<(&str, BackboneCtor, usize, f64)> = vec![
        (
            "ResNet-18",
            Box::new(|rng: &mut SkyRng| {
                Box::new(resnet::detector(resnet::ResNetDepth::R18, TRAIN_DIV, rng))
                    as Box<dyn Layer>
            }),
            resnet::descriptor(resnet::ResNetDepth::R18, 224, 224).total_params(),
            0.61,
        ),
        (
            "ResNet-34",
            Box::new(|rng: &mut SkyRng| {
                Box::new(resnet::detector(resnet::ResNetDepth::R34, TRAIN_DIV, rng))
                    as Box<dyn Layer>
            }),
            resnet::descriptor(resnet::ResNetDepth::R34, 224, 224).total_params(),
            0.26,
        ),
        (
            "ResNet-50",
            Box::new(|rng: &mut SkyRng| {
                Box::new(resnet::detector(resnet::ResNetDepth::R50, TRAIN_DIV, rng))
                    as Box<dyn Layer>
            }),
            resnet::descriptor(resnet::ResNetDepth::R50, 224, 224).total_params(),
            0.32,
        ),
        (
            "VGG-16",
            Box::new(|rng: &mut SkyRng| Box::new(vgg::detector(TRAIN_DIV, rng)) as Box<dyn Layer>),
            vgg::descriptor(224, 224).total_params(),
            0.25,
        ),
        (
            "SkyNet",
            Box::new(|rng: &mut SkyRng| {
                let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
                Box::new(SkyNet::new(cfg, rng)) as Box<dyn Layer>
            }),
            SkyNetConfig::new(Variant::C, Act::Relu6)
                .descriptor(160, 320)
                .total_params(),
            0.73,
        ),
    ];

    table::header(
        "Table 2: backbone accuracy with a fixed detection back-end",
        &[
            ("backbone", 10),
            ("params(paper)", 13),
            ("IoU(paper)", 10),
            ("IoU(ours)", 10),
            ("train s", 8),
        ],
    );
    let mut results = Vec::new();
    for (i, (name, build, paper_params, paper_iou)) in rows.iter().enumerate() {
        let mut rng = SkyRng::new(20 + i as u64);
        let backbone = build(&mut rng);
        let out = train_detector(backbone, budget, &train, &val, false, 30 + i as u64)
            .expect("training succeeds");
        table::row(&[
            (name.to_string(), 10),
            (table::params_m(*paper_params), 13),
            (table::f(*paper_iou, 2), 10),
            (table::f(out.iou as f64, 3), 10),
            (table::f(out.train_secs, 1), 8),
        ]);
        results.push((name.to_string(), out.iou));
    }
    println!();
    let sky = results.last().expect("rows nonempty").1;
    let best_baseline = results[..results.len() - 1]
        .iter()
        .map(|(_, i)| *i)
        .fold(f32::MIN, f32::max);
    println!(
        "shape check: SkyNet {:.3} vs best baseline {:.3} ({})",
        sky,
        best_baseline,
        if sky > best_baseline {
            "SkyNet wins, as in the paper"
        } else {
            "MISMATCH vs paper"
        }
    );
}
