//! Table 5 — DAC-SDC'19/'18 GPU-track final results.
//!
//! Two reproductions in one table:
//!
//! 1. the published competitor measurements re-scored with **our**
//!    implementation of the official Eqs. 3–5 (validating the scoring
//!    machinery and the ordering the paper reports), and
//! 2. our end-to-end SkyNet entry: the detector trained on the synthetic
//!    DAC-SDC set (IoU), the TX2 roofline model plus the measured
//!    pipeline overlap (FPS), and the calibrated power model.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_hw::energy::PowerModel;
use skynet_hw::gpu::{estimate, GpuDevice};
use skynet_hw::pipeline::measure_synthetic;
use skynet_hw::score::{score_field, table5_entries, Entry, Track};
use skynet_nn::Act;
use skynet_tensor::rng::SkyRng;

fn main() {
    let budget = Budget::from_env();

    // --- Our SkyNet entry. ---
    let (train, val) = data::detection_split(budget);
    let mut rng = SkyRng::new(5);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(TRAIN_DIV);
    let trained = train_detector(
        Box::new(SkyNet::new(cfg, &mut rng)),
        budget,
        &train,
        &val,
        false,
        5,
    )
    .expect("training succeeds");
    // FPS: TX2 inference model at paper scale, multiplied by the measured
    // pipeline overlap factor (Fig. 10).
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let infer = estimate(&desc, &GpuDevice::tx2());
    let infer_us = (infer.latency_ms * 1e3) as u64;
    let pipe =
        measure_synthetic(budget.pick(30, 200), 5_500, infer_us, 4_000).expect("pipeline run");
    let fps = pipe.pipelined.fps;
    let power = PowerModel::tx2().power_w(0.95);

    // --- Score the field. ---
    let mut entries = table5_entries();
    entries.push(Entry::new(
        "SkyNet (ours, synthetic)",
        trained.iou as f64,
        fps,
        power,
    ));
    let scored = score_field(&entries, Track::Gpu);

    table::header(
        "Table 5: GPU track (paper totals recomputed with our Eqs. 3-5)",
        &[
            ("team", 26),
            ("IoU", 7),
            ("FPS", 8),
            ("Power W", 8),
            ("Total", 7),
        ],
    );
    for s in &scored {
        table::row(&[
            (s.entry.name.clone(), 26),
            (table::f(s.entry.iou, 3), 7),
            (table::f(s.entry.fps, 2), 8),
            (table::f(s.entry.power_w, 2), 8),
            (table::f(s.total_score, 3), 7),
        ]);
    }
    println!();
    println!("paper-reported totals: SkyNet 1.504, Thinker 1.442, DeepZS 1.422,");
    println!("                       ICT-CAS 1.373, DeepZ 1.359, SDU-Legend 1.358");
    println!(
        "(our-entry IoU is on the synthetic stand-in at 1/{TRAIN_DIV} width — absolute \
         accuracy is not comparable; the scoring, FPS and power pipelines are)"
    );
    println!(
        "TX2 model: inference {:.1} ms; pipeline overlap {:.2}x (measured)",
        infer.latency_ms, pipe.speedup
    );
}
