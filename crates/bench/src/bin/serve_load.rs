//! Open-loop load test for the batched serving engine: seeded Poisson
//! arrivals (with a bursty overload phase) driven in real time against
//! `skynet_serve::ServeEngine`, reporting p50/p95/p99 end-to-end latency
//! and the served/degraded/shed split at each offered rate.
//!
//! Two design choices make the numbers honest and reproducible:
//!
//! * the load is **open-loop** — arrival times come from a seeded
//!   schedule computed up front, so an overloaded engine cannot slow its
//!   own offered load (the classic closed-loop benchmark lie);
//! * every batch carries a fixed **5 ms synthetic service floor**
//!   (an always-firing `Infer` stall from the fault machinery), pinning
//!   the engine's capacity at `replicas × max_batch / 5ms` regardless of
//!   host speed, so "overload" means the same thing on every machine.
//!
//! The `faulted` scenario arms a fault schedule (panics, errors, stalls
//! and reply-path stalls standing in for slow clients) and asserts the
//! engine's accounting invariant: **zero requests lost** — every
//! submitted request gets exactly one outcome even while replicas are
//! panicking. The final `chaos` scenario is the **lifecycle soak**: a
//! replica wedged until its supervised restart, a second replica on
//! permanently dead hardware, and two mid-storm hot weight swaps (one
//! canary-validated and promoted, one rejected and rolled back) — all
//! under load, asserting zero loss, generation-stamped outcomes, zero
//! admissions to out-of-rotation replicas, and a recovered p99 after
//! the storm. The report is archived at `bench_results/serve_load.md`.
//!
//! Usage: `cargo run --release -p skynet-bench --bin serve_load`
//! (`SKYNET_BENCH_BUDGET=fast` for the CI smoke pass).

use skynet_bench::{table, Budget};
use skynet_core::head::Anchors;
use skynet_core::replica::DetectorBlueprint;
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_hw::fault::{
    silence_injected_panics, Fault, FaultKind, FaultPlan, FaultRates, ReplicaFault,
};
use skynet_hw::pipeline::{DegradePolicy, StageId};
use skynet_nn::Act;
use skynet_serve::batcher::BatchPolicy;
use skynet_serve::engine::{Admission, Outcome, Response, ServeConfig, ServeEngine};
use skynet_serve::health::HealthPolicy;
use skynet_serve::loadgen::{synth_image, LoadSpec};
use skynet_serve::swap::{CanarySpec, SwapOutcome};
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Fixed per-batch service floor: pins capacity so "overload" is
/// machine-independent. 2 replicas × batch 8 / 5 ms ≈ 3 200 rps.
const SERVICE_FLOOR: Duration = Duration::from_millis(5);
const REPLICAS: usize = 2;
const MAX_BATCH: usize = 8;

struct Row {
    name: &'static str,
    offered_rps: f64,
    submitted: u64,
    served: u64,
    degraded: u64,
    shed: u64,
    /// Requests rejected at admission (answered immediately by coasting
    /// or shedding instead of queueing) — the load-shedding actions.
    rejected: u64,
    lost: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

/// A plan that stalls every batch's infer for the service floor (frames
/// 0..batches are the replica-local batch sequence numbers).
fn floor_plan(batches: usize) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for b in 0..batches {
        plan = plan.inject(
            StageId::Infer,
            b,
            Fault::permanent(FaultKind::Stall(SERVICE_FLOOR)),
        );
    }
    plan
}

/// Drives one open-loop scenario in real time and reduces it to a row.
fn run_scenario(
    name: &'static str,
    bp: &DetectorBlueprint,
    spec: &LoadSpec,
    plan: FaultPlan,
    seed: u64,
) -> Row {
    let cfg = ServeConfig {
        replicas: REPLICAS,
        queue_capacity: 32,
        batch: BatchPolicy {
            max_batch: MAX_BATCH,
            max_delay_us: 2_000,
        },
        policy: DegradePolicy::CoastLastGood,
        max_retries: 2,
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(bp, &cfg).expect("blueprint weights fit the config");
    let (reply, inbox) = mpsc::channel::<Response>();
    let schedule = spec.schedule(seed);
    let start = std::time::Instant::now();
    let mut rejected = 0u64;
    for a in &schedule {
        let target = Duration::from_micros(a.at_us);
        let elapsed = start.elapsed();
        if target > elapsed {
            std::thread::sleep(target - elapsed);
        }
        let admission = engine.submit(a.stream, synth_image(a.image_seed, 16, 32), &reply);
        if admission == skynet_serve::engine::Admission::Rejected {
            rejected += 1;
        }
    }
    let wall = start.elapsed();
    let report = engine.shutdown();
    let responses: Vec<Response> = inbox.try_iter().collect();
    assert_eq!(responses.len(), schedule.len(), "one outcome per request");

    // Latency over freshly served requests; coasts and sheds are
    // immediate admission-time answers and show up in their own columns.
    let mut answered_ms: Vec<f64> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Served(_)))
        .map(|r| r.done_us.saturating_sub(r.arrival_us) as f64 / 1e3)
        .collect();
    answered_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let c = report.counters;
    Row {
        name,
        offered_rps: schedule.len() as f64 / wall.as_secs_f64(),
        submitted: c.submitted,
        served: c.served,
        degraded: c.degraded,
        shed: c.shed,
        rejected,
        lost: c.lost(),
        p50_ms: percentile(&answered_ms, 0.50),
        p95_ms: percentile(&answered_ms, 0.95),
        p99_ms: percentile(&answered_ms, 0.99),
    }
}

/// The lifecycle chaos soak: moderate load over three replicas while
/// replica 0 wedges until its supervised restart, replica 1 fails
/// persistently toward retirement, and two hot swaps land mid-storm —
/// one promoted through the canary, one rejected and rolled back.
/// Asserts the full robustness contract under load and reduces the run
/// to a table row.
fn run_chaos_soak(bp: &DetectorBlueprint, bp_next: &DetectorBlueprint, n: usize) -> Row {
    let spec = LoadSpec::poisson(n, 1_600.0, 8);
    let plan = floor_plan(spec.requests)
        // Wedged process: fails every batch from its 3rd until the
        // supervised restart clears it.
        .inject_replica(0, ReplicaFault::until_restarted(FaultKind::Error, 3))
        // Dead hardware: failures survive restarts; the restart budget
        // eventually retires the replica.
        .inject_replica(1, ReplicaFault::persistent(FaultKind::Error, 6));
    let cfg = ServeConfig {
        replicas: 3,
        queue_capacity: 32,
        batch: BatchPolicy {
            max_batch: MAX_BATCH,
            max_delay_us: 2_000,
        },
        policy: DegradePolicy::CoastLastGood,
        max_retries: 1,
        health: HealthPolicy {
            consecutive_failures: 2,
            restart_budget: 1,
            backoff_base_ms: 5,
            backoff_max_ms: 5,
            ..HealthPolicy::default()
        },
        fault_plan: Some(Arc::new(plan)),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(bp, &cfg).expect("blueprint weights fit the config");
    let (reply, inbox) = mpsc::channel::<Response>();
    let schedule = spec.schedule(44);
    let storm_us = schedule.last().expect("non-empty schedule").at_us;
    let start = std::time::Instant::now();
    let mut rejected = 0u64;
    let (good_swap, bad_swap) = std::thread::scope(|s| {
        let engine = &engine;
        let publisher = s.spawn(move || {
            // First swap ~40% into the storm: canary-validated, promoted.
            std::thread::sleep(Duration::from_micros(storm_us * 2 / 5));
            let reference = synth_image(1, 16, 32);
            let spec = CanarySpec::for_blueprint(bp_next, reference.clone())
                .expect("publisher-side probe");
            let good = engine
                .publish(bp_next.clone(), spec)
                .expect("publish reaches a canary verdict");
            // Second swap ~70% in: wrong expected hash, rolled back.
            std::thread::sleep(Duration::from_micros(storm_us * 3 / 10));
            let bad = engine
                .publish(
                    bp_next.clone(),
                    CanarySpec::new(reference).expect_weight_hash(1),
                )
                .expect("publish reaches a canary verdict");
            (good, bad)
        });
        for a in &schedule {
            let target = Duration::from_micros(a.at_us);
            let elapsed = start.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
            // Zero-admissions check: a replica observed out of rotation
            // both before and after the submit must not have admitted it.
            let pre: Vec<bool> = engine
                .replica_states()
                .iter()
                .map(|st| st.admits())
                .collect();
            let admission = engine.submit(a.stream, synth_image(a.image_seed, 16, 32), &reply);
            match admission {
                Admission::Queued { replica } => {
                    let post = engine.replica_states()[replica].admits();
                    assert!(
                        pre[replica] || post,
                        "replica {replica} admitted a request while out of rotation"
                    );
                }
                Admission::Rejected => rejected += 1,
            }
        }
        publisher.join().expect("publisher thread")
    });
    let wall = start.elapsed();
    let report = engine.shutdown();
    let responses: Vec<Response> = inbox.try_iter().collect();
    assert_eq!(responses.len(), schedule.len(), "one outcome per request");

    // The storm happened as scripted.
    assert!(
        matches!(good_swap, SwapOutcome::Published { generation: 1, .. }),
        "first swap must promote: {good_swap:?}"
    );
    assert!(
        matches!(bad_swap, SwapOutcome::RolledBack { .. }),
        "second swap must roll back: {bad_swap:?}"
    );
    let c = report.counters;
    assert_eq!(c.lost(), 0, "chaos soak lost requests: {c:?}");
    assert_eq!(c.swaps_published, 1, "{c:?}");
    assert_eq!(c.swap_canary_fail, 1, "{c:?}");
    assert_eq!(c.swap_rolled_back, 1, "{c:?}");
    assert!(c.quarantines >= 1, "no quarantine under the storm: {c:?}");
    assert!(c.restarts >= 1, "no supervised restart: {c:?}");
    // Every outcome carries its weight-generation stamp: 0 before the
    // promoted swap, 1 after, and never the rolled-back generation 2.
    assert!(
        responses.iter().all(|r| r.generation <= 1),
        "an outcome carries the rolled-back generation"
    );
    assert!(
        responses.iter().any(|r| r.generation == 1),
        "no outcome was served by the promoted generation"
    );
    assert_eq!(report.generation, 1);
    assert_eq!(report.weight_hash, bp_next.weight_hash());

    // p99 recovery: the last quarter of the storm (restart done, swap
    // settled) must serve with a queue-bounded tail again.
    let mut tail_ms: Vec<f64> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Served(_)) && r.arrival_us >= storm_us * 3 / 4)
        .map(|r| r.done_us.saturating_sub(r.arrival_us) as f64 / 1e3)
        .collect();
    tail_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(
        !tail_ms.is_empty(),
        "nothing served after the storm settled"
    );
    let tail_p99 = percentile(&tail_ms, 0.99);
    assert!(
        tail_p99 < 250.0,
        "post-storm p99 {tail_p99}ms did not recover"
    );

    let mut answered_ms: Vec<f64> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Served(_)))
        .map(|r| r.done_us.saturating_sub(r.arrival_us) as f64 / 1e3)
        .collect();
    answered_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Row {
        name: "chaos",
        offered_rps: schedule.len() as f64 / wall.as_secs_f64(),
        submitted: c.submitted,
        served: c.served,
        degraded: c.degraded,
        shed: c.shed,
        rejected,
        lost: c.lost(),
        p50_ms: percentile(&answered_ms, 0.50),
        p95_ms: percentile(&answered_ms, 0.95),
        p99_ms: percentile(&answered_ms, 0.99),
    }
}

fn main() {
    silence_injected_panics();
    let budget = Budget::from_env();
    let n = budget.pick(240, 1_200);
    let bp = DetectorBlueprint::from_seed(
        SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16),
        Anchors::dac_sdc(),
        0,
    );

    // Capacity with the 5 ms floor: 2 replicas × 8/batch / 5 ms ≈ 3 200
    // rps. Light and moderate sit under it; overload sits well past it;
    // bursty alternates calm 800 rps with 8 000 rps spikes.
    let scenarios: Vec<(&'static str, LoadSpec)> = vec![
        ("light", LoadSpec::poisson(n, 400.0, 8)),
        ("moderate", LoadSpec::poisson(n, 1_600.0, 8)),
        ("overload", LoadSpec::poisson(n, 12_800.0, 8)),
        (
            "bursty",
            LoadSpec {
                requests: n,
                rate_rps: 800.0,
                streams: 8,
                burst_every: n / 4,
                burst_len: n / 8,
                burst_multiplier: 10.0,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, spec) in &scenarios {
        rows.push(run_scenario(name, &bp, spec, floor_plan(spec.requests), 42));
    }

    // Fault-injected smoke: the floor plan plus panics, stage errors and
    // stalls on ~12% of batches, and reply-path (slow client) stalls.
    let smoke_spec = LoadSpec::poisson(n, 1_600.0, 8);
    let mut smoke_plan = floor_plan(smoke_spec.requests);
    let chaos = FaultPlan::scheduled(
        7,
        smoke_spec.requests,
        &FaultRates {
            panic: 0.04,
            error: 0.04,
            stall: 0.04,
            stall_for: Duration::from_millis(10),
            persist_attempts: 1, // transient: one retry recovers
        },
    );
    smoke_plan = smoke_plan.merge(chaos);
    let smoke = run_scenario("faulted", &bp, &smoke_spec, smoke_plan, 43);
    assert!(smoke.served > 0, "faulted run must still serve requests");
    assert_eq!(smoke.lost, 0, "faulted run must not lose a single request");
    rows.push(smoke);

    // Lifecycle chaos soak: persistent replica failures, supervised
    // restart, and two hot swaps (one rolled back) under moderate load.
    let bp_next = DetectorBlueprint::from_seed(
        SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16),
        Anchors::dac_sdc(),
        1,
    );
    rows.push(run_chaos_soak(&bp, &bp_next, n));

    table::header(
        "Open-loop serving latency vs offered load (5ms/batch service floor)",
        &[
            ("scenario", 10),
            ("rps", 7),
            ("served", 7),
            ("degr", 6),
            ("shed", 6),
            ("reject", 7),
            ("p50ms", 7),
            ("p95ms", 7),
            ("p99ms", 7),
        ],
    );
    for r in &rows {
        table::row(&[
            (r.name.into(), 10),
            (format!("{:.0}", r.offered_rps), 7),
            (r.served.to_string(), 7),
            (r.degraded.to_string(), 6),
            (r.shed.to_string(), 6),
            (r.rejected.to_string(), 7),
            (format!("{:.1}", r.p50_ms), 7),
            (format!("{:.1}", r.p95_ms), 7),
            (format!("{:.1}", r.p99_ms), 7),
        ]);
    }

    // Acceptance: overload sheds load at admission instead of queueing
    // without bound (under CoastLastGood a rejection answers with the
    // stream's stale detection, so it lands in `degraded`/`shed`), and
    // the answered-latency tail stays within the queue-bound envelope.
    let overload = rows.iter().find(|r| r.name == "overload").unwrap();
    assert!(overload.rejected > 0, "overload must reject at admission");
    assert_eq!(
        overload.rejected,
        overload.degraded + overload.shed,
        "every rejection is answered by coasting or shedding"
    );
    assert!(
        overload.p99_ms < 500.0,
        "overload p99 {}ms should stay queue-bounded",
        overload.p99_ms
    );
    for r in &rows {
        assert_eq!(r.lost, 0, "{}: zero-loss invariant violated", r.name);
    }

    let mut md = String::new();
    let _ = writeln!(md, "# Serving engine under open-loop load\n");
    let _ = writeln!(
        md,
        "{n} requests per scenario, seeded Poisson arrivals over 8 streams,\n\
         {REPLICAS} replicas × queue 32 × batch {MAX_BATCH} (2 ms coalescing window),\n\
         `CoastLastGood` shedding policy, and a fixed 5 ms per-batch service\n\
         floor so peak capacity (≈3 200 rps at full batches) is\n\
         host-independent. Latency is end-to-end (submission → outcome) over\n\
         freshly served requests; coasts and sheds are immediate\n\
         admission-time answers. The `faulted` row replays the moderate load\n\
         with transient panics/errors/stalls injected into ~12% of batches\n\
         plus reply-path stalls (slow clients). The `chaos` row is the\n\
         lifecycle soak: three replicas, one wedged until its supervised\n\
         restart, one failing persistently toward retirement, and two hot\n\
         weight swaps mid-storm — one canary-promoted, one rolled back."
    );
    let _ = writeln!(
        md,
        "\n| scenario | offered rps | submitted | served | degraded | shed | rejected | lost | p50 ms | p95 ms | p99 ms |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|---|---|---|");
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {:.0} | {} | {} | {} | {} | {} | {} | {:.1} | {:.1} | {:.1} |",
            r.name,
            r.offered_rps,
            r.submitted,
            r.served,
            r.degraded,
            r.shed,
            r.rejected,
            r.lost,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms
        );
    }
    let _ = writeln!(
        md,
        "\nUnder overload the engine rejects excess demand at admission\n\
         (`rejected`), answering each rejection immediately — coasting on\n\
         the stream's last good detection (`degraded`) or shedding outright\n\
         (`shed`) — which keeps the answered-latency tail queue-bounded\n\
         instead of letting it grow with the backlog. The fault-injected and\n\
         chaos runs keep the exactly-one-outcome invariant (`lost` stays 0)\n\
         while replicas panic, retry, stall, quarantine, restart and swap\n\
         weight generations — with the post-storm p99 recovered and every\n\
         outcome stamped with the generation that served it."
    );
    print!("{md}");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/serve_load.md", &md).expect("write report");
    println!("\nreport written to bench_results/serve_load.md");
}
