//! Fig. 2(a) — AlexNet accuracy under parameter vs feature-map
//! quantization.
//!
//! A mini-AlexNet classifier is trained on the synthetic shape set, then
//! evaluated under two sweeps: weights quantized with feature maps kept
//! float (blue bubbles in the paper), and feature maps quantized with
//! weights kept float (green bubbles). Compression ratios and data sizes
//! are computed at paper scale from the AlexNet descriptor.
//!
//! Paper shape: inference accuracy is **more sensitive to the feature-map
//! precision** than to the parameter precision at equal compression.

use skynet_bench::{table, Budget};
use skynet_data::classif::{ClassifConfig, ClassifGen, NUM_CLASSES};
use skynet_hw::quant::quantize_weights;
use skynet_nn::{Layer, LrSchedule, Mode, Sequential, Sgd};
use skynet_tensor::ops::cross_entropy;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::Tensor;
use skynet_zoo::alexnet;

fn accuracy(
    model: &mut Sequential,
    data: &[skynet_data::classif::ClassifSample],
    mode: Mode,
) -> f64 {
    let mut correct = 0usize;
    for chunk in data.chunks(16) {
        let images: Vec<Tensor> = chunk.iter().map(|s| s.image.clone()).collect();
        let batch = Tensor::stack(&images).expect("same shapes");
        let logits = model.forward(&batch, mode).expect("forward succeeds");
        let k = logits.shape().item_numel();
        for (i, s) in chunk.iter().enumerate() {
            let row = &logits.as_slice()[i * k..(i + 1) * k];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty row")
                .0;
            if pred == s.label {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len() as f64
}

fn main() {
    let budget = Budget::from_env();
    let (n_train, n_val, epochs) = budget.pick((64, 32, 2), (448, 224, 30));
    // 24×24 inputs: the shapes fill most of the frame, so the lower
    // resolution costs nothing and fits the CPU budget.
    let mut gen = ClassifGen::new(ClassifConfig {
        size: 24,
        seed: 0xC1A55,
    });
    let train = gen.generate(n_train);
    let val = gen.generate(n_val);

    let mut rng = SkyRng::new(2);
    let mut model = alexnet::classifier(NUM_CLASSES, &mut rng);
    let steps = epochs * n_train.div_ceil(16);
    let mut opt = Sgd::new(
        LrSchedule::Exponential {
            start: 2e-2,
            end: 1e-3,
            steps,
        },
        0.9,
        1e-4,
    );
    let mut order: Vec<usize> = (0..train.len()).collect();
    let mut shuffle_rng = SkyRng::new(3);
    for _ in 0..epochs {
        shuffle_rng.shuffle(&mut order);
        for chunk in order.chunks(16) {
            let images: Vec<Tensor> = chunk.iter().map(|&i| train[i].image.clone()).collect();
            let labels: Vec<usize> = chunk.iter().map(|&i| train[i].label).collect();
            let batch = Tensor::stack(&images).expect("same shapes");
            let logits = model.forward(&batch, Mode::Train).expect("forward");
            let (_, grad) = cross_entropy(&logits, &labels);
            let _ = model.backward(&grad).expect("backward");
            opt.step(&mut model);
        }
    }
    let float_acc = accuracy(&mut model, &val, Mode::Eval);
    println!("mini-AlexNet float32 accuracy: {float_acc:.3} ({NUM_CLASSES} classes)");

    // Paper-scale sizes from the descriptor.
    let desc = alexnet::descriptor();
    let params = desc.total_params();
    let fm_elems: usize = desc
        .walk()
        .iter()
        .map(|ls| ls.c_out * ls.h_out * ls.w_out)
        .sum();
    let param_mb = |bits: f64| params as f64 * bits / 8.0 / 1048576.0;
    let fm_mb = |bits: f64| fm_elems as f64 * bits / 8.0 / 1048576.0;
    println!(
        "paper-scale AlexNet: params {:.1} MB fp32 (paper 237.9), FMs {:.1} MB fp32 (paper 15.7)",
        param_mb(32.0),
        fm_mb(32.0)
    );

    // Snapshot float weights.
    let mut snapshot: Vec<Vec<f32>> = Vec::new();
    model.visit_params(&mut |p| snapshot.push(p.value.as_slice().to_vec()));
    let restore = |m: &mut Sequential, snap: &[Vec<f32>]| {
        let mut i = 0;
        m.visit_params(&mut |p| {
            p.value.as_mut_slice().copy_from_slice(&snap[i]);
            i += 1;
        });
    };

    table::header(
        "Fig. 2(a): parameter quantization (FMs float)",
        &[
            ("W bits", 7),
            ("accuracy", 9),
            ("compression", 12),
            ("size MB", 9),
        ],
    );
    for bits in [12u8, 10, 8, 6, 4] {
        restore(&mut model, &snapshot);
        quantize_weights(&mut model, bits);
        let acc = accuracy(&mut model, &val, Mode::Eval);
        table::row(&[
            (format!("{bits}"), 7),
            (table::f(acc, 3), 9),
            (format!("{:.1}x", 32.0 / bits as f64), 12),
            (table::f(param_mb(bits as f64), 1), 9),
        ]);
    }

    table::header(
        "Fig. 2(a): feature-map quantization (weights float)",
        &[
            ("FM bits", 7),
            ("accuracy", 9),
            ("compression", 12),
            ("size MB", 9),
        ],
    );
    restore(&mut model, &snapshot);
    for bits in [12u8, 10, 8, 6, 4] {
        let acc = accuracy(&mut model, &val, Mode::QuantEval { fm_bits: bits });
        table::row(&[
            (format!("{bits}"), 7),
            (table::f(acc, 3), 9),
            (format!("{:.1}x", 32.0 / bits as f64), 12),
            (table::f(fm_mb(bits as f64), 2), 9),
        ]);
    }
    println!();
    println!("(paper shape: accuracy collapses earlier along the FM axis than the W axis)");
}
