//! Per-op profile of a standard SkyNet forward pass.
//!
//! Runs the model-C backbone (width ÷8, 160×320 input) with telemetry
//! enabled and reports where the time goes, three ways:
//!
//! 1. a **per-op self-time table** measured with all parallel regions
//!    forced serial (`parallel::serial`), so spans nest exactly and the
//!    self times partition wall time — the run fails if the table covers
//!    less than 90 % of wall time;
//! 2. the **metrics snapshot** (call counts, FLOPs → effective GFLOP/s);
//! 3. a **Chrome `trace_event` JSON** captured from a pooled run
//!    (`bench_results/profile_trace.json`) — open it in
//!    <https://ui.perfetto.dev> or `chrome://tracing` to see per-thread
//!    occupancy.
//!
//! The report is archived at `bench_results/profile.md`. Use
//! `SKYNET_BENCH_BUDGET=fast` for a smoke pass (CI).

use skynet_bench::Budget;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer, Mode};
use skynet_tensor::{parallel, rng::SkyRng, telemetry, Shape, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    // Telemetry on via the builder API (env vars also work; the bin must
    // not depend on the caller remembering to set them).
    telemetry::Builder::new().metrics(true).trace(true).apply();
    let budget = Budget::from_env();
    let iters = budget.pick(5, 40);
    let trace_iters = budget.pick(2, 5);
    let shape = Shape::new(1, 3, 160, 320);

    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut rng = SkyRng::new(42);
    let mut net = SkyNet::new(cfg, &mut rng);
    let x = Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|i| ((i % 251) as f32 / 251.0) - 0.5)
            .collect(),
    )
    .expect("input tensor");

    // Warm up (first-touch allocations, pool spawn), then discard the
    // telemetry it produced.
    for _ in 0..2 {
        net.forward(&x, Mode::Eval).expect("warmup forward");
    }
    telemetry::drain_spans();
    telemetry::reset_metrics();

    // Phase 1 — serial measurement. With every parallel region inlined,
    // all spans land on one thread and nest exactly, so per-op self
    // times partition the wall clock.
    let t0 = Instant::now();
    parallel::serial(|| {
        for _ in 0..iters {
            net.forward(&x, Mode::Eval).expect("profiled forward");
        }
    });
    let wall = t0.elapsed();
    let spans = telemetry::drain_spans();
    let stats = telemetry::aggregate(&spans);
    let snap = telemetry::snapshot();

    let wall_ns = wall.as_nanos() as u64;
    let covered_ns: u64 = stats.iter().map(|s| s.self_ns).sum();
    let coverage = covered_ns as f64 / wall_ns as f64;

    let mut table = String::new();
    let _ = writeln!(
        table,
        "| op | calls | total ms | self ms | self % of wall |"
    );
    let _ = writeln!(table, "|---|---:|---:|---:|---:|");
    for s in &stats {
        let _ = writeln!(
            table,
            "| {} | {} | {:.3} | {:.3} | {:.1} % |",
            s.name,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            100.0 * s.self_ns as f64 / wall_ns as f64,
        );
    }
    let _ = writeln!(
        table,
        "| **total** | | | {:.3} | {:.1} % |",
        covered_ns as f64 / 1e6,
        100.0 * coverage
    );

    let total_flops: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.ends_with("_flops"))
        .map(|&(_, v)| v)
        .sum();
    let gflops = total_flops as f64 / wall.as_secs_f64() / 1e9;

    // Phase 2 — pooled run for the Chrome trace: same forward, default
    // pool, so the exported timeline shows work spread over the workers.
    let t1 = Instant::now();
    for _ in 0..trace_iters {
        net.forward(&x, Mode::Eval).expect("traced forward");
    }
    let pooled = t1.elapsed();
    let trace_spans = telemetry::drain_spans();
    let trace_json = telemetry::chrome_trace_json(&trace_spans);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/profile_trace.json", &trace_json).expect("write trace");

    let mut report = String::new();
    let _ = writeln!(report, "# Per-op forward-pass profile\n");
    let _ = writeln!(
        report,
        "Model C (width ÷8), input {shape}, {iters} serial iterations \
         (pool size {} for the pooled trace capture).\n",
        parallel::num_threads()
    );
    let _ = writeln!(
        report,
        "Serial wall time: {:.1} ms total, {:.2} ms/iter; effective {gflops:.2} GFLOP/s.\n",
        wall.as_secs_f64() * 1e3,
        wall.as_secs_f64() * 1e3 / iters as f64,
    );
    let _ = writeln!(report, "{table}");
    let _ = writeln!(
        report,
        "\nPooled run ({trace_iters} iterations): {:.2} ms/iter — per-thread timeline in \
         `bench_results/profile_trace.json` ({} spans; open in <https://ui.perfetto.dev>).\n",
        pooled.as_secs_f64() * 1e3 / trace_iters as f64,
        trace_spans.len()
    );
    let _ = writeln!(report, "## Metrics snapshot (serial phase)\n");
    let _ = writeln!(report, "```");
    for (name, v) in &snap.counters {
        if !name.starts_with("pool.") {
            let _ = writeln!(report, "{name} = {v}");
        }
    }
    let _ = writeln!(report, "```");
    std::fs::write("bench_results/profile.md", &report).expect("write report");

    print!("{report}");

    assert!(
        trace_json.starts_with('{') && trace_json.contains("\"traceEvents\":["),
        "trace JSON malformed"
    );
    assert!(
        coverage >= 0.90,
        "per-op table covers only {:.1} % of wall time (need >= 90 %)",
        100.0 * coverage
    );
    println!(
        "profile OK: {:.1} % of wall time attributed across {} ops",
        100.0 * coverage,
        stats.len()
    );
}
