//! Per-op profile of a standard SkyNet forward (and backward) pass.
//!
//! Runs the model-C backbone (width ÷8, 160×320 input) with telemetry
//! enabled and reports where the time goes, four ways:
//!
//! 1. a **per-op self-time table** measured with all parallel regions
//!    forced serial (`parallel::serial`), so spans nest exactly and the
//!    self times partition wall time — the run fails if the table covers
//!    less than 90 % of wall time. The table carries an **allocations
//!    column** fed by the scratch-arena miss counters, and the run fails
//!    if the steady-state forward loop allocates any bytes from the
//!    arena's miss path after warm-up;
//! 2. the **metrics snapshot** (call counts, FLOPs → effective GFLOP/s)
//!    plus the global-allocator tap (`SKYNET_ALLOC_STATS` semantics,
//!    armed unconditionally here);
//! 3. a **training-step profile**: train-mode forward + backward with
//!    the per-layer `skynet.*.bwd` spans, attributing backward time per
//!    bundle;
//! 4. a **Chrome `trace_event` JSON** captured from a pooled run
//!    (`bench_results/profile_trace.json`) — open it in
//!    <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! The report is archived at `bench_results/profile.md` together with the
//! PR-3 baseline for a before/after comparison; under the full budget the
//! run fails unless the specialized kernels hold their speedup floors.
//! Use `SKYNET_BENCH_BUDGET=fast` for a smoke pass (CI).

use skynet_bench::Budget;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer, Mode};
use skynet_tensor::{alloc, fusion, parallel, rng::SkyRng, simd, telemetry, Shape, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

/// PR-3 baseline (generic dwconv, per-call `vec!` buffers), measured by
/// this bin on the same machine with the full budget: serial
/// `tensor.dwconv_fwd` self time and end-to-end forward, ms/iter.
const BASE_DWCONV_SELF_MS: f64 = 320.668 / 40.0;
const BASE_E2E_MS: f64 = 12.03;

/// Scratch-arena checkout sites (the `op` tags in `tensor::scratch`).
const SCRATCH_OPS: [&str; 5] = [
    "tensor.conv_fwd",
    "tensor.conv_bwd",
    "tensor.dwconv_bwd",
    "tensor.matmul",
    "tensor.fused_fwd",
];

/// Sums `scratch.<op>.bytes_alloc` — bytes newly allocated because the
/// arena missed — across all checkout sites.
fn arena_miss_bytes(snap: &telemetry::Snapshot) -> u64 {
    snap.counter("scratch.miss_bytes").unwrap_or(0)
}

/// Renders the per-op self-time table with reuse/miss columns from the
/// scratch counters.
fn render_ops_table(
    stats: &[telemetry::OpStat],
    snap: &telemetry::Snapshot,
    wall_ns: u64,
) -> (String, u64) {
    let mut table = String::new();
    let _ = writeln!(
        table,
        "| op | calls | total ms | self ms | self % of wall | arena reuse | arena miss B |"
    );
    let _ = writeln!(table, "|---|---:|---:|---:|---:|---:|---:|");
    let covered_ns: u64 = stats.iter().map(|s| s.self_ns).sum();
    for s in stats {
        let (reuse, miss) = if SCRATCH_OPS.contains(&s.name) {
            (
                snap.counter(&format!("scratch.{}.arena_reuse", s.name))
                    .unwrap_or(0),
                snap.counter(&format!("scratch.{}.bytes_alloc", s.name))
                    .unwrap_or(0),
            )
        } else {
            (0, 0)
        };
        let _ = writeln!(
            table,
            "| {} | {} | {:.3} | {:.3} | {:.1} % | {} | {} |",
            s.name,
            s.calls,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            100.0 * s.self_ns as f64 / wall_ns as f64,
            reuse,
            miss,
        );
    }
    let _ = writeln!(
        table,
        "| **total** | | | {:.3} | {:.1} % | | |",
        covered_ns as f64 / 1e6,
        100.0 * covered_ns as f64 / wall_ns as f64
    );
    (table, covered_ns)
}

fn main() {
    // Telemetry + the allocator tap on via the builder APIs (env vars
    // also work; the bin must not depend on the caller setting them).
    telemetry::Builder::new().metrics(true).trace(true).apply();
    alloc::enable(true);
    let budget = Budget::from_env();
    let full = matches!(budget, Budget::Full);
    let iters = budget.pick(5, 40);
    let bwd_iters = budget.pick(3, 15);
    let trace_iters = budget.pick(2, 5);
    let shape = Shape::new(1, 3, 160, 320);

    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut rng = SkyRng::new(42);
    let mut net = SkyNet::new(cfg, &mut rng);
    let x = Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|i| ((i % 251) as f32 / 251.0) - 0.5)
            .collect(),
    )
    .expect("input tensor");

    // Warm up every phase's code path *and* thread arena: pooled forward
    // (pool spawn + worker arenas), serial forward and serial
    // train-forward+backward (this thread's arena, both directions),
    // fused and unfused. Everything after the reset below runs against
    // warm arenas.
    for fuse in [false, true] {
        fusion::force(fuse);
        for _ in 0..2 {
            net.forward(&x, Mode::Eval).expect("warmup forward");
        }
        parallel::serial(|| {
            for _ in 0..2 {
                net.forward(&x, Mode::Eval).expect("warmup serial forward");
                let y = net.forward(&x, Mode::Train).expect("warmup train forward");
                net.backward(&y).expect("warmup backward");
            }
        });
    }
    telemetry::drain_spans();
    telemetry::reset_metrics();

    // Phase 1 — serial forward, unfused. With every parallel region
    // inlined, all spans land on one thread and nest exactly, so per-op
    // self times partition the wall clock; the scratch counters must
    // show zero misses (the arena was warmed above). The unfused path is
    // profiled first because the PR-3 baseline (and its speedup floors)
    // predate the execution plan.
    fusion::force(false);
    let alloc_before = alloc::stats();
    let t0 = Instant::now();
    parallel::serial(|| {
        for _ in 0..iters {
            net.forward(&x, Mode::Eval).expect("profiled forward");
        }
    });
    let wall = t0.elapsed();
    let alloc_fwd = alloc::stats().since(&alloc_before);
    let spans = telemetry::drain_spans();
    let stats = telemetry::aggregate(&spans);
    let snap = telemetry::snapshot();

    let wall_ns = wall.as_nanos() as u64;
    let (table, covered_ns) = render_ops_table(&stats, &snap, wall_ns);
    let coverage = covered_ns as f64 / wall_ns as f64;
    let fwd_miss_bytes = arena_miss_bytes(&snap);

    let total_flops: u64 = snap
        .counters
        .iter()
        .filter(|(n, _)| n.ends_with("_flops"))
        .map(|&(_, v)| v)
        .sum();
    let gflops = total_flops as f64 / wall.as_secs_f64() / 1e9;
    let e2e_ms = wall.as_secs_f64() * 1e3 / iters as f64;
    let dwconv_self_ms = stats
        .iter()
        .find(|s| s.name == "tensor.dwconv_fwd")
        .map(|s| s.self_ns as f64 / 1e6 / iters as f64)
        .unwrap_or(0.0);

    // Phase 1b — serial forward through the fused execution plan
    // (`SKYNET_FUSION=on`, the default). Same invariants as phase 1: the
    // per-op table must still cover >= 90 % of wall time (the fused
    // spans `fused.bundleN` replace `skynet.bundleN`, never coexist with
    // it) and the steady-state loop must stay on the arena's hit path.
    telemetry::reset_metrics();
    fusion::force(true);
    let t0f = Instant::now();
    parallel::serial(|| {
        for _ in 0..iters {
            net.forward(&x, Mode::Eval).expect("profiled fused forward");
        }
    });
    let fused_wall = t0f.elapsed();
    let fused_spans = telemetry::drain_spans();
    let fused_stats = telemetry::aggregate(&fused_spans);
    let fused_snap = telemetry::snapshot();
    let fused_wall_ns = fused_wall.as_nanos() as u64;
    let (fused_table, fused_covered_ns) =
        render_ops_table(&fused_stats, &fused_snap, fused_wall_ns);
    let fused_coverage = fused_covered_ns as f64 / fused_wall_ns as f64;
    let fused_miss_bytes = arena_miss_bytes(&fused_snap);
    let fused_e2e_ms = fused_wall.as_secs_f64() * 1e3 / iters as f64;

    // Phase 2 — serial training step (train-mode forward + backward)
    // with the per-layer backward spans.
    telemetry::reset_metrics();
    let t1 = Instant::now();
    parallel::serial(|| {
        for _ in 0..bwd_iters {
            let y = net.forward(&x, Mode::Train).expect("train forward");
            net.backward(&y).expect("profiled backward");
        }
    });
    let bwd_wall = t1.elapsed();
    let bwd_spans = telemetry::drain_spans();
    let bwd_stats = telemetry::aggregate(&bwd_spans);
    let bwd_snap = telemetry::snapshot();
    let (bwd_table, _) = render_ops_table(&bwd_stats, &bwd_snap, bwd_wall.as_nanos() as u64);
    let bwd_miss_bytes = arena_miss_bytes(&bwd_snap);

    // Phase 3 — pooled run for the Chrome trace: same forward, default
    // pool, so the exported timeline shows work spread over the workers.
    let t2 = Instant::now();
    for _ in 0..trace_iters {
        net.forward(&x, Mode::Eval).expect("traced forward");
    }
    let pooled = t2.elapsed();
    let trace_spans = telemetry::drain_spans();
    let trace_json = telemetry::chrome_trace_json(&trace_spans);
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/profile_trace.json", &trace_json).expect("write trace");

    let mut report = String::new();
    let _ = writeln!(report, "# Per-op profile: forward pass + training step\n");
    let _ = writeln!(
        report,
        "Model C (width ÷8), input {shape}, {iters} serial forward iterations \
         (pool size {} for the pooled trace capture). Active SIMD backend: \
         `{}`.\n",
        parallel::num_threads(),
        simd::active().name(),
    );
    let _ = writeln!(
        report,
        "Serial forward: {:.1} ms total, {e2e_ms:.2} ms/iter; effective {gflops:.2} GFLOP/s.\n",
        wall.as_secs_f64() * 1e3,
    );
    let _ = writeln!(report, "{table}");
    let _ = writeln!(
        report,
        "\nSteady-state forward allocations (global-allocator tap): {} calls / {} bytes \
         per iteration; **{fwd_miss_bytes} bytes from the scratch-arena miss path** \
         (asserted zero).\n",
        alloc_fwd.alloc_calls / iters as u64,
        alloc_fwd.alloc_bytes / iters as u64,
    );

    let _ = writeln!(
        report,
        "## Before/after vs the PR-3 baseline (full budget, same machine)\n"
    );
    let _ = writeln!(report, "| metric | PR 3 | now | speedup |");
    let _ = writeln!(report, "|---|---:|---:|---:|");
    let _ = writeln!(
        report,
        "| `tensor.dwconv_fwd` self ms/iter | {BASE_DWCONV_SELF_MS:.3} | {dwconv_self_ms:.3} | {:.2}x |",
        BASE_DWCONV_SELF_MS / dwconv_self_ms.max(1e-9),
    );
    let _ = writeln!(
        report,
        "| end-to-end forward ms/iter | {BASE_E2E_MS:.2} | {e2e_ms:.2} | {:.2}x |\n",
        BASE_E2E_MS / e2e_ms.max(1e-9),
    );

    let _ = writeln!(
        report,
        "## Fused execution plan (`SKYNET_FUSION=on`, serial forward)\n"
    );
    let _ = writeln!(
        report,
        "{fused_e2e_ms:.2} ms/iter through the graph-level plan \
         (BN-fold + fused activation + cache-resident DW→PW bundle \
         tiles) vs {e2e_ms:.2} ms/iter unfused — **{:.2}x** — with \
         bit-identical output (see `fusion_bench`). The `fused.bundleN` \
         spans replace `skynet.bundleN`; coverage and the zero-arena-miss \
         invariant hold on the fused path too.\n",
        e2e_ms / fused_e2e_ms.max(1e-9),
    );
    let _ = writeln!(report, "{fused_table}");
    let _ = writeln!(report, "\n`fusion.*` counters over the fused phase:\n");
    let _ = writeln!(report, "```");
    for (name, v) in &fused_snap.counters {
        if name.starts_with("fusion.") {
            let _ = writeln!(report, "{name} = {v}");
        }
    }
    let _ = writeln!(report, "```\n");

    let _ = writeln!(
        report,
        "## Training step (train-mode forward + backward, {bwd_iters} serial iterations)\n"
    );
    let _ = writeln!(
        report,
        "{:.2} ms per training step; backward attributed per layer via the \
         `skynet.*.bwd` spans; {bwd_miss_bytes} bytes from the arena miss path.\n",
        bwd_wall.as_secs_f64() * 1e3 / bwd_iters as f64,
    );
    let _ = writeln!(report, "{bwd_table}");

    let _ = writeln!(
        report,
        "\nPooled forward ({trace_iters} iterations): {:.2} ms/iter — per-thread timeline in \
         `bench_results/profile_trace.json` ({} spans; open in <https://ui.perfetto.dev>).\n",
        pooled.as_secs_f64() * 1e3 / trace_iters as f64,
        trace_spans.len()
    );
    let _ = writeln!(report, "## Metrics snapshot (serial forward phase)\n");
    let _ = writeln!(report, "```");
    for (name, v) in &snap.counters {
        if !name.starts_with("pool.") {
            let _ = writeln!(report, "{name} = {v}");
        }
    }
    let _ = writeln!(report, "```");
    std::fs::write("bench_results/profile.md", &report).expect("write report");

    print!("{report}");

    assert!(
        trace_json.starts_with('{') && trace_json.contains("\"traceEvents\":["),
        "trace JSON malformed"
    );
    assert!(
        coverage >= 0.90,
        "per-op table covers only {:.1} % of wall time (need >= 90 %)",
        100.0 * coverage
    );
    assert_eq!(
        fwd_miss_bytes, 0,
        "steady-state forward allocated {fwd_miss_bytes} bytes from the arena miss path"
    );
    assert!(
        fused_coverage >= 0.90,
        "fused per-op table covers only {:.1} % of wall time (need >= 90 %)",
        100.0 * fused_coverage
    );
    assert_eq!(
        fused_miss_bytes, 0,
        "steady-state fused forward allocated {fused_miss_bytes} bytes from the arena miss path"
    );
    assert!(
        fused_stats.iter().any(|s| s.name == "fused.bundle1"),
        "fused phase produced no fused.bundleN spans — plan did not execute"
    );
    assert_eq!(
        bwd_miss_bytes, 0,
        "steady-state training step allocated {bwd_miss_bytes} bytes from the arena miss path"
    );
    assert!(
        bwd_stats.iter().any(|s| s.name == "skynet.bundle1.bwd"),
        "per-layer backward spans missing from the training-step profile"
    );
    if full {
        // The acceptance floors only bind on the machine that produced
        // the baseline; the fast (CI) budget checks behaviour, not speed.
        let dw_speedup = BASE_DWCONV_SELF_MS / dwconv_self_ms.max(1e-9);
        assert!(
            dw_speedup >= 2.0,
            "dwconv_fwd self time speedup {dw_speedup:.2}x < 2x floor"
        );
        let e2e_speedup = BASE_E2E_MS / e2e_ms.max(1e-9);
        assert!(
            e2e_speedup >= 1.5,
            "end-to-end forward speedup {e2e_speedup:.2}x < 1.5x floor"
        );
    }
    println!(
        "profile OK: {:.1} % of wall time attributed across {} ops; 0 arena-miss bytes",
        100.0 * coverage,
        stats.len()
    );
}
