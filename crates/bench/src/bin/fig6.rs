//! Fig. 6 — bounding-box relative-size distribution of the (synthetic)
//! DAC-SDC training set.
//!
//! The paper reports 31% of objects under 1% of the image area and 91%
//! under 9%; the generator is calibrated to those quantiles, and this
//! binary prints the per-bucket histogram and cumulative curve.

use skynet_bench::table;
use skynet_bench::Budget;
use skynet_data::dacsdc::{size_histogram, DacSdc, DacSdcConfig};

fn main() {
    let budget = Budget::from_env();
    let n = budget.pick(2_000, 50_000);
    let mut gen = DacSdc::new(DacSdcConfig::default());
    let ratios = gen.size_ratios(n);

    let buckets: Vec<f32> = (1..=20).map(|i| i as f32 * 0.01).collect();
    let (ub, frac, cum) = size_histogram(&ratios, &buckets);

    table::header(
        "Fig. 6: bbox relative size distribution",
        &[("size ≤", 8), ("fraction", 10), ("cumulative", 10)],
    );
    for i in 0..ub.len() {
        table::row(&[
            (format!("{:.0}%", ub[i] * 100.0), 8),
            (table::f(frac[i] as f64, 4), 10),
            (table::f(cum[i] as f64, 4), 10),
        ]);
    }
    let below = |t: f32| ratios.iter().filter(|&&r| r < t).count() as f32 / ratios.len() as f32;
    println!();
    println!("P(size < 1%) = {:.1}%   (paper: 31%)", below(0.01) * 100.0);
    println!("P(size < 9%) = {:.1}%   (paper: 91%)", below(0.09) * 100.0);
}
