//! Fig. 10 / §6.3 — the task-partitioned system pipeline: serial vs
//! multithreaded execution of (fetch + pre-process) → inference →
//! post-process, measured with real threads.
//!
//! The §6.3 speedup has two ingredients: (1) the three-stage overlap, and
//! (2) merging input fetching into pre-processing *in batch units*, which
//! amortizes per-frame storage latency. The serial baseline therefore
//! pays `fetch + pre + infer + post` per frame while the pipelined system
//! pays `max(batched-fetch + pre, infer, post)`. With TX2-calibrated
//! stage times this lands at the paper's ~3.35×.

use skynet_bench::{table, Budget};
use skynet_hw::pipeline::{run_pipelined, run_serial, wait_us, Stages};

/// TX2-calibrated per-frame stage times (µs).
const FETCH_US: u64 = 15_000; // per-frame flash read, unbatched
const FETCH_BATCHED_US: u64 = 2_000; // amortized over a fetch batch
const PRE_US: u64 = 10_000; // resize + normalize
const INFER_US: u64 = 14_500; // SkyNet forward on the TX2 GPU
const POST_US: u64 = 10_000; // decode + DDR buffering

fn stages(pre_us: u64) -> Stages<usize, usize, usize> {
    Stages {
        pre: Box::new(move |i: usize| {
            wait_us(pre_us);
            i
        }),
        infer: Box::new(|i: usize| {
            wait_us(INFER_US);
            i
        }),
        post: Box::new(|i: usize| {
            wait_us(POST_US);
            i
        }),
    }
}

fn main() {
    let budget = Budget::from_env();
    let frames = budget.pick(30, 300);

    // Serial baseline: per-frame fetch + all four steps in sequence.
    let serial = run_serial(frames, &stages(FETCH_US + PRE_US));
    // Pipelined system: batched fetch merged into the pre thread.
    let pipelined =
        run_pipelined(frames, stages(FETCH_BATCHED_US + PRE_US)).expect("pipelined run");

    table::header(
        "Fig. 10: serial vs task-partitioned pipeline (measured, real threads)",
        &[("schedule", 32), ("ms/frame", 9), ("FPS", 8)],
    );
    table::row(&[
        ("serial (fetch,pre,infer,post)".into(), 32),
        (table::f(1e3 / serial.fps, 2), 9),
        (table::f(serial.fps, 2), 8),
    ]);
    table::row(&[
        ("pipelined + batched fetch".into(), 32),
        (table::f(1e3 / pipelined.fps, 2), 9),
        (table::f(pipelined.fps, 2), 8),
    ]);
    println!();
    println!(
        "measured speedup: {:.2}x   (paper: 3.35x; pipelined FPS {:.1} vs paper 67.33)",
        pipelined.fps / serial.fps,
        pipelined.fps
    );

    // Overlap-only ablation (no fetch batching): the three-stage pipeline
    // alone is bounded by the slowest stage.
    let overlap_only = run_pipelined(frames, stages(FETCH_US + PRE_US)).expect("overlap-only run");
    println!(
        "overlap without batched fetch: {:.2}x (bound by the {} ms fetch+pre stage)",
        overlap_only.fps / serial.fps,
        (FETCH_US + PRE_US) / 1000
    );
}
