//! Fault-tolerance demonstration: the supervised three-stage pipeline
//! under a seeded schedule of injected panics, stage errors and stalls
//! (the ISSUE acceptance scenario — permanent faults across ≥5% of
//! frames), compared across degradation policies.
//!
//! `CoastLastGood` must keep the output stream complete — one detection
//! per input frame, degraded frames re-emitting the previous good
//! output, tracker-style — while `DropFrame` shows what the same faults
//! cost without coasting. The report is archived under `bench_results/`.
//!
//! Usage: `cargo run --release -p skynet-bench --bin fault_tolerance`
//! (optionally `SKYNET_FAULT_SEED=n` to replay a different schedule).

use skynet_bench::table;
use skynet_hw::fault::{silence_injected_panics, FaultPlan, FaultRates};
use skynet_hw::pipeline::{run_supervised, DegradePolicy, FrameCtx, SupStages, SupervisorConfig};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

const FRAMES: usize = 80;

/// Identity stages over frame indices, standing in for the real
/// pre/infer/post bodies — the supervisor and fault paths are identical.
fn stages() -> SupStages<usize, usize, usize> {
    SupStages {
        pre: Box::new(|ctx: &FrameCtx| Ok(ctx.frame)),
        infer: Box::new(|_, i| Ok(i)),
        post: Box::new(|_, i| Ok(i)),
    }
}

fn main() {
    silence_injected_panics();
    let seed: u64 = std::env::var("SKYNET_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let rates = FaultRates {
        panic: 0.04,
        error: 0.04,
        stall: 0.02,
        stall_for: Duration::from_millis(20),
        persist_attempts: u32::MAX, // permanent — retries cannot save them
    };
    let plan = FaultPlan::scheduled(seed, FRAMES, &rates);
    let faulted = plan.faulted_frames(FRAMES);
    assert!(
        faulted * 20 >= FRAMES,
        "schedule must fault >=5% of frames (got {faulted}/{FRAMES}); pick another seed"
    );
    let plan = Arc::new(plan);

    let cfg = |policy| SupervisorConfig {
        max_retries: 1,
        backoff: Duration::from_micros(100),
        deadline: Some(Duration::from_millis(5)),
        policy,
        channel_depth: 4,
    };
    let coast = run_supervised(
        FRAMES,
        stages().with_faults(plan.clone()),
        &cfg(DegradePolicy::CoastLastGood),
    );
    let drop = run_supervised(
        FRAMES,
        stages().with_faults(plan.clone()),
        &cfg(DegradePolicy::DropFrame),
    );

    assert_eq!(
        coast.outputs.len(),
        FRAMES,
        "CoastLastGood must emit every frame"
    );
    let cc = coast.report.counters;
    let dc = drop.report.counters;
    assert_eq!(cc.processed + cc.degraded + cc.dropped, FRAMES);
    assert_eq!(dc.processed + dc.dropped, FRAMES);

    table::header(
        "Supervised pipeline under injected faults (panic+error+stall)",
        &[
            ("policy", 14),
            ("emitted", 8),
            ("clean", 7),
            ("degraded", 9),
            ("dropped", 8),
            ("retries", 8),
        ],
    );
    for (name, run) in [("CoastLastGood", &coast), ("DropFrame", &drop)] {
        let c = run.report.counters;
        table::row(&[
            (name.into(), 14),
            (run.outputs.len().to_string(), 8),
            (c.processed.to_string(), 7),
            (c.degraded.to_string(), 9),
            (c.dropped.to_string(), 8),
            (c.retried.to_string(), 8),
        ]);
    }
    println!();
    println!(
        "schedule: seed {seed}, {} faults over {faulted}/{FRAMES} frames ({:.0}% coverage)",
        plan.len(),
        100.0 * faulted as f64 / FRAMES as f64
    );

    let mut report = String::new();
    let _ = writeln!(report, "# Fault tolerance: degrade, don't die\n");
    let _ = writeln!(
        report,
        "{FRAMES} frames through the supervised three-stage pipeline with a\n\
         deterministic fault schedule (seed {seed}): permanent panics, stage\n\
         errors and 20 ms stalls on {faulted}/{FRAMES} frames ({} faulted\n\
         stage-coordinates), 1 retry, 5 ms deadline.",
        plan.len()
    );
    let _ = writeln!(
        report,
        "\n| policy | emitted | clean | degraded | dropped | retries |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|");
    for (name, run) in [("CoastLastGood", &coast), ("DropFrame", &drop)] {
        let c = run.report.counters;
        let _ = writeln!(
            report,
            "| {name} | {} | {} | {} | {} | {} |",
            run.outputs.len(),
            c.processed,
            c.degraded,
            c.dropped,
            c.retried
        );
    }
    let _ = writeln!(
        report,
        "\n`CoastLastGood` keeps the detection stream complete by re-emitting\n\
         the previous frame's output for every unrecoverable frame — the\n\
         single-object-tracking degradation of the paper's contest setting —\n\
         while `DropFrame` loses those frames outright. Both runs replay\n\
         bit-identically from the seed."
    );

    print!("{report}");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/fault_tolerance.md", &report).expect("write report");
    println!("\nreport written to bench_results/fault_tolerance.md");
}
