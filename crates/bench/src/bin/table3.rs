//! Table 3 / Fig. 4 — the SkyNet architecture family, layer by layer,
//! printed from the same descriptors the hardware models consume, with
//! per-layer output shapes, parameters and MACs at contest resolution
//! (3×160×320).

use skynet_bench::table;
use skynet_core::desc::LayerDesc;
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_nn::Act;

fn layer_name(l: &LayerDesc) -> String {
    match *l {
        LayerDesc::Conv {
            in_c, out_c, k: 1, ..
        } => format!("PW-Conv1 ({in_c}->{out_c})"),
        LayerDesc::Conv { in_c, out_c, k, .. } => format!("Conv{k} ({in_c}->{out_c})"),
        LayerDesc::DwConv { c, k, .. } => format!("DW-Conv{k} ({c})"),
        LayerDesc::Pool { k, .. } => format!("{k}x{k} max-pool"),
        LayerDesc::Bn { c } => format!("BN ({c})"),
        LayerDesc::Act { .. } => "ReLU6".into(),
        LayerDesc::Reorg { c, s } => format!("FM reorder x{s} ({c}->{})", c * s * s),
        LayerDesc::Concat { c_main, c_bypass } => {
            format!("concat ({c_main}+{c_bypass})")
        }
    }
}

fn main() {
    for variant in [Variant::A, Variant::B, Variant::C] {
        let cfg = SkyNetConfig::new(variant, Act::Relu6);
        let desc = cfg.descriptor(160, 320);
        table::header(
            &format!(
                "Table 3: SkyNet model {variant} ({} params, {:.2} MB, {:.0} MMACs)",
                desc.total_params(),
                desc.total_params() as f64 * 4.0 / 1048576.0,
                desc.total_macs() as f64 / 1e6
            ),
            &[("layer", 24), ("output", 14), ("params", 9), ("MMACs", 8)],
        );
        for ls in desc.walk() {
            // Skip the BN/activation glue rows for readability, as the
            // paper's table does ("each convolutional layer ... followed
            // by a BN and a ReLU, omitted for conciseness").
            if matches!(ls.layer, LayerDesc::Bn { .. } | LayerDesc::Act { .. }) {
                continue;
            }
            table::row(&[
                (layer_name(&ls.layer), 24),
                (format!("{}x{}x{}", ls.c_out, ls.h_out, ls.w_out), 14),
                (format!("{}", ls.layer.params()), 9),
                (
                    format!("{:.1}", ls.layer.macs(ls.h_in, ls.w_in) as f64 / 1e6),
                    8,
                ),
            ]);
        }
    }
    println!();
    println!("paper sizes: A 1.27 MB, B 1.57 MB, C 1.82 MB (Table 4 column 2);");
    println!("backbone parameter count 0.44 M (Table 2).");
}
