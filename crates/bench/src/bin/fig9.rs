//! Fig. 9 — the input batch-and-tiling plan: buffer utilization and
//! weight-reuse effect on SkyNet, plus a functional verification that the
//! stitched execution matches per-image execution.

use skynet_bench::table;
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_hw::fpga::{estimate, FpgaDevice};
use skynet_hw::quant::QuantScheme;
use skynet_hw::tiling::{plan, stitch4, unstitch4};
use skynet_nn::{Act, Conv2d, Layer, Mode};
use skynet_tensor::{rng::SkyRng, Shape, Tensor};

fn main() {
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let p = plan(&desc);
    table::header(
        "Fig. 9: batch-and-tiling plan for SkyNet on Ultra96",
        &[("metric", 34), ("value", 12)],
    );
    table::row(&[
        ("shared buffer (elements)".into(), 34),
        (format!("{}", p.buffer_elems), 12),
    ]);
    table::row(&[
        ("layers merged (4-image mode)".into(), 34),
        (format!("{}/{}", p.merged_layers(), p.merged.len()), 12),
    ]);
    table::row(&[
        ("buffer utilization, plain".into(), 34),
        (table::f(p.utilization_plain, 3), 12),
    ]);
    table::row(&[
        ("buffer utilization, tiled".into(), 34),
        (table::f(p.utilization_tiled, 3), 12),
    ]);
    table::row(&[
        ("avg images per weight load".into(), 34),
        (table::f(p.weight_reuse, 2), 12),
    ]);

    // Throughput effect through the FPGA model: batch 1 vs batch 4.
    let scheme = QuantScheme::new(11, 9);
    let b1 = estimate(&desc, &FpgaDevice::ultra96(), scheme, 1);
    let b4 = estimate(&desc, &FpgaDevice::ultra96(), scheme, 4);
    println!();
    println!(
        "FPGA model: {:.2} FPS without tiling -> {:.2} FPS with 4-input tiling ({:.2}x)",
        b1.fps,
        b4.fps,
        b4.fps / b1.fps
    );

    // Functional check: point-wise stage is bit-exact under stitching.
    let mut rng = SkyRng::new(42);
    let mut pw = Conv2d::pointwise(3, 8, &mut rng);
    let imgs: Vec<Tensor> = (0..4)
        .map(|i| {
            let s = Shape::new(1, 3, 8, 8);
            let mut r = SkyRng::new(100 + i);
            Tensor::from_vec(s, (0..s.numel()).map(|_| r.uniform()).collect()).unwrap()
        })
        .collect();
    let tiled = pw
        .forward(&stitch4(&imgs).expect("4 same-shape images"), Mode::Eval)
        .expect("pw forward");
    let quads = unstitch4(&tiled).expect("even extents");
    let mut max_err = 0.0f32;
    for (img, quad) in imgs.iter().zip(&quads) {
        let single = pw.forward(img, Mode::Eval).expect("pw forward");
        max_err = max_err.max(single.sub(quad).expect("same shape").max_abs());
    }
    println!("stitched-vs-single PW output max |err| = {max_err:.2e} (exact by construction)");
}
