//! End-to-end fused-vs-unfused forward benchmark.
//!
//! Runs the model-C backbone (width ÷8, 160×320 input — the same
//! configuration `profile` measures) in eval mode with the graph-level
//! execution plan on (`SKYNET_FUSION=on`: BN-fold + fused activation +
//! cache-resident DW→PW bundle tiles) and off (the unfused
//! layer-by-layer oracle), pooled and forced-serial, and reports the
//! speedup. Before timing, the two paths' outputs are asserted
//! **CRC-identical** — the fusion bit-identity contract at the whole-net
//! level — and the `fusion.*` counters are checked to prove the plan
//! actually executed (no silent fallback).
//!
//! The report is archived at `bench_results/fusion_bench.md`. Under the
//! full budget the run fails if the pooled fused forward is slower than
//! the pooled unfused forward; `SKYNET_BENCH_BUDGET=fast` (CI) checks
//! behaviour, not speed.

use skynet_bench::Budget;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer, Mode};
use skynet_tensor::crc32::Crc32;
use skynet_tensor::{fusion, parallel, rng::SkyRng, simd, telemetry, Shape, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

fn crc(t: &Tensor) -> u32 {
    let mut h = Crc32::new();
    for v in t.as_slice() {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.finalize()
}

/// Best-of-`reps` ms/iter of `iters` forwards, with the reps interleaved
/// between the fused and unfused paths so a noise window hits both.
fn time_paths(net: &mut SkyNet, x: &Tensor, iters: usize, reps: usize, serial: bool) -> (f64, f64) {
    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps {
        for (slot, fuse) in [(0usize, false), (1usize, true)] {
            fusion::force(fuse);
            let mut run = || {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(net.forward(x, Mode::Eval).expect("forward"));
                }
                t0.elapsed().as_secs_f64()
            };
            let secs = if serial { parallel::serial(run) } else { run() };
            best[slot] = best[slot].min(secs);
        }
    }
    (best[0] * 1e3 / iters as f64, best[1] * 1e3 / iters as f64)
}

fn main() {
    let budget = Budget::from_env();
    let full = matches!(budget, Budget::Full);
    let iters = budget.pick(3, 20);
    let reps = budget.pick(2, 5);
    let shape = Shape::new(1, 3, 160, 320);

    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
    let mut rng = SkyRng::new(42);
    let mut net = SkyNet::new(cfg, &mut rng);
    let x = Tensor::from_vec(
        shape,
        (0..shape.numel())
            .map(|i| ((i % 251) as f32 / 251.0) - 0.5)
            .collect(),
    )
    .expect("input tensor");

    // Bit-identity gate first, with the plan-execution counters armed so
    // a silent fallback to the unfused path cannot fake a pass.
    telemetry::Builder::new().metrics(true).trace(false).apply();
    telemetry::reset_metrics();
    fusion::force(false);
    let y_unfused = net.forward(&x, Mode::Eval).expect("unfused forward");
    fusion::force(true);
    let y_fused = net.forward(&x, Mode::Eval).expect("fused forward");
    let (crc_u, crc_f) = (crc(&y_unfused), crc(&y_fused));
    assert_eq!(crc_u, crc_f, "fused forward diverged from unfused");
    let snap = telemetry::snapshot();
    let bundles = snap.counter("fusion.bundles_executed").unwrap_or(0);
    assert_eq!(bundles, 6, "expected all 6 model-C bundles fused");
    assert_eq!(
        snap.counter("fusion.fallback").unwrap_or(0),
        0,
        "plan build fell back to the unfused path"
    );
    let dram_saved = snap.counter("fusion.dram_bytes_saved").unwrap_or(0);
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();

    // Warm both paths' code and both arena populations (pooled + serial).
    for fuse in [false, true] {
        fusion::force(fuse);
        net.forward(&x, Mode::Eval).expect("warmup");
        parallel::serial(|| net.forward(&x, Mode::Eval).expect("warmup serial"));
    }

    let (ser_unfused, ser_fused) = time_paths(&mut net, &x, iters, reps, true);
    let (par_unfused, par_fused) = time_paths(&mut net, &x, iters, reps, false);

    let mut report = String::new();
    let _ = writeln!(report, "# Fused vs unfused end-to-end forward\n");
    let _ = writeln!(
        report,
        "Model C (width ÷8), input {shape}, best of {reps} runs of {iters} \
         eval forwards per path per mode, reps interleaved. Active SIMD \
         backend: `{}`; pool size {}. Both paths produce CRC-identical \
         outputs (`{crc_u:08x}`), asserted before timing; the plan fused \
         all {bundles} bundles with zero fallbacks and skips \
         {dram_saved} bytes of intermediate DRAM traffic per forward.\n",
        simd::active().name(),
        parallel::num_threads(),
    );
    let _ = writeln!(report, "| mode | unfused ms | fused ms | speedup |");
    let _ = writeln!(report, "|---|---:|---:|---:|");
    let _ = writeln!(
        report,
        "| serial | {ser_unfused:.3} | {ser_fused:.3} | {:.2}x |",
        ser_unfused / ser_fused
    );
    let _ = writeln!(
        report,
        "| pooled | {par_unfused:.3} | {par_fused:.3} | {:.2}x |",
        par_unfused / par_fused
    );
    let _ = writeln!(
        report,
        "\nThe fused path eliminates the five per-bundle full-map \
         intermediates (DW output, two BN outputs, two activation \
         outputs): each bundle runs DW→BN→Act→PW→BN→Act over row bands \
         whose tiles stay in the thread-local scratch arena, with the BN \
         and activation epilogues folded into the producing kernels' \
         store loops.\n"
    );

    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/fusion_bench.md", &report).expect("write report");
    print!("{report}");

    if full {
        let speedup = par_unfused / par_fused;
        assert!(
            speedup >= 1.0,
            "pooled fused forward is slower than unfused ({speedup:.2}x)"
        );
    }
    println!(
        "fusion_bench OK: serial {:.2}x, pooled {:.2}x, outputs CRC-identical",
        ser_unfused / ser_fused,
        par_unfused / par_fused
    );
}
