//! Table 8 — SiamRPN++ on (synthetic) GOT-10k with AlexNet, ResNet-50 and
//! SkyNet backbones: AO, SR@0.50, SR@0.75 and measured FPS.
//!
//! Paper shape: SkyNet's AO matches ResNet-50 (0.364 vs 0.365) while
//! running 1.60× faster (41.22 vs 25.90 FPS) with ~37× fewer backbone
//! parameters; AlexNet is fastest but least accurate per SR@0.75.

use skynet_bench::{data, table, Budget};
use skynet_nn::{LrSchedule, Sgd};
use skynet_track::backbone::BackboneKind;
use skynet_track::eval::evaluate;
use skynet_track::siamrpn::{train_on_sequences, SiamConfig, SiamRpn};

fn main() {
    let budget = Budget::from_env();
    let (train_seqs, eval_seqs) = data::tracking_split(budget);
    let epochs = budget.pick(2, 30);

    let paper = [
        (BackboneKind::AlexNet, (0.354, 0.385, 0.101, 52.36)),
        (BackboneKind::ResNet50, (0.365, 0.411, 0.115, 25.90)),
        (BackboneKind::SkyNet, (0.364, 0.391, 0.116, 41.22)),
    ];

    table::header(
        "Table 8: SiamRPN++ backbones on synthetic GOT-10k",
        &[
            ("backbone", 10),
            ("AO(p)", 6),
            ("AO", 6),
            ("SR.50", 6),
            ("SR.75", 6),
            ("FPS(p)", 7),
            ("FPS", 8),
            ("params", 8),
        ],
    );
    let mut measured = Vec::new();
    for (kind, (p_ao, _p_sr50, _p_sr75, p_fps)) in paper {
        let mut tracker = SiamRpn::new(SiamConfig::new(kind));
        let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 1e-4).with_grad_clip(1.0);
        train_on_sequences(&mut tracker, &train_seqs, epochs, &mut opt, 8)
            .expect("training succeeds");
        let report = evaluate(&mut tracker, &eval_seqs).expect("evaluation succeeds");
        table::row(&[
            (kind.name().into(), 10),
            (table::f(p_ao, 3), 6),
            (table::f(report.metrics.ao as f64, 3), 6),
            (table::f(report.metrics.sr50 as f64, 3), 6),
            (table::f(report.metrics.sr75 as f64, 3), 6),
            (table::f(p_fps, 2), 7),
            (table::f(report.fps, 2), 8),
            (table::params_m(kind.paper_params()), 8),
        ]);
        measured.push((kind, report.metrics.ao, report.fps));
    }
    println!();
    let get = |k: BackboneKind| {
        measured
            .iter()
            .find(|(kk, _, _)| *kk == k)
            .expect("backbone present")
    };
    let sky = get(BackboneKind::SkyNet);
    let r50 = get(BackboneKind::ResNet50);
    println!(
        "shape check: SkyNet/ResNet-50 speedup {:.2}x (paper 1.60x); AO gap {:+.3} (paper -0.001)",
        sky.2 / r50.2,
        sky.1 - r50.1
    );
    println!(
        "paper-scale backbone size ratio ResNet-50/SkyNet: {:.1}x (paper reports 37.2x \
         including tracker necks)",
        BackboneKind::ResNet50.paper_params() as f64 / BackboneKind::SkyNet.paper_params() as f64
    );
}
