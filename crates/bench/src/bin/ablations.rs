//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **group-based PSO vs random search** at the same training budget —
//!    the Stage 2 search mechanism earns its keep;
//! 2. **IP-shared vs per-layer dedicated FPGA mapping** — why the paper
//!    shares one IP set across every Bundle;
//! 3. **ReLU vs ReLU6 under feature-map quantization** — the §5.2 claim
//!    that the clipped range needs fewer bits.

use skynet_bench::runner::{train_detector, TRAIN_DIV};
use skynet_bench::{data, table, Budget};
use skynet_core::bundle::BundleSpec;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::evaluate_mode;
use skynet_hw::fpga::{estimate, estimate_dedicated, FpgaDevice};
use skynet_hw::quant::QuantScheme;
use skynet_nas::arch::CandidateArch;
use skynet_nas::pso::{self, PsoConfig};
use skynet_nn::{Act, Mode};
use skynet_tensor::rng::SkyRng;

fn main() {
    let budget = Budget::from_env();

    ablate_search(budget);
    ablate_ip_sharing();
    ablate_activation_quantization(budget);
}

/// PSO vs random search with identical per-candidate budgets.
fn ablate_search(budget: Budget) {
    let mut gcfg = skynet_data::dacsdc::DacSdcConfig::default().trainable();
    gcfg.height = 24;
    gcfg.width = 48;
    gcfg.sizes.min_ratio = 0.02;
    let mut gen = skynet_data::dacsdc::DacSdc::new(gcfg);
    let (n_train, n_val) = budget.pick((16, 8), (96, 32));
    let (train, val) = gen.generate_split(n_train, n_val);
    let anchors = Anchors::dac_sdc();

    let cfg = PsoConfig {
        particles_per_group: budget.pick(2, 4),
        iterations: budget.pick(1, 3),
        base_epochs: budget.pick(1, 3),
        depth: 4,
        channel_range: (4, 32),
        pools: 2,
        ..PsoConfig::default()
    };
    let groups = vec![BundleSpec::skynet(Act::Relu6)];
    let pso_out = pso::run(&groups, &cfg, &train, &val, &anchors).expect("pso runs");

    // Random search: same number of (train + evaluate) calls, no
    // evolution between rounds.
    let evals = cfg.particles_per_group * cfg.iterations;
    let mut best_random = f64::NEG_INFINITY;
    for i in 0..evals {
        let rcfg = PsoConfig {
            particles_per_group: 1,
            iterations: 1,
            base_epochs: cfg.base_epochs + cfg.iterations / 2, // equalize epochs
            seed: 0xAB10 + i as u64,
            ..cfg.clone()
        };
        let out = pso::run(&groups, &rcfg, &train, &val, &anchors).expect("random arm runs");
        best_random = best_random.max(out.global_best.fitness);
    }

    table::header(
        "Ablation 1: group-based PSO vs random search (Eq. 1 fitness)",
        &[("method", 14), ("best fitness", 12)],
    );
    table::row(&[
        ("PSO".into(), 14),
        (table::f(pso_out.global_best.fitness, 3), 12),
    ]);
    table::row(&[("random".into(), 14), (table::f(best_random, 3), 12)]);
    println!("PSO winner: {}", pso_out.global_best.arch);
}

/// Shared vs dedicated IP mapping on the Ultra96.
fn ablate_ip_sharing() {
    let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
    let scheme = QuantScheme::new(11, 9);
    let shared = estimate(&desc, &FpgaDevice::ultra96(), scheme, 4);
    let dedicated = estimate_dedicated(&desc, &FpgaDevice::ultra96(), scheme);
    table::header(
        "Ablation 2: IP-shared vs per-layer dedicated FPGA mapping",
        &[
            ("mapping", 10),
            ("ms/frame", 9),
            ("DSP", 6),
            ("BRAM18", 7),
            ("feasible", 8),
        ],
    );
    for (name, e) in [("shared", shared), ("dedicated", dedicated)] {
        table::row(&[
            (name.into(), 10),
            (table::f(e.latency_ms, 1), 9),
            (format!("{}", e.dsp), 6),
            (format!("{}", e.bram18), 7),
            (format!("{}", e.feasible), 8),
        ]);
    }
}

/// ReLU vs ReLU6 robustness to feature-map quantization (trained models).
fn ablate_activation_quantization(budget: Budget) {
    let (train, val) = data::detection_split(budget);
    table::header(
        "Ablation 3: activation x FM quantization (validation IoU)",
        &[
            ("activation", 10),
            ("float", 7),
            ("FM10", 7),
            ("FM8", 7),
            ("FM6", 7),
        ],
    );
    for act in [Act::Relu, Act::Relu6] {
        let mut rng = SkyRng::new(0xAC7);
        let cfg = SkyNetConfig::new(Variant::C, act).with_width_divisor(TRAIN_DIV);
        let mut trained = train_detector(
            Box::new(SkyNet::new(cfg, &mut rng)),
            budget,
            &train,
            &val,
            false,
            0xAC7,
        )
        .expect("training succeeds");
        let mut cells = vec![(act.to_string(), 10), (table::f(trained.iou as f64, 3), 7)];
        for bits in [10u8, 8, 6] {
            let iou = evaluate_mode(
                &mut trained.detector,
                &val,
                16,
                Mode::QuantEval { fm_bits: bits },
            )
            .expect("eval succeeds");
            cells.push((table::f(iou as f64, 3), 7));
        }
        table::row(&cells);
    }
    println!("(§5.2: ReLU6's clipped range should tolerate fewer FM bits than ReLU)");

    // Structural ablation context: the candidate abstraction exposes what
    // the search space looked like.
    let example = CandidateArch::new(
        BundleSpec::skynet(Act::Relu6),
        vec![6, 12, 24, 48, 64],
        vec![true, true, true, false, false],
    );
    println!("example Stage-2 candidate: {example}");
}
