//! Kill-and-resume demonstration for `Trainer::train_resumable`.
//!
//! The crash is real: this binary re-executes itself as child processes
//! (the same pattern as `parallel_speedup`). One child trains the full
//! run uninterrupted and reports its weight hash; a second child trains
//! half the epochs against a shared checkpoint path and then
//! `abort()`s — an actual SIGABRT, no staged teardown; a third child
//! resumes from the survivor checkpoint and finishes the run. The parent
//! verifies the killed+resumed weights hash bit-identically to the
//! uninterrupted run and archives the report under `bench_results/`.
//!
//! Usage: `cargo run --release -p skynet-bench --bin kill_resume`

use skynet_bench::data::detection_split;
use skynet_bench::Budget;
use skynet_core::checkpoint;
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{TrainConfig, Trainer};
use skynet_nn::{Act, LrSchedule, Sgd};
use skynet_tensor::rng::SkyRng;
use std::fmt::Write as _;
use std::process::Command;

const CHILD_FLAG: &str = "SKYNET_RESUME_CHILD";
const CKPT_FLAG: &str = "SKYNET_RESUME_CKPT";
const FULL_EPOCHS: usize = 4;
const KILL_AFTER: usize = 2;

fn main() {
    match std::env::var(CHILD_FLAG).as_deref() {
        Ok("full") => child(FULL_EPOCHS, false),
        Ok("die") => child(KILL_AFTER, true),
        Ok("resume") => child(FULL_EPOCHS, false),
        _ => parent(),
    }
}

fn detector() -> Detector {
    let mut rng = SkyRng::new(42);
    let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(8);
    Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc())
}

/// Trains `epochs` epochs against the checkpoint path from the
/// environment, then either reports the weight hash or dies abruptly.
fn child(epochs: usize, die: bool) {
    let ckpt = std::env::var(CKPT_FLAG).expect("checkpoint path env var");
    let (train, _) = detection_split(Budget::Fast);
    let mut det = detector();
    let mut opt = Sgd::new(LrSchedule::Constant(5e-3), 0.9, 1e-4);
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 8,
        scales: Vec::new(),
        seed: 7,
    });
    let stats = trainer
        .train_resumable(&mut det, &train, &mut opt, &ckpt)
        .expect("resumable training");
    if die {
        // Simulate a hard crash immediately after the last finished
        // epoch's checkpoint hit disk. No destructors, no flushing.
        std::process::abort();
    }
    println!("epochs_run={}", stats.len());
    println!(
        "weight_hash={:#018x}",
        checkpoint::weight_hash(det.backbone_mut())
    );
}

fn run_child(exe: &std::path::Path, mode: &str, ckpt: &std::path::Path) -> std::process::Output {
    Command::new(exe)
        .env(CHILD_FLAG, mode)
        .env(CKPT_FLAG, ckpt)
        .env("SKYNET_BENCH_BUDGET", "fast")
        .output()
        .unwrap_or_else(|e| panic!("spawn {mode} child: {e}"))
}

fn field(stdout: &str, key: &str) -> String {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("child output missing `{key}=`:\n{stdout}"))
        .to_string()
}

fn parent() {
    let exe = std::env::current_exe().expect("own executable path");
    let mut ckpt_full = std::env::temp_dir();
    ckpt_full.push(format!("skynet-kill-resume-full-{}", std::process::id()));
    let mut ckpt_killed = std::env::temp_dir();
    ckpt_killed.push(format!("skynet-kill-resume-killed-{}", std::process::id()));
    std::fs::remove_file(&ckpt_full).ok();
    std::fs::remove_file(&ckpt_killed).ok();

    // Reference: the uninterrupted run.
    let full = run_child(&exe, "full", &ckpt_full);
    assert!(
        full.status.success(),
        "full child failed:\n{}",
        String::from_utf8_lossy(&full.stderr)
    );
    let full_out = String::from_utf8_lossy(&full.stdout).to_string();
    let full_hash = field(&full_out, "weight_hash");

    // The victim: trains half the epochs, checkpoints, and aborts.
    let die = run_child(&exe, "die", &ckpt_killed);
    assert!(
        !die.status.success(),
        "die child was supposed to crash but exited cleanly"
    );
    assert!(
        ckpt_killed.exists(),
        "the killed run must leave its checkpoint behind"
    );

    // The survivor: resumes from the checkpoint and finishes.
    let resume = run_child(&exe, "resume", &ckpt_killed);
    assert!(
        resume.status.success(),
        "resume child failed:\n{}",
        String::from_utf8_lossy(&resume.stderr)
    );
    let resume_out = String::from_utf8_lossy(&resume.stdout).to_string();
    let resume_hash = field(&resume_out, "weight_hash");
    let resumed_epochs: usize = field(&resume_out, "epochs_run")
        .parse()
        .expect("epochs_run");

    assert_eq!(
        full_hash, resume_hash,
        "killed+resumed weights diverged from the uninterrupted run"
    );
    assert_eq!(
        resumed_epochs,
        FULL_EPOCHS - KILL_AFTER,
        "resume must only run the missing epochs"
    );

    let mut report = String::new();
    let _ = writeln!(report, "# Kill-and-resume: bit-identical recovery\n");
    let _ = writeln!(
        report,
        "Width/8 SkyNet-A detector, {FULL_EPOCHS} epochs on the fast DAC-SDC\n\
         split. One child process per run; the killed run `abort()`s after\n\
         epoch {KILL_AFTER}'s checkpoint."
    );
    let _ = writeln!(report, "\n| run | epochs run | weight hash |");
    let _ = writeln!(report, "|---|---|---|");
    let _ = writeln!(report, "| uninterrupted | {FULL_EPOCHS} | {full_hash} |");
    let _ = writeln!(
        report,
        "| killed after {KILL_AFTER} (SIGABRT) | {KILL_AFTER} | — |"
    );
    let _ = writeln!(
        report,
        "| resumed from checkpoint | {resumed_epochs} | {resume_hash} |"
    );
    let _ = writeln!(
        report,
        "\nThe resumed run's hash equals the uninterrupted run's: the\n\
         checkpoint captures weights, momentum, LR-schedule position, RNG\n\
         state and the shuffle permutation, so recovery is exact to the\n\
         last bit."
    );

    print!("{report}");
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    std::fs::write("bench_results/kill_resume.md", &report).expect("write report");
    println!("\nreport written to bench_results/kill_resume.md");
    std::fs::remove_file(&ckpt_full).ok();
    std::fs::remove_file(&ckpt_killed).ok();
}
