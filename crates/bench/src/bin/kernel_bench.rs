//! Micro-benchmark of the specialized depth-wise kernels against the
//! generic bounds-checked reference (`dwconv::reference`).
//!
//! Covers every DW-Conv3 shape the model-C (÷8) backbone instantiates on
//! a 160×320 input, plus stride-2 and border-heavy geometries where the
//! interior fast path covers the least area. For each case the bin:
//!
//! 1. verifies the specialized forward **and** backward are bit-identical
//!    to the reference (hard assertion — speed never buys accuracy), and
//! 2. times both (best-of-`reps`, all parallel regions forced serial so
//!    the numbers are scheduling-free) and reports the speedup.
//!
//! The report is archived at `bench_results/kernel_bench.md`. The run
//! fails if the aggregate forward speedup over the backbone shapes drops
//! below the budget's floor. `SKYNET_BENCH_BUDGET=fast` for CI.

use skynet_bench::Budget;
use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward, reference};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{parallel, Shape, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

struct Case {
    label: &'static str,
    shape: Shape,
    geo: ConvGeometry,
    /// Counts toward the aggregate-speedup gate (backbone shapes only —
    /// the border-heavy cases exist to watch the worst case, not to
    /// dilute the gate).
    gated: bool,
}

fn cases() -> Vec<Case> {
    let g1 = ConvGeometry::new(3, 1, 1);
    let g2 = ConvGeometry::new(3, 2, 1);
    vec![
        // Model C ÷8 DW-Conv3 sites, 160×320 input.
        Case {
            label: "bundle1 3@160x320",
            shape: Shape::new(1, 3, 160, 320),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle2 6@80x160",
            shape: Shape::new(1, 6, 80, 160),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle3 12@40x80",
            shape: Shape::new(1, 12, 40, 80),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle4 24@20x40",
            shape: Shape::new(1, 24, 20, 40),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle5 48@20x40",
            shape: Shape::new(1, 48, 20, 40),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle6 160@20x40",
            shape: Shape::new(1, 160, 20, 40),
            geo: g1,
            gated: true,
        },
        // Stride-2 (pooling-replacement geometry).
        Case {
            label: "stride2 12@40x80",
            shape: Shape::new(1, 12, 40, 80),
            geo: g2,
            gated: false,
        },
        Case {
            label: "stride2 48@20x40",
            shape: Shape::new(1, 48, 20, 40),
            geo: g2,
            gated: false,
        },
        // Border-heavy: tiny planes and fat padding — mostly border path.
        Case {
            label: "border 16@7x9 p2",
            shape: Shape::new(2, 16, 7, 9),
            geo: ConvGeometry::new(3, 1, 2),
            gated: false,
        },
        Case {
            label: "border 8@5x5 k5p2",
            shape: Shape::new(2, 8, 5, 5),
            geo: ConvGeometry::new(5, 1, 2),
            gated: false,
        },
    ]
}

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Best-of-`reps` serial wall time of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

fn main() {
    let budget = Budget::from_env();
    let reps = budget.pick(3, 10);
    // Aggregate forward floor over the backbone shapes. The full floor is
    // conservative against the >= 2x seen on the dev machine; the fast
    // floor only guards against the fast path being wired out entirely.
    let floor = budget.pick(1.05, 1.5);

    let mut rng = SkyRng::new(0xBE7C);
    let mut report = String::new();
    let _ = writeln!(report, "# DW-Conv kernel micro-benchmark\n");
    let _ = writeln!(
        report,
        "Specialized interior/border kernels vs the generic bounds-checked \
         reference, best of {reps} serial runs per case. Equality is asserted \
         bitwise on every output before timing is trusted.\n"
    );
    let _ = writeln!(
        report,
        "| case | geo | ref fwd ms | spec fwd ms | fwd speedup | ref bwd ms | spec bwd ms | bwd speedup |"
    );
    let _ = writeln!(report, "|---|---|---:|---:|---:|---:|---:|---:|");

    let mut gated_ref = 0.0f64;
    let mut gated_spec = 0.0f64;
    for case in cases() {
        let c = case.shape.c;
        let geo = case.geo;
        let x = random_tensor(case.shape, &mut rng);
        let w = random_tensor(Shape::new(c, 1, geo.kernel, geo.kernel), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();
        let os = geo.out_shape(case.shape, c);
        let go = random_tensor(os, &mut rng);

        // Correctness gate: bitwise equality, forward and backward.
        let y_spec = dwconv2d(&x, &w, Some(&b), geo).expect("spec fwd");
        let y_ref = reference::dwconv2d_ref(&x, &w, Some(&b), geo).expect("ref fwd");
        assert_eq!(
            bits(&y_spec),
            bits(&y_ref),
            "{}: fwd bits diverged",
            case.label
        );
        let g_spec = dwconv2d_backward(&x, &w, &go, geo).expect("spec bwd");
        let g_ref = reference::dwconv2d_backward_ref(&x, &w, &go, geo).expect("ref bwd");
        assert_eq!(
            bits(&g_spec.input),
            bits(&g_ref.input),
            "{}: gi diverged",
            case.label
        );
        assert_eq!(
            bits(&g_spec.weight),
            bits(&g_ref.weight),
            "{}: gw diverged",
            case.label
        );
        assert_eq!(g_spec.bias, g_ref.bias, "{}: gb diverged", case.label);

        let (rf, sf, rb, sb) = parallel::serial(|| {
            let rf = time_best(reps, || {
                reference::dwconv2d_ref(&x, &w, Some(&b), geo).unwrap()
            });
            let sf = time_best(reps, || dwconv2d(&x, &w, Some(&b), geo).unwrap());
            let rb = time_best(reps, || {
                reference::dwconv2d_backward_ref(&x, &w, &go, geo).unwrap()
            });
            let sb = time_best(reps, || dwconv2d_backward(&x, &w, &go, geo).unwrap());
            (rf, sf, rb, sb)
        });
        if case.gated {
            gated_ref += rf;
            gated_spec += sf;
        }
        let _ = writeln!(
            report,
            "| {} | k{} s{} p{} | {:.3} | {:.3} | {:.2}x | {:.3} | {:.3} | {:.2}x |",
            case.label,
            geo.kernel,
            geo.stride,
            geo.pad,
            rf * 1e3,
            sf * 1e3,
            rf / sf,
            rb * 1e3,
            sb * 1e3,
            rb / sb,
        );
    }

    let agg = gated_ref / gated_spec;
    let _ = writeln!(
        report,
        "\nAggregate forward speedup over the backbone shapes: **{agg:.2}x** \
         (floor {floor:.2}x under this budget).\n"
    );
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/kernel_bench.md", &report).expect("write report");
    print!("{report}");

    assert!(
        agg >= floor,
        "aggregate forward speedup {agg:.2}x below the {floor:.2}x floor"
    );
    println!("kernel_bench OK: {agg:.2}x aggregate forward speedup");
}
