//! Micro-benchmark of the hot kernels across every available
//! `SKYNET_SIMD` backend, against the generic bounds-checked reference
//! (`dwconv::reference`) and against the scalar backend (the PR-4 scalar
//! kernels, which the scalar backend replays).
//!
//! Covers every DW-Conv3 shape the model-C (÷8) backbone instantiates on
//! a 160×320 input (plus stride-2 and border-heavy geometries where the
//! interior fast path covers the least area), the backbone's point-wise
//! convolutions, and the matmul shapes they lower to. For each case the
//! bin:
//!
//! 1. verifies the forward matches the reference (bit-identical off the
//!    lane path; rounding tolerance on it, where the balanced
//!    accumulation tree reorders the sums) and the lane-ordered backward
//!    is within rounding tolerance of it, on every backend (hard
//!    assertion — speed never buys accuracy);
//! 2. verifies every backend produces the **same CRC-32** over every
//!    output — the cross-ISA determinism contract, asserted on real
//!    workload shapes rather than property-test sizes; and
//! 3. times each backend (best-of-`reps`, all parallel regions forced
//!    serial so the numbers are scheduling-free) and reports per-backend
//!    speedups over the scalar backend.
//!
//! Two further lanes ride along: the **INT8 lane** times the
//! executable-INT8 kernels (`qint::dwconv3_i8`, `qint::matmul_i8`)
//! against their f32 counterparts on the same shapes — with every
//! backend's raw i32 accumulators asserted **CRC-identical** (the
//! pairwise-`madd` tier vs the scalar oracle, bitwise) — and the
//! **fused lane** times `fused::fused_bundle_forward` against the
//! unfused DW→BN→Act→PW→BN→Act layer sequence with the two paths
//! asserted bit-identical per backend.
//!
//! The report is archived at `bench_results/kernel_bench.md`. The run
//! fails if the aggregate forward speedup of the widest backend over the
//! scalar backend drops below the budget's floor, for the backbone
//! DW-Conv3 shapes and for the matmul shapes independently — and if the
//! INT8 lane's aggregate speedup over f32 drops below its own floor
//! (1.8x at the full budget). `SKYNET_BENCH_BUDGET=fast` for CI.

use skynet_bench::Budget;
use skynet_tensor::conv::{conv2d, ConvGeometry};
use skynet_tensor::crc32::Crc32;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward, reference};
use skynet_tensor::fused::{fused_bundle_forward, BnAct};
use skynet_tensor::matmul::matmul_acc;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{ops, parallel, qint, Shape, Tensor};
use std::fmt::Write as _;
use std::time::Instant;

struct Case {
    label: &'static str,
    shape: Shape,
    geo: ConvGeometry,
    /// Counts toward the aggregate-speedup gate (backbone shapes only —
    /// the border-heavy cases exist to watch the worst case, not to
    /// dilute the gate).
    gated: bool,
}

fn dw_cases() -> Vec<Case> {
    let g1 = ConvGeometry::new(3, 1, 1);
    let g2 = ConvGeometry::new(3, 2, 1);
    vec![
        // Model C ÷8 DW-Conv3 sites, 160×320 input.
        Case {
            label: "bundle1 3@160x320",
            shape: Shape::new(1, 3, 160, 320),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle2 6@80x160",
            shape: Shape::new(1, 6, 80, 160),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle3 12@40x80",
            shape: Shape::new(1, 12, 40, 80),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle4 24@20x40",
            shape: Shape::new(1, 24, 20, 40),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle5 48@20x40",
            shape: Shape::new(1, 48, 20, 40),
            geo: g1,
            gated: true,
        },
        Case {
            label: "bundle6 160@20x40",
            shape: Shape::new(1, 160, 20, 40),
            geo: g1,
            gated: true,
        },
        // Stride-2 (pooling-replacement geometry).
        Case {
            label: "stride2 12@40x80",
            shape: Shape::new(1, 12, 40, 80),
            geo: g2,
            gated: false,
        },
        Case {
            label: "stride2 48@20x40",
            shape: Shape::new(1, 48, 20, 40),
            geo: g2,
            gated: false,
        },
        // Border-heavy: tiny planes and fat padding — mostly border path.
        Case {
            label: "border 16@7x9 p2",
            shape: Shape::new(2, 16, 7, 9),
            geo: ConvGeometry::new(3, 1, 2),
            gated: false,
        },
        Case {
            label: "border 8@5x5 k5p2",
            shape: Shape::new(2, 8, 5, 5),
            geo: ConvGeometry::new(5, 1, 2),
            gated: false,
        },
    ]
}

/// Point-wise (1×1) convolutions of the model-C ÷8 backbone: channel
/// expansions after each DW stage plus the head's feature reduction.
/// `(ci, co, h, w)`.
fn pw_cases() -> Vec<(&'static str, usize, usize, usize, usize)> {
    vec![
        ("pw1 3->6@160x320", 3, 6, 160, 320),
        ("pw2 6->12@80x160", 6, 12, 80, 160),
        ("pw3 12->24@40x80", 12, 24, 40, 80),
        ("pw4 24->48@20x40", 24, 48, 20, 40),
        ("pw5 48->96@20x40", 48, 96, 20, 40),
        ("head 160->12@20x40", 160, 12, 20, 40),
    ]
}

/// Raw matmul shapes `(m, k, n)` the point-wise convolutions lower to
/// (`m = co`, `k = ci`, `n = h·w`), plus a generic square case. Gated
/// shapes keep `k` large enough that the timed per-rep output reset is
/// noise (< ~4 % of the multiply work).
fn mm_cases() -> Vec<(&'static str, usize, usize, usize, bool)> {
    vec![
        ("pw-lowered 48x24x800", 48, 24, 800, true),
        ("pw-lowered 96x48x800", 96, 48, 800, true),
        ("head 12x160x800", 12, 160, 800, true),
        ("square 256x256x256", 256, 256, 256, true),
        ("thin 6x3x51200", 6, 3, 51200, false),
        ("ragged 17x9x63", 17, 9, 63, false),
    ]
}

fn random_tensor(shape: Shape, rng: &mut SkyRng) -> Tensor {
    let data = (0..shape.numel()).map(|_| rng.range(-2.0, 2.0)).collect();
    Tensor::from_vec(shape, data).expect("length matches")
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// CRC-32 over the raw little-endian bytes of `slices`, concatenated.
fn hash_f32(slices: &[&[f32]]) -> u32 {
    let mut h = Crc32::new();
    for s in slices {
        for v in *s {
            h.update(&v.to_le_bytes());
        }
    }
    h.finalize()
}

/// CRC-32 over raw i32 accumulators — the integer lane's bitwise
/// cross-backend witness (pairing tier vs scalar oracle included).
fn hash_i32(s: &[i32]) -> u32 {
    let mut h = Crc32::new();
    for v in s {
        h.update(&v.to_le_bytes());
    }
    h.finalize()
}

/// Rounding tolerance for the lane-ordered backward schedule vs the
/// reference summation order (a real kernel bug produces O(1) errors).
fn assert_close(label: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (&av, &bv)) in a.iter().zip(b).enumerate() {
        assert!(
            (av - bv).abs() <= 1e-3 * bv.abs().max(1.0),
            "{label}[{i}]: {av} vs {bv}"
        );
    }
}

/// Best-of-`reps` wall time of `f` under each backend, with the reps
/// *interleaved* across backends: a noise window (VM steal time, a
/// frequency shift) lands on every backend alike instead of poisoning
/// whichever one it happened to hit, which keeps the cross-backend
/// ratios honest on a loaded host. Returns one best time per backend,
/// in `backends` order. Leaves the forced backend dirty — callers
/// restore it.
fn time_backends<T>(reps: usize, backends: &[Backend], mut f: impl FnMut() -> T) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; backends.len()];
    for _ in 0..reps {
        for (i, &be) in backends.iter().enumerate() {
            simd::force(be);
            let t0 = Instant::now();
            let out = f();
            best[i] = best[i].min(t0.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
    }
    best
}

fn main() {
    let budget = Budget::from_env();
    let reps = budget.pick(3, 10);
    // Aggregate forward floors for the widest backend vs the scalar
    // backend. The full floors are the acceptance criteria measured on
    // the AVX2 dev machine; the fast floors only guard against the
    // vector path being wired out entirely (CI machines vary).
    //
    // Why the DW floor is 1.15x and not 2x: the "scalar" baseline is
    // the same balanced-tree kernel replayed one lane at a time, and
    // rustc auto-vectorizes it to the 4-wide SSE2 that baseline x86-64
    // guarantees — the denominator is already vector code. On top of
    // that the determinism contract forbids FMA (scalar and SSE2 can't
    // reproduce its single rounding), so the AVX2 kernel's 18 FP ops
    // per 8 pixels are port-bound at exactly 2.0x the 4-wide issue
    // rate; borders, short rows (20x40 maps) and memory-bound large
    // maps dilute that realized ~1.9x interior gain to the ~1.4x
    // aggregate measured here (floor set with margin below it).
    let dw_floor = budget.pick(1.02, 1.25);
    let mm_floor = budget.pick(1.02, 1.5);
    // INT8-vs-f32 aggregate floor on the widest backend. The full floor
    // is the PR-10 acceptance criterion for the pairwise-madd tier on
    // the AVX2 dev machine; the fast floor only proves the integer lane
    // still beats f32 at all on whatever CI hands us.
    let q_floor = budget.pick(1.05, 1.8);

    let backends = simd::available_backends();
    let widest = *backends.last().expect("scalar always available");
    let prev = simd::active();

    let mut rng = SkyRng::new(0xBE7C);
    let mut report = String::new();
    let _ = writeln!(report, "# Kernel micro-benchmark: SIMD backend sweep\n");
    let _ = writeln!(
        report,
        "Backends available on this host: {} (widest: {}). Best of {reps} \
         serial runs per case per backend, with the reps interleaved \
         across backends so noise hits them alike. Forward and backward \
         outputs \
         are asserted within rounding tolerance of the bounds-checked \
         reference (the lane path's balanced accumulation tree reorders \
         sums; off the lane path the forward is bit-identical), and every \
         backend's CRC-32 over every output is asserted equal — the \
         cross-ISA determinism contract on real workload shapes.\n",
        backends
            .iter()
            .map(|b| b.name())
            .collect::<Vec<_>>()
            .join(", "),
        widest.name(),
    );
    let _ = writeln!(
        report,
        "A note on the DW-Conv3 ratios: the `scalar` baseline replays \
         the same balanced accumulation tree one lane at a time, and \
         rustc auto-vectorizes that loop to the 4-wide SSE2 that \
         baseline x86-64 guarantees — so the denominator is itself \
         vector code, not naive scalar. The determinism contract also \
         forbids FMA (its single rounding is unreproducible on scalar \
         and SSE2), which caps the 8-wide AVX2 kernel at a port-bound \
         2.0x over that baseline on interior rows; borders, short rows \
         and memory-bound large maps dilute the aggregate further.\n",
    );

    // ---- DW-Conv3 sweep -------------------------------------------------
    let _ = writeln!(report, "## Depth-wise convolutions\n");
    let _ = writeln!(
        report,
        "| case | geo | backend | fwd ms | bwd ms | fwd vs scalar | bwd vs scalar | crc fwd | crc bwd |"
    );
    let _ = writeln!(report, "|---|---|---|---:|---:|---:|---:|---|---|");

    let mut dw_scalar_fwd = 0.0f64;
    let mut dw_widest_fwd = 0.0f64;
    for case in dw_cases() {
        let c = case.shape.c;
        let geo = case.geo;
        let x = random_tensor(case.shape, &mut rng);
        let w = random_tensor(Shape::new(c, 1, geo.kernel, geo.kernel), &mut rng);
        let b: Vec<f32> = (0..c).map(|_| rng.range(-1.0, 1.0)).collect();
        let os = geo.out_shape(case.shape, c);
        let go = random_tensor(os, &mut rng);

        let y_ref = reference::dwconv2d_ref(&x, &w, Some(&b), geo).expect("ref fwd");
        let g_ref = reference::dwconv2d_backward_ref(&x, &w, &go, geo).expect("ref bwd");

        let mut crc_fwd = None;
        let mut crc_bwd = None;
        for &be in &backends {
            simd::force(be);
            // Correctness gates, per backend.
            // Lane geometries (k3, strides 1-2) use the balanced
            // accumulation tree: rounding tolerance vs the reference
            // chain order, bitwise everywhere else.
            let y = dwconv2d(&x, &w, Some(&b), geo).expect("spec fwd");
            if case.geo.kernel == 3 && case.geo.stride <= 2 {
                assert_close(case.label, y.as_slice(), y_ref.as_slice());
            } else {
                assert_eq!(
                    bits(&y),
                    bits(&y_ref),
                    "{} [{}]: fwd bits diverged from reference",
                    case.label,
                    be.name()
                );
            }
            let g = dwconv2d_backward(&x, &w, &go, geo).expect("spec bwd");
            assert_close(case.label, g.input.as_slice(), g_ref.input.as_slice());
            assert_close(case.label, g.weight.as_slice(), g_ref.weight.as_slice());
            assert_close(case.label, &g.bias, &g_ref.bias);

            // Cross-backend hash gate.
            let hf = hash_f32(&[y.as_slice()]);
            let hb = hash_f32(&[g.input.as_slice(), g.weight.as_slice(), &g.bias]);
            assert_eq!(
                *crc_fwd.get_or_insert(hf),
                hf,
                "{} [{}]: fwd hash diverged across backends",
                case.label,
                be.name()
            );
            assert_eq!(
                *crc_bwd.get_or_insert(hb),
                hb,
                "{} [{}]: bwd hash diverged across backends",
                case.label,
                be.name()
            );
        }

        let (tfs, tbs) = parallel::serial(|| {
            let tfs = time_backends(reps, &backends, || dwconv2d(&x, &w, Some(&b), geo).unwrap());
            let tbs = time_backends(reps, &backends, || {
                dwconv2d_backward(&x, &w, &go, geo).unwrap()
            });
            (tfs, tbs)
        });
        let (hf, hb) = (crc_fwd.unwrap(), crc_bwd.unwrap());
        for (i, &be) in backends.iter().enumerate() {
            let (tf, tb) = (tfs[i], tbs[i]);
            if case.gated {
                if be == Backend::Scalar {
                    dw_scalar_fwd += tf;
                }
                if be == widest {
                    dw_widest_fwd += tf;
                }
            }
            let _ = writeln!(
                report,
                "| {} | k{} s{} p{} | {} | {:.3} | {:.3} | {:.2}x | {:.2}x | {:08x} | {:08x} |",
                case.label,
                geo.kernel,
                geo.stride,
                geo.pad,
                be.name(),
                tf * 1e3,
                tb * 1e3,
                tfs[0] / tf,
                tbs[0] / tb,
                hf,
                hb,
            );
        }
    }

    // ---- Point-wise convolutions ----------------------------------------
    let _ = writeln!(report, "\n## Point-wise (1×1) convolutions\n");
    let _ = writeln!(report, "| case | backend | fwd ms | vs scalar | crc |");
    let _ = writeln!(report, "|---|---|---:|---:|---|");
    for (label, ci, co, h, w) in pw_cases() {
        let geo = ConvGeometry::pointwise();
        let x = random_tensor(Shape::new(1, ci, h, w), &mut rng);
        let wt = random_tensor(Shape::new(co, ci, 1, 1), &mut rng);
        let b: Vec<f32> = (0..co).map(|_| rng.range(-1.0, 1.0)).collect();

        let mut crc = None;
        for &be in &backends {
            simd::force(be);
            let y = conv2d(&x, &wt, Some(&b), geo).expect("pw fwd");
            let hf = hash_f32(&[y.as_slice()]);
            assert_eq!(
                *crc.get_or_insert(hf),
                hf,
                "{label} [{}]: hash diverged across backends",
                be.name()
            );
        }
        let tfs = parallel::serial(|| {
            time_backends(reps, &backends, || conv2d(&x, &wt, Some(&b), geo).unwrap())
        });
        for (i, &be) in backends.iter().enumerate() {
            let _ = writeln!(
                report,
                "| {label} | {} | {:.3} | {:.2}x | {:08x} |",
                be.name(),
                tfs[i] * 1e3,
                tfs[0] / tfs[i],
                crc.unwrap(),
            );
        }
    }

    // ---- Raw matmul ------------------------------------------------------
    let _ = writeln!(report, "\n## Matmul (`matmul_acc`)\n");
    let _ = writeln!(report, "| case | backend | ms | vs scalar | crc |");
    let _ = writeln!(report, "|---|---|---:|---:|---|");
    let mut mm_scalar = 0.0f64;
    let mut mm_widest = 0.0f64;
    for (label, m, k, n, gated) in mm_cases() {
        let a: Vec<f32> = (0..m * k).map(|_| rng.range(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.range(-2.0, 2.0)).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| rng.range(-1.0, 1.0)).collect();

        let mut crc = None;
        for &be in &backends {
            simd::force(be);
            let mut c = c0.clone();
            matmul_acc(&a, &b, &mut c, m, k, n);
            let hf = hash_f32(&[&c]);
            assert_eq!(
                *crc.get_or_insert(hf),
                hf,
                "{label} [{}]: hash diverged across backends",
                be.name()
            );
        }
        let mut c = c0.clone();
        let ts = parallel::serial(|| {
            time_backends(reps, &backends, || {
                c.copy_from_slice(&c0);
                matmul_acc(&a, &b, &mut c, m, k, n);
            })
        });
        for (i, &be) in backends.iter().enumerate() {
            let t = ts[i];
            if gated {
                if be == Backend::Scalar {
                    mm_scalar += t;
                }
                if be == widest {
                    mm_widest += t;
                }
            }
            let _ = writeln!(
                report,
                "| {label} | {} | {:.3} | {:.2}x | {:08x} |",
                be.name(),
                t * 1e3,
                ts[0] / t,
                crc.unwrap(),
            );
        }
    }

    // ---- INT8 kernels vs their f32 counterparts --------------------------
    let _ = writeln!(report, "\n## INT8 kernels vs f32 counterparts\n");
    let _ = writeln!(
        report,
        "The executable-INT8 lane: `qint::dwconv3_i8` / `qint::matmul_i8_acc` \
         against the f32 kernels on the same shapes, per backend (serial, \
         reps interleaved). The INT8 kernels return raw i32 accumulators; \
         the quantize/requantize epilogues are costed separately by \
         `quant_sweep`, so these ratios isolate the compute-kernel win. \
         The crc column hashes the i32 accumulators and is asserted equal \
         on every backend — the pairwise-`madd` tier (`avx2pair`) must be \
         **bitwise** identical to the scalar oracle, not merely close.\n"
    );
    let _ = writeln!(
        report,
        "| case | backend | f32 ms | i8 ms | i8 speedup | crc |"
    );
    let _ = writeln!(report, "|---|---|---:|---:|---:|---|");
    let mut q_f32_widest = 0.0f64;
    let mut q_i8_widest = 0.0f64;
    for (label, c, h, w) in [
        ("dw bundle3 12@40x80", 12usize, 40usize, 80usize),
        ("dw bundle5 48@20x40", 48, 20, 40),
        ("dw bundle6 160@20x40", 160, 20, 40),
    ] {
        let geo = ConvGeometry::same3x3();
        let shape = Shape::new(1, c, h, w);
        let x = random_tensor(shape, &mut rng);
        let wt = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let mut xq = vec![0i8; shape.numel()];
        let mut wq = vec![0i8; c * 9];
        qint::quantize_i8(x.as_slice(), 1.0 / 32.0, &mut xq);
        qint::quantize_i8(wt.as_slice(), 1.0 / 64.0, &mut wq);
        let mut acc = vec![0i32; shape.numel()];
        let mut crc = None;
        for &be in &backends {
            simd::force(be);
            qint::dwconv3_i8(&xq, &wq, &mut acc, 1, c, h, w);
            let hq = hash_i32(&acc);
            assert_eq!(
                *crc.get_or_insert(hq),
                hq,
                "{label} [{}]: INT8 accumulator bits diverged across backends",
                be.name()
            );
        }
        let (tf, ti) = parallel::serial(|| {
            let tf = time_backends(reps, &backends, || dwconv2d(&x, &wt, None, geo).unwrap());
            let ti = time_backends(reps, &backends, || {
                qint::dwconv3_i8(&xq, &wq, &mut acc, 1, c, h, w)
            });
            (tf, ti)
        });
        for (i, &be) in backends.iter().enumerate() {
            if be == widest {
                q_f32_widest += tf[i];
                q_i8_widest += ti[i];
            }
            let _ = writeln!(
                report,
                "| {label} | {} | {:.3} | {:.3} | {:.2}x | {:08x} |",
                be.name(),
                tf[i] * 1e3,
                ti[i] * 1e3,
                tf[i] / ti[i],
                crc.unwrap(),
            );
        }
    }
    for (label, m, k, n) in [
        ("mm pw-lowered 48x24x800", 48usize, 24usize, 800usize),
        ("mm pw-lowered 96x48x800", 96, 48, 800),
        ("mm square 256x256x256", 256, 256, 256),
    ] {
        let a: Vec<f32> = (0..m * k).map(|_| rng.range(-2.0, 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.range(-2.0, 2.0)).collect();
        let mut aq = vec![0i8; m * k];
        let mut bq = vec![0i8; k * n];
        qint::quantize_i8(&a, 1.0 / 32.0, &mut aq);
        qint::quantize_i8(&b, 1.0 / 32.0, &mut bq);
        let mut c = vec![0.0f32; m * n];
        let mut cq = vec![0i32; m * n];
        let mut crc = None;
        for &be in &backends {
            simd::force(be);
            qint::matmul_i8(&aq, &bq, &mut cq, m, k, n);
            let hq = hash_i32(&cq);
            assert_eq!(
                *crc.get_or_insert(hq),
                hq,
                "{label} [{}]: INT8 accumulator bits diverged across backends",
                be.name()
            );
        }
        let (tf, ti) = parallel::serial(|| {
            let tf = time_backends(reps, &backends, || {
                c.fill(0.0);
                matmul_acc(&a, &b, &mut c, m, k, n);
            });
            let ti = time_backends(reps, &backends, || {
                qint::matmul_i8(&aq, &bq, &mut cq, m, k, n)
            });
            (tf, ti)
        });
        for (i, &be) in backends.iter().enumerate() {
            if be == widest {
                q_f32_widest += tf[i];
                q_i8_widest += ti[i];
            }
            let _ = writeln!(
                report,
                "| {label} | {} | {:.3} | {:.3} | {:.2}x | {:08x} |",
                be.name(),
                tf[i] * 1e3,
                ti[i] * 1e3,
                tf[i] / ti[i],
                crc.unwrap(),
            );
        }
    }
    let q_agg = q_f32_widest / q_i8_widest;
    let _ = writeln!(
        report,
        "\nRealized INT8 kernel speedup over f32 on `{}` (aggregate over \
         the shapes above): **{q_agg:.2}x** (floor {q_floor:.2}x under \
         this budget).\n",
        widest.name(),
    );

    // ---- Fused bundle vs unfused layer sequence --------------------------
    let _ = writeln!(report, "\n## Fused bundle (DW→BN→Act→PW→BN→Act)\n");
    let _ = writeln!(
        report,
        "`fused::fused_bundle_forward` against the unfused layer sequence \
         it replaces (serial, reps interleaved). The CRC column is \
         asserted identical between the two paths on every backend — the \
         fusion bit-identity contract on real bundle shapes; `fusion_bench` \
         measures the end-to-end forward win.\n"
    );
    let _ = writeln!(
        report,
        "| case | backend | unfused ms | fused ms | speedup | crc |"
    );
    let _ = writeln!(report, "|---|---|---:|---:|---:|---|");
    for (label, c, c2, h, w) in [
        ("bundle2 6->12@80x160", 6usize, 12usize, 80usize, 160usize),
        ("bundle3 12->24@40x80", 12, 24, 40, 80),
        ("bundle5 48->96@20x40", 48, 96, 20, 40),
    ] {
        let geo = ConvGeometry::same3x3();
        let x = random_tensor(Shape::new(1, c, h, w), &mut rng);
        let dw_w = random_tensor(Shape::new(c, 1, 3, 3), &mut rng);
        let pw_w = random_tensor(Shape::new(c2, c, 1, 1), &mut rng);
        let mk_bn = |rng: &mut SkyRng, ch: usize| {
            BnAct::new(
                (0..ch).map(|_| rng.range(-0.5, 0.5)).collect(),
                &(0..ch).map(|_| rng.range(0.1, 1.1)).collect::<Vec<_>>(),
                1e-5,
                (0..ch).map(|_| rng.range(0.5, 1.5)).collect(),
                (0..ch).map(|_| rng.range(-0.5, 0.5)).collect(),
                Some(6.0),
            )
        };
        let bn1 = mk_bn(&mut rng, c);
        let bn2 = mk_bn(&mut rng, c2);
        let unfused = |x: &Tensor| {
            let t = dwconv2d(x, &dw_w, None, geo).unwrap();
            let s = t.shape();
            let mut u = Tensor::zeros(s);
            for ch in 0..s.c {
                let o = ch * s.plane();
                let (m, is, g, b, _) = bn1.channel(ch);
                simd::bn_apply_eval(
                    &t.as_slice()[o..o + s.plane()],
                    &mut u.as_mut_slice()[o..o + s.plane()],
                    m,
                    is,
                    g,
                    b,
                );
            }
            let t = ops::relu6(&u);
            let t = conv2d(&t, &pw_w, None, ConvGeometry::pointwise()).unwrap();
            let s = t.shape();
            let mut u = Tensor::zeros(s);
            for ch in 0..s.c {
                let o = ch * s.plane();
                let (m, is, g, b, _) = bn2.channel(ch);
                simd::bn_apply_eval(
                    &t.as_slice()[o..o + s.plane()],
                    &mut u.as_mut_slice()[o..o + s.plane()],
                    m,
                    is,
                    g,
                    b,
                );
            }
            ops::relu6(&u)
        };
        let mut crc = None;
        for &be in &backends {
            simd::force(be);
            let yu = unfused(&x);
            let yf = fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap();
            assert_eq!(
                bits(&yu),
                bits(&yf),
                "{label} [{}]: fused output diverged from unfused",
                be.name()
            );
            let h = hash_f32(&[yf.as_slice()]);
            assert_eq!(
                *crc.get_or_insert(h),
                h,
                "{label} [{}]: hash diverged across backends",
                be.name()
            );
        }
        let (tu, tf) = parallel::serial(|| {
            let tu = time_backends(reps, &backends, || unfused(&x));
            let tf = time_backends(reps, &backends, || {
                fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap()
            });
            (tu, tf)
        });
        for (i, &be) in backends.iter().enumerate() {
            let _ = writeln!(
                report,
                "| {label} | {} | {:.3} | {:.3} | {:.2}x | {:08x} |",
                be.name(),
                tu[i] * 1e3,
                tf[i] * 1e3,
                tu[i] / tf[i],
                crc.unwrap(),
            );
        }
    }

    simd::force(prev);

    let dw_agg = dw_scalar_fwd / dw_widest_fwd;
    let mm_agg = mm_scalar / mm_widest;
    let _ = writeln!(
        report,
        "\nAggregate forward speedup of `{}` over the scalar backend: \
         **{dw_agg:.2}x** on the backbone DW-Conv3 shapes (floor \
         {dw_floor:.2}x under this budget), **{mm_agg:.2}x** on the gated \
         matmul shapes (floor {mm_floor:.2}x).\n",
        widest.name(),
    );
    std::fs::create_dir_all("bench_results").expect("bench_results dir");
    std::fs::write("bench_results/kernel_bench.md", &report).expect("write report");
    print!("{report}");

    assert!(
        dw_agg >= dw_floor,
        "aggregate DW-Conv3 forward speedup {dw_agg:.2}x below the {dw_floor:.2}x floor"
    );
    assert!(
        mm_agg >= mm_floor,
        "aggregate matmul speedup {mm_agg:.2}x below the {mm_floor:.2}x floor"
    );
    assert!(
        q_agg >= q_floor,
        "aggregate INT8-vs-f32 speedup {q_agg:.2}x below the {q_floor:.2}x floor"
    );
    println!(
        "kernel_bench OK: {} vs scalar — {dw_agg:.2}x DW-Conv3, {mm_agg:.2}x matmul, \
         {q_agg:.2}x INT8 vs f32",
        widest.name()
    );
}
