//! # skynet-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (see
//! `src/bin/`) plus Criterion micro-benchmarks (see `benches/`). This
//! library holds the shared plumbing: standard dataset builders, a
//! detector-training runner with a fast/full budget switch, and
//! fixed-width table printing that shows paper-reported values next to
//! our measurements.
//!
//! Run an experiment with e.g. `cargo run --release -p skynet-bench --bin
//! table4`. Set `SKYNET_BENCH_BUDGET=fast` for a quick smoke pass (CI) or
//! `full` (default) for the EXPERIMENTS.md numbers.

#![deny(missing_docs)]

pub mod data;
pub mod runner;
pub mod table;

/// Experiment budget, selected via the `SKYNET_BENCH_BUDGET` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// Seconds-scale smoke pass.
    Fast,
    /// The full budget used for EXPERIMENTS.md.
    Full,
}

impl Budget {
    /// Reads the budget from the environment (default [`Budget::Full`]).
    pub fn from_env() -> Budget {
        match std::env::var("SKYNET_BENCH_BUDGET").as_deref() {
            Ok("fast") => Budget::Fast,
            _ => Budget::Full,
        }
    }

    /// Picks a value by budget.
    pub fn pick<T>(&self, fast: T, full: T) -> T {
        match self {
            Budget::Fast => fast,
            Budget::Full => full,
        }
    }
}
