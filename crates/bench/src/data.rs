//! Standard dataset builders shared by the experiment binaries, so every
//! table trains and evaluates on identical data.

use crate::Budget;
use skynet_core::Sample;
use skynet_data::dacsdc::{DacSdc, DacSdcConfig};
use skynet_data::got::{GotConfig, GotGen, TrackSequence};

/// Canonical synthetic DAC-SDC split at training resolution (48×96 —
/// the paper's 160×320 scaled for CPU training).
pub fn detection_split(budget: Budget) -> (Vec<Sample>, Vec<Sample>) {
    let (n_train, n_val) = budget.pick((48, 16), (384, 96));
    let mut cfg = DacSdcConfig::default().trainable();
    cfg.height = 48;
    cfg.width = 96;
    let mut gen = DacSdc::new(cfg);
    gen.generate_split(n_train, n_val)
}

/// Canonical synthetic GOT-10k-style splits for the tracking tables.
pub fn tracking_split(budget: Budget) -> (Vec<TrackSequence>, Vec<TrackSequence>) {
    let (n_train, n_eval, len) = budget.pick((4, 2, 6), (24, 12, 16));
    let cfg = GotConfig {
        seq_len: len,
        ..Default::default()
    };
    let mut gen = GotGen::new(cfg);
    (gen.generate(n_train), gen.generate(n_eval))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_budget_is_small() {
        let (tr, va) = detection_split(Budget::Fast);
        assert_eq!((tr.len(), va.len()), (48, 16));
        let (ts, es) = tracking_split(Budget::Fast);
        assert_eq!((ts.len(), es.len()), (4, 2));
    }
}
