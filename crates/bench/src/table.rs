//! Fixed-width table printing for the experiment binaries.
//!
//! Every binary prints its reproduction next to the paper-reported values
//! so the *shape* comparison (orderings, rough factors) is visible at a
//! glance; EXPERIMENTS.md records the same rows.

/// Prints a table header with a rule underneath.
pub fn header(title: &str, columns: &[(&str, usize)]) {
    println!("\n=== {title} ===");
    let mut line = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:>width$}  "));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len().max(20)));
}

/// Prints one row of already-formatted cells with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, width) in cells {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{line}");
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats an optional paper-reported value ("-" when the paper has no
/// corresponding number).
pub fn paper(v: Option<f64>, prec: usize) -> String {
    match v {
        Some(v) => format!("{v:.prec$}"),
        None => "-".into(),
    }
}

/// Formats a parameter count as millions.
pub fn params_m(p: usize) -> String {
    format!("{:.2}M", p as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(paper(None, 3), "-");
        assert_eq!(paper(Some(0.731), 3), "0.731");
        assert_eq!(params_m(440_000), "0.44M");
    }
}
