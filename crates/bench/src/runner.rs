//! Detector-training runner shared by the detection experiments.

use crate::Budget;
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::trainer::{evaluate, TrainConfig, Trainer};
use skynet_core::Sample;
use skynet_nn::{Layer, LrSchedule, Sgd};
use skynet_tensor::Result;
use std::time::Instant;

/// Width divisor used for all trainable detection models (paper scale ÷ 8
/// keeps the structural comparisons while fitting the CPU budget).
pub const TRAIN_DIV: usize = 8;

/// Result of training one detection backbone.
#[derive(Debug)]
pub struct TrainedDetector {
    /// The trained detector.
    pub detector: Detector,
    /// Validation mean IoU (the Eq. 2 accuracy).
    pub iou: f32,
    /// Trainable parameter count of the reduced-scale model.
    pub params: usize,
    /// Wall-clock training time in seconds.
    pub train_secs: f64,
}

/// Trains `backbone` with the standard protocol (SGD momentum 0.9,
/// exponential LR decay 5e-3 → 1e-4, batch 8, optional multi-scale) and
/// evaluates mean IoU on `val`. The epoch budget follows the
/// [`Budget`] (2 fast / 45 full) unless the `SKYNET_EPOCHS` env var
/// overrides it.
///
/// # Errors
///
/// Propagates tensor shape errors from the model.
pub fn train_detector(
    backbone: Box<dyn Layer>,
    budget: Budget,
    train: &[Sample],
    val: &[Sample],
    multi_scale: bool,
    seed: u64,
) -> Result<TrainedDetector> {
    let epochs = match std::env::var("SKYNET_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&e: &usize| e > 0)
    {
        Some(e) => e,
        None => budget.pick(2, 45),
    };
    let mut detector = Detector::new(backbone, Anchors::dac_sdc());
    let params = detector.param_count();
    let steps = epochs * train.len().div_ceil(8);
    let mut opt = Sgd::new(
        LrSchedule::Exponential {
            start: 5e-3,
            end: 1e-4,
            steps,
        },
        0.9,
        1e-4,
    );
    let scales = if multi_scale {
        // Multi-scale training (§6.1): resize the batch among three
        // scales around the base resolution. The paper uses this when
        // training to convergence on 100 k images; at the reduced CPU
        // budget it slows convergence (≈ −0.11 IoU at 45 epochs in our
        // A/B), so the experiment binaries train single-scale and this
        // switch stays available for longer runs.
        vec![(40, 80), (48, 96), (56, 112)]
    } else {
        Vec::new()
    };
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: 8,
        scales,
        seed,
    });
    let t0 = Instant::now();
    trainer.train(&mut detector, train, &mut opt)?;
    let train_secs = t0.elapsed().as_secs_f64();
    let iou = evaluate(&mut detector, val)?;
    Ok(TrainedDetector {
        detector,
        iou,
        params,
        train_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::detection_split;
    use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
    use skynet_nn::Act;
    use skynet_tensor::rng::SkyRng;

    #[test]
    fn fast_budget_trains_and_reports() {
        let (train, val) = detection_split(Budget::Fast);
        let mut rng = SkyRng::new(0);
        let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(16);
        let out = train_detector(
            Box::new(SkyNet::new(cfg, &mut rng)),
            Budget::Fast,
            &train,
            &val,
            false,
            1,
        )
        .unwrap();
        assert!(out.iou >= 0.0 && out.iou <= 1.0);
        assert!(out.params > 0);
        assert!(out.train_secs > 0.0);
    }
}
