//! Operator micro-benchmarks: the kernels behind every experiment.
//!
//! The interesting comparison is DW+PW vs dense 3×3 at equal widths —
//! the software-side reason the SkyNet Bundle is cheap (its hardware-side
//! twin is the Fig. 2(c)/latency model in `skynet-hw`).

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_tensor::conv::{conv2d, ConvGeometry};
use skynet_tensor::dwconv::dwconv2d;
use skynet_tensor::ops::fake_quantize;
use skynet_tensor::pool::maxpool2d;
use skynet_tensor::reorg::reorg;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};

fn random(shape: Shape, seed: u64) -> Tensor {
    let mut rng = SkyRng::new(seed);
    Tensor::from_vec(
        shape,
        (0..shape.numel()).map(|_| rng.normal(0.0, 1.0)).collect(),
    )
    .unwrap()
}

fn bench_ops(c: &mut Criterion) {
    let x = random(Shape::new(1, 48, 20, 40), 1);

    let w_dense = random(Shape::new(48, 48, 3, 3), 2);
    c.bench_function("conv3x3_dense_48ch_20x40", |b| {
        b.iter(|| conv2d(&x, &w_dense, None, ConvGeometry::same3x3()).unwrap())
    });

    let w_dw = random(Shape::new(48, 1, 3, 3), 3);
    let w_pw = random(Shape::new(48, 48, 1, 1), 4);
    c.bench_function("dwconv3x3_plus_pw_48ch_20x40", |b| {
        b.iter(|| {
            let mid = dwconv2d(&x, &w_dw, None, ConvGeometry::same3x3()).unwrap();
            conv2d(&mid, &w_pw, None, ConvGeometry::pointwise()).unwrap()
        })
    });

    c.bench_function("pointwise_48to96_20x40", |b| {
        let w = random(Shape::new(96, 48, 1, 1), 5);
        b.iter(|| conv2d(&x, &w, None, ConvGeometry::pointwise()).unwrap())
    });

    c.bench_function("reorg_x2_48ch_20x40", |b| b.iter(|| reorg(&x, 2).unwrap()));

    c.bench_function("maxpool2x2_48ch_20x40", |b| {
        b.iter(|| maxpool2d(&x, 2).unwrap())
    });

    c.bench_function("fake_quantize_9bit_38k", |b| {
        b.iter(|| fake_quantize(&x, 9))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops
}
criterion_main!(benches);
