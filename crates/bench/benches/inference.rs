//! Model-level inference benchmarks: SkyNet A/B/C against the Table 2
//! baselines at equal width divisor — the CPU analogue of the paper's
//! throughput story.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer, Mode};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{Shape, Tensor};
use skynet_zoo::{mobilenet, resnet, vgg};

fn bench_inference(c: &mut Criterion) {
    let x = Tensor::zeros(Shape::new(1, 3, 48, 96));
    let div = 8;

    for variant in [Variant::A, Variant::B, Variant::C] {
        let mut rng = SkyRng::new(1);
        let cfg = SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(div);
        let mut net = SkyNet::new(cfg, &mut rng);
        c.bench_function(&format!("skynet_{variant}_fwd_48x96"), |b| {
            b.iter(|| net.forward(&x, Mode::Eval).unwrap())
        });
    }

    let mut rng = SkyRng::new(2);
    let mut r18 = resnet::detector(resnet::ResNetDepth::R18, div, &mut rng);
    c.bench_function("resnet18_fwd_48x96", |b| {
        b.iter(|| r18.forward(&x, Mode::Eval).unwrap())
    });

    let mut r50 = resnet::detector(resnet::ResNetDepth::R50, div, &mut rng);
    c.bench_function("resnet50_fwd_48x96", |b| {
        b.iter(|| r50.forward(&x, Mode::Eval).unwrap())
    });

    let mut v16 = vgg::detector(div, &mut rng);
    c.bench_function("vgg16_fwd_48x96", |b| {
        b.iter(|| v16.forward(&x, Mode::Eval).unwrap())
    });

    let mut mbn = mobilenet::detector(div, &mut rng);
    c.bench_function("mobilenet_fwd_48x96", |b| {
        b.iter(|| mbn.forward(&x, Mode::Eval).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_inference
}
criterion_main!(benches);
