//! System-pipeline benchmark: serial vs task-partitioned schedules
//! (Fig. 10) at three stage-balance points.

use criterion::{criterion_group, criterion_main, Criterion};
use skynet_hw::pipeline::{run_pipelined, run_serial, wait_us, Stages};

fn stages(pre: u64, infer: u64, post: u64) -> Stages<usize, usize, usize> {
    Stages {
        pre: Box::new(move |i| {
            wait_us(pre);
            i
        }),
        infer: Box::new(move |i| {
            wait_us(infer);
            i
        }),
        post: Box::new(move |i| {
            wait_us(post);
            i
        }),
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let frames = 20;
    for (name, pre, infer, post) in [
        ("balanced_300us", 300u64, 300u64, 300u64),
        ("infer_heavy", 150, 600, 150),
        ("pre_heavy", 600, 300, 100),
    ] {
        c.bench_function(&format!("serial_{name}"), |b| {
            b.iter(|| run_serial(frames, &stages(pre, infer, post)))
        });
        c.bench_function(&format!("pipelined_{name}"), |b| {
            b.iter(|| run_pipelined(frames, stages(pre, infer, post)).expect("pipelined run"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
