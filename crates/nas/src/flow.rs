//! The end-to-end bottom-up flow (Fig. 3): Stage 1 → Stage 2 → Stage 3.

use crate::arch::CandidateArch;
use crate::pso::{self, PsoConfig};
use crate::stage1::{self, Stage1Config};
use crate::stage3::{self, FeatureTrial, Stage3Config};
use skynet_core::head::Anchors;
use skynet_core::Sample;
use skynet_nn::Act;
use skynet_tensor::Result;

/// Configuration for the full flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Stage 1 budget.
    pub stage1: Stage1Config,
    /// Stage 2 budget.
    pub stage2: PsoConfig,
    /// Stage 3 budget.
    pub stage3: Stage3Config,
    /// How many Pareto Bundles proceed to Stage 2 ("the most promising
    /// Bundles located in the Pareto curve are selected").
    pub stage2_groups: usize,
    /// Activation used during the search (Stage 3 re-examines it).
    pub act: Act,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            stage1: Stage1Config::default(),
            stage2: PsoConfig::default(),
            stage3: Stage3Config::default(),
            stage2_groups: 2,
            act: Act::Relu6,
        }
    }
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// All Stage 1 evaluations.
    pub bundle_evals: Vec<stage1::BundleEval>,
    /// The Pareto frontier that seeded Stage 2.
    pub frontier: Vec<stage1::BundleEval>,
    /// The PSO winner.
    pub winner: CandidateArch,
    /// Winner's search fitness.
    pub winner_fitness: f64,
    /// Stage 3 trials, best first (only present when the winner is a
    /// 5-Bundle chain; other depths skip the SkyNet mapping).
    pub feature_trials: Vec<FeatureTrial>,
}

/// Runs all three stages over the given data.
///
/// # Errors
///
/// Propagates tensor shape errors from training.
pub fn run(
    cfg: &FlowConfig,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<FlowOutcome> {
    // Stage 1: Bundle selection and evaluation.
    let bundle_evals = stage1::run(&cfg.stage1, cfg.act, train, val, anchors)?;
    let frontier = stage1::pareto_frontier(&bundle_evals);
    let groups: Vec<_> = frontier
        .iter()
        .take(cfg.stage2_groups.max(1))
        .map(|e| e.bundle.clone())
        .collect();
    let groups = if groups.is_empty() {
        // Fall back to the best raw accuracy when nothing is feasible.
        vec![bundle_evals
            .iter()
            .max_by(|a, b| a.accuracy.total_cmp(&b.accuracy))
            .expect("stage 1 evaluated at least one bundle")
            .bundle
            .clone()]
    } else {
        groups
    };

    // Stage 2: group-based PSO.
    let outcome = pso::run(&groups, &cfg.stage2, train, val, anchors)?;
    let winner = outcome.global_best.arch.clone();

    // Stage 3: feature addition (requires the SkyNet 5-chain shape).
    let feature_trials = if winner.depth() == 5 {
        stage3::run(&winner, &cfg.stage3, train, val, anchors)?
    } else {
        Vec::new()
    };

    Ok(FlowOutcome {
        bundle_evals,
        frontier,
        winner,
        winner_fitness: outcome.global_best.fitness,
        feature_trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_data::dacsdc::{DacSdc, DacSdcConfig};

    /// A minimal smoke test of the full flow; the `nas_search` example
    /// runs the realistic budget.
    #[test]
    fn flow_runs_end_to_end_at_tiny_budget() {
        let mut gcfg = DacSdcConfig::default().trainable();
        gcfg.height = 16;
        gcfg.width = 32;
        gcfg.sizes.min_ratio = 0.05;
        let mut gen = DacSdc::new(gcfg);
        let (train, val) = gen.generate_split(10, 5);

        let mut cfg = FlowConfig::default();
        cfg.stage1.epochs = 1;
        cfg.stage1.sketch_channels = vec![4, 8];
        cfg.stage1.sketch_pools = vec![true, true];
        cfg.stage2.particles_per_group = 2;
        cfg.stage2.iterations = 1;
        cfg.stage2.base_epochs = 1;
        cfg.stage2.depth = 3;
        cfg.stage2.channel_range = (4, 8);
        cfg.stage2.pools = 2;
        cfg.stage2_groups = 1;
        cfg.stage3.epochs = 1;

        let outcome = run(&cfg, &train, &val, &Anchors::dac_sdc()).unwrap();
        assert!(!outcome.bundle_evals.is_empty());
        assert!(outcome.winner_fitness.is_finite());
        assert_eq!(outcome.winner.depth(), 3);
        // Depth-3 winner skips the SkyNet mapping.
        assert!(outcome.feature_trials.is_empty());
    }
}
