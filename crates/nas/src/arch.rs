//! Candidate-architecture representation shared by all three NAS stages.

use skynet_core::bundle::BundleSpec;
use skynet_core::desc::{LayerDesc, NetDesc};
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::HEAD_CHANNELS;
use skynet_nn::{Conv2d, MaxPool2d, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// A searchable architecture: one Bundle type stacked `channels.len()`
/// times, with 2×2 pooling after the flagged positions, and the shared
/// 10-channel detection back-end.
///
/// The two tunable dimensions match Algorithm 1: `dim¹ = channels` and
/// `dim² = pool_after`.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateArch {
    /// The Bundle type (fixed within a PSO group).
    pub bundle: BundleSpec,
    /// Output channels of each Bundle instance (`dim¹`).
    pub channels: Vec<usize>,
    /// Whether a 2×2 max pool follows each position (`dim²`). The same
    /// number of pools must stay set during evolution so every candidate
    /// keeps the same output stride.
    pub pool_after: Vec<bool>,
}

impl CandidateArch {
    /// Creates a candidate.
    ///
    /// # Panics
    ///
    /// Panics if `channels` and `pool_after` lengths differ or no channel
    /// entry exists.
    pub fn new(bundle: BundleSpec, channels: Vec<usize>, pool_after: Vec<bool>) -> Self {
        assert_eq!(channels.len(), pool_after.len(), "dimension mismatch");
        assert!(!channels.is_empty(), "need at least one Bundle");
        CandidateArch {
            bundle,
            channels,
            pool_after,
        }
    }

    /// Number of stacked Bundles.
    pub fn depth(&self) -> usize {
        self.channels.len()
    }

    /// Output stride implied by the pooling flags.
    pub fn stride(&self) -> usize {
        1 << self.pool_after.iter().filter(|&&p| p).count()
    }

    /// Builds the trainable network: Bundles + pools + 1×1 head.
    pub fn build(&self, rng: &mut SkyRng) -> Sequential {
        let mut seq = Sequential::empty();
        let mut in_c = 3usize;
        for (i, &c) in self.channels.iter().enumerate() {
            let bundle_seq = self.bundle.build(in_c, c, rng);
            seq.push(Box::new(bundle_seq));
            if self.pool_after[i] {
                seq.push(Box::new(MaxPool2d::new(2)));
            }
            in_c = c;
        }
        seq.push(Box::new(Conv2d::new(
            in_c,
            HEAD_CHANNELS,
            ConvGeometry::pointwise(),
            rng,
        )));
        seq
    }

    /// Builds a full [`Detector`] around the network.
    pub fn build_detector(&self, anchors: Anchors, rng: &mut SkyRng) -> Detector {
        Detector::new(Box::new(self.build(rng)), anchors)
    }

    /// Abstract descriptor with every channel multiplied by `scale` at an
    /// `in_h×in_w` input — used to evaluate hardware feedback at paper
    /// scale while training at reduced scale.
    pub fn descriptor_scaled(&self, scale: usize, in_h: usize, in_w: usize) -> NetDesc {
        let mut layers = Vec::new();
        let mut in_c = 3usize;
        for (i, &c) in self.channels.iter().enumerate() {
            let c = c * scale;
            layers.extend(self.bundle.describe_layers(in_c, c));
            if self.pool_after[i] {
                layers.push(LayerDesc::Pool { c, k: 2 });
            }
            in_c = c;
        }
        layers.push(LayerDesc::Conv {
            in_c,
            out_c: HEAD_CHANNELS,
            k: 1,
            s: 1,
            p: 0,
        });
        NetDesc::new(3, in_h, in_w, layers)
    }

    /// Total trainable parameters at search scale.
    pub fn params(&self) -> usize {
        self.descriptor_scaled(1, 8, 8).total_params()
    }
}

impl std::fmt::Display for CandidateArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ×{} ch={:?} pools=",
            self.bundle.describe(),
            self.depth(),
            self.channels
        )?;
        for &p in &self.pool_after {
            write!(f, "{}", if p { "P" } else { "-" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Act, Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    fn candidate() -> CandidateArch {
        CandidateArch::new(
            BundleSpec::skynet(Act::Relu6),
            vec![8, 16, 24],
            vec![true, true, false],
        )
    }

    #[test]
    fn build_produces_working_detector_head() {
        let mut rng = SkyRng::new(0);
        let mut net = candidate().build(&mut rng);
        let x = Tensor::zeros(Shape::new(1, 3, 16, 32));
        let y = net.forward(&x, Mode::Eval).unwrap();
        // Two pools ⇒ stride 4.
        assert_eq!(y.shape(), Shape::new(1, HEAD_CHANNELS, 4, 8));
        assert_eq!(candidate().stride(), 4);
    }

    #[test]
    fn descriptor_matches_built_params() {
        let mut rng = SkyRng::new(1);
        let c = candidate();
        let mut net = c.build(&mut rng);
        // Head bias not counted in descriptor convs.
        assert_eq!(net.param_count(), c.params() + HEAD_CHANNELS);
    }

    #[test]
    fn scaling_multiplies_compute() {
        let c = candidate();
        let small = c.descriptor_scaled(1, 32, 64).total_macs();
        let big = c.descriptor_scaled(4, 32, 64).total_macs();
        // PW layers scale ~16× with a ×4 width multiplier; the fixed
        // 3-channel stem and DW layers dilute that to roughly 8–9×.
        assert!(big > 6 * small, "{big} vs {small}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_rejected() {
        let _ = CandidateArch::new(BundleSpec::skynet(Act::Relu6), vec![8, 16], vec![true]);
    }
}
