//! Stage 2: hardware-aware DNN search with group-based PSO
//! (Algorithm 1, §4.2).
//!
//! Each DNN is a particle; particles built from the same Bundle type form
//! a **group** and only evolve within it ("a DNN only evolves within its
//! own group"). Per iteration every particle is fast-trained for an
//! epoch budget that grows with the iteration (`e_itr`), hardware
//! latencies are estimated for every target platform, and the fitness of
//! Eq. 1 combines validation accuracy with latency penalties weighted
//! per platform (`β_FPGA > β_GPU`, since the FPGA budget is tighter).
//!
//! Velocity/update rules follow §4.2: channel counts move a random
//! fraction of the distance toward the group best; a random subset of
//! pooling positions is adopted from the group best.

use crate::arch::CandidateArch;
use skynet_core::bundle::BundleSpec;
use skynet_core::head::Anchors;
use skynet_core::trainer::{evaluate, TrainConfig, Trainer};
use skynet_core::Sample;
use skynet_hw::fpga::{self, FpgaDevice};
use skynet_hw::gpu::{self, GpuDevice};
use skynet_hw::quant::QuantScheme;
use skynet_nn::Sgd;
use skynet_tensor::{rng::SkyRng, Result};

/// A hardware target with its latency requirement and penalty weight
/// (`Req_h` and `β_h` of Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// Embedded FPGA target.
    Fpga {
        /// Required latency in milliseconds.
        req_ms: f64,
        /// Penalty weight β.
        beta: f64,
    },
    /// Embedded GPU target.
    Gpu {
        /// Required latency in milliseconds.
        req_ms: f64,
        /// Penalty weight β.
        beta: f64,
    },
}

impl Target {
    /// The paper's dual-target setup: both platforms, with the FPGA
    /// weighted more heavily ("we set the FPGA platform factor larger
    /// than GPU to prioritize FPGA implementation").
    pub fn dac_sdc() -> Vec<Target> {
        vec![
            Target::Fpga {
                req_ms: 50.0,
                beta: 2.0,
            },
            Target::Gpu {
                req_ms: 20.0,
                beta: 0.5,
            },
        ]
    }

    fn penalty(&self, arch: &CandidateArch, hw_scale: usize, hw_in: (usize, usize)) -> f64 {
        let desc = arch.descriptor_scaled(hw_scale, hw_in.0, hw_in.1);
        match *self {
            Target::Fpga { req_ms, beta } => {
                let est = fpga::estimate(&desc, &FpgaDevice::ultra96(), QuantScheme::new(11, 9), 4);
                let over = (est.latency_ms - req_ms).max(0.0) / req_ms;
                let infeasible = if est.feasible { 0.0 } else { 1.0 };
                beta * (over + infeasible)
            }
            Target::Gpu { req_ms, beta } => {
                let est = gpu::estimate(&desc, &GpuDevice::tx2());
                beta * (est.latency_ms - req_ms).max(0.0) / req_ms
            }
        }
    }
}

/// PSO configuration.
#[derive(Debug, Clone)]
pub struct PsoConfig {
    /// Particles per group (`N`).
    pub particles_per_group: usize,
    /// Search iterations (`I`).
    pub iterations: usize,
    /// Epochs for iteration 0; iteration `i` trains `base_epochs + i`
    /// ("e_itr increases with itr").
    pub base_epochs: usize,
    /// Mini-batch size for fast training.
    pub batch: usize,
    /// Stack depth of every candidate.
    pub depth: usize,
    /// Channel search range (inclusive).
    pub channel_range: (usize, usize),
    /// Number of pooling layers every candidate must place.
    pub pools: usize,
    /// Accuracy/latency balance (`α` of Eq. 1, applied as a penalty).
    pub alpha: f64,
    /// Hardware targets.
    pub targets: Vec<Target>,
    /// Channel multiplier for hardware estimation.
    pub hw_scale: usize,
    /// Hardware-estimate input extent.
    pub hw_input: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for PsoConfig {
    fn default() -> Self {
        PsoConfig {
            particles_per_group: 4,
            iterations: 3,
            base_epochs: 2,
            batch: 8,
            depth: 4,
            channel_range: (4, 40),
            pools: 2,
            alpha: 0.3,
            targets: Target::dac_sdc(),
            hw_scale: 12,
            hw_input: (160, 320),
            seed: 0x9_50,
        }
    }
}

/// A particle: a candidate plus its last evaluation.
#[derive(Debug, Clone)]
pub struct Particle {
    /// The architecture.
    pub arch: CandidateArch,
    /// Validation accuracy from the last fast training.
    pub accuracy: f32,
    /// Eq. 1 fitness (higher is better).
    pub fitness: f64,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct PsoOutcome {
    /// Best particle per group, in group order.
    pub group_best: Vec<Particle>,
    /// The global best particle.
    pub global_best: Particle,
    /// Fitness of the global best at each iteration (monotone
    /// non-decreasing).
    pub history: Vec<f64>,
}

/// Runs the group-based PSO over the given Bundle groups.
///
/// # Errors
///
/// Propagates tensor shape errors from candidate training.
///
/// # Panics
///
/// Panics if `groups` is empty.
pub fn run(
    groups: &[BundleSpec],
    cfg: &PsoConfig,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<PsoOutcome> {
    assert!(!groups.is_empty(), "need at least one Bundle group");
    let mut rng = SkyRng::new(cfg.seed);
    // Population generation.
    let mut population: Vec<Vec<Particle>> = groups
        .iter()
        .map(|bundle| {
            (0..cfg.particles_per_group)
                .map(|_| Particle {
                    arch: random_arch(bundle, cfg, &mut rng),
                    accuracy: 0.0,
                    fitness: f64::NEG_INFINITY,
                })
                .collect()
        })
        .collect();

    let mut history = Vec::with_capacity(cfg.iterations);
    let mut global_best: Option<Particle> = None;
    for itr in 0..cfg.iterations {
        let epochs = cfg.base_epochs + itr;
        // Fast training + performance estimation for every particle.
        for group in population.iter_mut() {
            for p in group.iter_mut() {
                let (acc, fit) =
                    evaluate_particle(&p.arch, cfg, epochs, train, val, anchors, &mut rng)?;
                p.accuracy = acc;
                p.fitness = fit;
            }
        }
        // Group bests, then velocity update toward them.
        for group in population.iter_mut() {
            let best = group
                .iter()
                .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
                .expect("non-empty group")
                .clone();
            if global_best
                .as_ref()
                .map(|g| best.fitness > g.fitness)
                .unwrap_or(true)
            {
                global_best = Some(best.clone());
            }
            for p in group.iter_mut() {
                if p.arch == best.arch {
                    continue;
                }
                evolve_toward(&mut p.arch, &best.arch, cfg, &mut rng);
            }
        }
        history.push(global_best.as_ref().expect("set above").fitness);
    }
    let group_best = population
        .iter()
        .map(|g| {
            g.iter()
                .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
                .expect("non-empty group")
                .clone()
        })
        .collect();
    Ok(PsoOutcome {
        group_best,
        global_best: global_best.expect("at least one iteration"),
        history,
    })
}

fn random_arch(bundle: &BundleSpec, cfg: &PsoConfig, rng: &mut SkyRng) -> CandidateArch {
    let (lo, hi) = cfg.channel_range;
    let mut channels: Vec<usize> = (0..cfg.depth)
        .map(|_| lo + rng.below(hi - lo + 1))
        .collect();
    // Encourage monotone widening, like hand-designed backbones.
    channels.sort_unstable();
    let mut pool_after = vec![false; cfg.depth];
    let mut placed = 0;
    while placed < cfg.pools.min(cfg.depth) {
        let i = rng.below(cfg.depth);
        if !pool_after[i] {
            pool_after[i] = true;
            placed += 1;
        }
    }
    CandidateArch::new(bundle.clone(), channels, pool_after)
}

#[allow(clippy::too_many_arguments)]
fn evaluate_particle(
    arch: &CandidateArch,
    cfg: &PsoConfig,
    epochs: usize,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
    rng: &mut SkyRng,
) -> Result<(f32, f64)> {
    let mut det = arch.build_detector(anchors.clone(), &mut rng.fork(1));
    let mut opt = Sgd::paper_detector(epochs * train.len().div_ceil(cfg.batch));
    let mut trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: cfg.batch,
        scales: Vec::new(),
        seed: rng.next_u64(),
    });
    trainer.train(&mut det, train, &mut opt)?;
    let acc = evaluate(&mut det, val)?;
    // Eq. 1: Fit = Acc − α·Σ_h β_h·penalty_h  (the paper writes the
    // hardware term additively with α balancing; latency overruns must
    // reduce fitness, so α enters with a negative sign here).
    let penalty: f64 = cfg
        .targets
        .iter()
        .map(|t| t.penalty(arch, cfg.hw_scale, cfg.hw_input))
        .sum();
    Ok((acc, acc as f64 - cfg.alpha * penalty))
}

/// §4.2 particle update: channels move a random percentage of the
/// per-layer difference toward the group best; a random number of pooling
/// positions switch to the group best's.
fn evolve_toward(
    arch: &mut CandidateArch,
    best: &CandidateArch,
    cfg: &PsoConfig,
    rng: &mut SkyRng,
) {
    let (lo, hi) = cfg.channel_range;
    for (c, &bc) in arch.channels.iter_mut().zip(&best.channels) {
        let diff = bc as f64 - *c as f64;
        let step = (diff * rng.uniform() as f64).round() as i64;
        // Small random exploration on top of the attraction term.
        let jitter = rng.below(3) as i64 - 1;
        let nc = (*c as i64 + step + jitter).clamp(lo as i64, hi as i64);
        *c = nc as usize;
    }
    // With probability 1/2, adopt the group best's entire pooling layout
    // (the paper changes "a random number of pooling positions"; moving
    // individual pools would change the output stride mid-search, so we
    // move the layout atomically). Pool count is preserved by copying.
    if rng.chance(0.5) && arch.pool_after != best.pool_after {
        arch.pool_after = best.pool_after.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_data::dacsdc::{DacSdc, DacSdcConfig};
    use skynet_nn::Act;

    fn tiny_data() -> (Vec<Sample>, Vec<Sample>) {
        let mut cfg = DacSdcConfig::default().trainable();
        cfg.height = 16;
        cfg.width = 32;
        cfg.sizes.min_ratio = 0.05;
        let mut gen = DacSdc::new(cfg);
        gen.generate_split(12, 6)
    }

    fn tiny_cfg() -> PsoConfig {
        PsoConfig {
            particles_per_group: 2,
            iterations: 2,
            base_epochs: 1,
            batch: 6,
            depth: 3,
            channel_range: (4, 12),
            pools: 2,
            ..PsoConfig::default()
        }
    }

    #[test]
    fn search_produces_global_best_with_monotone_history() {
        let (train, val) = tiny_data();
        let groups = vec![
            BundleSpec::skynet(Act::Relu6),
            skynet_core::bundle::BundleSpec::new(vec![
                skynet_core::bundle::Component::Conv3,
                skynet_core::bundle::Component::Bn,
                skynet_core::bundle::Component::Relu6,
            ]),
        ];
        let outcome = run(&groups, &tiny_cfg(), &train, &val, &Anchors::dac_sdc()).unwrap();
        assert_eq!(outcome.group_best.len(), 2);
        assert!(outcome.global_best.fitness.is_finite());
        for w in outcome.history.windows(2) {
            assert!(
                w[1] >= w[0],
                "history must be monotone: {:?}",
                outcome.history
            );
        }
    }

    #[test]
    fn evolution_moves_channels_toward_best() {
        let cfg = tiny_cfg();
        let bundle = BundleSpec::skynet(Act::Relu6);
        let mut rng = SkyRng::new(3);
        let mut arch = CandidateArch::new(bundle.clone(), vec![4, 4, 4], vec![true, true, false]);
        let best = CandidateArch::new(bundle, vec![12, 12, 12], vec![true, true, false]);
        let before: usize = arch.channels.iter().sum();
        for _ in 0..10 {
            evolve_toward(&mut arch, &best, &cfg, &mut rng);
        }
        let after: usize = arch.channels.iter().sum();
        assert!(after > before, "channels should drift toward the best");
        // Pool count preserved.
        assert_eq!(arch.pool_after.iter().filter(|&&p| p).count(), 2);
    }

    #[test]
    fn fitness_penalizes_latency_overruns() {
        let cfg = PsoConfig {
            targets: vec![Target::Fpga {
                req_ms: 0.001, // impossible requirement
                beta: 5.0,
            }],
            ..tiny_cfg()
        };
        let bundle = BundleSpec::skynet(Act::Relu6);
        let arch = CandidateArch::new(bundle, vec![8, 8, 8], vec![true, true, false]);
        let p: f64 = cfg
            .targets
            .iter()
            .map(|t| t.penalty(&arch, cfg.hw_scale, cfg.hw_input))
            .sum();
        assert!(
            p > 1.0,
            "penalty {p} should be large for impossible targets"
        );
    }
}
