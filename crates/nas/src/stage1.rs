//! Stage 1: Bundle selection and evaluation (§4.1).
//!
//! Enumerate Bundles from DNN components, build a DNN *sketch* per Bundle
//! (fixed front-end and bounding-box back-end, the Bundle stacked in the
//! middle), fast-train each sketch for a handful of epochs to estimate
//! its accuracy potential, collect hardware feedback (latency on the
//! FPGA, the tighter of the two targets, per the paper), and keep the
//! Pareto frontier.

use crate::arch::CandidateArch;
use skynet_core::bundle::{BundleSpec, Component};
use skynet_core::head::Anchors;
use skynet_core::trainer::{evaluate, TrainConfig, Trainer};
use skynet_core::Sample;
use skynet_hw::fpga::{estimate, FpgaDevice};
use skynet_hw::quant::QuantScheme;
use skynet_nn::{Act, Sgd};
use skynet_tensor::{rng::SkyRng, Result};

/// The component pools enumerated into candidate Bundles: each candidate
/// is `conv-part + BN + activation`, optionally preceded by a depth-wise
/// stage. This covers the paper's component families (DW-Conv3/5,
/// PW-Conv1, Conv3, BN, ReLU/ReLU6).
pub fn enumerate_bundles(act: Act) -> Vec<BundleSpec> {
    let a = match act {
        Act::Relu => Component::Relu,
        Act::Relu6 => Component::Relu6,
    };
    vec![
        // The eventual winner: DW3 + PW1.
        BundleSpec::new(vec![
            Component::DwConv3,
            Component::Bn,
            a,
            Component::PwConv1,
            Component::Bn,
            a,
        ]),
        // DW5 + PW1: larger receptive field, more DW cost.
        BundleSpec::new(vec![
            Component::DwConv5,
            Component::Bn,
            a,
            Component::PwConv1,
            Component::Bn,
            a,
        ]),
        // Plain dense 3×3.
        BundleSpec::new(vec![Component::Conv3, Component::Bn, a]),
        // Dense 3×3 + PW bottleneck.
        BundleSpec::new(vec![
            Component::Conv3,
            Component::Bn,
            a,
            Component::PwConv1,
            Component::Bn,
            a,
        ]),
        // Pure point-wise (no spatial aggregation).
        BundleSpec::new(vec![Component::PwConv1, Component::Bn, a]),
        // Double depth-wise + PW.
        BundleSpec::new(vec![
            Component::DwConv3,
            Component::Bn,
            a,
            Component::DwConv3,
            Component::Bn,
            a,
            Component::PwConv1,
            Component::Bn,
            a,
        ]),
    ]
}

/// Evaluation result for one Bundle's sketch.
#[derive(Debug, Clone)]
pub struct BundleEval {
    /// The Bundle.
    pub bundle: BundleSpec,
    /// Validation IoU of the fast-trained sketch.
    pub accuracy: f32,
    /// Estimated FPGA latency of the paper-scale sketch, ms.
    pub latency_ms: f64,
    /// Whether the paper-scale sketch fits the device.
    pub feasible: bool,
}

/// Stage-1 configuration.
#[derive(Debug, Clone)]
pub struct Stage1Config {
    /// Sketch stack channels (the fixed middle of the sketch).
    pub sketch_channels: Vec<usize>,
    /// Pool placement in the sketch.
    pub sketch_pools: Vec<bool>,
    /// Fast-training epochs ("quickly trained for 20 epochs" in the
    /// paper; reduced here).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Channel multiplier applied for the hardware estimate.
    pub hw_scale: usize,
    /// Hardware input extent for the estimate (paper scale: 160×320).
    pub hw_input: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for Stage1Config {
    fn default() -> Self {
        Stage1Config {
            sketch_channels: vec![8, 16, 32],
            sketch_pools: vec![true, true, true],
            epochs: 4,
            batch: 8,
            hw_scale: 12,
            hw_input: (160, 320),
            seed: 0x57A6E1,
        }
    }
}

/// Fast-trains one Bundle's sketch and collects hardware feedback.
///
/// # Errors
///
/// Propagates tensor shape errors from training.
pub fn evaluate_bundle(
    bundle: &BundleSpec,
    cfg: &Stage1Config,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<BundleEval> {
    let arch = CandidateArch::new(
        bundle.clone(),
        cfg.sketch_channels.clone(),
        cfg.sketch_pools.clone(),
    );
    let mut rng = SkyRng::new(cfg.seed);
    let mut detector = arch.build_detector(anchors.clone(), &mut rng);
    let mut opt = Sgd::paper_detector(cfg.epochs * train.len().div_ceil(cfg.batch));
    let mut trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch,
        scales: Vec::new(),
        seed: cfg.seed ^ 1,
    });
    trainer.train(&mut detector, train, &mut opt)?;
    let accuracy = evaluate(&mut detector, val)?;
    let desc = arch.descriptor_scaled(cfg.hw_scale, cfg.hw_input.0, cfg.hw_input.1);
    let est = estimate(&desc, &FpgaDevice::ultra96(), QuantScheme::new(11, 9), 4);
    Ok(BundleEval {
        bundle: bundle.clone(),
        accuracy,
        latency_ms: est.latency_ms,
        feasible: est.feasible,
    })
}

/// Runs Stage 1 over all enumerated Bundles.
///
/// # Errors
///
/// Propagates tensor shape errors from training.
pub fn run(
    cfg: &Stage1Config,
    act: Act,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<Vec<BundleEval>> {
    enumerate_bundles(act)
        .iter()
        .map(|b| evaluate_bundle(b, cfg, train, val, anchors))
        .collect()
}

/// Selects the Pareto frontier (maximize accuracy, minimize latency)
/// among feasible evaluations, sorted by descending accuracy.
pub fn pareto_frontier(evals: &[BundleEval]) -> Vec<BundleEval> {
    let mut frontier: Vec<BundleEval> = evals
        .iter()
        .filter(|e| e.feasible)
        .filter(|e| {
            !evals.iter().any(|o| {
                o.feasible
                    && o.accuracy >= e.accuracy
                    && o.latency_ms <= e.latency_ms
                    && (o.accuracy > e.accuracy || o.latency_ms < e.latency_ms)
            })
        })
        .cloned()
        .collect();
    frontier.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_contains_the_winning_bundle() {
        let bundles = enumerate_bundles(Act::Relu6);
        assert!(bundles
            .iter()
            .any(|b| b.describe() == "DW-Conv3+BN+ReLU6+PW-Conv1+BN+ReLU6"));
        assert!(bundles.len() >= 5);
    }

    #[test]
    fn pareto_rejects_dominated_points() {
        let b = BundleSpec::skynet(Act::Relu6);
        let mk = |acc: f32, lat: f64, feas: bool| BundleEval {
            bundle: b.clone(),
            accuracy: acc,
            latency_ms: lat,
            feasible: feas,
        };
        let evals = vec![
            mk(0.7, 10.0, true), // frontier
            mk(0.6, 20.0, true), // dominated by first
            mk(0.8, 30.0, true), // frontier (more accurate, slower)
            mk(0.9, 5.0, false), // infeasible
        ];
        let f = pareto_frontier(&evals);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].accuracy, 0.8);
        assert_eq!(f[1].accuracy, 0.7);
    }

    #[test]
    fn dw_pw_bundle_has_lowest_latency_among_spatial_bundles() {
        // The hardware half of the Stage 1 argument: at equal widths the
        // DW+PW Bundle needs far less compute than dense 3×3 bundles.
        let cfg = Stage1Config::default();
        let lat = |b: &BundleSpec| {
            let arch = CandidateArch::new(
                b.clone(),
                cfg.sketch_channels.clone(),
                cfg.sketch_pools.clone(),
            );
            let desc = arch.descriptor_scaled(cfg.hw_scale, 160, 320);
            estimate(&desc, &FpgaDevice::ultra96(), QuantScheme::new(11, 9), 4).latency_ms
        };
        let bundles = enumerate_bundles(Act::Relu6);
        let dwpw = lat(&bundles[0]);
        let conv3 = lat(&bundles[2]);
        let conv3pw = lat(&bundles[3]);
        assert!(dwpw < conv3, "{dwpw} vs {conv3}");
        assert!(dwpw < conv3pw, "{dwpw} vs {conv3pw}");
    }
}
