//! Stage 3: feature addition (§4.3).
//!
//! After the search settles on a chain architecture, the paper manually
//! adds features that the hardware budget permits: a bypass from
//! low-level to high-level features with reordering (because DAC-SDC
//! objects are small — Fig. 6), and the ReLU → ReLU6 swap for cheaper
//! fixed-point feature maps. This module applies those additions to a
//! PSO winner and verifies the accuracy effect with a quick training run.

use crate::arch::CandidateArch;
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{evaluate, TrainConfig, Trainer};
use skynet_core::Sample;
use skynet_nn::{Act, Sgd};
use skynet_tensor::{rng::SkyRng, Result};

/// Maps a 5-deep chain winner onto a [`SkyNetConfig`]: the PSO channel
/// vector becomes the Bundle widths, the requested variant adds the
/// bypass, and the activation is the Stage 3 choice.
///
/// # Panics
///
/// Panics if the winner is not 5 Bundles deep (SkyNet's chain length
/// before the bypass merge).
pub fn to_skynet_config(winner: &CandidateArch, variant: Variant, act: Act) -> SkyNetConfig {
    assert_eq!(
        winner.depth(),
        5,
        "SkyNet mapping expects a 5-Bundle chain, got {}",
        winner.depth()
    );
    let mut cfg = SkyNetConfig::new(variant, act);
    for (dst, &src) in cfg.widths.iter_mut().zip(&winner.channels) {
        *dst = src.max(2);
    }
    // Bundle-6 width follows the paper's B/C ratio of the stage-3 width.
    cfg.bundle6_width = (winner.channels[2] / 2).max(2);
    cfg
}

/// Result of one Stage 3 trial.
#[derive(Debug, Clone)]
pub struct FeatureTrial {
    /// Variant evaluated.
    pub variant: Variant,
    /// Activation evaluated.
    pub act: Act,
    /// Validation IoU after the quick training run.
    pub accuracy: f32,
}

/// Stage 3 budget.
#[derive(Debug, Clone, Copy)]
pub struct Stage3Config {
    /// Training epochs per trial.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Stage3Config {
    fn default() -> Self {
        Stage3Config {
            epochs: 6,
            batch: 8,
            seed: 0x57A6E3,
        }
    }
}

/// Trains and evaluates one (variant, activation) combination of the
/// winner — the same protocol as the Table 4 ablation.
///
/// # Errors
///
/// Propagates tensor shape errors from training.
pub fn trial(
    winner: &CandidateArch,
    variant: Variant,
    act: Act,
    cfg: &Stage3Config,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<FeatureTrial> {
    let sky_cfg = to_skynet_config(winner, variant, act);
    let mut rng = SkyRng::new(cfg.seed);
    let mut det = Detector::new(Box::new(SkyNet::new(sky_cfg, &mut rng)), anchors.clone());
    let mut opt = Sgd::paper_detector(cfg.epochs * train.len().div_ceil(cfg.batch));
    let mut trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch,
        scales: Vec::new(),
        seed: cfg.seed ^ 0xFF,
    });
    trainer.train(&mut det, train, &mut opt)?;
    let accuracy = evaluate(&mut det, val)?;
    Ok(FeatureTrial {
        variant,
        act,
        accuracy,
    })
}

/// Runs the full Stage 3 sweep (A/B/C × ReLU/ReLU6) and returns the
/// trials sorted by descending accuracy.
///
/// # Errors
///
/// Propagates tensor shape errors from training.
pub fn run(
    winner: &CandidateArch,
    cfg: &Stage3Config,
    train: &[Sample],
    val: &[Sample],
    anchors: &Anchors,
) -> Result<Vec<FeatureTrial>> {
    let mut trials = Vec::new();
    for variant in [Variant::A, Variant::B, Variant::C] {
        for act in [Act::Relu, Act::Relu6] {
            trials.push(trial(winner, variant, act, cfg, train, val, anchors)?);
        }
    }
    trials.sort_by(|a, b| b.accuracy.total_cmp(&a.accuracy));
    Ok(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_core::bundle::BundleSpec;

    fn winner() -> CandidateArch {
        CandidateArch::new(
            BundleSpec::skynet(Act::Relu6),
            vec![6, 12, 24, 48, 64],
            vec![true, true, true, false, false],
        )
    }

    #[test]
    fn mapping_preserves_channels() {
        let cfg = to_skynet_config(&winner(), Variant::C, Act::Relu6);
        assert_eq!(cfg.widths, [6, 12, 24, 48, 64]);
        assert_eq!(cfg.bundle6_width, 12);
        assert_eq!(cfg.variant, Variant::C);
    }

    #[test]
    #[should_panic(expected = "5-Bundle chain")]
    fn wrong_depth_rejected() {
        let w = CandidateArch::new(BundleSpec::skynet(Act::Relu6), vec![4, 8], vec![true, true]);
        let _ = to_skynet_config(&w, Variant::A, Act::Relu);
    }
}
