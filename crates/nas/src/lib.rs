//! # skynet-nas
//!
//! The paper's primary methodological contribution: the **bottom-up,
//! hardware-aware DNN design flow** of §4 (Fig. 3), in three stages:
//!
//! 1. [`stage1`] — enumerate candidate [`Bundle`]s from DNN components,
//!    fast-train a fixed-front/back-end sketch per Bundle, pair the
//!    accuracy with hardware feedback from the `skynet-hw` models, and
//!    keep the Pareto-optimal Bundles;
//! 2. [`pso`] — the group-based particle-swarm search of Algorithm 1 over
//!    per-stack channel counts (`dim¹`) and pooling positions (`dim²`),
//!    with the multi-objective fitness of Eq. 1;
//! 3. [`stage3`] — manual feature addition: feature-map bypass +
//!    reordering for small objects and the ReLU → ReLU6 swap.
//!
//! [`flow`] chains the three stages end-to-end (see
//! `examples/nas_search.rs`). Everything runs at reduced scale on the
//! synthetic DAC-SDC set so a full search completes in CPU-minutes;
//! the hardware feedback is evaluated at paper scale so latency and
//! resource pressure are realistic.
//!
//! [`Bundle`]: skynet_core::bundle::BundleSpec

#![deny(missing_docs)]

pub mod arch;
pub mod flow;
pub mod pso;
pub mod stage1;
pub mod stage3;
