//! Stochastic gradient descent with momentum, weight decay and learning
//! rate scheduling.
//!
//! The paper trains SkyNet with SGD and a learning rate decaying from
//! 1e-4 to 1e-7 (§6.1); [`LrSchedule::Exponential`] reproduces that decay
//! profile.

use crate::{Layer, Param};
use skynet_tensor::simd;

/// Learning-rate schedule evaluated per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant(f32),
    /// Geometric interpolation from `start` to `end` over `steps` steps,
    /// constant at `end` afterwards. With `start = 1e-4`, `end = 1e-7`
    /// this is the paper's training schedule.
    Exponential {
        /// Initial learning rate.
        start: f32,
        /// Final learning rate.
        end: f32,
        /// Number of steps over which to decay.
        steps: usize,
    },
    /// Step decay: `base · factor^(step / every)`.
    Step {
        /// Initial learning rate.
        base: f32,
        /// Multiplicative factor applied at each boundary.
        factor: f32,
        /// Interval (in steps) between decays.
        every: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Exponential { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    let t = step as f32 / steps as f32;
                    start * (end / start).powf(t)
                }
            }
            LrSchedule::Step {
                base,
                factor,
                every,
            } => base * factor.powi((step / every.max(1)) as i32),
        }
    }
}

/// SGD with classical momentum and decoupled L2 weight decay.
///
/// Parameters flagged [`Param::decay`]` == false` (biases, batch-norm
/// affine terms) skip the decay term, following common practice.
#[derive(Debug)]
pub struct Sgd {
    schedule: LrSchedule,
    momentum: f32,
    weight_decay: f32,
    grad_clip: Option<f32>,
    step: usize,
    velocity: Vec<Vec<f32>>,
}

/// A parameter-traversal callback: invokes the inner closure once per
/// trainable [`Param`], in a stable order (see [`Sgd::step_visit`]).
pub type ParamVisitor<'a> = dyn FnMut(&mut dyn FnMut(&mut Param)) + 'a;

/// A serializable snapshot of an [`Sgd`] optimizer: the schedule position
/// and the momentum buffers. Together with the model parameters and the
/// trainer RNG this is everything a training checkpoint needs to resume a
/// run bit-identically (the schedule, momentum coefficient and weight
/// decay are configuration, recreated by the caller).
#[derive(Debug, Clone, PartialEq)]
pub struct SgdState {
    /// Number of update steps taken (the LR-schedule position).
    pub step: usize,
    /// Momentum buffer per parameter, in visit order.
    pub velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer with the given schedule, momentum coefficient
    /// and weight decay.
    pub fn new(schedule: LrSchedule, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            schedule,
            momentum,
            weight_decay,
            grad_clip: None,
            step: 0,
            velocity: Vec::new(),
        }
    }

    /// Enables element-wise gradient clipping to `[-c, c]` before the
    /// update — the standard guard against loss spikes when training deep
    /// baselines (ResNet-50) at a learning rate tuned for shallow models.
    pub fn with_grad_clip(mut self, c: f32) -> Self {
        assert!(c > 0.0, "clip bound must be positive");
        self.grad_clip = Some(c);
        self
    }

    /// Convenience constructor matching the paper's detector training:
    /// exponential decay 1e-4 → 1e-7, momentum 0.9, decay 5e-4.
    pub fn paper_detector(total_steps: usize) -> Self {
        Sgd::new(
            LrSchedule::Exponential {
                start: 1e-4,
                end: 1e-7,
                steps: total_steps,
            },
            0.9,
            5e-4,
        )
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.step
    }

    /// Snapshots the optimizer state (schedule position + momentum
    /// buffers) for checkpointing.
    pub fn export_state(&self) -> SgdState {
        SgdState {
            step: self.step,
            velocity: self.velocity.clone(),
        }
    }

    /// Restores a snapshot taken by [`Sgd::export_state`]. The caller is
    /// responsible for pairing it with the matching model parameters;
    /// [`Sgd::step_visit`] re-checks buffer sizes on the next update.
    pub fn import_state(&mut self, state: SgdState) {
        self.step = state.step;
        self.velocity = state.velocity;
    }

    /// Learning rate that the *next* [`Sgd::step`] call will use.
    pub fn current_lr(&self) -> f32 {
        self.schedule.at(self.step)
    }

    /// Applies one update to every parameter of `model` and clears the
    /// gradients.
    pub fn step(&mut self, model: &mut dyn Layer) {
        self.step_visit(&mut |f| model.visit_params(f));
    }

    /// Like [`Sgd::step`] but for composite models that are not a single
    /// [`Layer`]: `visit` must invoke its callback once per parameter, in
    /// a stable order across calls. Gradients are cleared after the
    /// update.
    pub fn step_visit(&mut self, visit: &mut ParamVisitor<'_>) {
        let lr = self.schedule.at(self.step);
        self.step += 1;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let clip = self.grad_clip;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; p.numel()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.len(),
                p.numel(),
                "parameter {idx} changed size between optimizer steps"
            );
            let decay = if p.decay { wd } else { 0.0 };
            // Lane-parallel update; drops non-finite gradients (diverged
            // batch), applies the optional clip, then the same momentum /
            // decay / lr sequence the scalar loop used — bit-identical on
            // every SKYNET_SIMD backend.
            simd::record_lanes("sgd", simd::vector_cover(p.numel()));
            simd::sgd_axpy_update(
                p.value.as_mut_slice(),
                p.grad.as_slice(),
                v,
                lr,
                momentum,
                decay,
                clip,
            );
            p.zero_grad();
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Mode};
    use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Shape, Tensor};

    #[test]
    fn exponential_schedule_endpoints() {
        let s = LrSchedule::Exponential {
            start: 1e-4,
            end: 1e-7,
            steps: 100,
        };
        assert!((s.at(0) - 1e-4).abs() < 1e-9);
        assert!((s.at(100) - 1e-7).abs() < 1e-10);
        assert!((s.at(1000) - 1e-7).abs() < 1e-10);
        // Monotone decreasing.
        assert!(s.at(10) > s.at(50));
    }

    #[test]
    fn step_schedule() {
        let s = LrSchedule::Step {
            base: 1.0,
            factor: 0.1,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        // Minimise ||conv(x) - target||² for a 1×1 conv: a convex problem
        // SGD must make progress on.
        let mut rng = SkyRng::new(0);
        let mut conv = Conv2d::pointwise(1, 1, &mut rng);
        let mut opt = Sgd::new(LrSchedule::Constant(0.05), 0.9, 0.0);
        let x = Tensor::ones(Shape::new(1, 1, 2, 2));
        let target = Tensor::full(Shape::new(1, 1, 2, 2), 3.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..50 {
            let y = conv.forward(&x, Mode::Train).unwrap();
            let diff = y.sub(&target).unwrap();
            let loss = diff.sq_norm();
            let grad = diff.map(|v| 2.0 * v);
            let _ = conv.backward(&grad).unwrap();
            opt.step(&mut conv);
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.01, "{last_loss}");
        assert_eq!(opt.steps_taken(), 50);
    }

    #[test]
    fn grad_clip_bounds_the_update_and_drops_nan() {
        let mut rng = SkyRng::new(2);
        let mut conv = Conv2d::pointwise(1, 1, &mut rng);
        let w0 = {
            let mut v = 0.0;
            conv.visit_params(&mut |p| v = p.value.as_slice()[0]);
            v
        };
        // Plant a huge gradient and a NaN gradient.
        conv.visit_params(&mut |p| p.grad.as_mut_slice().fill(1e6));
        let mut opt = Sgd::new(LrSchedule::Constant(1.0), 0.0, 0.0).with_grad_clip(0.5);
        opt.step(&mut conv);
        let w1 = {
            let mut v = 0.0;
            conv.visit_params(&mut |p| v = p.value.as_slice()[0]);
            v
        };
        assert!((w0 - w1).abs() <= 0.5 + 1e-6, "clip must bound the step");
        conv.visit_params(&mut |p| p.grad.as_mut_slice().fill(f32::NAN));
        opt.step(&mut conv);
        let w2 = {
            let mut v = 0.0;
            conv.visit_params(&mut |p| v = p.value.as_slice()[0]);
            v
        };
        assert!(
            w2.is_finite() && (w2 - w1).abs() < 1e-6,
            "NaN grads are dropped"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = SkyRng::new(1);
        let mut conv = Conv2d::new_no_bias(1, 1, ConvGeometry::pointwise(), &mut rng);
        let before = {
            let mut v = 0.0;
            conv.visit_params(&mut |p| v = p.value.sq_norm());
            v
        };
        // No data gradient at all: pure decay.
        let mut opt = Sgd::new(LrSchedule::Constant(0.1), 0.0, 0.5);
        for _ in 0..10 {
            opt.step(&mut conv);
        }
        let after = {
            let mut v = 0.0;
            conv.visit_params(&mut |p| v = p.value.sq_norm());
            v
        };
        assert!(after < before);
    }
}
