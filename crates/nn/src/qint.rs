//! Quantized inference stages: the INT8 execution form of the SkyNet
//! Bundle elements.
//!
//! A float Bundle runs `DW-Conv3 → BN → Act → PW-Conv1 → BN → Act`.
//! At inference the BN is an affine per-channel transform
//! ([`BatchNorm2d::folded_scale_shift`](crate::BatchNorm2d::folded_scale_shift)),
//! so the executable INT8 path collapses each half-Bundle into one
//! quantized stage:
//!
//! * [`QDwConv3`] — BN-folded 3×3 depth-wise weights quantized to `i8`
//!   with **per-channel** symmetric scales, integer stencil via
//!   [`qint::dwconv3_i8`], then the
//!   scalar requantization epilogue (folded bias, fused activation
//!   clamp, next stage's scale);
//! * [`QPointwise`] — BN-folded 1×1 point-wise weights quantized the
//!   same way, executed as an integer matrix product per batch item
//!   ([`qint::matmul_i8_acc`]),
//!   with either a requantizing epilogue (mid-network) or a
//!   dequantizing one (the detection head, which exits to f32).
//!
//! Activations flow between stages as [`QFeature`]s: an `i8` buffer
//! plus its [`QScale`]. Scales are per-tensor almost everywhere; the
//! **per-channel** variant exists for exactly one structural reason —
//! the bypass concat joins two differently-scaled branches, and the
//! stage that consumes it is a depth-wise convolution, which never
//! mixes channels, so a per-channel input scale stays exact. A
//! point-wise stage *does* mix channels and therefore requires a
//! per-tensor input scale (enforced at run time).
//!
//! Scale provenance (who decides `out_scale`) lives one level up, in
//! `skynet-core`'s `Calibrator`; this module only executes a decided
//! plan. See `QUANTIZATION.md` at the repo root for the full contract.

use crate::Act;
use skynet_tensor::fused::{qfused_bundle_forward, QEpilogue, QFusedSats};
use skynet_tensor::qint::{self, QMAX};
use skynet_tensor::{telemetry, Result, Shape, Tensor, TensorError};

/// Quantization scale(s) attached to an `i8` activation buffer
/// (symmetric scheme: `value ≈ q · scale`, zero-point 0).
#[derive(Debug, Clone, PartialEq)]
pub enum QScale {
    /// One scale for the whole tensor — the common case.
    PerTensor(f32),
    /// One scale per channel — produced by concatenating branches with
    /// different scales; consumable only by channel-preserving stages
    /// (depth-wise conv, pooling, reorg).
    PerChannel(Vec<f32>),
}

impl QScale {
    /// The scale applied to channel `c`.
    ///
    /// # Panics
    ///
    /// Panics when a per-channel scale vector is shorter than `c + 1`.
    pub fn channel(&self, c: usize) -> f32 {
        match self {
            QScale::PerTensor(s) => *s,
            QScale::PerChannel(v) => v[c],
        }
    }

    /// The per-tensor scale, or `None` for per-channel scales.
    pub fn as_per_tensor(&self) -> Option<f32> {
        match self {
            QScale::PerTensor(s) => Some(*s),
            QScale::PerChannel(_) => None,
        }
    }
}

/// A quantized activation tensor: `i8` data in NCHW layout plus its
/// scale. `value[i] ≈ data[i] as f32 * scale(channel(i))`.
#[derive(Debug, Clone)]
pub struct QFeature {
    /// Quantized values, NCHW, dense.
    pub data: Vec<i8>,
    /// Logical shape.
    pub shape: Shape,
    /// Scale(s) mapping `i8` codes back to real values.
    pub scale: QScale,
}

impl QFeature {
    /// Quantizes an f32 tensor into the symmetric `i8` domain with the
    /// given per-tensor scale (the network-entry step). Returns the
    /// feature and the saturation count.
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not strictly positive and finite.
    pub fn quantize(x: &Tensor, scale: f32) -> (Self, u64) {
        let mut data = vec![0i8; x.shape().numel()];
        let saturated = qint::quantize_i8(x.as_slice(), scale, &mut data);
        (
            QFeature {
                data,
                shape: x.shape(),
                scale: QScale::PerTensor(scale),
            },
            saturated,
        )
    }

    /// Dequantizes back to f32 — diagnostic path (the production exit
    /// is [`QPointwise::forward_dequant`], straight from `i32`).
    pub fn dequantize(&self) -> Tensor {
        let s = self.shape;
        let mut out = vec![0f32; s.numel()];
        let plane = s.plane();
        for pi in 0..s.n * s.c {
            let sc = self.scale.channel(pi % s.c);
            for (o, &q) in out[pi * plane..(pi + 1) * plane]
                .iter_mut()
                .zip(&self.data[pi * plane..(pi + 1) * plane])
            {
                *o = f32::from(q) * sc;
            }
        }
        Tensor::from_vec(s, out).expect("shape/len consistent by construction")
    }

    /// 2×2-style max pooling in the quantized domain (positive scale ⇒
    /// integer max picks the f32 winner). Scale rides along unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the spatial
    /// extents are not divisible by `k`.
    pub fn maxpool(&self, k: usize) -> Result<QFeature> {
        let s = self.shape;
        if k == 0 || !s.h.is_multiple_of(k) || !s.w.is_multiple_of(k) {
            return Err(TensorError::InvalidDimension {
                op: "qint.maxpool",
                detail: format!("spatial extents {}×{} not divisible by {k}", s.h, s.w),
            });
        }
        Ok(QFeature {
            data: qint::maxpool2d_i8(&self.data, s.n, s.c, s.h, s.w, k),
            shape: s.with_hw(s.h / k, s.w / k),
            scale: self.scale.clone(),
        })
    }

    /// Space-to-depth reorg in the quantized domain (a pure
    /// permutation). A per-tensor scale rides along; a per-channel
    /// scale would need reindexing and is rejected (the SkyNet bypass
    /// always reorgs a per-tensor branch).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when the extents are
    /// not divisible by `s` or the scale is per-channel.
    pub fn reorg(&self, stride: usize) -> Result<QFeature> {
        let s = self.shape;
        if self.scale.as_per_tensor().is_none() {
            return Err(TensorError::InvalidDimension {
                op: "qint.reorg",
                detail: "per-channel scales cannot be reorged".into(),
            });
        }
        if stride == 0 || !s.h.is_multiple_of(stride) || !s.w.is_multiple_of(stride) {
            return Err(TensorError::InvalidDimension {
                op: "qint.reorg",
                detail: format!("spatial extents {}×{} not divisible by {stride}", s.h, s.w),
            });
        }
        Ok(QFeature {
            data: qint::reorg_i8(&self.data, s.n, s.c, s.h, s.w, stride),
            shape: Shape::new(s.n, s.c * stride * stride, s.h / stride, s.w / stride),
            scale: self.scale.clone(),
        })
    }

    /// Channel concatenation `[self ‖ other]`. The branches keep their
    /// own scales, so the result carries a per-channel scale vector —
    /// legal input for depth-wise stages only (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when batch or spatial
    /// extents differ.
    pub fn concat_channels(&self, other: &QFeature) -> Result<QFeature> {
        let (a, b) = (self.shape, other.shape);
        if a.n != b.n || a.h != b.h || a.w != b.w {
            return Err(TensorError::ShapeMismatch {
                op: "qint.concat",
                expected: a.to_string(),
                got: b.to_string(),
            });
        }
        let plane = a.plane();
        let oc = a.c + b.c;
        let mut data = vec![0i8; a.n * oc * plane];
        for n in 0..a.n {
            let dst = &mut data[n * oc * plane..(n + 1) * oc * plane];
            dst[..a.c * plane].copy_from_slice(&self.data[n * a.c * plane..(n + 1) * a.c * plane]);
            dst[a.c * plane..].copy_from_slice(&other.data[n * b.c * plane..(n + 1) * b.c * plane]);
        }
        let mut scales = Vec::with_capacity(oc);
        for c in 0..a.c {
            scales.push(self.scale.channel(c));
        }
        for c in 0..b.c {
            scales.push(other.scale.channel(c));
        }
        Ok(QFeature {
            data,
            shape: Shape::new(a.n, oc, a.h, a.w),
            scale: QScale::PerChannel(scales),
        })
    }
}

/// Per-channel symmetric weight quantization: each `per`-element group
/// gets `scale = maxabs/127` (1.0 for all-zero groups) and rounds to
/// `[-127, 127]`. Returns `(i8 blob, scales)`.
fn quantize_weights_per_channel(w: &[f32], groups: usize, per: usize) -> (Vec<i8>, Vec<f32>) {
    let mut q = vec![0i8; groups * per];
    let mut scales = vec![1.0f32; groups];
    for g in 0..groups {
        let grp = &w[g * per..(g + 1) * per];
        let maxabs = grp.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if maxabs > 0.0 {
            maxabs / QMAX as f32
        } else {
            1.0
        };
        scales[g] = scale;
        for (d, &v) in q[g * per..(g + 1) * per].iter_mut().zip(grp) {
            *d = (v / scale).round().clamp(-(QMAX as f32), QMAX as f32) as i8;
        }
    }
    (q, scales)
}

/// The activation's requant clamp window: ReLU ⇒ `[0, ∞)`,
/// ReLU6 ⇒ `[0, 6]`, none ⇒ no clamp.
fn act_clamp(act: Option<Act>) -> Option<(f32, f32)> {
    act.map(|a| (0.0, a.output_ceiling().unwrap_or(f32::INFINITY)))
}

/// Records a stage's saturation count under `quant.<op>.saturated`.
fn record_saturation(op: &'static str, count: u64) {
    if count > 0 && telemetry::metrics_enabled() {
        telemetry::counter(&format!("quant.{op}.saturated")).add(count);
    }
}

/// A quantized 3×3 depth-wise stage: BN-folded weights in `i8` with
/// per-channel scales, integer stencil, requantizing epilogue with a
/// fused activation.
#[derive(Debug, Clone)]
pub struct QDwConv3 {
    channels: usize,
    weight: Vec<i8>,
    w_scale: Vec<f32>,
    bias: Vec<f32>,
    act: Option<Act>,
    out_scale: f32,
}

impl QDwConv3 {
    /// Builds the stage from a float depth-wise weight tensor
    /// (`c×1×3×3`), the following BN's folded `(scale, shift)`, the
    /// fused activation, and the calibrated output scale.
    ///
    /// # Panics
    ///
    /// Panics when the BN vectors don't have one entry per channel or
    /// `out_scale` is not strictly positive and finite.
    pub fn fold(
        weight: &Tensor,
        bn_scale: &[f32],
        bn_shift: &[f32],
        act: Option<Act>,
        out_scale: f32,
    ) -> Self {
        let s = weight.shape();
        let channels = s.n;
        assert_eq!(s.c * s.h * s.w, 9, "QDwConv3 needs 3x3 filters");
        assert_eq!(bn_scale.len(), channels, "one BN scale per channel");
        assert_eq!(bn_shift.len(), channels, "one BN shift per channel");
        assert!(
            out_scale.is_finite() && out_scale > 0.0,
            "out_scale must be positive"
        );
        // Fold BN into the weights: w'[c] = w[c] · bn_scale[c]; the shift
        // becomes the stage bias.
        let mut folded = weight.as_slice().to_vec();
        for (c, &bs) in bn_scale.iter().enumerate() {
            for v in &mut folded[c * 9..(c + 1) * 9] {
                *v *= bs;
            }
        }
        let (weight, w_scale) = quantize_weights_per_channel(&folded, channels, 9);
        QDwConv3 {
            channels,
            weight,
            w_scale,
            bias: bn_shift.to_vec(),
            act,
            out_scale,
        }
    }

    /// The calibrated output scale (the next stage's input scale).
    pub fn out_scale(&self) -> f32 {
        self.out_scale
    }

    /// Runs the stage: integer stencil, then per-plane requantization
    /// with `mult = in_scale(c) · w_scale(c)`. Accepts per-channel
    /// input scales (a depth-wise conv never mixes channels).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel mismatch.
    pub fn forward(&self, x: &QFeature) -> Result<QFeature> {
        Ok(self.forward_counted(x)?.0)
    }

    /// [`QDwConv3::forward`] that also returns the stage's saturation
    /// count, so callers (the quantized engine) can publish per-bundle
    /// counters on top of the aggregate `quant.dwconv3.saturated`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QDwConv3::forward`].
    pub fn forward_counted(&self, x: &QFeature) -> Result<(QFeature, u64)> {
        let s = x.shape;
        if s.c != self.channels {
            return Err(TensorError::ShapeMismatch {
                op: "QDwConv3",
                expected: format!("{} channels", self.channels),
                got: s.to_string(),
            });
        }
        let plane = s.plane();
        let mut acc = vec![0i32; s.numel()];
        qint::dwconv3_i8(&x.data, &self.weight, &mut acc, s.n, s.c, s.h, s.w);
        let mut data = vec![0i8; s.numel()];
        let clamp = act_clamp(self.act);
        let mut saturated = 0u64;
        for pi in 0..s.n * s.c {
            let c = pi % s.c;
            let mult = x.scale.channel(c) * self.w_scale[c];
            saturated += qint::requant_i8(
                &acc[pi * plane..(pi + 1) * plane],
                mult,
                self.bias[c],
                clamp,
                self.out_scale,
                &mut data[pi * plane..(pi + 1) * plane],
            );
        }
        record_saturation("dwconv3", saturated);
        Ok((
            QFeature {
                data,
                shape: s,
                scale: QScale::PerTensor(self.out_scale),
            },
            saturated,
        ))
    }
}

/// A quantized 1×1 point-wise stage: BN-folded weights in `i8` with
/// per-output-channel scales, integer matrix product, and either a
/// requantizing (mid-network) or dequantizing (head) epilogue.
#[derive(Debug, Clone)]
pub struct QPointwise {
    in_c: usize,
    out_c: usize,
    weight: Vec<i8>,
    w_scale: Vec<f32>,
    bias: Vec<f32>,
    act: Option<Act>,
    out_scale: Option<f32>,
}

impl QPointwise {
    /// Builds the stage from a float point-wise weight tensor
    /// (`out_c×in_c×1×1`), the convolution's own bias (the head carries
    /// one), an optional following BN's folded `(scale, shift)`, the
    /// fused activation, and the calibrated output scale (`None` for
    /// the dequantizing head stage).
    ///
    /// # Panics
    ///
    /// Panics when vector lengths don't match the channel counts or a
    /// given `out_scale` is not strictly positive and finite.
    pub fn fold(
        weight: &Tensor,
        conv_bias: Option<&[f32]>,
        bn: Option<(&[f32], &[f32])>,
        act: Option<Act>,
        out_scale: Option<f32>,
    ) -> Self {
        let s = weight.shape();
        let (out_c, in_c) = (s.n, s.c);
        assert_eq!(s.h * s.w, 1, "QPointwise needs 1x1 filters");
        if let Some(os) = out_scale {
            assert!(os.is_finite() && os > 0.0, "out_scale must be positive");
        }
        // Effective transform: y = bs·(Wx + b) + bh  =  (bs·W)x + (bs·b + bh).
        let mut folded = weight.as_slice().to_vec();
        let mut bias = vec![0.0f32; out_c];
        if let Some(b) = conv_bias {
            assert_eq!(b.len(), out_c, "one bias per output channel");
            bias.copy_from_slice(b);
        }
        if let Some((bs, bh)) = bn {
            assert_eq!(bs.len(), out_c, "one BN scale per output channel");
            assert_eq!(bh.len(), out_c, "one BN shift per output channel");
            for oc in 0..out_c {
                for v in &mut folded[oc * in_c..(oc + 1) * in_c] {
                    *v *= bs[oc];
                }
                bias[oc] = bias[oc] * bs[oc] + bh[oc];
            }
        }
        let (weight, w_scale) = quantize_weights_per_channel(&folded, out_c, in_c);
        QPointwise {
            in_c,
            out_c,
            weight,
            w_scale,
            bias,
            act,
            out_scale,
        }
    }

    /// The calibrated output scale, if this stage requantizes.
    pub fn out_scale(&self) -> Option<f32> {
        self.out_scale
    }

    fn accumulate(&self, x: &QFeature) -> Result<(Vec<i32>, f32, Shape)> {
        let s = x.shape;
        if s.c != self.in_c {
            return Err(TensorError::ShapeMismatch {
                op: "QPointwise",
                expected: format!("{} channels", self.in_c),
                got: s.to_string(),
            });
        }
        let Some(in_scale) = x.scale.as_per_tensor() else {
            // A point-wise conv mixes input channels inside one i32
            // accumulator; mixed scales would make the sum meaningless.
            return Err(TensorError::InvalidDimension {
                op: "QPointwise",
                detail: "per-channel input scales require a channel-preserving stage".into(),
            });
        };
        let plane = s.plane();
        let os = Shape::new(s.n, self.out_c, s.h, s.w);
        let mut acc = vec![0i32; os.numel()];
        for n in 0..s.n {
            qint::matmul_i8(
                &self.weight,
                &x.data[n * self.in_c * plane..(n + 1) * self.in_c * plane],
                &mut acc[n * self.out_c * plane..(n + 1) * self.out_c * plane],
                self.out_c,
                self.in_c,
                plane,
            );
        }
        Ok((acc, in_scale, os))
    }

    /// Runs the stage with the requantizing epilogue. Requires a
    /// per-tensor input scale and a configured `out_scale`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a channel mismatch and
    /// [`TensorError::InvalidDimension`] on a per-channel input scale
    /// or a head-configured stage (no `out_scale`).
    pub fn forward(&self, x: &QFeature) -> Result<QFeature> {
        Ok(self.forward_counted(x)?.0)
    }

    /// [`QPointwise::forward`] that also returns the stage's saturation
    /// count (see [`QDwConv3::forward_counted`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QPointwise::forward`].
    pub fn forward_counted(&self, x: &QFeature) -> Result<(QFeature, u64)> {
        let Some(out_scale) = self.out_scale else {
            return Err(TensorError::InvalidDimension {
                op: "QPointwise",
                detail: "stage has no out_scale; use forward_dequant".into(),
            });
        };
        let (acc, in_scale, os) = self.accumulate(x)?;
        let plane = os.plane();
        let clamp = act_clamp(self.act);
        let mut data = vec![0i8; os.numel()];
        let mut saturated = 0u64;
        for pi in 0..os.n * os.c {
            let oc = pi % os.c;
            saturated += qint::requant_i8(
                &acc[pi * plane..(pi + 1) * plane],
                in_scale * self.w_scale[oc],
                self.bias[oc],
                clamp,
                out_scale,
                &mut data[pi * plane..(pi + 1) * plane],
            );
        }
        record_saturation("pointwise", saturated);
        Ok((
            QFeature {
                data,
                shape: os,
                scale: QScale::PerTensor(out_scale),
            },
            saturated,
        ))
    }

    /// Runs the stage with the dequantizing epilogue: the network-exit
    /// path (the detection head), producing f32 directly from the
    /// `i32` accumulators. Ignores `out_scale` and the activation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QPointwise::forward`], minus the
    /// `out_scale` requirement.
    pub fn forward_dequant(&self, x: &QFeature) -> Result<Tensor> {
        let (acc, in_scale, os) = self.accumulate(x)?;
        let plane = os.plane();
        let mut out = vec![0f32; os.numel()];
        for pi in 0..os.n * os.c {
            let oc = pi % os.c;
            qint::dequant_f32(
                &acc[pi * plane..(pi + 1) * plane],
                in_scale * self.w_scale[oc],
                self.bias[oc],
                &mut out[pi * plane..(pi + 1) * plane],
            );
        }
        Tensor::from_vec(os, out)
    }
}

/// Runs a `QDwConv3 → QPointwise` stage pair through the cache-resident
/// fused executor
/// ([`qfused_bundle_forward`]):
/// the DW `i32` tile, its requantized activations, and the PW `i32`
/// tile stay in the scratch arena, and the requant epilogues run inside
/// the band store loops. Bit-identical to
/// `pw.forward(&dw.forward(x)?)` — the equivalence suites assert it —
/// and it publishes the same `quant.{dwconv3,pointwise}.saturated`
/// counters. Returns the output feature plus the per-stage saturation
/// counts (for the engine's per-bundle counters).
///
/// Accepts a per-channel input scale exactly like the unfused DW stage
/// (the per-channel multiplier is folded into the DW epilogue; the PW
/// stage consumes the DW output's per-tensor scale).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] on channel mismatches between
/// `x`, `dw`, and `pw`, and [`TensorError::InvalidDimension`] when `pw`
/// is head-configured (no `out_scale` — the head never fuses).
pub fn qfused_forward(
    dw: &QDwConv3,
    pw: &QPointwise,
    x: &QFeature,
) -> Result<(QFeature, QFusedSats)> {
    let s = x.shape;
    if s.c != dw.channels {
        return Err(TensorError::ShapeMismatch {
            op: "qfused_forward",
            expected: format!("{} channels", dw.channels),
            got: s.to_string(),
        });
    }
    if pw.in_c != dw.channels {
        return Err(TensorError::ShapeMismatch {
            op: "qfused_forward",
            expected: format!("PW over {} channels", dw.channels),
            got: format!("{} channels", pw.in_c),
        });
    }
    let Some(pw_out_scale) = pw.out_scale else {
        return Err(TensorError::InvalidDimension {
            op: "qfused_forward",
            detail: "head stage has no out_scale and never fuses".into(),
        });
    };
    let dw_mult: Vec<f32> = (0..dw.channels)
        .map(|c| x.scale.channel(c) * dw.w_scale[c])
        .collect();
    // The PW input scale is the DW stage's per-tensor out_scale.
    let pw_mult: Vec<f32> = pw.w_scale.iter().map(|&ws| dw.out_scale * ws).collect();
    let dw_ep = QEpilogue {
        mult: &dw_mult,
        bias: &dw.bias,
        clamp: act_clamp(dw.act),
        out_scale: dw.out_scale,
    };
    let pw_ep = QEpilogue {
        mult: &pw_mult,
        bias: &pw.bias,
        clamp: act_clamp(pw.act),
        out_scale: pw_out_scale,
    };
    let mut data = vec![0i8; s.n * pw.out_c * s.plane()];
    let sats = qfused_bundle_forward(
        &x.data, s, &dw.weight, &dw_ep, &pw.weight, pw.out_c, &pw_ep, &mut data,
    )?;
    record_saturation("dwconv3", sats.dw);
    record_saturation("pointwise", sats.pw);
    Ok((
        QFeature {
            data,
            shape: Shape::new(s.n, pw.out_c, s.h, s.w),
            scale: QScale::PerTensor(pw_out_scale),
        },
        sats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::rng::SkyRng;

    fn random_tensor(shape: Shape, seed: u64, scale: f32) -> Tensor {
        let mut rng = SkyRng::new(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel()).map(|_| rng.normal(0.0, scale)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded_by_half_step() {
        let x = random_tensor(Shape::new(1, 2, 4, 4), 1, 0.5);
        let maxabs = x.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = maxabs / 127.0;
        let (q, sat) = QFeature::quantize(&x, scale);
        assert_eq!(sat, 0);
        let back = q.dequantize();
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn qdwconv_tracks_float_reference() {
        let (c, h, w) = (3, 6, 40);
        let weight = random_tensor(Shape::new(c, 1, 3, 3), 2, 0.4);
        let bn_scale = vec![1.1, 0.9, 1.0];
        let bn_shift = vec![0.05, -0.1, 0.0];
        let x = random_tensor(Shape::new(2, c, h, w), 3, 0.8);

        // Float reference: dwconv → affine → relu6.
        let fx = {
            use skynet_tensor::conv::ConvGeometry;
            use skynet_tensor::dwconv::dwconv2d;
            let y = dwconv2d(&x, &weight, None, ConvGeometry::same3x3()).unwrap();
            let s = y.shape();
            let mut out = y.as_slice().to_vec();
            for pi in 0..s.n * s.c {
                let ch = pi % s.c;
                for v in &mut out[pi * s.plane()..(pi + 1) * s.plane()] {
                    *v = (*v * bn_scale[ch] + bn_shift[ch]).clamp(0.0, 6.0);
                }
            }
            Tensor::from_vec(s, out).unwrap()
        };

        let in_maxabs = x.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let out_maxabs = fx.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let in_scale = in_maxabs / 127.0;
        let out_scale = (out_maxabs / 127.0).max(1e-6);
        let stage = QDwConv3::fold(&weight, &bn_scale, &bn_shift, Some(Act::Relu6), out_scale);
        let (qx, _) = QFeature::quantize(&x, in_scale);
        let qy = stage.forward(&qx).unwrap();
        let approx = qy.dequantize();

        let mut max_err = 0.0f32;
        for (a, b) in fx.as_slice().iter().zip(approx.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        // 8-bit path: worst case a few quantization steps of error.
        assert!(max_err < out_scale * 4.0 + in_scale * 12.0, "err {max_err}");
    }

    #[test]
    fn qpointwise_tracks_float_reference_and_head_dequantizes() {
        let (ci, co, h, w) = (4, 3, 5, 37);
        let weight = random_tensor(Shape::new(co, ci, 1, 1), 5, 0.3);
        let bias = vec![0.2, -0.4, 0.0];
        let x = random_tensor(Shape::new(1, ci, h, w), 6, 1.0);

        // Float reference: pointwise conv with bias, no activation.
        let fx = {
            use skynet_tensor::conv::{conv2d, ConvGeometry};
            conv2d(&x, &weight, Some(&bias), ConvGeometry::pointwise()).unwrap()
        };

        let in_maxabs = x.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let stage = QPointwise::fold(&weight, Some(&bias), None, None, None);
        let (qx, _) = QFeature::quantize(&x, in_maxabs / 127.0);
        let y = stage.forward_dequant(&qx).unwrap();
        assert_eq!(y.shape(), fx.shape());
        let mut max_err = 0.0f32;
        for (a, b) in fx.as_slice().iter().zip(y.as_slice()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err < 0.1, "head dequant err {max_err}");

        // The requantizing epilogue refuses to run without an out_scale.
        assert!(stage.forward(&qx).is_err());
    }

    #[test]
    fn pointwise_rejects_per_channel_input() {
        let weight = random_tensor(Shape::new(2, 2, 1, 1), 7, 0.3);
        let stage = QPointwise::fold(&weight, None, None, None, Some(0.1));
        let x = QFeature {
            data: vec![0; 2 * 4],
            shape: Shape::new(1, 2, 2, 2),
            scale: QScale::PerChannel(vec![0.1, 0.2]),
        };
        assert!(stage.forward(&x).is_err());
    }

    #[test]
    fn concat_carries_per_channel_scales_and_dwconv_consumes_them() {
        let a = QFeature {
            data: vec![10; 8],
            shape: Shape::new(1, 2, 2, 2),
            scale: QScale::PerTensor(0.1),
        };
        let b = QFeature {
            data: vec![20; 4],
            shape: Shape::new(1, 1, 2, 2),
            scale: QScale::PerTensor(0.5),
        };
        let cat = a.concat_channels(&b).unwrap();
        assert_eq!(cat.shape, Shape::new(1, 3, 2, 2));
        assert_eq!(cat.scale, QScale::PerChannel(vec![0.1, 0.1, 0.5]));
        // A depth-wise stage accepts the mixed scales.
        let weight = Tensor::ones(Shape::new(3, 1, 3, 3));
        let stage = QDwConv3::fold(&weight, &[1.0; 3], &[0.0; 3], None, 0.25);
        assert!(stage.forward(&cat).is_ok());
    }

    #[test]
    fn qfused_forward_matches_stage_pair_bitwise() {
        let (c, c2, h, w) = (4usize, 6usize, 10usize, 14usize);
        let dw_weight = random_tensor(Shape::new(c, 1, 3, 3), 11, 0.4);
        let pw_weight = random_tensor(Shape::new(c2, c, 1, 1), 12, 0.3);
        let bn_scale = vec![1.1, 0.9, 1.0, 1.05];
        let bn_shift = vec![0.05, -0.1, 0.0, 0.02];
        let pw_bn_scale = vec![1.0; c2];
        let pw_bn_shift = vec![0.01; c2];
        let dw = QDwConv3::fold(&dw_weight, &bn_scale, &bn_shift, Some(Act::Relu6), 0.04);
        let pw = QPointwise::fold(
            &pw_weight,
            None,
            Some((&pw_bn_scale, &pw_bn_shift)),
            Some(Act::Relu6),
            Some(0.05),
        );
        let x = random_tensor(Shape::new(2, c, h, w), 13, 0.8);
        let (qx, _) = QFeature::quantize(&x, 0.01);

        let want = pw.forward(&dw.forward(&qx).unwrap()).unwrap();
        let (got, _sats) = qfused_forward(&dw, &pw, &qx).unwrap();
        assert_eq!(got.data, want.data, "fused must be bit-identical");
        assert_eq!(got.shape, want.shape);
        assert_eq!(got.scale, want.scale);

        // A per-channel input scale (the concat case) fuses too.
        let qcat = QFeature {
            data: qx.data.clone(),
            shape: qx.shape,
            scale: QScale::PerChannel(vec![0.01, 0.02, 0.015, 0.01]),
        };
        let want = pw.forward(&dw.forward(&qcat).unwrap()).unwrap();
        let (got, _) = qfused_forward(&dw, &pw, &qcat).unwrap();
        assert_eq!(got.data, want.data, "per-channel input must fuse exactly");

        // The head (no out_scale) never fuses.
        let head = QPointwise::fold(&pw_weight, None, None, None, None);
        assert!(qfused_forward(&dw, &head, &qx).is_err());
    }

    #[test]
    fn maxpool_and_reorg_preserve_scale_semantics() {
        let x = QFeature {
            data: (0..16).map(|v| v as i8).collect(),
            shape: Shape::new(1, 1, 4, 4),
            scale: QScale::PerTensor(0.5),
        };
        let pooled = x.maxpool(2).unwrap();
        assert_eq!(pooled.shape, Shape::new(1, 1, 2, 2));
        assert_eq!(pooled.data, vec![5, 7, 13, 15]);
        let r = x.reorg(2).unwrap();
        assert_eq!(r.shape, Shape::new(1, 4, 2, 2));
        assert_eq!(r.scale, QScale::PerTensor(0.5));
    }
}
