//! # skynet-nn
//!
//! Neural-network building blocks on top of [`skynet_tensor`]: a [`Layer`]
//! trait with explicit forward/backward, the layer set SkyNet and its
//! baselines need (dense / depth-wise / point-wise convolutions, batch
//! norm, ReLU / ReLU6, max pooling, reorg, linear, dropout), container
//! combinators ([`Sequential`], [`Residual`]), He/Xavier initialization, an
//! SGD(+momentum) optimizer with scheduling, and a binary checkpoint
//! format.
//!
//! There is no autograd tape: every layer caches what its own backward
//! pass needs during `forward(Mode::Train)`. This mirrors how the paper
//! reasons about per-IP buffer requirements on the FPGA.
//!
//! ```
//! use skynet_nn::{Sequential, Conv2d, Activation, Act, Mode, Layer};
//! use skynet_tensor::{Tensor, Shape, rng::SkyRng, conv::ConvGeometry};
//!
//! # fn main() -> Result<(), skynet_tensor::TensorError> {
//! let mut rng = SkyRng::new(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Conv2d::new(3, 8, ConvGeometry::same3x3(), &mut rng)),
//!     Box::new(Activation::new(Act::Relu6)),
//! ]);
//! let x = Tensor::ones(Shape::new(1, 3, 8, 8));
//! let y = net.forward(&x, Mode::Eval)?;
//! assert_eq!(y.shape().c, 8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod checkpoint;
mod init;
mod layer;
mod optim;
mod param;
pub mod qint;

mod layers {
    pub mod act;
    pub mod bn;
    pub mod container;
    pub mod conv;
    pub mod dropout;
    pub mod dwconv;
    pub mod linear;
    pub mod pool;
    pub mod reorg;
}

pub use checkpoint::{apply_params, collect_params, load_params, save_params, CheckpointError};
pub use init::{he_normal, xavier_uniform};
pub use layer::{Layer, Mode};
pub use layers::act::{Act, Activation};
pub use layers::bn::BatchNorm2d;
pub use layers::container::{Residual, Sequential};
pub use layers::conv::Conv2d;
pub use layers::dropout::Dropout;
pub use layers::dwconv::DwConv2d;
pub use layers::linear::Linear;
pub use layers::pool::{GlobalAvgPool, MaxPool2d};
pub use layers::reorg::Reorg;
pub use optim::{LrSchedule, Sgd, SgdState};
pub use param::Param;
pub use qint::{QDwConv3, QFeature, QPointwise, QScale};
