use skynet_tensor::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
///
/// Layers expose their parameters through
/// [`Layer::visit_params`](crate::Layer::visit_params); the
/// [`Sgd`](crate::Sgd) optimizer walks them, applies the update and clears
/// the gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient, same shape as `value`.
    pub grad: Tensor,
    /// When `false` the optimizer applies no weight decay (used for biases
    /// and batch-norm affine parameters, the usual convention).
    pub decay: bool,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient and weight decay on.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            decay: true,
        }
    }

    /// Wraps a value tensor with weight decay disabled.
    pub fn new_no_decay(value: Tensor) -> Self {
        Param {
            decay: false,
            ..Param::new(value)
        }
    }

    /// Number of scalar values in the parameter.
    pub fn numel(&self) -> usize {
        self.value.shape().numel()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.as_mut_slice().fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::Shape;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::ones(Shape::new(1, 2, 3, 4)));
        assert_eq!(p.numel(), 24);
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.decay);
        assert!(!Param::new_no_decay(Tensor::ones(Shape::new(1, 1, 1, 1))).decay);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(Shape::new(1, 1, 1, 2)));
        p.grad.as_mut_slice().fill(3.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
