//! Container layers: sequential composition and residual blocks.

use crate::{Layer, Mode, Param};
use skynet_tensor::{Result, Tensor};

/// A chain of layers executed in order; the workhorse container for every
/// backbone in the workspace.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Creates an empty container; grow it with [`Sequential::push`].
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer chain (read-only view for structure-aware passes such
    /// as INT8 quantization, which downcast via [`Layer::as_any`]).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable view of the layer chain (structure-aware passes that
    /// run individual sub-layers, e.g. stage-by-stage calibration).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// One-line summary of the chain, e.g. for model printouts.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential[{}]", self.summary())
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, mode)?;
        }
        Ok(cur)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mut cur = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn name(&self) -> String {
        format!("Sequential[{} layers]", self.layers.len())
    }
}

/// A residual block: `y = main(x) + shortcut(x)`, with an identity
/// shortcut when none is given. Used by the ResNet baselines of Table 2
/// and the tracking experiments.
pub struct Residual {
    main: Sequential,
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a residual block with an identity shortcut.
    ///
    /// The main branch must preserve the input shape.
    pub fn identity(main: Sequential) -> Self {
        Residual {
            main,
            shortcut: None,
        }
    }

    /// Creates a residual block with a projection shortcut (used when the
    /// main branch changes channel count or stride).
    pub fn projected(main: Sequential, shortcut: Sequential) -> Self {
        Residual {
            main,
            shortcut: Some(shortcut),
        }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Residual(main: {:?}, shortcut: {})",
            self.main,
            match &self.shortcut {
                Some(s) => format!("{s:?}"),
                None => "identity".into(),
            }
        )
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let main = self.main.forward(x, mode)?;
        let side = match &mut self.shortcut {
            Some(s) => s.forward(x, mode)?,
            None => x.clone(),
        };
        main.add(&side)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let g_main = self.main.backward(grad_out)?;
        let g_side = match &mut self.shortcut {
            Some(s) => s.backward(grad_out)?,
            None => grad_out.clone(),
        };
        g_main.add(&g_side)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.main.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn name(&self) -> String {
        "Residual".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Act, Activation, Conv2d};
    use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Shape};

    #[test]
    fn sequential_composes() {
        let mut rng = SkyRng::new(0);
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, ConvGeometry::same3x3(), &mut rng)),
            Box::new(Activation::new(Act::Relu)),
            Box::new(Conv2d::pointwise(4, 6, &mut rng)),
        ]);
        let x = Tensor::ones(Shape::new(1, 2, 4, 4));
        let y = net.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), Shape::new(1, 6, 4, 4));
        let gx = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(net.len(), 3);
        assert!(net.summary().contains("ReLU"));
    }

    #[test]
    fn identity_residual_adds_input() {
        // Main branch of all-zero convolutions ⇒ residual output == input.
        let mut rng = SkyRng::new(0);
        let mut conv = Conv2d::pointwise(3, 3, &mut rng);
        conv.visit_params(&mut |p| p.value.as_mut_slice().fill(0.0));
        let mut block = Residual::identity(Sequential::new(vec![Box::new(conv)]));
        let x =
            Tensor::from_vec(Shape::new(1, 3, 2, 2), (0..12).map(|i| i as f32).collect()).unwrap();
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn residual_gradient_sums_branches() {
        let mut rng = SkyRng::new(1);
        let main = Sequential::new(vec![Box::new(Conv2d::pointwise(2, 2, &mut rng))]);
        let mut block = Residual::identity(main);
        let x = Tensor::ones(Shape::new(1, 2, 2, 2));
        let y = block.forward(&x, Mode::Train).unwrap();
        let gx = block.backward(&Tensor::ones(y.shape())).unwrap();
        // Identity path alone contributes 1 everywhere; main path adds its
        // own gradient on top, so nothing should be below 1 minus the conv
        // contribution... simply check shape and the identity lower bound
        // via linearity: grad = 1 + convᵀ·1.
        assert_eq!(gx.shape(), x.shape());
    }
}
