//! Depth-wise convolution layer (`DW-Conv3` in the SkyNet Bundle).

use crate::{he_normal, Layer, Mode, Param};
use skynet_tensor::conv::ConvGeometry;
use skynet_tensor::dwconv::{dwconv2d, dwconv2d_backward};
use skynet_tensor::{rng::SkyRng, Result, Shape, Tensor};

/// A depth-wise 2-D convolution (channel multiplier 1), bias-free by
/// default since SkyNet always follows it with batch norm.
#[derive(Debug, Clone)]
pub struct DwConv2d {
    weight: Param,
    geo: ConvGeometry,
    channels: usize,
    cache: Option<Tensor>,
}

impl DwConv2d {
    /// Creates a He-initialized depth-wise convolution over `channels`
    /// channels.
    pub fn new(channels: usize, geo: ConvGeometry, rng: &mut SkyRng) -> Self {
        let fan_in = geo.kernel * geo.kernel;
        let weight = he_normal(Shape::new(channels, 1, geo.kernel, geo.kernel), fan_in, rng);
        DwConv2d {
            weight: Param::new(weight),
            geo,
            channels,
            cache: None,
        }
    }

    /// The 3×3 same-padding variant used by every SkyNet Bundle.
    pub fn new3x3(channels: usize, rng: &mut SkyRng) -> Self {
        DwConv2d::new(channels, ConvGeometry::same3x3(), rng)
    }

    /// Channel count (input = output).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The weight tensor, shape `channels×1×k×k` (read-only view for
    /// structure-aware passes such as INT8 quantization).
    /// The convolution geometry (kernel/stride/pad) — read by the
    /// execution planner when fusing the bundle.
    pub fn geometry(&self) -> ConvGeometry {
        self.geo
    }

    /// The `[c, 1, k, k]` filter tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for DwConv2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = dwconv2d(x, &self.weight.value, None, self.geo)?;
        if mode.is_train() {
            self.cache = Some(x.clone());
        }
        Ok(mode.finalize(y))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .expect("DwConv2d::backward requires a prior training forward");
        let grads = dwconv2d_backward(&x, &self.weight.value, grad_out, self.geo)?;
        self.weight.grad.axpy(1.0, &grads.weight)?;
        Ok(grads.input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn name(&self) -> String {
        format!(
            "DwConv{}x{}({}, s{})",
            self.geo.kernel, self.geo.kernel, self.channels, self.geo.stride
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_params() {
        let mut rng = SkyRng::new(0);
        let mut dw = DwConv2d::new3x3(48, &mut rng);
        let x = Tensor::ones(Shape::new(1, 48, 8, 8));
        let y = dw.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), x.shape());
        // 48 channels × 9 weights, no bias: DW-Conv3(48) from Table 3.
        assert_eq!(dw.param_count(), 48 * 9);
    }

    #[test]
    fn train_roundtrip_accumulates_grad() {
        let mut rng = SkyRng::new(0);
        let mut dw = DwConv2d::new3x3(2, &mut rng);
        let x = Tensor::ones(Shape::new(1, 2, 4, 4));
        let y = dw.forward(&x, Mode::Train).unwrap();
        let gx = dw.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        let mut g = 0.0;
        dw.visit_params(&mut |p| g += p.grad.max_abs());
        assert!(g > 0.0);
    }
}
