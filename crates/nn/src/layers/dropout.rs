//! Inverted dropout (used by the AlexNet baseline of Fig. 2(a)).

use crate::{Layer, Mode, Param};
use skynet_tensor::{rng::SkyRng, Result, Tensor};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; during eval the
/// layer is the identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SkyRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Dropout {
            p,
            rng: SkyRng::new(seed),
            mask: None,
        }
    }

    /// Drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if !mode.is_train() || self.p == 0.0 {
            self.mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..x.shape().numel())
            .map(|_| if self.rng.chance(keep) { scale } else { 0.0 })
            .collect();
        let data = x
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&v, &m)| v * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(x.shape(), data)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        match self.mask.take() {
            Some(mask) => {
                let data = grad_out
                    .as_slice()
                    .iter()
                    .zip(&mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(grad_out.shape(), data)
            }
            // p == 0 or eval-mode forward: identity.
            None => Ok(grad_out.clone()),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("Dropout(p={})", self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::Shape;

    #[test]
    fn eval_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::ones(Shape::new(1, 1, 4, 4));
        let y = d.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(Shape::new(1, 1, 100, 100));
        let y = d.forward(&x, Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(Shape::new(1, 1, 8, 8));
        let y = d.forward(&x, Mode::Train).unwrap();
        let g = d.backward(&Tensor::ones(x.shape())).unwrap();
        // Wherever the output was zeroed, the gradient must be zero, and
        // survivors share the same scale.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(yv, gv);
        }
    }
}
