//! Activation layers: ReLU and the hardware-friendly ReLU6.

use crate::{Layer, Mode, Param};
use skynet_tensor::ops::{relu, relu6, relu6_backward, relu_backward};
use skynet_tensor::{Result, Tensor};

/// Which activation function to apply.
///
/// The paper replaces ReLU with ReLU6 in Stage 3 of the design flow: the
/// clipped `[0, 6]` range needs fewer integer bits for fixed-point feature
/// maps, which Table 4 shows also trains slightly better on DAC-SDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Act {
    /// `max(x, 0)`.
    Relu,
    /// `clamp(x, 0, 6)`.
    Relu6,
}

impl Act {
    /// Upper clip value of the activation's output range, if bounded.
    pub fn output_ceiling(self) -> Option<f32> {
        match self {
            Act::Relu => None,
            Act::Relu6 => Some(6.0),
        }
    }
}

impl std::fmt::Display for Act {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Act::Relu => write!(f, "ReLU"),
            Act::Relu6 => write!(f, "ReLU6"),
        }
    }
}

/// A stateless activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    act: Act,
    cache: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(act: Act) -> Self {
        Activation { act, cache: None }
    }

    /// The activation kind.
    pub fn kind(&self) -> Act {
        self.act
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = match self.act {
            Act::Relu => relu(x),
            Act::Relu6 => relu6(x),
        };
        if mode.is_train() {
            self.cache = Some(x.clone());
        }
        Ok(mode.finalize(y))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .expect("Activation::backward requires a prior training forward");
        match self.act {
            Act::Relu => relu_backward(&x, grad_out),
            Act::Relu6 => relu6_backward(&x, grad_out),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        self.act.to_string()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::Shape;

    #[test]
    fn relu6_clips_and_masks() {
        let mut a = Activation::new(Act::Relu6);
        let x = Tensor::from_vec(Shape::new(1, 1, 1, 3), vec![-1.0, 3.0, 8.0]).unwrap();
        let y = a.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 3.0, 6.0]);
        let g = a.backward(&Tensor::ones(x.shape())).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn relu_has_no_ceiling() {
        assert_eq!(Act::Relu.output_ceiling(), None);
        assert_eq!(Act::Relu6.output_ceiling(), Some(6.0));
    }

    #[test]
    fn activation_has_no_params() {
        let mut a = Activation::new(Act::Relu);
        assert_eq!(a.param_count(), 0);
    }
}
