//! Fully-connected layer (used by the classification baselines and the
//! tracker heads).

use crate::{xavier_uniform, Layer, Mode, Param};
use skynet_tensor::matmul::{matmul_a_bt_acc, matmul_acc, matmul_at_b_acc};
use skynet_tensor::{rng::SkyRng, Result, Shape, Tensor, TensorError};

/// A dense linear map `y = x·Wᵀ + b` applied to flattened batch items.
///
/// The input may be any `N×C×H×W` tensor with `C·H·W == in_features`; the
/// output has shape `N×out_features×1×1`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param, // [out, in] stored as Shape(out, in, 1, 1)
    bias: Param,   // [out]
    in_features: usize,
    out_features: usize,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a Xavier-initialized linear layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SkyRng) -> Self {
        let weight = xavier_uniform(
            Shape::new(out_features, in_features, 1, 1),
            in_features,
            out_features,
            rng,
        );
        Linear {
            weight: Param::new(weight),
            bias: Param::new_no_decay(Tensor::zeros(Shape::new(1, 1, 1, out_features))),
            in_features,
            out_features,
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let s = x.shape();
        if s.item_numel() != self.in_features {
            return Err(TensorError::ShapeMismatch {
                op: "Linear",
                expected: format!("{} features per item", self.in_features),
                got: s.to_string(),
            });
        }
        let n = s.n;
        let mut y = Tensor::zeros(Shape::new(n, self.out_features, 1, 1));
        // y (n×out) = x (n×in) · Wᵀ (in×out)
        matmul_a_bt_acc(
            x.as_slice(),
            self.weight.value.as_slice(),
            y.as_mut_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        for bi in 0..n {
            let row = &mut y.as_mut_slice()[bi * self.out_features..(bi + 1) * self.out_features];
            for (v, &b) in row.iter_mut().zip(self.bias.value.as_slice()) {
                *v += b;
            }
        }
        if mode.is_train() {
            self.cache = Some(x.clone());
        }
        Ok(mode.finalize(y))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .expect("Linear::backward requires a prior training forward");
        let s = x.shape();
        let n = s.n;
        let go = grad_out.as_slice();
        // dW (out×in) += goᵀ (out×n) · x (n×in)
        matmul_at_b_acc(
            go,
            x.as_slice(),
            self.weight.grad.as_mut_slice(),
            self.out_features,
            n,
            self.in_features,
        );
        // db += column sums of go
        for bi in 0..n {
            for o in 0..self.out_features {
                self.bias.grad.as_mut_slice()[o] += go[bi * self.out_features + o];
            }
        }
        // dx (n×in) = go (n×out) · W (out×in)
        let mut gi = Tensor::zeros(s);
        matmul_acc(
            go,
            self.weight.value.as_slice(),
            gi.as_mut_slice(),
            n,
            self.out_features,
            self.in_features,
        );
        Ok(gi)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn name(&self) -> String {
        format!("Linear({}, {})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = SkyRng::new(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        // Overwrite with known weights.
        lin.weight.value =
            Tensor::from_vec(Shape::new(2, 3, 1, 1), vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]).unwrap();
        lin.bias.value = Tensor::from_vec(Shape::new(1, 1, 1, 2), vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(Shape::new(1, 3, 1, 1), vec![2.0, 3.0, 4.0]).unwrap();
        let y = lin.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[2.5, 6.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = SkyRng::new(1);
        let mut lin = Linear::new(4, 3, &mut rng);
        let x = Tensor::from_vec(
            Shape::new(2, 4, 1, 1),
            vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.7, -0.8],
        )
        .unwrap();
        let y = lin.forward(&x, Mode::Train).unwrap();
        let go = Tensor::ones(y.shape());
        let gi = lin.backward(&go).unwrap();
        let eps = 1e-3;
        for idx in 0..x.shape().numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = lin.forward(&xp, Mode::Eval).unwrap().sum();
            let lm = lin.forward(&xm, Mode::Eval).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gi.as_slice()[idx]).abs() < 1e-2,
                "x[{idx}]: {num} vs {}",
                gi.as_slice()[idx]
            );
        }
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = SkyRng::new(2);
        let mut lin = Linear::new(8, 2, &mut rng);
        let x = Tensor::zeros(Shape::new(1, 4, 1, 1));
        assert!(lin.forward(&x, Mode::Eval).is_err());
    }
}
