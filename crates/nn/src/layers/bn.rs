//! Batch normalization (Ioffe & Szegedy, 2015) — the `BN` element of the
//! SkyNet Bundle.

use crate::{Layer, Mode, Param};
use skynet_tensor::ops::{channel_mean, channel_var};
use skynet_tensor::{simd, Result, Shape, Tensor, TensorError};

/// 2-D batch normalization with learnable per-channel scale and shift.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (momentum 0.9); eval mode uses the running estimates, which
/// is what the quantized FPGA deployment folds into the preceding
/// convolution.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    eps: f32,
    momentum: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` channels
    /// (γ = 1, β = 0, ε = 1e-5, momentum = 0.9).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new_no_decay(Tensor::ones(Shape::new(1, 1, 1, channels))),
            beta: Param::new_no_decay(Tensor::zeros(Shape::new(1, 1, 1, channels))),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            eps: 1e-5,
            momentum: 0.9,
            cache: None,
        }
    }

    /// Running mean estimate (for checkpointing and BN folding).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance estimate.
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The per-channel scale `γ` (read-only view for the execution
    /// planner's epilogue capture).
    pub fn gamma(&self) -> &[f32] {
        self.gamma.value.as_slice()
    }

    /// The per-channel shift `β`.
    pub fn beta(&self) -> &[f32] {
        self.beta.value.as_slice()
    }

    /// The numerical-stability epsilon added to the variance. The fused
    /// epilogue must compute `1/√(σ² + ε)` with this exact value to
    /// reproduce the eval path's bits.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Effective per-channel scale `γ/√(var+ε)` and shift `β − mean·scale`
    /// under the running statistics — the values a deployment folds into
    /// the preceding convolution's weights and bias.
    pub fn folded_scale_shift(&self) -> (Vec<f32>, Vec<f32>) {
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();
        let mut scale = vec![0.0; self.channels];
        let mut shift = vec![0.0; self.channels];
        for c in 0..self.channels {
            let s = gamma[c] / (self.running_var[c] + self.eps).sqrt();
            scale[c] = s;
            shift[c] = beta[c] - self.running_mean[c] * s;
        }
        (scale, shift)
    }

    fn check(&self, x: &Tensor) -> Result<()> {
        if x.shape().c != self.channels {
            return Err(TensorError::ShapeMismatch {
                op: "BatchNorm2d",
                expected: format!("{} channels", self.channels),
                got: x.shape().to_string(),
            });
        }
        Ok(())
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        self.check(x)?;
        let s = x.shape();
        let plane = s.plane();
        let gamma = self.gamma.value.as_slice().to_vec();
        let beta = self.beta.value.as_slice().to_vec();
        match mode {
            Mode::Train => {
                let mean = channel_mean(x);
                let var = channel_var(x, &mean);
                for c in 0..self.channels {
                    self.running_mean[c] =
                        self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean[c];
                    self.running_var[c] =
                        self.momentum * self.running_var[c] + (1.0 - self.momentum) * var[c];
                }
                let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
                let mut x_hat = Tensor::zeros(s);
                let mut y = Tensor::zeros(s);
                simd::record_lanes("bn", s.n * s.c * simd::vector_cover(plane));
                for n in 0..s.n {
                    for c in 0..s.c {
                        let base = (n * s.c + c) * plane;
                        // Lane-parallel plane apply; replays the scalar
                        // `x̂ = (x − m)·is; y = g·x̂ + b` op order exactly.
                        simd::bn_apply_train(
                            &x.as_slice()[base..base + plane],
                            &mut x_hat.as_mut_slice()[base..base + plane],
                            &mut y.as_mut_slice()[base..base + plane],
                            mean[c],
                            inv_std[c],
                            gamma[c],
                            beta[c],
                        );
                    }
                }
                self.cache = Some(BnCache { x_hat, inv_std });
                Ok(y)
            }
            Mode::Eval | Mode::QuantEval { .. } => {
                let mut y = Tensor::zeros(s);
                simd::record_lanes("bn", s.n * s.c * simd::vector_cover(plane));
                for n in 0..s.n {
                    for c in 0..s.c {
                        let base = (n * s.c + c) * plane;
                        let is = 1.0 / (self.running_var[c] + self.eps).sqrt();
                        simd::bn_apply_eval(
                            &x.as_slice()[base..base + plane],
                            &mut y.as_mut_slice()[base..base + plane],
                            self.running_mean[c],
                            is,
                            gamma[c],
                            beta[c],
                        );
                    }
                }
                Ok(mode.finalize(y))
            }
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let BnCache { x_hat, inv_std } = self
            .cache
            .take()
            .expect("BatchNorm2d::backward requires a prior training forward");
        let s = grad_out.shape();
        if s != x_hat.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "BatchNorm2d::backward",
                expected: x_hat.shape().to_string(),
                got: s.to_string(),
            });
        }
        let plane = s.plane();
        let m = (s.n * plane) as f32;
        let gamma = self.gamma.value.as_slice().to_vec();
        // Per-channel reductions.
        let mut sum_go = vec![0.0f32; s.c];
        let mut sum_go_xhat = vec![0.0f32; s.c];
        for n in 0..s.n {
            for c in 0..s.c {
                let base = (n * s.c + c) * plane;
                for i in base..base + plane {
                    let g = grad_out.as_slice()[i];
                    sum_go[c] += g;
                    sum_go_xhat[c] += g * x_hat.as_slice()[i];
                }
            }
        }
        // Parameter gradients.
        for c in 0..s.c {
            self.gamma.grad.as_mut_slice()[c] += sum_go_xhat[c];
            self.beta.grad.as_mut_slice()[c] += sum_go[c];
        }
        // Input gradient:
        // dx = γ·inv_std/m · (m·go − Σgo − x̂·Σ(go·x̂))
        let mut gi = Tensor::zeros(s);
        for n in 0..s.n {
            for c in 0..s.c {
                let base = (n * s.c + c) * plane;
                let k = gamma[c] * inv_std[c] / m;
                for i in base..base + plane {
                    let g = grad_out.as_slice()[i];
                    gi.as_mut_slice()[i] =
                        k * (m * g - sum_go[c] - x_hat.as_slice()[i] * sum_go_xhat[c]);
                }
            }
        }
        Ok(gi)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn name(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::rng::SkyRng;

    fn random(shape: Shape, seed: u64) -> Tensor {
        let mut rng = SkyRng::new(seed);
        Tensor::from_vec(
            shape,
            (0..shape.numel()).map(|_| rng.normal(1.0, 2.0)).collect(),
        )
        .unwrap()
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new(4);
        let x = random(Shape::new(8, 4, 6, 6), 1);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let mean = channel_mean(&y);
        let var = channel_var(&y, &mean);
        for c in 0..4 {
            assert!(mean[c].abs() < 1e-4, "mean[{c}] = {}", mean[c]);
            assert!((var[c] - 1.0).abs() < 1e-2, "var[{c}] = {}", var[c]);
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(2);
        // Train a few steps so running stats move toward the data stats.
        let x = random(Shape::new(16, 2, 8, 8), 2);
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train).unwrap();
            bn.cache = None;
        }
        let y = bn.forward(&x, Mode::Eval).unwrap();
        let mean = channel_mean(&y);
        for (c, m) in mean.iter().enumerate().take(2) {
            assert!(m.abs() < 0.05, "eval mean[{c}] = {m}");
        }
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut bn = BatchNorm2d::new(2);
        let x = random(Shape::new(2, 2, 3, 3), 3);
        let go = random(Shape::new(2, 2, 3, 3), 4);

        let y0 = bn.forward(&x, Mode::Train).unwrap();
        let _ = y0;
        let gi = bn.backward(&go).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17, 35] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            // Fresh BN clones so running stats don't contaminate.
            let mut bnp = BatchNorm2d::new(2);
            let mut bnm = BatchNorm2d::new(2);
            let lp = bnp
                .forward(&xp, Mode::Train)
                .unwrap()
                .mul(&go)
                .unwrap()
                .sum();
            let lm = bnm
                .forward(&xm, Mode::Train)
                .unwrap()
                .mul(&go)
                .unwrap()
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gi.as_slice()[idx];
            assert!((num - ana).abs() < 2e-2, "x[{idx}]: {num} vs {ana}");
        }
    }

    #[test]
    fn folded_scale_shift_matches_eval() {
        let mut bn = BatchNorm2d::new(1);
        let x = random(Shape::new(8, 1, 4, 4), 5);
        for _ in 0..50 {
            let _ = bn.forward(&x, Mode::Train).unwrap();
            bn.cache = None;
        }
        let y = bn.forward(&x, Mode::Eval).unwrap();
        let (scale, shift) = bn.folded_scale_shift();
        for (i, &xv) in x.as_slice().iter().enumerate() {
            let want = xv * scale[0] + shift[0];
            assert!((y.as_slice()[i] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::zeros(Shape::new(1, 4, 2, 2));
        assert!(bn.forward(&x, Mode::Eval).is_err());
    }
}
