//! The reorg (space-to-depth) layer wrapping
//! [`skynet_tensor::reorg`].

use crate::{Layer, Mode, Param};
use skynet_tensor::reorg::{reorg, reorg_backward};
use skynet_tensor::{Result, Shape, Tensor};

/// Feature-map reordering with block size `s` (Fig. 5 of the paper):
/// `C×H×W → C·s²×(H/s)×(W/s)` with no information loss.
#[derive(Debug, Clone)]
pub struct Reorg {
    s: usize,
    cache: Option<Shape>,
}

impl Reorg {
    /// Creates a reorg layer with block size `s`.
    pub fn new(s: usize) -> Self {
        Reorg { s, cache: None }
    }

    /// Block size.
    pub fn block(&self) -> usize {
        self.s
    }
}

impl Layer for Reorg {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = reorg(x, self.s)?;
        if mode.is_train() {
            self.cache = Some(x.shape());
        }
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache
            .take()
            .expect("Reorg::backward requires a prior training forward");
        reorg_backward(shape, grad_out, self.s)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("Reorg(x{})", self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorg_layer_roundtrip() {
        let mut r = Reorg::new(2);
        let s = Shape::new(1, 3, 4, 4);
        let x = Tensor::from_vec(s, (0..s.numel()).map(|i| i as f32).collect()).unwrap();
        let y = r.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.shape(), Shape::new(1, 12, 2, 2));
        let gx = r.backward(&y).unwrap();
        assert_eq!(gx, x);
    }
}
