//! Dense convolution layer, including the 1×1 point-wise special case.

use crate::{he_normal, Layer, Mode, Param};
use skynet_tensor::conv::{conv2d, conv2d_backward, ConvGeometry};
use skynet_tensor::{rng::SkyRng, Result, Shape, Tensor};

/// A dense 2-D convolution layer with optional bias.
///
/// SkyNet's point-wise convolution (`PW-Conv1` in Table 3) is
/// [`Conv2d::pointwise`] — geometry `1×1/s1/p0` — which the underlying
/// kernel executes as a single matrix product.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    geo: ConvGeometry,
    in_c: usize,
    out_c: usize,
    cache: Option<Tensor>,
}

impl Conv2d {
    /// Creates a He-initialized convolution with bias.
    pub fn new(in_c: usize, out_c: usize, geo: ConvGeometry, rng: &mut SkyRng) -> Self {
        let fan_in = in_c * geo.kernel * geo.kernel;
        let weight = he_normal(Shape::new(out_c, in_c, geo.kernel, geo.kernel), fan_in, rng);
        Conv2d {
            weight: Param::new(weight),
            bias: Some(Param::new_no_decay(Tensor::zeros(Shape::new(
                1, 1, 1, out_c,
            )))),
            geo,
            in_c,
            out_c,
            cache: None,
        }
    }

    /// Creates a bias-free convolution (the convention ahead of batch
    /// norm, which subsumes the bias).
    pub fn new_no_bias(in_c: usize, out_c: usize, geo: ConvGeometry, rng: &mut SkyRng) -> Self {
        Conv2d {
            bias: None,
            ..Conv2d::new(in_c, out_c, geo, rng)
        }
    }

    /// A 1×1 point-wise convolution without bias — `PW-Conv1` in the
    /// SkyNet Bundle.
    pub fn pointwise(in_c: usize, out_c: usize, rng: &mut SkyRng) -> Self {
        Conv2d::new_no_bias(in_c, out_c, ConvGeometry::pointwise(), rng)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geo
    }

    fn bias_slice(&self) -> Option<&[f32]> {
        self.bias.as_ref().map(|b| b.value.as_slice())
    }

    /// The weight tensor, shape `out_c×in_c×k×k` (read-only view for
    /// structure-aware passes such as INT8 quantization).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The bias values (one per output channel), if this convolution
    /// carries a bias.
    pub fn bias_values(&self) -> Option<&[f32]> {
        self.bias_slice()
    }

    /// Folds a following batch-norm's per-channel affine transform
    /// (`y = scale·conv(x) + shift`, from
    /// [`BatchNorm2d::folded_scale_shift`](crate::BatchNorm2d::folded_scale_shift))
    /// into this convolution's weights and bias — the standard deployment
    /// transform before fixed-point quantization (§6.4.1).
    ///
    /// # Panics
    ///
    /// Panics if the slices don't have one entry per output channel.
    pub fn fold_bn(&mut self, scale: &[f32], shift: &[f32]) {
        assert_eq!(scale.len(), self.out_c, "one scale per output channel");
        assert_eq!(shift.len(), self.out_c, "one shift per output channel");
        let per_filter = self.in_c * self.geo.kernel * self.geo.kernel;
        for (oc, &s) in scale.iter().enumerate() {
            let w = &mut self.weight.value.as_mut_slice()[oc * per_filter..(oc + 1) * per_filter];
            for v in w {
                *v *= s;
            }
        }
        match &mut self.bias {
            Some(b) => {
                for ((bv, &s), &sh) in b.value.as_mut_slice().iter_mut().zip(scale).zip(shift) {
                    *bv = *bv * s + sh;
                }
            }
            None => {
                let mut bias = Param::new_no_decay(Tensor::zeros(Shape::new(1, 1, 1, self.out_c)));
                bias.value.as_mut_slice().copy_from_slice(shift);
                self.bias = Some(bias);
            }
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = conv2d(x, &self.weight.value, self.bias_slice(), self.geo)?;
        if mode.is_train() {
            self.cache = Some(x.clone());
        }
        Ok(mode.finalize(y))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self
            .cache
            .take()
            .expect("Conv2d::backward requires a prior training forward");
        let grads = conv2d_backward(&x, &self.weight.value, grad_out, self.geo)?;
        self.weight.grad.axpy(1.0, &grads.weight)?;
        if let Some(b) = &mut self.bias {
            for (g, &d) in b.grad.as_mut_slice().iter_mut().zip(&grads.bias) {
                *g += d;
            }
        }
        Ok(grads.input)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn name(&self) -> String {
        format!(
            "Conv{}x{}({}, {}, s{}, p{})",
            self.geo.kernel, self.geo.kernel, self.in_c, self.out_c, self.geo.stride, self.geo.pad
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = SkyRng::new(0);
        let mut conv = Conv2d::new(3, 8, ConvGeometry::same3x3(), &mut rng);
        let x = Tensor::ones(Shape::new(2, 3, 6, 6));
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(2, 8, 6, 6));
        assert_eq!(conv.param_count(), 8 * 3 * 9 + 8);
    }

    #[test]
    fn pointwise_param_count_matches_formula() {
        let mut rng = SkyRng::new(0);
        let mut pw = Conv2d::pointwise(48, 96, &mut rng);
        assert_eq!(pw.param_count(), 48 * 96);
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut rng = SkyRng::new(0);
        let mut conv = Conv2d::new(1, 1, ConvGeometry::pointwise(), &mut rng);
        let x = Tensor::ones(Shape::new(1, 1, 2, 2));
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gx = conv.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        // Gradient accumulated.
        let mut total = 0.0;
        conv.visit_params(&mut |p| total += p.grad.sum().abs());
        assert!(total > 0.0);
    }

    #[test]
    fn bn_folding_matches_conv_then_bn() {
        use crate::BatchNorm2d;
        let mut rng = SkyRng::new(5);
        let mut conv = Conv2d::new_no_bias(3, 4, ConvGeometry::same3x3(), &mut rng);
        let mut bn = BatchNorm2d::new(4);
        // Drive the BN's running statistics away from the identity.
        let mut warm = Tensor::zeros(Shape::new(4, 3, 6, 6));
        for (i, v) in warm.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 17) as f32 - 8.0) * 0.2;
        }
        for _ in 0..50 {
            let y = conv.forward(&warm, Mode::Train).unwrap();
            let _ = bn.forward(&y, Mode::Train).unwrap();
        }
        // Reference: conv → BN in eval mode (training caches are unused
        // from here on; eval forwards leave them alone).
        let x = Tensor::from_vec(
            Shape::new(1, 3, 6, 6),
            (0..108).map(|i| ((i % 11) as f32 - 5.0) * 0.1).collect(),
        )
        .unwrap();
        let y_ref = {
            let y = conv.forward(&x, Mode::Eval).unwrap();
            bn.forward(&y, Mode::Eval).unwrap()
        };
        // Folded: conv alone with adjusted weights.
        let (scale, shift) = bn.folded_scale_shift();
        let mut folded = conv.clone();
        folded.fold_bn(&scale, &shift);
        let y_fold = folded.forward(&x, Mode::Eval).unwrap();
        let err = y_ref.sub(&y_fold).unwrap().max_abs();
        assert!(err < 1e-4, "folding error {err}");
    }

    #[test]
    #[should_panic(expected = "requires a prior training forward")]
    fn backward_after_eval_panics() {
        let mut rng = SkyRng::new(0);
        let mut conv = Conv2d::new(1, 1, ConvGeometry::pointwise(), &mut rng);
        let x = Tensor::ones(Shape::new(1, 1, 2, 2));
        let _ = conv.forward(&x, Mode::Eval).unwrap();
        let _ = conv.backward(&Tensor::ones(Shape::new(1, 1, 2, 2)));
    }
}
