//! Pooling layers: windowed max pooling and global average pooling.

use crate::{Layer, Mode, Param};
use skynet_tensor::pool::{maxpool2d, maxpool2d_backward};
use skynet_tensor::{Result, Shape, Tensor};

/// Non-overlapping `k×k` max pooling (stride = window), as used between
/// SkyNet Bundles.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    cache: Option<(Shape, Vec<u32>)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        MaxPool2d { k, cache: None }
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let pooled = maxpool2d(x, self.k)?;
        if mode.is_train() {
            self.cache = Some((x.shape(), pooled.argmax.clone()));
        }
        Ok(pooled.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (shape, argmax) = self
            .cache
            .take()
            .expect("MaxPool2d::backward requires a prior training forward");
        maxpool2d_backward(shape, &argmax, grad_out)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        format!("MaxPool{}x{}", self.k, self.k)
    }
}

/// Global average pooling: `N×C×H×W → N×C×1×1`.
///
/// Used by the classification baselines (AlexNet/ResNet heads) in the
/// Fig. 2(a) and Table 2 experiments.
#[derive(Debug, Clone)]
pub struct GlobalAvgPool {
    cache: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cache: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        GlobalAvgPool::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let s = x.shape();
        let plane = s.plane() as f32;
        let mut y = Tensor::zeros(Shape::new(s.n, s.c, 1, 1));
        for n in 0..s.n {
            for c in 0..s.c {
                let base = (n * s.c + c) * s.plane();
                y.as_mut_slice()[n * s.c + c] =
                    x.as_slice()[base..base + s.plane()].iter().sum::<f32>() / plane;
            }
        }
        if mode.is_train() {
            self.cache = Some(s);
        }
        Ok(mode.finalize(y))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let s = self
            .cache
            .take()
            .expect("GlobalAvgPool::backward requires a prior training forward");
        let plane = s.plane() as f32;
        let mut gi = Tensor::zeros(s);
        for n in 0..s.n {
            for c in 0..s.c {
                let g = grad_out.as_slice()[n * s.c + c] / plane;
                let base = (n * s.c + c) * s.plane();
                gi.as_mut_slice()[base..base + s.plane()].fill(g);
            }
        }
        Ok(gi)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn name(&self) -> String {
        "GlobalAvgPool".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_backward() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(Shape::new(1, 1, 2, 2), vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let y = p.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[9.0]);
        let g = p
            .backward(&Tensor::from_vec(Shape::new(1, 1, 1, 1), vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn gap_averages_and_spreads() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(Shape::new(1, 2, 1, 2), vec![2.0, 4.0, 10.0, 20.0]).unwrap();
        let y = p.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 15.0]);
        let g = p
            .backward(&Tensor::from_vec(Shape::new(1, 2, 1, 1), vec![2.0, 4.0]).unwrap())
            .unwrap();
        assert_eq!(g.as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }
}
