use crate::Param;
use skynet_tensor::{Result, Tensor};

/// Whether a forward pass is part of training or inference.
///
/// In [`Mode::Train`] layers cache activations for the backward pass,
/// batch norm uses batch statistics, and dropout is active. In
/// [`Mode::Eval`] nothing is cached, batch norm uses running statistics
/// and dropout is the identity. [`Mode::QuantEval`] behaves like `Eval`
/// but additionally fake-quantizes every compute layer's output feature
/// map to `fm_bits` — the fixed-point FPGA inference simulation used by
/// the Table 7 / Fig. 2(a) quantization studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: cache state, use batch statistics, apply dropout.
    Train,
    /// Inference: no caches, running statistics, no dropout.
    Eval,
    /// Inference with feature maps quantized to the given bit width at
    /// every compute layer's output.
    QuantEval {
        /// Total bits for the fixed-point feature-map representation.
        fm_bits: u8,
    },
}

impl Mode {
    /// Whether this is a training pass (caches state for backward).
    pub fn is_train(self) -> bool {
        self == Mode::Train
    }

    /// The feature-map quantization width, if any.
    pub fn fm_bits(self) -> Option<u8> {
        match self {
            Mode::QuantEval { fm_bits } => Some(fm_bits),
            _ => None,
        }
    }

    /// Applies the mode's feature-map post-processing to a layer output:
    /// identity for `Train`/`Eval`, fake quantization for `QuantEval`.
    /// Compute layers (convolutions, BN, activations, linear) call this on
    /// their output; pure data-movement layers (pool, reorg, concat,
    /// dropout) do not, since they introduce no new values.
    pub fn finalize(self, y: skynet_tensor::Tensor) -> skynet_tensor::Tensor {
        match self {
            Mode::QuantEval { fm_bits } => skynet_tensor::ops::fake_quantize(&y, fm_bits),
            _ => y,
        }
    }
}

/// A differentiable network layer.
///
/// The contract is the classic two-phase protocol:
///
/// 1. `forward(x, Mode::Train)` computes the output and caches whatever the
///    backward pass needs;
/// 2. `backward(grad_out)` consumes that cache, **accumulates** parameter
///    gradients into the layer's [`Param`]s, and returns the gradient with
///    respect to the layer input.
///
/// Calling `backward` without a preceding training-mode `forward` is a
/// programming error and panics.
pub trait Layer {
    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when the input shape is incompatible with the
    /// layer configuration.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Computes the input gradient and accumulates parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `grad_out` does not match the cached
    /// forward output shape.
    ///
    /// # Panics
    ///
    /// Panics if no training-mode forward pass preceded this call.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter (used by optimizers, checkpoints
    /// and parameter counting).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Short human-readable layer descriptor for debugging and summaries.
    fn name(&self) -> String;

    /// Total trainable scalar count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }

    /// Clears every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Downcast hook for structure-aware passes (quantization, fusion)
    /// that need the concrete layer behind a `Box<dyn Layer>`. Layers
    /// that opt in return `Some(self)`; the default opts out, so the
    /// hook is additive — implementors outside this crate are
    /// unaffected.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Mutable counterpart of [`Layer::as_any`].
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}
