//! Minimal binary checkpoint format for model parameters.
//!
//! Layout: magic `b"SKYN"`, format version `u32`, parameter count `u32`,
//! then for each parameter its element count (`u32`) followed by the raw
//! little-endian `f32` payload. Parameters are visited in the model's
//! [`Layer::visit_params`] order, so save/load must use structurally
//! identical models.

use crate::Layer;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKYN";
const VERSION: u32 = 1;

/// Errors produced by checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file is not a SkyNet checkpoint or uses an unknown version.
    BadHeader(String),
    /// The stored tensor inventory does not match the model.
    ModelMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader(d) => write!(f, "bad checkpoint header: {d}"),
            CheckpointError::ModelMismatch(d) => write!(f, "checkpoint/model mismatch: {d}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Snapshots every parameter tensor of `model` as a flat `f32` blob, in
/// [`Layer::visit_params`] order. The building block shared by
/// [`save_params`] and the training checkpoint in `skynet-core`.
pub fn collect_params(model: &mut dyn Layer) -> Vec<Vec<f32>> {
    let mut blobs: Vec<Vec<f32>> = Vec::new();
    model.visit_params(&mut |p| blobs.push(p.value.as_slice().to_vec()));
    blobs
}

/// Writes `blobs` (as produced by [`collect_params`] on a structurally
/// identical model) back into `model`'s parameters.
///
/// # Errors
///
/// Returns [`CheckpointError::ModelMismatch`] when the blob inventory
/// (count or per-parameter length) disagrees with the model.
pub fn apply_params(model: &mut dyn Layer, blobs: &[Vec<f32>]) -> Result<(), CheckpointError> {
    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    model.visit_params(&mut |p| {
        if mismatch.is_some() {
            return;
        }
        match blobs.get(idx) {
            Some(blob) if blob.len() == p.numel() => {
                p.value.as_mut_slice().copy_from_slice(blob);
            }
            Some(blob) => {
                mismatch = Some(format!(
                    "parameter {idx}: checkpoint has {} values, model expects {}",
                    blob.len(),
                    p.numel()
                ));
            }
            None => {
                mismatch = Some(format!(
                    "checkpoint has {} parameters, model has more",
                    blobs.len()
                ));
            }
        }
        idx += 1;
    });
    if let Some(detail) = mismatch {
        return Err(CheckpointError::ModelMismatch(detail));
    }
    if idx != blobs.len() {
        return Err(CheckpointError::ModelMismatch(format!(
            "checkpoint has {} parameters, model consumed {idx}",
            blobs.len()
        )));
    }
    Ok(())
}

/// Serializes every parameter of `model` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save_params(model: &mut dyn Layer, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let blobs = collect_params(model);
    let mut file = File::create(path)?;
    file.write_all(MAGIC)?;
    file.write_all(&VERSION.to_le_bytes())?;
    file.write_all(&(blobs.len() as u32).to_le_bytes())?;
    for blob in &blobs {
        file.write_all(&(blob.len() as u32).to_le_bytes())?;
        let mut bytes = Vec::with_capacity(blob.len() * 4);
        for v in blob {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&bytes)?;
    }
    Ok(())
}

/// Restores parameters saved by [`save_params`] into a structurally
/// identical model.
///
/// # Errors
///
/// Returns [`CheckpointError::BadHeader`] for foreign files and
/// [`CheckpointError::ModelMismatch`] when the parameter inventory
/// disagrees with the model.
pub fn load_params(model: &mut dyn Layer, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let mut file = File::open(path)?;
    let mut magic = [0u8; 4];
    file.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader("wrong magic bytes".into()));
    }
    let mut u32buf = [0u8; 4];
    file.read_exact(&mut u32buf)?;
    let version = u32::from_le_bytes(u32buf);
    if version != VERSION {
        return Err(CheckpointError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    file.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut blobs: Vec<Vec<f32>> = Vec::with_capacity(count);
    for _ in 0..count {
        file.read_exact(&mut u32buf)?;
        let len = u32::from_le_bytes(u32buf) as usize;
        let mut bytes = vec![0u8; len * 4];
        file.read_exact(&mut bytes)?;
        blobs.push(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        );
    }
    apply_params(model, &blobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Mode, Sequential};
    use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Shape, Tensor};

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skynet-ckpt-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = SkyRng::new(0);
        let mut a = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, ConvGeometry::same3x3(), &mut rng)),
            Box::new(Conv2d::pointwise(4, 3, &mut rng)),
        ]);
        let mut rng2 = SkyRng::new(99);
        let mut b = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, ConvGeometry::same3x3(), &mut rng2)),
            Box::new(Conv2d::pointwise(4, 3, &mut rng2)),
        ]);
        let path = tmpfile("roundtrip");
        save_params(&mut a, &path).unwrap();
        load_params(&mut b, &path).unwrap();
        let x = Tensor::ones(Shape::new(1, 2, 4, 4));
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ya, yb);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let mut rng = SkyRng::new(0);
        let mut a = Sequential::new(vec![Box::new(Conv2d::pointwise(2, 2, &mut rng))]);
        let mut b = Sequential::new(vec![Box::new(Conv2d::pointwise(2, 3, &mut rng))]);
        let path = tmpfile("mismatch");
        save_params(&mut a, &path).unwrap();
        let err = load_params(&mut b, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::ModelMismatch(_)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmpfile("foreign");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut rng = SkyRng::new(0);
        let mut m = Sequential::new(vec![Box::new(Conv2d::pointwise(1, 1, &mut rng))]);
        let err = load_params(&mut m, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::BadHeader(_)));
        std::fs::remove_file(path).ok();
    }
}
