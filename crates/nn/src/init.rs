//! Weight initialization schemes.

use skynet_tensor::{rng::SkyRng, Shape, Tensor};

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The right choice ahead of ReLU-family activations, which every
/// convolution in this workspace uses.
pub fn he_normal(shape: Shape, fan_in: usize, rng: &mut SkyRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..shape.numel()).map(|_| rng.normal(0.0, std)).collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

/// Xavier (Glorot) uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
///
/// Used for the linear heads where the output is not rectified.
pub fn xavier_uniform(shape: Shape, fan_in: usize, fan_out: usize, rng: &mut SkyRng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let data = (0..shape.numel())
        .map(|_| rng.range(-bound, bound))
        .collect();
    Tensor::from_vec(shape, data).expect("generated buffer matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_std_tracks_fan_in() {
        let mut rng = SkyRng::new(1);
        let shape = Shape::new(64, 64, 3, 3);
        let t = he_normal(shape, 64 * 9, &mut rng);
        let n = t.shape().numel() as f32;
        let mean = t.sum() / n;
        let var = t.map(|v| (v - mean) * (v - mean)).sum() / n;
        let want = 2.0 / (64.0 * 9.0);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - want).abs() / want < 0.15, "var {var} want {want}");
    }

    #[test]
    fn xavier_is_bounded() {
        let mut rng = SkyRng::new(2);
        let t = xavier_uniform(Shape::new(10, 10, 1, 1), 10, 10, &mut rng);
        let bound = (6.0f32 / 20.0).sqrt();
        for &v in t.as_slice() {
            assert!(v.abs() <= bound);
        }
    }
}
