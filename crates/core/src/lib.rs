//! # skynet-core
//!
//! The paper's primary contribution: the **SkyNet** compact detector
//! family (models A, B and C from Table 3), together with everything
//! needed to train and evaluate it —
//!
//! * [`BBox`] and IoU arithmetic (the DAC-SDC accuracy metric, Eq. 2),
//! * the [`Bundle`](bundle) abstraction: the hardware-aware basic block
//!   from Stage 1 of the bottom-up flow,
//! * [`SkyNet`](skynet::SkyNet) with feature-map bypass + reordering and
//!   a two-anchor, classification-free YOLO head (§5.1–5.2),
//! * the detection loss and box decoder ([`head`]),
//! * fault-tolerant training: CRC-protected, atomically-written
//!   [`checkpoint`]s and
//!   [`Trainer::train_resumable`](trainer::Trainer::train_resumable) for
//!   bit-identical kill-and-resume,
//! * a [`Detector`](detector::Detector) wrapper that pairs any backbone
//!   with the head geometry, and
//! * a [`Trainer`](trainer::Trainer) with multi-scale training plus a
//!   mean-IoU evaluator ([`trainer::evaluate`]).
//!
//! ```
//! use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
//! use skynet_nn::{Act, Layer, Mode};
//! use skynet_tensor::{rng::SkyRng, Shape, Tensor};
//!
//! # fn main() -> Result<(), skynet_tensor::TensorError> {
//! let mut rng = SkyRng::new(0);
//! // Quarter-scale SkyNet C for CPU experiments.
//! let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(4);
//! let mut net = SkyNet::new(cfg, &mut rng);
//! let x = Tensor::zeros(Shape::new(1, 3, 48, 96));
//! let y = net.forward(&x, Mode::Eval)?;
//! assert_eq!(y.shape().c, 10); // 2 anchors × (x, y, w, h, conf)
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod bbox;
pub mod bundle;
pub mod checkpoint;
pub mod desc;
pub mod detector;
pub mod head;
pub mod plan;
pub mod quant;
pub mod replica;
pub mod sample;
pub mod skynet;
pub mod trainer;

pub use bbox::BBox;
pub use sample::Sample;
