//! Replica handles: stamping out bit-identical [`Detector`]s from one
//! immutable, `Arc`-published weight set.
//!
//! The serving engine runs N detector replicas on N threads. Each
//! replica needs its *own* [`Detector`] (forward passes take `&mut self`
//! and lean on thread-local scratch arenas), but every replica must
//! answer with exactly the same numbers — a request's result cannot
//! depend on which replica dequeued it. [`DetectorBlueprint`] captures
//! the recipe once — architecture config, anchor set, and the trained
//! parameter blobs behind an [`Arc`] — and [`DetectorBlueprint::spawn`]
//! builds a fresh detector from it on demand. The blobs are snapshotted
//! at publication and never mutated, so spawning is wait-free with
//! respect to other replicas and the weights can be shared with zero
//! copies until the moment each replica writes them into its own
//! parameter tensors.

use crate::checkpoint::blob_hash;
use crate::detector::Detector;
use crate::head::Anchors;
use crate::quant::QuantizedSkyNet;
use crate::skynet::{SkyNet, SkyNetConfig};
use skynet_nn::{apply_params, collect_params, CheckpointError};
use skynet_tensor::rng::SkyRng;
use std::sync::Arc;

/// An immutable, shareable recipe for building identical detectors.
#[derive(Debug, Clone)]
pub struct DetectorBlueprint {
    cfg: SkyNetConfig,
    anchors: Anchors,
    weights: Arc<Vec<Vec<f32>>>,
    int8: Option<Arc<QuantizedSkyNet>>,
}

impl DetectorBlueprint {
    /// Publishes a blueprint from freshly initialized weights: builds one
    /// master model from `seed` and snapshots its parameters, so every
    /// [`spawn`](Self::spawn)ed replica — and any re-publication from the
    /// same seed — carries bit-identical weights.
    pub fn from_seed(cfg: SkyNetConfig, anchors: Anchors, seed: u64) -> Self {
        let mut master = SkyNet::new(cfg.clone(), &mut SkyRng::new(seed));
        let weights = Arc::new(collect_params(&mut master));
        DetectorBlueprint {
            cfg,
            anchors,
            weights,
            int8: None,
        }
    }

    /// Publishes a blueprint around an existing weight snapshot (e.g. the
    /// `params` blobs of a training checkpoint). The blobs must be in
    /// `visit_params` order for a [`SkyNet`] built from `cfg`.
    pub fn from_weights(cfg: SkyNetConfig, anchors: Anchors, weights: Vec<Vec<f32>>) -> Self {
        DetectorBlueprint {
            cfg,
            anchors,
            weights: Arc::new(weights),
            int8: None,
        }
    }

    /// Publishes a quantized generation: every spawned replica carries
    /// the shared INT8 engine and serves the integer path.
    ///
    /// The engine must be built (via
    /// [`QuantizedSkyNet::build`]) from the **live trained** network —
    /// BN running statistics are folded into it and are not recoverable
    /// from the weight blobs. The blueprint keeps the float blobs too,
    /// so [`DetectorBlueprint::weight_hash`] still witnesses the source
    /// weights (a canary's hash check passes for the quantized form of
    /// the same model).
    pub fn with_int8(mut self, engine: Arc<QuantizedSkyNet>) -> Self {
        self.int8 = Some(engine);
        self
    }

    /// The shared INT8 engine, when this blueprint publishes a
    /// quantized generation.
    pub fn int8_engine(&self) -> Option<&Arc<QuantizedSkyNet>> {
        self.int8.as_ref()
    }

    /// The architecture configuration replicas are built from.
    pub fn config(&self) -> &SkyNetConfig {
        &self.cfg
    }

    /// The anchor set replicas decode with.
    pub fn anchors(&self) -> &Anchors {
        &self.anchors
    }

    /// The published weight blobs (shared, never mutated).
    pub fn weights(&self) -> &Arc<Vec<Vec<f32>>> {
        &self.weights
    }

    /// FNV-1a digest of the published weights — the workspace's standard
    /// witness for "these replicas are serving identical parameters".
    pub fn weight_hash(&self) -> u64 {
        blob_hash(&self.weights)
    }

    /// Builds a new detector replica carrying the published weights.
    ///
    /// The structure is instantiated from the config (with a fixed,
    /// irrelevant init seed) and immediately overwritten by the shared
    /// blobs; the spawned detector owns its parameters outright and can
    /// run on any thread.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ModelMismatch`] when the published
    /// blobs do not match the config's parameter inventory (a
    /// `from_weights` blueprint built from foreign blobs).
    pub fn spawn(&self) -> Result<Detector, CheckpointError> {
        let mut net = SkyNet::new(self.cfg.clone(), &mut SkyRng::new(0));
        apply_params(&mut net, &self.weights)?;
        let mut det = Detector::new(Box::new(net), self.anchors.clone());
        if let Some(engine) = &self.int8 {
            det.attach_int8(Arc::clone(engine));
        }
        Ok(det)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::weight_hash;
    use crate::skynet::Variant;
    use skynet_nn::{Act, Mode};
    use skynet_tensor::{Shape, Tensor};

    fn small_blueprint(seed: u64) -> DetectorBlueprint {
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
        DetectorBlueprint::from_seed(cfg, Anchors::dac_sdc(), seed)
    }

    #[test]
    fn spawned_replicas_share_bit_identical_weights() {
        let bp = small_blueprint(7);
        let mut a = bp.spawn().unwrap();
        let mut b = bp.spawn().unwrap();
        let (ha, hb) = (weight_hash(a.backbone_mut()), weight_hash(b.backbone_mut()));
        assert_eq!(ha, hb);
        assert_eq!(ha, bp.weight_hash());
    }

    #[test]
    fn replicas_answer_identically_on_any_thread() {
        let bp = small_blueprint(11);
        let x = Tensor::ones(Shape::new(2, 3, 16, 32));
        let here = bp.spawn().unwrap().predict(&x).unwrap();
        let bp2 = bp.clone();
        let x2 = x.clone();
        let there = std::thread::spawn(move || bp2.spawn().unwrap().predict(&x2).unwrap())
            .join()
            .unwrap();
        assert_eq!(here.len(), there.len());
        for (a, b) in here.iter().zip(&there) {
            assert_eq!(a.confidence.to_bits(), b.confidence.to_bits());
            assert_eq!(a.bbox.cx.to_bits(), b.bbox.cx.to_bits());
            assert_eq!(a.bbox.w.to_bits(), b.bbox.w.to_bits());
        }
    }

    #[test]
    fn from_weights_roundtrips_a_trained_snapshot() {
        let bp = small_blueprint(3);
        let mut det = bp.spawn().unwrap();
        // Perturb and re-publish, as a trainer hot-swapping weights would.
        let mut blobs = Vec::new();
        det.backbone_mut().visit_params(&mut |p| {
            let mut blob = p.value.as_slice().to_vec();
            for v in &mut blob {
                *v += 0.125;
            }
            blobs.push(blob);
        });
        let republished =
            DetectorBlueprint::from_weights(bp.config().clone(), bp.anchors().clone(), blobs);
        assert_ne!(republished.weight_hash(), bp.weight_hash());
        let mut replica = republished.spawn().unwrap();
        assert_eq!(
            weight_hash(replica.backbone_mut()),
            republished.weight_hash()
        );
    }

    #[test]
    fn mismatched_weights_are_rejected() {
        let bp = small_blueprint(5);
        let bad = DetectorBlueprint::from_weights(
            bp.config().clone(),
            bp.anchors().clone(),
            vec![vec![0.0; 3]],
        );
        assert!(bad.spawn().is_err());
    }

    #[test]
    fn spawned_replica_runs_forward_in_eval_mode() {
        let bp = small_blueprint(13);
        let mut det = bp.spawn().unwrap();
        let x = Tensor::zeros(Shape::new(1, 3, 16, 32));
        let pred = det.predict_mode(&x, Mode::Eval).unwrap();
        assert_eq!(pred.len(), 1);
    }
}
