//! The SkyNet architecture — Table 3 / Fig. 4 of the paper.
//!
//! Three configurations share a chain of six DW+PW Bundles with three
//! 2×2 max-pool layers:
//!
//! * **Model A** — plain chain, head directly after Bundle 5;
//! * **Model B** — feature-map bypass from Bundle 3's output, reordered
//!   (space-to-depth ×2) and concatenated ahead of Bundle 6, whose
//!   point-wise stage has 48 channels;
//! * **Model C** — as B but with 96 channels in Bundle 6 (the DAC-SDC
//!   winning configuration when paired with ReLU6).
//!
//! The head is a classification-free YOLO detector: a 1×1 convolution to
//! `2 anchors × 5` channels (§5.1).

use crate::bundle::BundleSpec;
use crate::desc::{LayerDesc, NetDesc};
use skynet_nn::{Act, Conv2d, Layer, MaxPool2d, Mode, Param, Reorg, Sequential};
use skynet_tensor::ops::{concat_channels, split_channels};
use skynet_tensor::{fusion, rng::SkyRng, telemetry, Result, Tensor};

/// Which SkyNet configuration to build (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No bypass.
    A,
    /// Bypass + reorg, 48-channel Bundle 6.
    B,
    /// Bypass + reorg, 96-channel Bundle 6 — the contest entry.
    C,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::A => write!(f, "A"),
            Variant::B => write!(f, "B"),
            Variant::C => write!(f, "C"),
        }
    }
}

/// Number of anchors in the detection head (the paper uses two).
pub const NUM_ANCHORS: usize = 2;

/// Output channels of the head: `NUM_ANCHORS × (x, y, w, h, conf)`.
pub const HEAD_CHANNELS: usize = NUM_ANCHORS * 5;

/// Paper-scale point-wise output widths of Bundles 1–5 (Table 3).
pub const PAPER_WIDTHS: [usize; 5] = [48, 96, 192, 384, 512];

/// Configuration of a SkyNet instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SkyNetConfig {
    /// Which variant to build.
    pub variant: Variant,
    /// Activation used inside every Bundle (the Table 4 ablation axis).
    pub act: Act,
    /// Point-wise output widths of Bundles 1–5.
    pub widths: [usize; 5],
    /// Width of Bundle 6's point-wise stage (ignored for variant A).
    pub bundle6_width: usize,
}

impl SkyNetConfig {
    /// Paper-scale configuration of the given variant and activation.
    pub fn new(variant: Variant, act: Act) -> Self {
        SkyNetConfig {
            variant,
            act,
            widths: PAPER_WIDTHS,
            bundle6_width: match variant {
                Variant::B => 48,
                _ => 96,
            },
        }
    }

    /// Divides every width by `d` (rounding up, minimum 2) — the scaling
    /// used to make CPU training tractable while preserving the layer
    /// structure.
    pub fn with_width_divisor(mut self, d: usize) -> Self {
        for w in &mut self.widths {
            *w = (*w / d).max(2);
        }
        self.bundle6_width = (self.bundle6_width / d).max(2);
        self
    }

    /// Channel count arriving at Bundle 6 via the bypass: Bundle 3's
    /// output reordered ×2 (quadrupling channels).
    pub fn bypass_channels(&self) -> usize {
        self.widths[2] * 4
    }

    /// Abstract descriptor of this configuration for an `in_h×in_w` RGB
    /// input (hardware models, parameter counting).
    pub fn descriptor(&self, in_h: usize, in_w: usize) -> NetDesc {
        let spec = BundleSpec::skynet(self.act);
        let w = self.widths;
        let mut layers = Vec::new();
        let mut cur = 3usize;
        for (i, &width) in w.iter().enumerate() {
            layers.extend(spec.describe_layers(cur, width));
            cur = width;
            if i == 2 && self.variant != Variant::A {
                // Bypass forks here: reorg of Bundle 3's output.
                layers.push(LayerDesc::Reorg { c: cur, s: 2 });
            }
            if i < 3 {
                layers.push(LayerDesc::Pool { c: cur, k: 2 });
            }
        }
        match self.variant {
            Variant::A => {
                layers.push(LayerDesc::Conv {
                    in_c: cur,
                    out_c: HEAD_CHANNELS,
                    k: 1,
                    s: 1,
                    p: 0,
                });
            }
            Variant::B | Variant::C => {
                let bypass = self.bypass_channels();
                layers.push(LayerDesc::Concat {
                    c_main: cur,
                    c_bypass: bypass,
                });
                let cat = cur + bypass;
                layers.push(LayerDesc::DwConv {
                    c: cat,
                    k: 3,
                    s: 1,
                    p: 1,
                });
                layers.push(LayerDesc::Bn { c: cat });
                layers.push(LayerDesc::Act { c: cat });
                layers.push(LayerDesc::Conv {
                    in_c: cat,
                    out_c: self.bundle6_width,
                    k: 1,
                    s: 1,
                    p: 0,
                });
                layers.push(LayerDesc::Bn {
                    c: self.bundle6_width,
                });
                layers.push(LayerDesc::Act {
                    c: self.bundle6_width,
                });
                layers.push(LayerDesc::Conv {
                    in_c: self.bundle6_width,
                    out_c: HEAD_CHANNELS,
                    k: 1,
                    s: 1,
                    p: 0,
                });
            }
        }
        NetDesc::new(3, in_h, in_w, layers)
    }
}

/// A trainable SkyNet detector backbone + head.
///
/// Implements [`Layer`], producing the raw `N×10×(H/8)×(W/8)` prediction
/// map; decode it with [`crate::head::decode_best`].
pub struct SkyNet {
    pub(crate) cfg: SkyNetConfig,
    pub(crate) bundles: Vec<Sequential>, // Bundles 1–5
    pub(crate) pools: Vec<MaxPool2d>,    // after Bundles 1–3
    pub(crate) reorg: Reorg,
    pub(crate) bundle6: Option<Sequential>, // DW+BN+act, PW+BN+act (B/C only)
    pub(crate) head: Conv2d,
    // Backward routing state.
    split_at: Option<usize>,
    /// Cached fused execution plan (eval-mode fast path); `None` until
    /// the first fused forward and after every invalidation.
    plan: Option<crate::plan::ExecPlan>,
}

impl SkyNet {
    /// Builds a SkyNet with freshly initialized weights.
    pub fn new(cfg: SkyNetConfig, rng: &mut SkyRng) -> Self {
        let spec = BundleSpec::skynet(cfg.act);
        let mut bundles = Vec::with_capacity(5);
        let mut cur = 3usize;
        for &w in &cfg.widths {
            bundles.push(spec.build(cur, w, rng));
            cur = w;
        }
        let pools = vec![MaxPool2d::new(2), MaxPool2d::new(2), MaxPool2d::new(2)];
        let (bundle6, head_in) = match cfg.variant {
            Variant::A => (None, cur),
            Variant::B | Variant::C => {
                let cat = cur + cfg.bypass_channels();
                // DW half over the concatenated map, then PW to the
                // bundle-6 width; BundleSpec gives exactly that split.
                let seq = spec.build(cat, cfg.bundle6_width, rng);
                (Some(seq), cfg.bundle6_width)
            }
        };
        let head = Conv2d::new(
            head_in,
            HEAD_CHANNELS,
            skynet_tensor::conv::ConvGeometry::pointwise(),
            rng,
        );
        SkyNet {
            cfg,
            bundles,
            pools,
            reorg: Reorg::new(2),
            bundle6,
            head,
            split_at: None,
            plan: None,
        }
    }

    /// Drops the cached execution plan. Called whenever the weights or
    /// BN statistics may change (optimizer visits, training forwards) so
    /// a stale plan can never serve.
    pub(crate) fn invalidate_plan(&mut self) {
        if self.plan.is_some() {
            telemetry::counter("fusion.plan_invalidations").inc();
        }
        self.plan = None;
    }

    /// The cached plan, building it on first use. Returns `None` (with a
    /// `fusion.fallback` count) when the structure is not fusable.
    fn plan(&mut self) -> Option<&crate::plan::ExecPlan> {
        if self.plan.is_none() {
            match crate::plan::ExecPlan::build(self) {
                Ok(p) => self.plan = Some(p),
                Err(_) => {
                    telemetry::counter("fusion.fallback").inc();
                    return None;
                }
            }
        }
        self.plan.as_ref()
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &SkyNetConfig {
        &self.cfg
    }

    /// Abstract descriptor at the given input geometry.
    pub fn descriptor(&self, in_h: usize, in_w: usize) -> NetDesc {
        self.cfg.descriptor(in_h, in_w)
    }

    /// Total downsampling factor from input to prediction grid.
    pub fn stride(&self) -> usize {
        8
    }
}

/// Builds the SkyNet **feature extractor**: Bundles 1–5 with the three
/// pools (no bypass, no Bundle 6, no detection head) — the backbone the
/// paper drops into SiamRPN++/SiamMask in §7. Returns the network and its
/// output channel count.
pub fn features(cfg: &SkyNetConfig, rng: &mut SkyRng) -> (Sequential, usize) {
    let spec = BundleSpec::skynet(cfg.act);
    let mut seq = Sequential::empty();
    let mut cur = 3usize;
    for (i, &w) in cfg.widths.iter().enumerate() {
        seq.push(Box::new(spec.build(cur, w, rng)));
        if i < 3 {
            seq.push(Box::new(MaxPool2d::new(2)));
        }
        cur = w;
    }
    (seq, cur)
}

/// Abstract descriptor of the feature extractor at paper scale (for the
/// §7 parameter-size comparison against ResNet-50).
pub fn features_descriptor(cfg: &SkyNetConfig, in_h: usize, in_w: usize) -> NetDesc {
    let spec = BundleSpec::skynet(cfg.act);
    let mut layers = Vec::new();
    let mut cur = 3usize;
    for (i, &w) in cfg.widths.iter().enumerate() {
        layers.extend(spec.describe_layers(cur, w));
        cur = w;
        if i < 3 {
            layers.push(LayerDesc::Pool { c: cur, k: 2 });
        }
    }
    NetDesc::new(3, in_h, in_w, layers)
}

/// Per-layer span names, indexable by bundle/pool position so the guard
/// gets a `&'static str` without allocating.
const BUNDLE_SPANS: [&str; 5] = [
    "skynet.bundle1",
    "skynet.bundle2",
    "skynet.bundle3",
    "skynet.bundle4",
    "skynet.bundle5",
];
const POOL_SPANS: [&str; 3] = ["skynet.pool1", "skynet.pool2", "skynet.pool3"];
const BUNDLE_BWD_SPANS: [&str; 5] = [
    "skynet.bundle1.bwd",
    "skynet.bundle2.bwd",
    "skynet.bundle3.bwd",
    "skynet.bundle4.bwd",
    "skynet.bundle5.bwd",
];
const POOL_BWD_SPANS: [&str; 3] = ["skynet.pool1.bwd", "skynet.pool2.bwd", "skynet.pool3.bwd"];

impl Layer for SkyNet {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let _whole = telemetry::span("skynet.forward");
        match mode {
            // Training mutates BN running statistics without a
            // `visit_params` pass — any cached plan is stale after it.
            Mode::Train => self.invalidate_plan(),
            // The fused plan captures eval-path BN epilogues; it is
            // bit-identical to the unfused eval path (QuantEval's
            // per-layer fake-quantize points make it non-fusable).
            Mode::Eval => {
                if fusion::enabled() {
                    if let Some(plan) = self.plan() {
                        return plan.run(x);
                    }
                }
            }
            Mode::QuantEval { .. } => {}
        }
        // Bundles 1–3 with pooling after each.
        let mut cur = x.clone();
        let mut bypass = None;
        for i in 0..3 {
            {
                let _s = telemetry::span(BUNDLE_SPANS[i]);
                cur = self.bundles[i].forward(&cur, mode)?;
            }
            if i == 2 && self.cfg.variant != Variant::A {
                let _s = telemetry::span("skynet.reorg");
                bypass = Some(self.reorg.forward(&cur, mode)?);
            }
            let _s = telemetry::span(POOL_SPANS[i]);
            cur = self.pools[i].forward(&cur, mode)?;
        }
        // Bundles 4–5.
        {
            let _s = telemetry::span(BUNDLE_SPANS[3]);
            cur = self.bundles[3].forward(&cur, mode)?;
        }
        {
            let _s = telemetry::span(BUNDLE_SPANS[4]);
            cur = self.bundles[4].forward(&cur, mode)?;
        }
        // Optional bypass merge + Bundle 6.
        if let Some(b6) = &mut self.bundle6 {
            let by = bypass.expect("bypass exists for variants B/C");
            self.split_at = Some(cur.shape().c);
            let cat = {
                let _s = telemetry::span("skynet.concat");
                concat_channels(&cur, &by)?
            };
            let _s = telemetry::span("skynet.bundle6");
            cur = b6.forward(&cat, mode)?;
        }
        let _s = telemetry::span("skynet.head");
        self.head.forward(&cur, mode)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let _whole = telemetry::span("skynet.backward");
        let mut g = {
            let _s = telemetry::span("skynet.head.bwd");
            self.head.backward(grad_out)?
        };
        let mut g_bypass = None;
        if let Some(b6) = &mut self.bundle6 {
            let g_cat = {
                let _s = telemetry::span("skynet.bundle6.bwd");
                b6.backward(&g)?
            };
            let split = self
                .split_at
                .take()
                .expect("forward must run before backward");
            let _s = telemetry::span("skynet.split.bwd");
            let (g_main, g_by) = split_channels(&g_cat, split)?;
            g = g_main;
            g_bypass = Some(g_by);
        }
        for i in [4, 3] {
            let _s = telemetry::span(BUNDLE_BWD_SPANS[i]);
            g = self.bundles[i].backward(&g)?;
        }
        for i in (0..3).rev() {
            {
                let _s = telemetry::span(POOL_BWD_SPANS[i]);
                g = self.pools[i].backward(&g)?;
            }
            if i == 2 {
                if let Some(g_by) = g_bypass.take() {
                    let _s = telemetry::span("skynet.reorg.bwd");
                    let g_reorg = self.reorg.backward(&g_by)?;
                    g = g.add(&g_reorg)?;
                }
            }
            let _s = telemetry::span(BUNDLE_BWD_SPANS[i]);
            g = self.bundles[i].backward(&g)?;
        }
        Ok(g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // The visitor may mutate any weight (optimizer steps, checkpoint
        // loads), so the cached plan must go.
        self.invalidate_plan();
        for b in &mut self.bundles {
            b.visit_params(f);
        }
        if let Some(b6) = &mut self.bundle6 {
            b6.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn name(&self) -> String {
        format!("SkyNet-{} ({})", self.cfg.variant, self.cfg.act)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl std::fmt::Debug for SkyNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SkyNet-{} act={} widths={:?} b6={}",
            self.cfg.variant, self.cfg.act, self.cfg.widths, self.cfg.bundle6_width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::Shape;

    #[test]
    fn paper_scale_parameter_count_matches_table2() {
        // Table 2 lists the SkyNet backbone at 0.44 M parameters; Table 4
        // lists model C at 1.82 MB (float32). Our analytic count must land
        // in that neighbourhood.
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6);
        let params = cfg.descriptor(160, 320).total_params();
        assert!(
            (430_000..470_000).contains(&params),
            "model C params = {params}"
        );
    }

    #[test]
    fn variant_ordering_by_size_matches_table4() {
        // Table 4: A (1.27 MB) < B (1.57 MB) < C (1.82 MB).
        let p = |v| {
            SkyNetConfig::new(v, Act::Relu6)
                .descriptor(160, 320)
                .total_params()
        };
        let (a, b, c) = (p(Variant::A), p(Variant::B), p(Variant::C));
        assert!(a < b && b < c, "sizes {a} {b} {c}");
    }

    #[test]
    fn forward_shapes_all_variants() {
        for variant in [Variant::A, Variant::B, Variant::C] {
            let mut rng = SkyRng::new(1);
            let cfg = SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(8);
            let mut net = SkyNet::new(cfg, &mut rng);
            let x = Tensor::zeros(Shape::new(2, 3, 24, 48));
            let y = net.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.shape(), Shape::new(2, HEAD_CHANNELS, 3, 6), "{variant}");
        }
    }

    #[test]
    fn descriptor_params_match_built_model() {
        let mut rng = SkyRng::new(2);
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
        let mut net = SkyNet::new(cfg.clone(), &mut rng);
        // Built model has the head bias (+HEAD_CHANNELS) that the
        // descriptor's conv layers don't count.
        assert_eq!(
            net.param_count(),
            cfg.descriptor(24, 48).total_params() + HEAD_CHANNELS
        );
    }

    #[test]
    fn train_backward_runs_through_bypass() {
        let mut rng = SkyRng::new(3);
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
        let mut net = SkyNet::new(cfg, &mut rng);
        let x = Tensor::ones(Shape::new(1, 3, 16, 16));
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(gx.shape(), x.shape());
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.max_abs());
        assert!(total > 0.0, "gradients must reach the Bundles");
    }

    #[test]
    fn variant_a_has_no_bypass() {
        let mut rng = SkyRng::new(4);
        let cfg = SkyNetConfig::new(Variant::A, Act::Relu).with_width_divisor(16);
        let net = SkyNet::new(cfg, &mut rng);
        assert!(net.bundle6.is_none());
    }

    #[test]
    fn descriptor_macs_dominated_by_pointwise() {
        // Sanity: in a DW+PW network the PW convs dominate compute.
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6);
        let desc = cfg.descriptor(160, 320);
        let total = desc.total_macs();
        let pw: u64 = desc
            .walk()
            .iter()
            .filter(|ls| matches!(ls.layer, LayerDesc::Conv { k: 1, .. }))
            .map(|ls| ls.layer.macs(ls.h_in, ls.w_in))
            .sum();
        assert!(pw * 10 > total * 8, "PW should be >80% of MACs");
    }
}
