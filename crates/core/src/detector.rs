//! A detector = backbone + two-anchor YOLO head geometry.
//!
//! [`Detector`] pairs any [`Layer`] whose output is a `5×anchors`-channel
//! map with the anchor set and loss, so the same training and evaluation
//! code runs SkyNet and every Table 2 baseline backbone.

use crate::head::{decode_best, Anchors, Detection, DetectionLoss};
use crate::quant::QuantizedSkyNet;
use crate::BBox;
use skynet_nn::{Layer, Mode};
use skynet_tensor::{Result, Tensor, TensorError};
use std::sync::Arc;

/// A trainable single-object detector.
pub struct Detector {
    backbone: Box<dyn Layer>,
    anchors: Anchors,
    loss: DetectionLoss,
    int8: Option<Arc<QuantizedSkyNet>>,
}

impl Detector {
    /// Creates a detector from a backbone and anchor set.
    ///
    /// The backbone must map `N×3×H×W` images to an
    /// `N×(5·anchors)×(H/s)×(W/s)` prediction map.
    pub fn new(backbone: Box<dyn Layer>, anchors: Anchors) -> Self {
        Detector {
            backbone,
            anchors,
            loss: DetectionLoss::default(),
            int8: None,
        }
    }

    /// Attaches an executable INT8 engine: [`Detector::predict`] runs
    /// the integer path from now on (training and explicit
    /// [`Detector::predict_mode`] calls keep using the float backbone).
    pub fn attach_int8(&mut self, engine: Arc<QuantizedSkyNet>) {
        self.int8 = Some(engine);
    }

    /// The attached INT8 engine, if any.
    pub fn int8_engine(&self) -> Option<&Arc<QuantizedSkyNet>> {
        self.int8.as_ref()
    }

    /// Overrides the loss weighting.
    pub fn with_loss(mut self, loss: DetectionLoss) -> Self {
        self.loss = loss;
        self
    }

    /// The anchor set.
    pub fn anchors(&self) -> &Anchors {
        &self.anchors
    }

    /// Mutable access to the backbone (for the optimizer and checkpoints).
    pub fn backbone_mut(&mut self) -> &mut dyn Layer {
        self.backbone.as_mut()
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        self.backbone.param_count()
    }

    /// Runs inference and decodes the best box per image — through the
    /// INT8 engine when one is attached, the float backbone otherwise.
    ///
    /// # Errors
    ///
    /// Propagates backbone shape errors.
    pub fn predict(&mut self, images: &Tensor) -> Result<Vec<Detection>> {
        if self.int8.is_some() {
            return self.predict_int8(images);
        }
        self.predict_mode(images, Mode::Eval)
    }

    /// Runs inference through the attached INT8 engine explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidDimension`] when no engine is
    /// attached; otherwise propagates stage-graph shape errors.
    pub fn predict_int8(&mut self, images: &Tensor) -> Result<Vec<Detection>> {
        let Some(engine) = &self.int8 else {
            return Err(TensorError::InvalidDimension {
                op: "Detector::predict_int8",
                detail: "no INT8 engine attached (see Detector::attach_int8)".into(),
            });
        };
        let pred = engine.forward(images)?;
        decode_best(&pred, &self.anchors)
    }

    /// Runs inference under an explicit mode — pass
    /// [`Mode::QuantEval`] to simulate fixed-point feature maps (the
    /// Table 7 protocol).
    ///
    /// # Errors
    ///
    /// Propagates backbone shape errors.
    pub fn predict_mode(&mut self, images: &Tensor, mode: Mode) -> Result<Vec<Detection>> {
        let pred = self.backbone.forward(images, mode)?;
        decode_best(&pred, &self.anchors)
    }

    /// One training step's forward + backward; returns the loss. The
    /// caller applies the optimizer step.
    ///
    /// # Errors
    ///
    /// Propagates backbone/loss shape errors.
    pub fn train_batch(&mut self, images: &Tensor, targets: &[BBox]) -> Result<f32> {
        let pred = self.backbone.forward(images, Mode::Train)?;
        let (loss, grad) = self.loss.loss_and_grad(&pred, targets, &self.anchors)?;
        let _ = self.backbone.backward(&grad)?;
        Ok(loss)
    }
}

impl std::fmt::Debug for Detector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Detector({}, {} anchors)",
            self.backbone.name(),
            self.anchors.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skynet::{SkyNet, SkyNetConfig, Variant};
    use skynet_nn::Act;
    use skynet_tensor::{rng::SkyRng, Shape};

    #[test]
    fn predict_yields_one_detection_per_image() {
        let mut rng = SkyRng::new(0);
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
        let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
        let x = Tensor::zeros(Shape::new(3, 3, 16, 32));
        let dets = det.predict(&x).unwrap();
        assert_eq!(dets.len(), 3);
        for d in dets {
            assert!((0.0..=1.0).contains(&d.confidence));
        }
    }

    #[test]
    fn train_batch_returns_finite_loss() {
        let mut rng = SkyRng::new(1);
        let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(16);
        let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
        let x = Tensor::ones(Shape::new(2, 3, 16, 32));
        let targets = [
            BBox::new(0.5, 0.5, 0.1, 0.1),
            BBox::new(0.2, 0.3, 0.05, 0.06),
        ];
        let loss = det.train_batch(&x, &targets).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }
}
