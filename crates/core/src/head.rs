//! The classification-free YOLO detection head (§5.1).
//!
//! SkyNet adapts the YOLO detector by removing the class outputs and
//! regressing boxes with **two anchors**: every grid cell predicts, per
//! anchor, `(tx, ty, tw, th, to)`. Channel layout of the raw prediction
//! map: anchor `a` occupies channels `5a..5a+5`.
//!
//! Decoding follows YOLOv2: within cell `(gx, gy)` of a `gw×gh` grid,
//!
//! ```text
//! bx = (gx + σ(tx)) / gw      bw = anchor_w · exp(tw)
//! by = (gy + σ(ty)) / gh      bh = anchor_h · exp(th)
//! conf = σ(to)
//! ```
//!
//! and the DAC-SDC protocol (single object of interest) keeps only the
//! highest-confidence box per image.

use crate::BBox;
use skynet_tensor::{Result, Tensor, TensorError};

/// Anchor set: normalized `(w, h)` priors.
///
/// The defaults are matched to the synthetic DAC-SDC size distribution
/// (mostly small objects — Fig. 6): one small and one medium prior.
#[derive(Debug, Clone, PartialEq)]
pub struct Anchors {
    sizes: Vec<(f32, f32)>,
}

impl Anchors {
    /// Creates an anchor set.
    ///
    /// # Panics
    ///
    /// Panics when `sizes` is empty or any extent is non-positive.
    pub fn new(sizes: Vec<(f32, f32)>) -> Self {
        assert!(!sizes.is_empty(), "need at least one anchor");
        assert!(
            sizes.iter().all(|&(w, h)| w > 0.0 && h > 0.0),
            "anchor extents must be positive"
        );
        Anchors { sizes }
    }

    /// The two-anchor default used for DAC-SDC experiments.
    pub fn dac_sdc() -> Self {
        Anchors::new(vec![(0.08, 0.10), (0.20, 0.25)])
    }

    /// Anchor count.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Anchor `(w, h)` priors.
    pub fn sizes(&self) -> &[(f32, f32)] {
        &self.sizes
    }

    /// Index of the anchor whose shape best matches (IoU of centered
    /// boxes) the given extent.
    pub fn best_match(&self, w: f32, h: f32) -> usize {
        let gt = BBox::new(0.5, 0.5, w, h);
        let mut best = 0;
        let mut best_iou = -1.0;
        for (i, &(aw, ah)) in self.sizes.iter().enumerate() {
            let iou = gt.iou(&BBox::new(0.5, 0.5, aw, ah));
            if iou > best_iou {
                best_iou = iou;
                best = i;
            }
        }
        best
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One decoded detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Decoded box in normalized image coordinates.
    pub bbox: BBox,
    /// Confidence in `[0, 1]`.
    pub confidence: f32,
}

fn check_channels(pred: &Tensor, anchors: &Anchors) -> Result<()> {
    if pred.shape().c != anchors.len() * 5 {
        return Err(TensorError::ShapeMismatch {
            op: "yolo head",
            expected: format!("{} channels", anchors.len() * 5),
            got: pred.shape().to_string(),
        });
    }
    Ok(())
}

/// Decodes the highest-confidence box for every batch item.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the channel count is not
/// `5 × anchors`.
pub fn decode_best(pred: &Tensor, anchors: &Anchors) -> Result<Vec<Detection>> {
    check_channels(pred, anchors)?;
    let s = pred.shape();
    let (gh, gw) = (s.h, s.w);
    let mut out = Vec::with_capacity(s.n);
    for n in 0..s.n {
        let mut best = Detection {
            bbox: BBox::new(0.5, 0.5, 0.1, 0.1),
            confidence: -1.0,
        };
        for a in 0..anchors.len() {
            let (aw, ah) = anchors.sizes()[a];
            for gy in 0..gh {
                for gx in 0..gw {
                    let conf = sigmoid(pred.at(n, a * 5 + 4, gy, gx));
                    if conf > best.confidence {
                        let tx = pred.at(n, a * 5, gy, gx);
                        let ty = pred.at(n, a * 5 + 1, gy, gx);
                        let tw = pred.at(n, a * 5 + 2, gy, gx).clamp(-6.0, 6.0);
                        let th = pred.at(n, a * 5 + 3, gy, gx).clamp(-6.0, 6.0);
                        best = Detection {
                            bbox: BBox::new(
                                (gx as f32 + sigmoid(tx)) / gw as f32,
                                (gy as f32 + sigmoid(ty)) / gh as f32,
                                aw * tw.exp(),
                                ah * th.exp(),
                            ),
                            confidence: conf,
                        };
                    }
                }
            }
        }
        out.push(best);
    }
    Ok(out)
}

/// YOLO-style regression loss for the single-object DAC-SDC protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionLoss {
    /// Weight of the coordinate terms (YOLO's λ_coord).
    pub lambda_coord: f32,
    /// Weight of the no-object confidence terms (YOLO's λ_noobj).
    pub lambda_noobj: f32,
}

impl Default for DetectionLoss {
    fn default() -> Self {
        DetectionLoss {
            lambda_coord: 5.0,
            lambda_noobj: 0.5,
        }
    }
}

impl DetectionLoss {
    /// Computes the scalar loss and its gradient with respect to the raw
    /// prediction map.
    ///
    /// `targets` holds one ground-truth box per batch item.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when the channel count disagrees with the
    /// anchor set or the target count disagrees with the batch size.
    pub fn loss_and_grad(
        &self,
        pred: &Tensor,
        targets: &[BBox],
        anchors: &Anchors,
    ) -> Result<(f32, Tensor)> {
        check_channels(pred, anchors)?;
        let s = pred.shape();
        if targets.len() != s.n {
            return Err(TensorError::ShapeMismatch {
                op: "detection loss",
                expected: format!("{} targets", s.n),
                got: format!("{} targets", targets.len()),
            });
        }
        let (gh, gw) = (s.h, s.w);
        let mut grad = Tensor::zeros(s);
        let mut loss = 0.0f32;
        let inv_n = 1.0 / s.n as f32;
        for (n, gt) in targets.iter().enumerate() {
            // Responsible cell and anchor.
            let cx = ((gt.cx * gw as f32) as usize).min(gw - 1);
            let cy = ((gt.cy * gh as f32) as usize).min(gh - 1);
            let resp_a = anchors.best_match(gt.w, gt.h);
            // Regression targets.
            let tx_hat = (gt.cx * gw as f32 - cx as f32).clamp(1e-4, 1.0 - 1e-4);
            let ty_hat = (gt.cy * gh as f32 - cy as f32).clamp(1e-4, 1.0 - 1e-4);
            let (aw, ah) = anchors.sizes()[resp_a];
            let tw_hat = (gt.w.max(1e-4) / aw).ln();
            let th_hat = (gt.h.max(1e-4) / ah).ln();
            for a in 0..anchors.len() {
                for gy in 0..gh {
                    for gx in 0..gw {
                        let to = pred.at(n, a * 5 + 4, gy, gx);
                        let so = sigmoid(to).clamp(1e-6, 1.0 - 1e-6);
                        let responsible = a == resp_a && gx == cx && gy == cy;
                        // Confidence: binary cross-entropy. BCE's logit
                        // gradient (σ − t) does not saturate, which matters
                        // with a single positive cell against ~10² negatives
                        // (sigmoid-MSE collapses the head to "no object").
                        if responsible {
                            loss += -inv_n * so.ln();
                            *grad.at_mut(n, a * 5 + 4, gy, gx) += inv_n * (so - 1.0);
                            // Coordinates: squared error on the decoded
                            // values, with the x/y gradient taken directly on
                            // the sigmoid output (YOLOv2 practice; avoids the
                            // vanishing σ' factor far from the target).
                            let tx = pred.at(n, a * 5, gy, gx);
                            let ty = pred.at(n, a * 5 + 1, gy, gx);
                            let tw = pred.at(n, a * 5 + 2, gy, gx);
                            let th = pred.at(n, a * 5 + 3, gy, gx);
                            let sx = sigmoid(tx);
                            let sy = sigmoid(ty);
                            let lc = self.lambda_coord * inv_n;
                            loss += lc
                                * ((sx - tx_hat).powi(2)
                                    + (sy - ty_hat).powi(2)
                                    + (tw - tw_hat).powi(2)
                                    + (th - th_hat).powi(2));
                            *grad.at_mut(n, a * 5, gy, gx) += lc * 2.0 * (sx - tx_hat);
                            *grad.at_mut(n, a * 5 + 1, gy, gx) += lc * 2.0 * (sy - ty_hat);
                            *grad.at_mut(n, a * 5 + 2, gy, gx) += lc * 2.0 * (tw - tw_hat);
                            *grad.at_mut(n, a * 5 + 3, gy, gx) += lc * 2.0 * (th - th_hat);
                        } else {
                            let ln = self.lambda_noobj * inv_n;
                            loss += -ln * (1.0 - so).ln();
                            *grad.at_mut(n, a * 5 + 4, gy, gx) += ln * so;
                        }
                    }
                }
            }
        }
        Ok((loss, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_tensor::Shape;

    fn anchors() -> Anchors {
        Anchors::dac_sdc()
    }

    #[test]
    fn best_match_prefers_similar_shape() {
        let a = anchors();
        assert_eq!(a.best_match(0.07, 0.09), 0);
        assert_eq!(a.best_match(0.25, 0.30), 1);
    }

    #[test]
    fn decode_recovers_planted_box() {
        let a = anchors();
        let s = Shape::new(1, 10, 4, 8);
        let mut pred = Tensor::full(s, -4.0); // low confidence everywhere
                                              // Plant a confident detection at cell (1, 3), anchor 0, centered.
        *pred.at_mut(0, 4, 1, 3) = 8.0; // conf ≈ 1
        *pred.at_mut(0, 0, 1, 3) = 0.0; // σ = 0.5
        *pred.at_mut(0, 1, 1, 3) = 0.0;
        *pred.at_mut(0, 2, 1, 3) = 0.0; // w = anchor w
        *pred.at_mut(0, 3, 1, 3) = 0.0;
        let det = decode_best(&pred, &a).unwrap()[0];
        assert!(det.confidence > 0.99);
        assert!((det.bbox.cx - 3.5 / 8.0).abs() < 1e-5);
        assert!((det.bbox.cy - 1.5 / 4.0).abs() < 1e-5);
        assert!((det.bbox.w - 0.08).abs() < 1e-5);
        assert!((det.bbox.h - 0.10).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases_along_negative_gradient() {
        let a = anchors();
        let s = Shape::new(2, 10, 4, 8);
        let mut pred = Tensor::zeros(s);
        for (i, v) in pred.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 13) as f32 - 6.0) * 0.1;
        }
        let targets = [
            BBox::new(0.3, 0.4, 0.08, 0.1),
            BBox::new(0.7, 0.6, 0.2, 0.24),
        ];
        let loss_fn = DetectionLoss::default();
        let (l0, g) = loss_fn.loss_and_grad(&pred, &targets, &a).unwrap();
        let mut stepped = pred.clone();
        stepped.axpy(-0.05, &g).unwrap();
        let (l1, _) = loss_fn.loss_and_grad(&stepped, &targets, &a).unwrap();
        assert!(l1 < l0, "{l1} !< {l0}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let a = anchors();
        let s = Shape::new(1, 10, 2, 2);
        let mut pred = Tensor::zeros(s);
        for (i, v) in pred.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 7) as f32 - 3.0) * 0.2;
        }
        let targets = [BBox::new(0.6, 0.6, 0.1, 0.12)];
        let loss_fn = DetectionLoss::default();
        let (_, g) = loss_fn.loss_and_grad(&pred, &targets, &a).unwrap();
        let eps = 1e-3;
        // The responsible cell's tx/ty gradients intentionally drop the
        // sigmoid-derivative factor (see loss_and_grad), so exclude those
        // two coordinates from the finite-difference check: grid 2×2,
        // target cell (1,1), anchor 0 ⇒ flat indices 3 (tx) and 7 (ty).
        let skip = [3usize, 7];
        for idx in (0..s.numel()).step_by(7).filter(|i| !skip.contains(i)) {
            let mut p = pred.clone();
            p.as_mut_slice()[idx] += eps;
            let (lp, _) = loss_fn.loss_and_grad(&p, &targets, &a).unwrap();
            p.as_mut_slice()[idx] -= 2.0 * eps;
            let (lm, _) = loss_fn.loss_and_grad(&p, &targets, &a).unwrap();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g.as_slice()[idx]).abs() < 1e-3,
                "idx {idx}: {num} vs {}",
                g.as_slice()[idx]
            );
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let a = anchors();
        let s = Shape::new(1, 10, 4, 8);
        let gt = BBox::new(0.3, 0.4, 0.08, 0.1);
        let mut pred = Tensor::full(s, -20.0); // all conf ≈ 0
                                               // Fill the responsible cell with the exact targets.
        let (cx, cy) = (2usize, 1usize); // 0.3*8 = 2.4 → cell 2; 0.4*4 = 1.6 → cell 1
        let tx = 0.4f32;
        let ty = 0.6f32;
        // Invert sigmoid.
        let inv = |p: f32| (p / (1.0 - p)).ln();
        *pred.at_mut(0, 0, cy, cx) = inv(tx);
        *pred.at_mut(0, 1, cy, cx) = inv(ty);
        *pred.at_mut(0, 2, cy, cx) = (0.08f32 / 0.08).ln();
        *pred.at_mut(0, 3, cy, cx) = (0.1f32 / 0.10).ln();
        *pred.at_mut(0, 4, cy, cx) = 20.0; // conf ≈ 1
        let (loss, _) = DetectionLoss::default()
            .loss_and_grad(&pred, &[gt], &a)
            .unwrap();
        assert!(loss < 1e-4, "loss {loss}");
        // And decode recovers the ground truth.
        let det = decode_best(&pred, &a).unwrap()[0];
        assert!(det.bbox.iou(&gt) > 0.99, "iou {}", det.bbox.iou(&gt));
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let a = anchors();
        let pred = Tensor::zeros(Shape::new(1, 8, 2, 2));
        assert!(decode_best(&pred, &a).is_err());
        assert!(DetectionLoss::default()
            .loss_and_grad(&pred, &[BBox::new(0.5, 0.5, 0.1, 0.1)], &a)
            .is_err());
    }
}
