//! Training loop and mean-IoU evaluation for single-object detectors.
//!
//! Mirrors the paper's §6.1 protocol at reduced scale: SGD with an
//! exponentially decaying learning rate, optional multi-scale training
//! (the input is bilinearly resized to a randomly chosen scale each
//! batch), and mean-IoU validation (Eq. 2 without the energy term).

use crate::checkpoint::{self, ResumeError, TrainCheckpoint};
use crate::detector::Detector;
use crate::{BBox, Sample};
use skynet_nn::{apply_params, collect_params, Sgd, SgdState};
use skynet_tensor::ops::{resize_bilinear, resize_bilinear_into};
use skynet_tensor::{parallel, rng::SkyRng, telemetry, Result, Shape, Tensor, TensorError};
use std::path::Path;

/// Trainer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optional multi-scale training: a set of `(h, w)` input sizes, one
    /// picked per batch. Sizes must be multiples of the backbone stride.
    pub scales: Vec<(usize, usize)>,
    /// RNG seed for shuffling and scale selection.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 8,
            scales: Vec::new(),
            seed: 0x5EED,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f32,
    /// Learning rate at the end of the epoch.
    pub lr: f32,
}

/// A detector training driver.
#[derive(Debug)]
pub struct Trainer {
    cfg: TrainConfig,
    rng: SkyRng,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        let rng = SkyRng::new(cfg.seed);
        Trainer { cfg, rng }
    }

    /// Trains `detector` on `samples` with the given optimizer. Returns
    /// per-epoch statistics.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors from the model.
    pub fn train(
        &mut self,
        detector: &mut Detector,
        samples: &[Sample],
        opt: &mut Sgd,
    ) -> Result<Vec<EpochStats>> {
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut stats = Vec::with_capacity(self.cfg.epochs);
        // Resolve the SIMD backend up front: a hard error on a forced but
        // unavailable backend fires here, before any work, and the
        // `simd.backend` gauge is registered from the first batch on.
        let _ = skynet_tensor::simd::active();
        for epoch in 0..self.cfg.epochs {
            let _epoch_span = telemetry::span("train.epoch");
            self.rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let _batch_span = telemetry::span("train.batch");
                let scale = if self.cfg.scales.is_empty() {
                    None
                } else {
                    Some(self.cfg.scales[self.rng.below(self.cfg.scales.len())])
                };
                let (images, targets) = gather_batch(samples, chunk, scale)?;
                let loss = detector.train_batch(&images, &targets)?;
                record_batch_telemetry(detector, opt, loss);
                opt.step(detector.backbone_mut());
                total += loss;
                batches += 1;
            }
            let mean_loss = total / batches.max(1) as f32;
            telemetry::record_call("train.epochs", 1);
            telemetry::record_gauge("train.mean_loss", mean_loss as f64);
            stats.push(EpochStats {
                epoch,
                mean_loss,
                lr: opt.current_lr(),
            });
        }
        Ok(stats)
    }

    /// Fault-tolerant variant of [`Trainer::train`]: a checkpoint is
    /// written atomically to `ckpt_path` after every epoch (and once
    /// before the first), and an existing checkpoint at that path is
    /// resumed from instead of starting over.
    ///
    /// Because the checkpoint captures the weights, the SGD momentum and
    /// schedule position, the trainer RNG and the evolving shuffle
    /// permutation, a run that is killed at any point and then re-invoked
    /// with the same configuration produces weights **bit-identical** to
    /// an uninterrupted run (see `kill_resume` in `skynet-bench` and the
    /// CI job that asserts the weight hashes match).
    ///
    /// A non-finite batch loss does not corrupt the model: the weights,
    /// optimizer and RNG are rolled back to the last checkpoint and
    /// [`ResumeError::NonFiniteLoss`] is returned.
    ///
    /// Returns the statistics of the epochs run by *this* invocation
    /// (empty when the checkpoint already covers `cfg.epochs`).
    ///
    /// # Errors
    ///
    /// [`ResumeError::Corrupt`]/[`ResumeError::BadHeader`] when the
    /// existing checkpoint fails validation, [`ResumeError::ModelMismatch`]
    /// when it belongs to a different architecture, [`ResumeError::Io`] on
    /// filesystem failures, [`ResumeError::Tensor`] for shape errors, and
    /// [`ResumeError::NonFiniteLoss`] when the divergence guard trips.
    pub fn train_resumable(
        &mut self,
        detector: &mut Detector,
        samples: &[Sample],
        opt: &mut Sgd,
        ckpt_path: impl AsRef<Path>,
    ) -> std::result::Result<Vec<EpochStats>, ResumeError> {
        let path = ckpt_path.as_ref();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let start_epoch = if path.exists() {
            let ck = checkpoint::load(path)?;
            self.restore(detector, opt, &mut order, &ck, samples.len())?;
            ck.epochs_done as usize
        } else {
            // Seed the rollback target so the non-finite-loss guard always
            // has a known-good state to return to.
            checkpoint::save(&self.snapshot(0, detector, opt, &order), path)?;
            0
        };
        let mut stats = Vec::new();
        for epoch in start_epoch..self.cfg.epochs {
            let _epoch_span = telemetry::span("train.epoch");
            self.rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.cfg.batch_size) {
                let _batch_span = telemetry::span("train.batch");
                let scale = if self.cfg.scales.is_empty() {
                    None
                } else {
                    Some(self.cfg.scales[self.rng.below(self.cfg.scales.len())])
                };
                let (images, targets) = gather_batch(samples, chunk, scale)?;
                let loss = detector.train_batch(&images, &targets)?;
                if !loss.is_finite() {
                    // Divergence guard: the weights already absorbed the
                    // updates that led here, and the gradients of this
                    // batch are garbage. Roll everything back to the last
                    // epoch boundary instead of checkpointing a corpse.
                    let ck = checkpoint::load(path)?;
                    self.restore(detector, opt, &mut order, &ck, samples.len())?;
                    return Err(ResumeError::NonFiniteLoss { epoch, loss });
                }
                record_batch_telemetry(detector, opt, loss);
                opt.step(detector.backbone_mut());
                total += loss;
                batches += 1;
            }
            {
                let _ckpt_span = telemetry::span("train.checkpoint");
                checkpoint::save(
                    &self.snapshot(epoch as u32 + 1, detector, opt, &order),
                    path,
                )?;
            }
            let mean_loss = total / batches.max(1) as f32;
            telemetry::record_call("train.epochs", 1);
            telemetry::record_gauge("train.mean_loss", mean_loss as f64);
            stats.push(EpochStats {
                epoch,
                mean_loss,
                lr: opt.current_lr(),
            });
        }
        Ok(stats)
    }

    /// Captures the complete training state at an epoch boundary.
    fn snapshot(
        &self,
        epochs_done: u32,
        detector: &mut Detector,
        opt: &Sgd,
        order: &[usize],
    ) -> TrainCheckpoint {
        TrainCheckpoint {
            epochs_done,
            sgd: opt.export_state(),
            rng: self.rng.state(),
            order: order.iter().map(|&i| i as u32).collect(),
            params: collect_params(detector.backbone_mut()),
        }
    }

    /// Applies a loaded checkpoint to the detector, optimizer, RNG and
    /// shuffle order, validating it against the model and dataset.
    fn restore(
        &mut self,
        detector: &mut Detector,
        opt: &mut Sgd,
        order: &mut Vec<usize>,
        ck: &TrainCheckpoint,
        n_samples: usize,
    ) -> std::result::Result<(), ResumeError> {
        apply_params(detector.backbone_mut(), &ck.params)?;
        if !ck.sgd.velocity.is_empty() {
            if ck.sgd.velocity.len() != ck.params.len() {
                return Err(ResumeError::ModelMismatch(format!(
                    "checkpoint has {} momentum buffers for {} parameters",
                    ck.sgd.velocity.len(),
                    ck.params.len()
                )));
            }
            for (i, (v, p)) in ck.sgd.velocity.iter().zip(&ck.params).enumerate() {
                if v.len() != p.len() {
                    return Err(ResumeError::ModelMismatch(format!(
                        "momentum buffer {i} has {} values for a {}-value parameter",
                        v.len(),
                        p.len()
                    )));
                }
            }
        }
        if ck.order.len() != n_samples || ck.order.iter().any(|&i| i as usize >= n_samples) {
            return Err(ResumeError::ModelMismatch(format!(
                "checkpoint shuffle order covers {} samples, dataset has {n_samples}",
                ck.order.len()
            )));
        }
        opt.import_state(SgdState {
            step: ck.sgd.step,
            velocity: ck.sgd.velocity.clone(),
        });
        self.rng = SkyRng::from_state(ck.rng);
        *order = ck.order.iter().map(|&i| i as usize).collect();
        Ok(())
    }
}

/// Publishes per-batch training metrics. The loss and learning rate are
/// plain gauge writes; the gradient norm costs a full parameter walk, so
/// all of it is gated on [`telemetry::metrics_enabled`]. Called *before*
/// `opt.step` so the gradients are still the ones the loss produced.
fn record_batch_telemetry(detector: &mut Detector, opt: &Sgd, loss: f32) {
    if !telemetry::metrics_enabled() {
        return;
    }
    telemetry::counter("train.batches").inc();
    telemetry::gauge("train.loss").set(loss as f64);
    telemetry::gauge("train.lr").set(opt.current_lr() as f64);
    let mut sq = 0.0f64;
    detector.backbone_mut().visit_params(&mut |p| {
        for &g in p.grad.as_slice() {
            sq += (g as f64) * (g as f64);
        }
    });
    telemetry::gauge("train.grad_norm").set(sq.sqrt());
}

fn gather_batch(
    samples: &[Sample],
    idx: &[usize],
    scale: Option<(usize, usize)>,
) -> Result<(Tensor, Vec<BBox>)> {
    let _span = telemetry::span("train.gather");
    let targets: Vec<BBox> = idx.iter().map(|&i| samples[i].bbox).collect();
    let first = match idx.first() {
        Some(&i) => samples[i].image.shape(),
        None => {
            return Err(TensorError::InvalidDimension {
                op: "Tensor::stack",
                detail: "cannot stack zero tensors".into(),
            })
        }
    };
    // The hot path fills one preallocated batch tensor in place — no
    // per-sample clones, no Vec-of-tensors, no stack copy. It requires
    // every image to be batch-1 with matching extents; anything else
    // (not produced by the dataset generator) takes the general
    // clone-and-stack path below.
    let uniform = idx.iter().all(|&i| {
        let s = samples[i].image.shape();
        s.n == 1 && s.c == first.c && (scale.is_some() || (s.h, s.w) == (first.h, first.w))
    });
    if uniform {
        let (h, w) = scale.unwrap_or((first.h, first.w));
        if h == 0 || w == 0 {
            return Err(TensorError::InvalidDimension {
                op: "resize_bilinear",
                detail: "target extents must be positive".into(),
            });
        }
        let mut batch = Tensor::zeros(Shape::new(idx.len(), first.c, h, w));
        let item_numel = first.c * h * w;
        // One parallel task per slot; each copies or resizes directly
        // into its own chunk, so the batch layout (and therefore
        // training) is identical for any thread count. Normalized box
        // coordinates are resize-invariant, so only the image needs
        // rescaling for multi-scale training.
        parallel::par_chunks_mut(batch.as_mut_slice(), item_numel, |j, slot| {
            let img = &samples[idx[j]].image;
            if scale.is_some() && (img.shape().h, img.shape().w) != (h, w) {
                resize_bilinear_into(img, h, w, slot).expect("shapes prevalidated");
            } else {
                slot.copy_from_slice(img.as_slice());
            }
        });
        return Ok((batch, targets));
    }
    let images = parallel::par_iter_indexed(idx.len(), |j| match scale {
        Some((h, w)) => resize_bilinear(&samples[idx[j]].image, h, w),
        None => Ok(samples[idx[j]].image.clone()),
    })
    .into_iter()
    .collect::<Result<Vec<Tensor>>>()?;
    Ok((Tensor::stack(&images)?, targets))
}

/// Evaluates mean IoU over a sample set — the DAC-SDC accuracy metric
/// (Eq. 2): `R_IoU = Σ IoU_k / K`.
///
/// # Errors
///
/// Propagates tensor shape errors from the model.
pub fn evaluate(detector: &mut Detector, samples: &[Sample]) -> Result<f32> {
    evaluate_batched(detector, samples, 16)
}

/// [`evaluate`] with an explicit inference batch size.
///
/// # Errors
///
/// Propagates tensor shape errors from the model.
pub fn evaluate_batched(detector: &mut Detector, samples: &[Sample], batch: usize) -> Result<f32> {
    evaluate_mode(detector, samples, batch, skynet_nn::Mode::Eval)
}

/// [`evaluate`] under an explicit inference mode — pass
/// [`skynet_nn::Mode::QuantEval`] to measure accuracy with fixed-point
/// feature maps (Table 7).
///
/// # Errors
///
/// Propagates tensor shape errors from the model.
pub fn evaluate_mode(
    detector: &mut Detector,
    samples: &[Sample],
    batch: usize,
    mode: skynet_nn::Mode,
) -> Result<f32> {
    if samples.is_empty() {
        return Ok(0.0);
    }
    // The model runs whole validation batches, and the conv/pool kernels
    // underneath parallelize over the batch dimension; the IoU reduction
    // stays on this thread in sample order, so the reported mean is
    // bit-identical for any thread count.
    let mut total = 0.0f32;
    for chunk in samples.chunks(batch.max(1)) {
        let images = parallel::par_iter_indexed(chunk.len(), |j| chunk[j].image.clone());
        let batch_t = Tensor::stack(&images)?;
        let dets = detector.predict_mode(&batch_t, mode)?;
        for (det, sample) in dets.iter().zip(chunk) {
            total += det.bbox.clamp_to_frame().iou(&sample.bbox);
        }
    }
    Ok(total / samples.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::Anchors;
    use crate::skynet::{SkyNet, SkyNetConfig, Variant};
    use skynet_nn::{Act, LrSchedule};
    use skynet_tensor::{Shape, Tensor};

    /// A toy dataset the detector can overfit in a handful of steps: the
    /// object is a bright square on a dark background.
    fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = SkyRng::new(seed);
        (0..n)
            .map(|_| {
                let (h, w) = (16usize, 32usize);
                let bw = 0.2f32;
                let bh = 0.35f32;
                let cx = rng.range(0.2, 0.8);
                let cy = rng.range(0.3, 0.7);
                let mut img = Tensor::zeros(Shape::new(1, 3, h, w));
                for y in 0..h {
                    for x in 0..w {
                        let fx = (x as f32 + 0.5) / w as f32;
                        let fy = (y as f32 + 0.5) / h as f32;
                        if (fx - cx).abs() < bw / 2.0 && (fy - cy).abs() < bh / 2.0 {
                            for c in 0..3 {
                                *img.at_mut(0, c, y, x) = 1.0;
                            }
                        }
                    }
                }
                Sample::new(img, BBox::new(cx, cy, bw, bh), 0)
            })
            .collect()
    }

    #[test]
    fn training_improves_iou_on_toy_data() {
        let mut rng = SkyRng::new(7);
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(8);
        let mut det = Detector::new(
            Box::new(SkyNet::new(cfg, &mut rng)),
            Anchors::new(vec![(0.2, 0.35), (0.4, 0.5)]),
        );
        let samples = toy_samples(24, 1);
        let before = evaluate(&mut det, &samples).unwrap();
        let mut opt = Sgd::new(LrSchedule::Constant(5e-3), 0.9, 1e-4);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 8,
            scales: Vec::new(),
            seed: 3,
        });
        let stats = trainer.train(&mut det, &samples, &mut opt).unwrap();
        let after = evaluate(&mut det, &samples).unwrap();
        assert!(
            after > before + 0.1,
            "IoU should improve: {before} → {after}, losses {:?}",
            stats.iter().map(|s| s.mean_loss).collect::<Vec<_>>()
        );
        // Loss trend downward.
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
    }

    #[test]
    fn multi_scale_training_runs() {
        let mut rng = SkyRng::new(8);
        let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(16);
        let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
        let samples = toy_samples(8, 2);
        let mut opt = Sgd::new(LrSchedule::Constant(1e-3), 0.9, 0.0);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            scales: vec![(16, 32), (24, 48)],
            seed: 4,
        });
        let stats = trainer.train(&mut det, &samples, &mut opt).unwrap();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].mean_loss.is_finite());
    }

    #[test]
    fn evaluate_empty_set_is_zero() {
        let mut rng = SkyRng::new(9);
        let cfg = SkyNetConfig::new(Variant::A, Act::Relu).with_width_divisor(16);
        let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
        assert_eq!(evaluate(&mut det, &[]).unwrap(), 0.0);
    }
}
