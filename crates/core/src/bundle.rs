//! The **Bundle**: the hardware-aware basic block of the bottom-up design
//! flow (§4.1).
//!
//! From the software side a Bundle is a short sequence of DNN components
//! that is stacked repeatedly to form a network; from the hardware side it
//! is the set of IPs that must exist on the FPGA. Because a SkyNet-style
//! network uses a *single* Bundle type throughout, one shared set of IPs
//! can execute every layer — the property the FPGA mapping in `skynet-hw`
//! exploits.

use crate::desc::LayerDesc;
use skynet_nn::{Act, Activation, BatchNorm2d, Conv2d, DwConv2d, Sequential};
use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

/// One primitive component inside a Bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// 3×3 depth-wise convolution (keeps channel count).
    DwConv3,
    /// 5×5 depth-wise convolution (keeps channel count).
    DwConv5,
    /// 1×1 point-wise convolution (maps to the Bundle's output channels).
    PwConv1,
    /// 3×3 dense convolution (maps to the Bundle's output channels).
    Conv3,
    /// Batch normalization.
    Bn,
    /// ReLU activation.
    Relu,
    /// ReLU6 activation.
    Relu6,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Component::DwConv3 => "DW-Conv3",
            Component::DwConv5 => "DW-Conv5",
            Component::PwConv1 => "PW-Conv1",
            Component::Conv3 => "Conv3",
            Component::Bn => "BN",
            Component::Relu => "ReLU",
            Component::Relu6 => "ReLU6",
        };
        write!(f, "{s}")
    }
}

/// A Bundle specification: an ordered list of components.
///
/// The winning SkyNet Bundle (§5.1) is
/// `[DW-Conv3, BN, ReLU6, PW-Conv1, BN, ReLU6]`, available as
/// [`BundleSpec::skynet`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BundleSpec {
    components: Vec<Component>,
}

impl BundleSpec {
    /// Creates a specification from a component list.
    ///
    /// # Panics
    ///
    /// Panics if the list contains no channel-mapping convolution
    /// (`PwConv1` or `Conv3`): such a Bundle could never change width and
    /// cannot build a useful backbone.
    pub fn new(components: Vec<Component>) -> Self {
        assert!(
            components
                .iter()
                .any(|c| matches!(c, Component::PwConv1 | Component::Conv3)),
            "a Bundle needs a channel-mapping convolution"
        );
        BundleSpec { components }
    }

    /// The Bundle selected by the paper's design flow:
    /// DW-Conv3 → BN → act → PW-Conv1 → BN → act, with the activation
    /// chosen by `act`.
    pub fn skynet(act: Act) -> Self {
        let a = match act {
            Act::Relu => Component::Relu,
            Act::Relu6 => Component::Relu6,
        };
        BundleSpec::new(vec![
            Component::DwConv3,
            Component::Bn,
            a,
            Component::PwConv1,
            Component::Bn,
            a,
        ])
    }

    /// Component list.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Human-readable name, e.g. `DW-Conv3+BN+ReLU6+PW-Conv1+BN+ReLU6`.
    pub fn describe(&self) -> String {
        self.components
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Instantiates the Bundle as a trainable layer chain mapping `in_c`
    /// to `out_c` channels.
    ///
    /// Channel semantics: depth-wise components keep the current width;
    /// the **first** channel-mapping convolution jumps to `out_c`; BN and
    /// activations follow the current width.
    pub fn build(&self, in_c: usize, out_c: usize, rng: &mut SkyRng) -> Sequential {
        let mut seq = Sequential::empty();
        let mut cur = in_c;
        for &comp in &self.components {
            match comp {
                Component::DwConv3 => {
                    seq.push(Box::new(DwConv2d::new(cur, ConvGeometry::same3x3(), rng)));
                }
                Component::DwConv5 => {
                    seq.push(Box::new(DwConv2d::new(
                        cur,
                        ConvGeometry::new(5, 1, 2),
                        rng,
                    )));
                }
                Component::PwConv1 => {
                    seq.push(Box::new(Conv2d::pointwise(cur, out_c, rng)));
                    cur = out_c;
                }
                Component::Conv3 => {
                    seq.push(Box::new(Conv2d::new_no_bias(
                        cur,
                        out_c,
                        ConvGeometry::same3x3(),
                        rng,
                    )));
                    cur = out_c;
                }
                Component::Bn => {
                    seq.push(Box::new(BatchNorm2d::new(cur)));
                }
                Component::Relu => {
                    seq.push(Box::new(Activation::new(Act::Relu)));
                }
                Component::Relu6 => {
                    seq.push(Box::new(Activation::new(Act::Relu6)));
                }
            }
        }
        seq
    }

    /// Abstract layer descriptors for the Bundle mapping `in_c → out_c`
    /// (for parameter/MAC counting and the hardware models).
    pub fn describe_layers(&self, in_c: usize, out_c: usize) -> Vec<LayerDesc> {
        let mut layers = Vec::with_capacity(self.components.len());
        let mut cur = in_c;
        for &comp in &self.components {
            layers.push(match comp {
                Component::DwConv3 => LayerDesc::DwConv {
                    c: cur,
                    k: 3,
                    s: 1,
                    p: 1,
                },
                Component::DwConv5 => LayerDesc::DwConv {
                    c: cur,
                    k: 5,
                    s: 1,
                    p: 2,
                },
                Component::PwConv1 => {
                    let l = LayerDesc::Conv {
                        in_c: cur,
                        out_c,
                        k: 1,
                        s: 1,
                        p: 0,
                    };
                    cur = out_c;
                    l
                }
                Component::Conv3 => {
                    let l = LayerDesc::Conv {
                        in_c: cur,
                        out_c,
                        k: 3,
                        s: 1,
                        p: 1,
                    };
                    cur = out_c;
                    l
                }
                Component::Bn => LayerDesc::Bn { c: cur },
                Component::Relu | Component::Relu6 => LayerDesc::Act { c: cur },
            });
        }
        layers
    }

    /// Parameter count of one Bundle instance mapping `in_c → out_c`.
    pub fn params(&self, in_c: usize, out_c: usize) -> usize {
        self.describe_layers(in_c, out_c)
            .iter()
            .map(|l| l.params())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Layer, Mode};
    use skynet_tensor::{Shape, Tensor};

    #[test]
    fn skynet_bundle_structure() {
        let b = BundleSpec::skynet(Act::Relu6);
        assert_eq!(b.components().len(), 6);
        assert_eq!(b.describe(), "DW-Conv3+BN+ReLU6+PW-Conv1+BN+ReLU6");
    }

    #[test]
    fn built_bundle_maps_channels() {
        let mut rng = SkyRng::new(0);
        let mut seq = BundleSpec::skynet(Act::Relu6).build(48, 96, &mut rng);
        let x = Tensor::ones(Shape::new(1, 48, 4, 8));
        let y = seq.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), Shape::new(1, 96, 4, 8));
    }

    #[test]
    fn params_match_built_model() {
        let mut rng = SkyRng::new(0);
        let spec = BundleSpec::skynet(Act::Relu6);
        let mut seq = spec.build(48, 96, &mut rng);
        assert_eq!(seq.param_count(), spec.params(48, 96));
        // Hand count: DW 48·9 + BN 96 + PW 48·96 + BN 192.
        assert_eq!(spec.params(48, 96), 48 * 9 + 96 + 48 * 96 + 192);
    }

    #[test]
    #[should_panic(expected = "channel-mapping convolution")]
    fn bundle_without_mapping_conv_is_rejected() {
        let _ = BundleSpec::new(vec![Component::DwConv3, Component::Bn]);
    }

    #[test]
    fn relu_variant_uses_relu() {
        let b = BundleSpec::skynet(Act::Relu);
        assert!(b.describe().contains("ReLU"));
        assert!(!b.describe().contains("ReLU6"));
    }
}
