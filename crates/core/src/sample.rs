//! The training/evaluation sample type shared between the data generators
//! and the trainer.

use crate::BBox;
use skynet_tensor::Tensor;

/// One labelled detection sample: a `1×C×H×W` image and the ground-truth
/// box of the (single) object of interest, as in the DAC-SDC protocol.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Image tensor with batch size 1.
    pub image: Tensor,
    /// Normalized ground-truth box.
    pub bbox: BBox,
    /// Category identifier (main category × sub category encoded by the
    /// generator); carried for analysis, not used by the detector loss.
    pub category: u32,
}

impl Sample {
    /// Creates a sample.
    pub fn new(image: Tensor, bbox: BBox, category: u32) -> Self {
        Sample {
            image,
            bbox,
            category,
        }
    }
}
