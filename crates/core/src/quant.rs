//! Post-training INT8 quantization: calibration, plan, and the
//! executable integer engine.
//!
//! The repo reproduces Table 7 twice, at two levels of fidelity:
//!
//! * **analytic (fake-quant)** — `Mode::QuantEval` rounds f32 feature
//!   maps to a fixed-point grid after every layer; arithmetic stays
//!   float. `skynet-hw`'s `quant` module reasons about the same
//!   schemes symbolically. This answers *"what would W11/FM9 cost in
//!   accuracy?"* without integer kernels.
//! * **executable (this module)** — weights are stored as `i8`,
//!   activations flow as `i8`, and every convolution runs
//!   `i8×i8→i32` integer arithmetic via
//!   [`skynet_tensor::qint`]. This is the deployment path, and the
//!   `quant_sweep` bench compares it against the analytic numbers.
//!
//! The pipeline is classic post-training quantization:
//!
//! 1. [`Calibrator::observe`] runs float forward passes through a
//!    **trained** [`SkyNet`] (it must be the live training instance —
//!    BN running statistics are folded into the integer stages and are
//!    not part of weight checkpoints), recording the activation
//!    magnitude distribution at every requantization point;
//! 2. [`Calibrator::finish`] turns the histograms into a [`QuantPlan`]:
//!    one symmetric scale per requant point ([`CalibMethod::MaxAbs`] or
//!    a saturating [`CalibMethod::Percentile`]);
//! 3. [`QuantizedSkyNet::build`] folds BN into the convolutions,
//!    quantizes weights per-channel, and assembles the integer stage
//!    graph;
//! 4. [`crate::detector::Detector::attach_int8`] routes `predict`
//!    through the engine, so serving canaries and evaluation harnesses
//!    run the integer path unchanged.
//!
//! See `QUANTIZATION.md` at the repo root for the end-to-end workflow.

use crate::plan::{QExecPlan, QOp};
use crate::skynet::{SkyNet, Variant};
use skynet_nn::qint::{qfused_forward, QDwConv3, QFeature, QPointwise};
use skynet_nn::{Activation, BatchNorm2d, Conv2d, DwConv2d, Layer, Mode, Sequential};
use skynet_tensor::ops::concat_channels;
use skynet_tensor::{fusion, telemetry, Tensor};

/// How a requant point's activation histogram becomes a scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibMethod {
    /// `scale = maxabs / 127`: nothing saturates on the calibration
    /// set, but one outlier can waste most of the 8-bit grid.
    MaxAbs,
    /// `scale = P(q) / 127` where `P(q)` is the `q`-th quantile of the
    /// absolute values (e.g. `0.999`): outliers saturate, the bulk of
    /// the distribution gets finer resolution.
    Percentile(f32),
}

/// Bins of the magnitude histogram: the top 12 bits of the absolute
/// f32 pattern (8 exponent + 4 mantissa bits), i.e. a log-spaced grid
/// with 16 sub-bins per octave — plenty for picking an 8-bit scale.
const HIST_BINS: usize = 1 << 12;

/// Log-domain histogram of absolute activation values.
#[derive(Debug, Clone)]
struct ActHist {
    bins: Vec<u64>,
    maxabs: f32,
    total: u64,
}

impl ActHist {
    fn new() -> Self {
        ActHist {
            bins: vec![0; HIST_BINS],
            maxabs: 0.0,
            total: 0,
        }
    }

    fn observe(&mut self, values: &[f32]) {
        for &v in values {
            let a = v.abs();
            if !a.is_finite() {
                continue;
            }
            self.maxabs = self.maxabs.max(a);
            self.bins[(a.to_bits() >> 20) as usize] += 1;
            self.total += 1;
        }
    }

    /// Upper edge of the bin holding the `q`-th quantile of |x|.
    fn quantile(&self, q: f32) -> f32 {
        if self.total == 0 {
            return 0.0;
        }
        let keep = (f64::from(q.clamp(0.0, 1.0)) * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= keep {
                // Bin i holds the patterns [i·2²⁰, (i+1)·2²⁰): upper edge.
                return f32::from_bits(((i as u32) + 1) << 20).min(self.maxabs);
            }
        }
        self.maxabs
    }

    fn scale(&self, method: CalibMethod) -> f32 {
        let reach = match method {
            CalibMethod::MaxAbs => self.maxabs,
            CalibMethod::Percentile(q) => self.quantile(q),
        };
        if reach > 0.0 {
            reach / 127.0
        } else {
            // An all-zero activation site: any positive scale quantizes
            // it exactly.
            1.0
        }
    }
}

/// A calibrated quantization plan: one symmetric scale per
/// requantization point of a [`SkyNet`] graph.
///
/// Scales are indexed structurally: `stage_scales[b]` holds the
/// `[dw_out, pw_out]` scales of bundle `b` (Bundles 1–5, then Bundle 6
/// for variants B/C). Pooling, reorg and concat are scale-preserving
/// and need no entry; the head dequantizes straight from `i32`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPlan {
    /// How scales were derived from the histograms.
    pub method: CalibMethod,
    /// Number of images observed during calibration.
    pub samples: u32,
    /// Scale of the quantized network input.
    pub input_scale: f32,
    /// `[dw_out, pw_out]` scales per bundle, in execution order.
    pub stage_scales: Vec<[f32; 2]>,
}

impl QuantPlan {
    fn validate(&self, variant: Variant) -> Result<(), QuantError> {
        let want = bundle_count(variant);
        if self.stage_scales.len() != want {
            return Err(QuantError::BadPlan(format!(
                "plan has {} bundle scale pairs, variant {variant} needs {want}",
                self.stage_scales.len()
            )));
        }
        let ok = |s: f32| s.is_finite() && s > 0.0;
        if !ok(self.input_scale) || self.stage_scales.iter().flatten().any(|&s| !ok(s)) {
            return Err(QuantError::BadPlan(
                "every scale must be finite and positive".into(),
            ));
        }
        Ok(())
    }
}

/// Errors from calibration and engine construction.
#[derive(Debug)]
pub enum QuantError {
    /// The network's layer graph is not the expected Bundle chain
    /// (DW → BN → Act → PW → BN → Act), so BN folding cannot proceed.
    StructureMismatch(String),
    /// The plan does not fit the network (wrong stage count, bad scale).
    BadPlan(String),
    /// A tensor-level failure during a calibration forward pass.
    Tensor(skynet_tensor::TensorError),
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::StructureMismatch(d) => write!(f, "unquantizable structure: {d}"),
            QuantError::BadPlan(d) => write!(f, "bad quant plan: {d}"),
            QuantError::Tensor(e) => write!(f, "tensor error during calibration: {e}"),
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<skynet_tensor::TensorError> for QuantError {
    fn from(e: skynet_tensor::TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

/// Number of quantized bundles in a variant's graph (Bundles 1–5 plus
/// Bundle 6 for B/C).
fn bundle_count(variant: Variant) -> usize {
    match variant {
        Variant::A => 5,
        Variant::B | Variant::C => 6,
    }
}

/// Runs one bundle layer-by-layer in eval mode, recording the
/// activations at its two requantization points (after DW+BN+Act,
/// after PW+BN+Act).
fn run_bundle_recording(
    seq: &mut Sequential,
    x: &Tensor,
    hists: &mut [ActHist; 2],
    bundle_idx: usize,
) -> Result<Tensor, QuantError> {
    if seq.len() != 6 {
        return Err(QuantError::StructureMismatch(format!(
            "bundle {} has {} layers, expected the 6-layer SkyNet chain",
            bundle_idx + 1,
            seq.len()
        )));
    }
    let mut cur = x.clone();
    for (i, layer) in seq.layers_mut().iter_mut().enumerate() {
        cur = layer.forward(&cur, Mode::Eval)?;
        if i == 2 {
            hists[0].observe(cur.as_slice());
        } else if i == 5 {
            hists[1].observe(cur.as_slice());
        }
    }
    Ok(cur)
}

/// Streams calibration batches through a trained float [`SkyNet`] and
/// accumulates activation histograms at every requantization point.
#[derive(Debug)]
pub struct Calibrator {
    method: CalibMethod,
    input: ActHist,
    stages: Vec<[ActHist; 2]>,
    samples: u32,
}

impl Calibrator {
    /// Creates a calibrator for a graph of the given variant.
    pub fn new(variant: Variant, method: CalibMethod) -> Self {
        Calibrator {
            method,
            input: ActHist::new(),
            stages: (0..bundle_count(variant))
                .map(|_| [ActHist::new(), ActHist::new()])
                .collect(),
            samples: 0,
        }
    }

    /// Runs one float forward pass in eval mode, recording activations.
    /// The network must be the live trained instance (BN running stats
    /// are read through the normal eval path).
    ///
    /// # Errors
    ///
    /// [`QuantError::StructureMismatch`] when the graph doesn't match
    /// the calibrator's variant or a bundle is not the 6-layer chain;
    /// [`QuantError::Tensor`] on forward errors.
    pub fn observe(&mut self, net: &mut SkyNet, images: &Tensor) -> Result<(), QuantError> {
        if self.stages.len() != bundle_count(net.cfg.variant) {
            return Err(QuantError::StructureMismatch(format!(
                "calibrator sized for {} bundles, network has {}",
                self.stages.len(),
                bundle_count(net.cfg.variant)
            )));
        }
        self.input.observe(images.as_slice());
        let mut cur = images.clone();
        let mut bypass = None;
        for i in 0..3 {
            cur = run_bundle_recording(&mut net.bundles[i], &cur, &mut self.stages[i], i)?;
            if i == 2 && net.cfg.variant != Variant::A {
                // Reorg is a permutation: the bypass branch reuses
                // bundle 3's scale, no extra requant point.
                bypass = Some(net.reorg.forward(&cur, Mode::Eval)?);
            }
            cur = net.pools[i].forward(&cur, Mode::Eval)?;
        }
        cur = run_bundle_recording(&mut net.bundles[3], &cur, &mut self.stages[3], 3)?;
        cur = run_bundle_recording(&mut net.bundles[4], &cur, &mut self.stages[4], 4)?;
        if let Some(b6) = &mut net.bundle6 {
            let by = bypass.expect("variants B/C produce a bypass");
            let cat = concat_channels(&cur, &by)?;
            run_bundle_recording(b6, &cat, &mut self.stages[5], 5)?;
        }
        // The head exits to f32; no requant point to record.
        self.samples += images.shape().n as u32;
        Ok(())
    }

    /// Folds the histograms into a [`QuantPlan`] and tallies the
    /// `quant.calib.samples` counter.
    ///
    /// # Errors
    ///
    /// [`QuantError::BadPlan`] when no samples were observed.
    pub fn finish(self) -> Result<QuantPlan, QuantError> {
        if self.samples == 0 {
            return Err(QuantError::BadPlan(
                "no calibration samples observed".into(),
            ));
        }
        if telemetry::metrics_enabled() {
            telemetry::counter("quant.calib.samples").add(u64::from(self.samples));
        }
        Ok(QuantPlan {
            method: self.method,
            samples: self.samples,
            input_scale: self.input.scale(self.method),
            stage_scales: self
                .stages
                .iter()
                .map(|[dw, pw]| [dw.scale(self.method), pw.scale(self.method)])
                .collect(),
        })
    }
}

/// Downcasts one bundle's layer chain and folds it into a quantized
/// DW + PW stage pair.
fn quantize_bundle(
    seq: &Sequential,
    scales: [f32; 2],
    bundle_idx: usize,
) -> Result<(QDwConv3, QPointwise), QuantError> {
    let mismatch = |what: &str| {
        QuantError::StructureMismatch(format!(
            "bundle {}: expected DW→BN→Act→PW→BN→Act, {what}",
            bundle_idx + 1
        ))
    };
    let layers = seq.layers();
    if layers.len() != 6 {
        return Err(mismatch(&format!("found {} layers", layers.len())));
    }
    let cast = |i: usize| layers[i].as_any();
    let dw = cast(0)
        .and_then(|a| a.downcast_ref::<DwConv2d>())
        .ok_or_else(|| mismatch("layer 1 is not DwConv2d"))?;
    let bn1 = cast(1)
        .and_then(|a| a.downcast_ref::<BatchNorm2d>())
        .ok_or_else(|| mismatch("layer 2 is not BatchNorm2d"))?;
    let act1 = cast(2)
        .and_then(|a| a.downcast_ref::<Activation>())
        .ok_or_else(|| mismatch("layer 3 is not Activation"))?;
    let pw = cast(3)
        .and_then(|a| a.downcast_ref::<Conv2d>())
        .ok_or_else(|| mismatch("layer 4 is not Conv2d"))?;
    let bn2 = cast(4)
        .and_then(|a| a.downcast_ref::<BatchNorm2d>())
        .ok_or_else(|| mismatch("layer 5 is not BatchNorm2d"))?;
    let act2 = cast(5)
        .and_then(|a| a.downcast_ref::<Activation>())
        .ok_or_else(|| mismatch("layer 6 is not Activation"))?;

    let (s1, sh1) = bn1.folded_scale_shift();
    let (s2, sh2) = bn2.folded_scale_shift();
    let qdw = QDwConv3::fold(dw.weight(), &s1, &sh1, Some(act1.kind()), scales[0]);
    let qpw = QPointwise::fold(
        pw.weight(),
        pw.bias_values(),
        Some((&s2, &sh2)),
        Some(act2.kind()),
        Some(scales[1]),
    );
    Ok((qdw, qpw))
}

/// The executable INT8 form of a trained [`SkyNet`]: BN folded,
/// weights stored as `i8` with per-channel scales, every convolution
/// running `i8×i8→i32` integer kernels. Immutable and `Send + Sync`,
/// so one engine can be shared by every serving replica behind an
/// `Arc`.
#[derive(Debug, Clone)]
pub struct QuantizedSkyNet {
    variant: Variant,
    input_scale: f32,
    /// Bundles 1–5 (+ Bundle 6 last, for B/C).
    bundles: Vec<(QDwConv3, QPointwise)>,
    head: QPointwise,
    /// The lowered step list (see [`QExecPlan`]): built once here,
    /// walked on every forward.
    plan: QExecPlan,
}

impl QuantizedSkyNet {
    /// Folds a trained float network into the integer engine under a
    /// calibrated plan.
    ///
    /// The network must be the live trained instance — BN running
    /// statistics are folded into the integer stages here, and they are
    /// **not** restored by weight checkpoints or blueprint spawns.
    ///
    /// # Errors
    ///
    /// [`QuantError::BadPlan`] when the plan doesn't fit the variant or
    /// contains a non-positive scale; [`QuantError::StructureMismatch`]
    /// when a bundle is not the DW→BN→Act→PW→BN→Act chain.
    pub fn build(net: &SkyNet, plan: &QuantPlan) -> Result<Self, QuantError> {
        plan.validate(net.cfg.variant)?;
        let mut bundles = Vec::with_capacity(plan.stage_scales.len());
        for (i, b) in net.bundles.iter().enumerate() {
            bundles.push(quantize_bundle(b, plan.stage_scales[i], i)?);
        }
        if let Some(b6) = &net.bundle6 {
            bundles.push(quantize_bundle(b6, plan.stage_scales[5], 5)?);
        }
        let head = QPointwise::fold(net.head.weight(), net.head.bias_values(), None, None, None);
        let mut steps = QExecPlan::for_variant(net.cfg.variant);
        // A bundle fuses when its PW stage requantizes back to `i8`
        // (always true for real bundles — the predicate guards against
        // head-style stages ever landing in the bundle list).
        steps.lower_fused(|b| bundles[b].1.out_scale().is_some());
        Ok(QuantizedSkyNet {
            variant: net.cfg.variant,
            input_scale: plan.input_scale,
            bundles,
            head,
            plan: steps,
        })
    }

    /// The lowered execution plan (for tests and diagnostics).
    pub fn plan(&self) -> &QExecPlan {
        &self.plan
    }

    /// The variant this engine was folded from.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The input quantization scale.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Runs one bundle. A fused-lowered bundle first checks the runtime
    /// [`fusion`] toggle; when it has to run unfused anyway (toggle off,
    /// or a structural rejection from the fused kernel) the detour is
    /// counted under `quant.fused.fallback` — the same observability
    /// contract the float path keeps with `fusion.fallback`. Either way
    /// the output bits are identical (wrapping-i32 accumulation is
    /// grouping-independent; see [`skynet_tensor::qint`]).
    fn run_bundle(&self, idx: usize, fused: bool, q: &QFeature) -> skynet_tensor::Result<QFeature> {
        let (dw, pw) = &self.bundles[idx];
        if fused {
            if fusion::enabled() {
                match qfused_forward(dw, pw, q) {
                    Ok((out, sats)) => {
                        record_bundle_saturation(idx, sats.dw, sats.pw);
                        return Ok(out);
                    }
                    Err(_) => record_fused_fallback(),
                }
            } else {
                record_fused_fallback();
            }
        }
        let (mid, dw_sat) = dw.forward_counted(q)?;
        let (out, pw_sat) = pw.forward_counted(&mid)?;
        record_bundle_saturation(idx, dw_sat, pw_sat);
        Ok(out)
    }

    /// Runs the integer forward pass by walking the lowered
    /// [`QExecPlan`]: quantize input → `i8` stage graph → dequantizing
    /// head. Output is the same `N×10×(H/8)×(W/8)` f32 prediction map
    /// the float network produces, ready for
    /// [`crate::head::decode_best`], and **bit-identical** whether
    /// bundles run fused or unfused.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the stage graph.
    pub fn forward(&self, images: &Tensor) -> skynet_tensor::Result<Tensor> {
        let _whole = telemetry::span("skynet.int8.forward");
        let mut cur: Option<QFeature> = None;
        let mut bypass = None;
        for &op in self.plan.ops() {
            let q = match op {
                QOp::Quantize => {
                    let (q, sat) = QFeature::quantize(images, self.input_scale);
                    if sat > 0 && telemetry::metrics_enabled() {
                        telemetry::counter("quant.input.saturated").add(sat);
                    }
                    q
                }
                QOp::Bundle { bundle, fused } => {
                    let q = cur.take().expect("Quantize precedes bundles");
                    self.run_bundle(bundle, fused, &q)?
                }
                QOp::Pool { .. } => cur.take().expect("Quantize precedes pools").maxpool(2)?,
                QOp::ReorgFork => {
                    let q = cur.take().expect("Quantize precedes the fork");
                    bypass = Some(q.reorg(2)?);
                    q
                }
                QOp::Concat => {
                    let by = bypass.take().expect("ReorgFork precedes Concat");
                    cur.take()
                        .expect("Quantize precedes Concat")
                        .concat_channels(&by)?
                }
                QOp::Head => {
                    let q = cur.take().expect("Quantize precedes the head");
                    return self.head.forward_dequant(&q);
                }
            };
            cur = Some(q);
        }
        unreachable!("every QExecPlan ends with QOp::Head")
    }
}

/// Counts one fused-lowered bundle that had to take the unfused path.
fn record_fused_fallback() {
    if telemetry::metrics_enabled() {
        telemetry::counter("quant.fused.fallback").inc();
    }
}

/// Publishes a bundle's requant saturation totals under
/// `quant.bundle<N>.{dw,pw}.saturated` (1-based bundle numbering, the
/// paper's). The totals are schedule-independent — per-band counts are
/// summed with commutative `u64` adds — so the counters read the same
/// on every backend, thread count, and fusion mode.
fn record_bundle_saturation(idx: usize, dw: u64, pw: u64) {
    if !telemetry::metrics_enabled() {
        return;
    }
    if dw > 0 {
        telemetry::counter(&format!("quant.bundle{}.dw.saturated", idx + 1)).add(dw);
    }
    if pw > 0 {
        telemetry::counter(&format!("quant.bundle{}.pw.saturated", idx + 1)).add(pw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skynet::SkyNetConfig;
    use skynet_nn::Act;
    use skynet_tensor::{rng::SkyRng, Shape};

    fn random_images(n: usize, h: usize, w: usize, seed: u64) -> Tensor {
        let mut rng = SkyRng::new(seed);
        let shape = Shape::new(n, 3, h, w);
        Tensor::from_vec(
            shape,
            (0..shape.numel()).map(|_| rng.normal(0.5, 0.25)).collect(),
        )
        .unwrap()
    }

    fn calibrated(variant: Variant, seed: u64) -> (SkyNet, QuantPlan) {
        let cfg = SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(16);
        let mut net = SkyNet::new(cfg, &mut SkyRng::new(seed));
        let mut cal = Calibrator::new(variant, CalibMethod::MaxAbs);
        for s in 0..3 {
            cal.observe(&mut net, &random_images(2, 16, 32, 100 + s))
                .unwrap();
        }
        (net, cal.finish().unwrap())
    }

    #[test]
    fn plan_has_one_scale_pair_per_bundle() {
        let (_, plan_a) = calibrated(Variant::A, 1);
        assert_eq!(plan_a.stage_scales.len(), 5);
        let (_, plan_c) = calibrated(Variant::C, 1);
        assert_eq!(plan_c.stage_scales.len(), 6);
        assert_eq!(plan_c.samples, 6);
        assert!(plan_c.input_scale > 0.0);
        assert!(plan_c.stage_scales.iter().flatten().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_calibration_is_rejected() {
        let cal = Calibrator::new(Variant::C, CalibMethod::MaxAbs);
        assert!(matches!(cal.finish(), Err(QuantError::BadPlan(_))));
    }

    #[test]
    fn mismatched_plan_is_rejected() {
        let (net, plan) = calibrated(Variant::C, 2);
        let mut short = plan.clone();
        short.stage_scales.pop();
        assert!(matches!(
            QuantizedSkyNet::build(&net, &short),
            Err(QuantError::BadPlan(_))
        ));
        let mut bad = plan;
        bad.stage_scales[0][1] = 0.0;
        assert!(matches!(
            QuantizedSkyNet::build(&net, &bad),
            Err(QuantError::BadPlan(_))
        ));
    }

    #[test]
    fn int8_forward_matches_float_geometry_and_direction() {
        for variant in [Variant::A, Variant::C] {
            let (mut net, plan) = calibrated(variant, 3);
            let engine = QuantizedSkyNet::build(&net, &plan).unwrap();
            let x = random_images(2, 16, 32, 7);
            let fy = net.forward(&x, Mode::Eval).unwrap();
            let qy = engine.forward(&x).unwrap();
            assert_eq!(qy.shape(), fy.shape(), "{variant}");
            assert!(qy.as_slice().iter().all(|v| v.is_finite()));
            // The integer path approximates the float map: high cosine
            // similarity even though per-element error accumulates.
            let (mut dot, mut nf, mut nq) = (0f64, 0f64, 0f64);
            for (&a, &b) in fy.as_slice().iter().zip(qy.as_slice()) {
                dot += f64::from(a) * f64::from(b);
                nf += f64::from(a) * f64::from(a);
                nq += f64::from(b) * f64::from(b);
            }
            let cos = dot / (nf.sqrt() * nq.sqrt()).max(1e-12);
            assert!(cos > 0.98, "{variant}: cosine {cos}");
        }
    }

    #[test]
    fn int8_forward_is_deterministic() {
        let (net, plan) = calibrated(Variant::C, 4);
        let engine = QuantizedSkyNet::build(&net, &plan).unwrap();
        let x = random_images(1, 16, 32, 9);
        let a = engine.forward(&x).unwrap();
        let b = engine.forward(&x).unwrap();
        assert!(a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn percentile_scale_never_exceeds_maxabs() {
        let mut h = ActHist::new();
        // Bulk below 1.0 plus one extreme outlier — the case percentile
        // calibration exists for.
        let mut vals: Vec<f32> = (0..1000).map(|i| i as f32 / 1000.0).collect();
        vals.push(100.0);
        h.observe(&vals);
        let p = h.scale(CalibMethod::Percentile(0.99));
        let m = h.scale(CalibMethod::MaxAbs);
        assert!(p > 0.0 && p <= m, "p={p} m={m}");
        // The outlier dominates maxabs but not the 99th percentile.
        assert!(p < m / 10.0, "p={p} m={m}");
    }
}
