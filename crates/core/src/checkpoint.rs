//! Versioned, CRC-protected, atomically-written training checkpoints.
//!
//! A training run on an embedded board (or a pre-emptible cloud node) can
//! die at any instant; a checkpoint written after every epoch lets
//! [`Trainer::train_resumable`](crate::trainer::Trainer::train_resumable)
//! continue a killed run **bit-identically** — the resumed run's weights
//! are indistinguishable from an uninterrupted one. To make that
//! guarantee, a checkpoint captures every piece of training state:
//!
//! * the backbone weights (flat `f32` blobs in `visit_params` order),
//! * the SGD momentum buffers and schedule position ([`SgdState`]),
//! * the trainer RNG ([`RngState`]) — shuffles and multi-scale draws
//!   continue exactly where they stopped,
//! * the current shuffle permutation (it evolves cumulatively across
//!   epochs, so it cannot be re-derived from the RNG alone), and
//! * the number of completed epochs.
//!
//! ## On-disk layout (little-endian)
//!
//! ```text
//! magic "SKYT" | version u32
//! epochs_done u32 | sgd_step u64
//! rng: 4×u64 state words | spare flag u8 | spare f32
//! order: count u32 | count × u32
//! params:   count u32 | per blob: len u32 + len × f32
//! velocity: count u32 | per blob: len u32 + len × f32
//! crc32 u32   (CRC-32 of every preceding byte)
//! ```
//!
//! Writes go to `<path>.tmp` and are fsynced before an atomic rename, so
//! a kill mid-write leaves the previous checkpoint intact; a bit-flip in
//! storage trips the CRC and surfaces as [`ResumeError::Corrupt`] rather
//! than silently corrupting a resumed run.

use skynet_nn::Layer;
use skynet_nn::SgdState;
use skynet_tensor::crc32::crc32;
use skynet_tensor::rng::RngState;
use skynet_tensor::TensorError;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKYT";
const VERSION: u32 = 1;

/// Everything needed to resume a training run bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// Number of fully completed epochs.
    pub epochs_done: u32,
    /// Optimizer state: LR-schedule position + momentum buffers.
    pub sgd: SgdState,
    /// Trainer RNG state at the epoch boundary.
    pub rng: RngState,
    /// The shuffle permutation (sample indices) at the epoch boundary.
    pub order: Vec<u32>,
    /// Backbone parameters, one flat blob per tensor in visit order.
    pub params: Vec<Vec<f32>>,
}

/// Errors produced by checkpoint I/O and resumable training.
#[derive(Debug)]
pub enum ResumeError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Not a SkyNet training checkpoint, or an unsupported version.
    BadHeader(String),
    /// CRC mismatch or a structurally impossible payload — the file was
    /// truncated or bit-flipped after it was written.
    Corrupt(String),
    /// The checkpoint's parameter inventory does not match the model.
    ModelMismatch(String),
    /// A tensor shape error propagated from the model.
    Tensor(TensorError),
    /// Training produced a non-finite loss; the model, optimizer and RNG
    /// were rolled back to the last checkpoint before returning.
    NonFiniteLoss {
        /// Epoch in which the guard tripped.
        epoch: usize,
        /// The offending loss value (`inf` or `NaN`).
        loss: f32,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            ResumeError::BadHeader(d) => write!(f, "bad checkpoint header: {d}"),
            ResumeError::Corrupt(d) => write!(f, "corrupt checkpoint: {d}"),
            ResumeError::ModelMismatch(d) => write!(f, "checkpoint/model mismatch: {d}"),
            ResumeError::Tensor(e) => write!(f, "tensor error during training: {e}"),
            ResumeError::NonFiniteLoss { epoch, loss } => write!(
                f,
                "non-finite loss {loss} in epoch {epoch}; state rolled back to last checkpoint"
            ),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Io(e) => Some(e),
            ResumeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ResumeError {
    fn from(e: io::Error) -> Self {
        ResumeError::Io(e)
    }
}

impl From<TensorError> for ResumeError {
    fn from(e: TensorError) -> Self {
        ResumeError::Tensor(e)
    }
}

impl From<skynet_nn::CheckpointError> for ResumeError {
    fn from(e: skynet_nn::CheckpointError) -> Self {
        match e {
            skynet_nn::CheckpointError::Io(e) => ResumeError::Io(e),
            skynet_nn::CheckpointError::BadHeader(d) => ResumeError::BadHeader(d),
            skynet_nn::CheckpointError::ModelMismatch(d) => ResumeError::ModelMismatch(d),
        }
    }
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_blobs(buf: &mut Vec<u8>, blobs: &[Vec<f32>]) {
    push_u32(buf, blobs.len() as u32);
    for blob in blobs {
        push_u32(buf, blob.len() as u32);
        for &v in blob {
            push_f32(buf, v);
        }
    }
}

/// Bounds-checked little-endian cursor over the decoded payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ResumeError> {
        if self.pos + n > self.bytes.len() {
            return Err(ResumeError::Corrupt(format!(
                "payload overrun at byte {} (+{n} of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ResumeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ResumeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, ResumeError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn blobs(&mut self) -> Result<Vec<Vec<f32>>, ResumeError> {
        let count = self.u32()? as usize;
        // Every blob costs at least its 4-byte length field.
        if count * 4 > self.remaining() {
            return Err(ResumeError::Corrupt(format!(
                "blob count {count} exceeds remaining payload"
            )));
        }
        let mut blobs = Vec::with_capacity(count);
        for _ in 0..count {
            let len = self.u32()? as usize;
            if len * 4 > self.remaining() {
                return Err(ResumeError::Corrupt(format!(
                    "blob length {len} exceeds remaining payload"
                )));
            }
            let raw = self.take(len * 4)?;
            blobs.push(
                raw.chunks_exact(4)
                    .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            );
        }
        Ok(blobs)
    }
}

/// Serializes `ckpt` and writes it to `path` atomically: the payload and
/// its CRC-32 trailer go to `<path>.tmp`, which is fsynced and then
/// renamed over `path`. A crash at any point leaves either the old
/// checkpoint or the new one — never a torn file.
///
/// # Errors
///
/// Returns [`ResumeError::Io`] on filesystem failures.
pub fn save(ckpt: &TrainCheckpoint, path: impl AsRef<Path>) -> Result<(), ResumeError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    push_u32(&mut buf, VERSION);
    push_u32(&mut buf, ckpt.epochs_done);
    push_u64(&mut buf, ckpt.sgd.step as u64);
    for w in ckpt.rng.s {
        push_u64(&mut buf, w);
    }
    buf.push(ckpt.rng.gauss_spare.is_some() as u8);
    push_f32(&mut buf, ckpt.rng.gauss_spare.unwrap_or(0.0));
    push_u32(&mut buf, ckpt.order.len() as u32);
    for &i in &ckpt.order {
        push_u32(&mut buf, i);
    }
    push_blobs(&mut buf, &ckpt.params);
    push_blobs(&mut buf, &ckpt.sgd.velocity);
    let digest = crc32(&buf);
    push_u32(&mut buf, digest);

    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        // Make the rename durable: data must hit the disk before the new
        // name does, or a power cut could promote an empty file.
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a checkpoint written by [`save`].
///
/// # Errors
///
/// [`ResumeError::BadHeader`] for foreign files or unknown versions,
/// [`ResumeError::Corrupt`] for truncated or bit-flipped files (CRC
/// mismatch), [`ResumeError::Io`] for filesystem failures.
pub fn load(path: impl AsRef<Path>) -> Result<TrainCheckpoint, ResumeError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(ResumeError::BadHeader("wrong magic bytes".into()));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(ResumeError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    if bytes.len() < 12 {
        return Err(ResumeError::Corrupt("file shorter than its trailer".into()));
    }
    let (payload, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let computed = crc32(payload);
    if stored != computed {
        return Err(ResumeError::Corrupt(format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }

    let mut cur = Cursor {
        bytes: payload,
        pos: 8, // past magic + version
    };
    let epochs_done = cur.u32()?;
    let step = cur.u64()? as usize;
    let mut s = [0u64; 4];
    for w in &mut s {
        *w = cur.u64()?;
    }
    let has_spare = cur.take(1)?[0] != 0;
    let spare = cur.f32()?;
    let order_len = cur.u32()? as usize;
    if order_len * 4 > cur.remaining() {
        return Err(ResumeError::Corrupt(format!(
            "order length {order_len} exceeds remaining payload"
        )));
    }
    let mut order = Vec::with_capacity(order_len);
    for _ in 0..order_len {
        order.push(cur.u32()?);
    }
    let params = cur.blobs()?;
    let velocity = cur.blobs()?;
    if cur.remaining() != 0 {
        return Err(ResumeError::Corrupt(format!(
            "{} trailing bytes after payload",
            cur.remaining()
        )));
    }
    Ok(TrainCheckpoint {
        epochs_done,
        sgd: SgdState { step, velocity },
        rng: RngState {
            s,
            gauss_spare: has_spare.then_some(spare),
        },
        order,
        params,
    })
}

/// FNV-1a over the bit patterns of every trainable scalar of `model`.
///
/// Any divergence between two training runs — down to the last ulp —
/// changes the hash, so equality is the workspace's standard witness for
/// "these runs produced identical weights" (used by the kill-and-resume
/// CI check and the parallel-determinism sweep).
pub fn weight_hash(model: &mut dyn Layer) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    model.visit_params(&mut |p| {
        for v in p.value.as_slice() {
            for byte in v.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    });
    h
}

/// Hasher over raw blob snapshots (the same digest as [`weight_hash`]
/// computed from [`skynet_nn::collect_params`] output).
pub fn blob_hash(blobs: &[Vec<f32>]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for blob in blobs {
        for v in blob {
            for byte in v.to_bits().to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skynet-train-ckpt-{name}-{}", std::process::id()));
        p
    }

    fn sample_ckpt() -> TrainCheckpoint {
        TrainCheckpoint {
            epochs_done: 3,
            sgd: SgdState {
                step: 120,
                velocity: vec![vec![0.25, -1.5], vec![3.0]],
            },
            rng: RngState {
                s: [1, u64::MAX, 0xDEADBEEF, 42],
                gauss_spare: Some(-0.75),
            },
            order: vec![4, 0, 2, 1, 3],
            params: vec![vec![0.5, 1.5], vec![-2.0]],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ck = sample_ckpt();
        let path = tmp("roundtrip");
        save(&ck, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, ck);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_spare_roundtrips() {
        let mut ck = sample_ckpt();
        ck.rng.gauss_spare = None;
        let path = tmp("nospare");
        save(&ck, &path).unwrap();
        assert_eq!(load(&path).unwrap(), ck);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flip_is_corrupt() {
        let ck = sample_ckpt();
        let path = tmp("flip");
        save(&ck, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&path), Err(ResumeError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_is_corrupt() {
        let ck = sample_ckpt();
        let path = tmp("trunc");
        save(&ck, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(matches!(load(&path), Err(ResumeError::Corrupt(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmp("foreign");
        std::fs::write(&path, b"whatever this is, it is not a checkpoint").unwrap();
        assert!(matches!(load(&path), Err(ResumeError::BadHeader(_))));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_leaves_no_tmp_file() {
        let ck = sample_ckpt();
        let path = tmp("notmp");
        save(&ck, &path).unwrap();
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn blob_hash_matches_weight_hash_semantics() {
        let blobs = vec![vec![1.0f32, -0.0, 3.5], vec![f32::MIN_POSITIVE]];
        let a = blob_hash(&blobs);
        let mut flipped = blobs.clone();
        flipped[1][0] = f32::MIN_POSITIVE * 2.0;
        assert_ne!(a, blob_hash(&flipped));
        assert_eq!(a, blob_hash(&blobs.clone()));
    }
}
