//! Axis-aligned bounding boxes in normalized image coordinates and the
//! IoU metric used throughout the DAC-SDC evaluation (Eq. 2).

/// An axis-aligned box stored as center + extent, all normalized to the
/// `[0, 1]` image frame.
///
/// DAC-SDC scores a detector by the mean Intersection-over-Union between
/// the predicted and ground-truth box over the test set; [`BBox::iou`] is
/// that per-image term.
///
/// ```
/// use skynet_core::BBox;
/// let a = BBox::new(0.5, 0.5, 0.2, 0.2);
/// assert!((a.iou(&a) - 1.0).abs() < 1e-6);
/// let b = BBox::new(0.9, 0.9, 0.1, 0.1);
/// assert_eq!(a.iou(&b), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Center x in `[0, 1]`.
    pub cx: f32,
    /// Center y in `[0, 1]`.
    pub cy: f32,
    /// Width in `[0, 1]`.
    pub w: f32,
    /// Height in `[0, 1]`.
    pub h: f32,
}

impl BBox {
    /// Creates a box from center and extent.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox { cx, cy, w, h }
    }

    /// Creates a box from corner coordinates `(x1, y1)`–`(x2, y2)`.
    pub fn from_corners(x1: f32, y1: f32, x2: f32, y2: f32) -> Self {
        BBox {
            cx: 0.5 * (x1 + x2),
            cy: 0.5 * (y1 + y2),
            w: (x2 - x1).max(0.0),
            h: (y2 - y1).max(0.0),
        }
    }

    /// Corner representation `(x1, y1, x2, y2)`.
    pub fn corners(&self) -> (f32, f32, f32, f32) {
        (
            self.cx - 0.5 * self.w,
            self.cy - 0.5 * self.h,
            self.cx + 0.5 * self.w,
            self.cy + 0.5 * self.h,
        )
    }

    /// Box area (zero for degenerate boxes).
    pub fn area(&self) -> f32 {
        self.w.max(0.0) * self.h.max(0.0)
    }

    /// Intersection area with another box.
    pub fn intersection(&self, other: &BBox) -> f32 {
        let (ax1, ay1, ax2, ay2) = self.corners();
        let (bx1, by1, bx2, by2) = other.corners();
        let iw = (ax2.min(bx2) - ax1.max(bx1)).max(0.0);
        let ih = (ay2.min(by2) - ay1.max(by1)).max(0.0);
        iw * ih
    }

    /// Intersection over Union with another box, always in `[0, 1]`.
    ///
    /// Degenerate pairs are defined to have `iou == 0.0`: when both boxes
    /// have zero (or negative) extent the union is 0 and a naive
    /// `inter / union` would yield NaN, which silently poisons every mean
    /// it is folded into — accuracy sweeps, and the serving layer's
    /// quality metrics. The guard is written NaN-proof (`union > 0.0` is
    /// false for NaN), so non-finite inputs also collapse to 0.0 instead
    /// of propagating.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union > 0.0 && inter.is_finite() {
            (inter / union).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }

    /// Clamps the box to the unit image frame, preserving the center as
    /// far as possible.
    pub fn clamp_to_frame(&self) -> BBox {
        let (x1, y1, x2, y2) = self.corners();
        BBox::from_corners(
            x1.clamp(0.0, 1.0),
            y1.clamp(0.0, 1.0),
            x2.clamp(0.0, 1.0),
            y2.clamp(0.0, 1.0),
        )
    }

    /// Relative size of the box with respect to the image: the ratio the
    /// paper's Fig. 6 histogram is built from (box area / image area; the
    /// image frame has area 1 in normalized coordinates).
    pub fn relative_size(&self) -> f32 {
        self.area()
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> BBox {
        BBox {
            cx: self.cx + dx,
            cy: self.cy + dy,
            ..*self
        }
    }

    /// Scales the box extent by `(sx, sy)` about its center.
    pub fn scaled(&self, sx: f32, sy: f32) -> BBox {
        BBox {
            w: self.w * sx,
            h: self.h * sy,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_unit_iou() {
        let b = BBox::new(0.3, 0.4, 0.2, 0.1);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_zero_iou() {
        let a = BBox::new(0.2, 0.2, 0.1, 0.1);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn half_overlap() {
        // Two unit-height boxes sharing half their width.
        let a = BBox::from_corners(0.0, 0.0, 0.2, 0.2);
        let b = BBox::from_corners(0.1, 0.0, 0.3, 0.2);
        // intersection = 0.1*0.2 = 0.02, union = 2*0.04 - 0.02 = 0.06.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn corners_roundtrip() {
        let b = BBox::new(0.5, 0.5, 0.4, 0.2);
        let (x1, y1, x2, y2) = b.corners();
        let r = BBox::from_corners(x1, y1, x2, y2);
        assert!((r.cx - b.cx).abs() < 1e-6);
        assert!((r.w - b.w).abs() < 1e-6);
    }

    #[test]
    fn degenerate_boxes_are_safe() {
        let z = BBox::new(0.5, 0.5, 0.0, 0.0);
        assert_eq!(z.area(), 0.0);
        assert_eq!(z.iou(&z), 0.0);
    }

    #[test]
    fn coincident_zero_area_pair_has_zero_iou_not_nan() {
        // Both zero-area at the same point: inter = 0, union = 0 — the
        // 0/0 case that used to require the caller to defend against.
        let a = BBox::new(0.3, 0.7, 0.0, 0.0);
        let b = BBox::new(0.3, 0.7, 0.0, 0.0);
        let v = a.iou(&b);
        assert!(!v.is_nan());
        assert_eq!(v, 0.0);
    }

    #[test]
    fn zero_area_box_against_real_box_is_zero() {
        let point = BBox::new(0.5, 0.5, 0.0, 0.0);
        let real = BBox::new(0.5, 0.5, 0.4, 0.4);
        assert_eq!(point.iou(&real), 0.0);
        assert_eq!(real.iou(&point), 0.0);
    }

    #[test]
    fn negative_extent_from_corners_is_degenerate_and_safe() {
        // Inverted corners clamp to zero extent; IoU must stay 0, not NaN.
        let inv = BBox::from_corners(0.8, 0.8, 0.2, 0.2);
        assert_eq!(inv.w, 0.0);
        assert_eq!(inv.h, 0.0);
        assert_eq!(inv.iou(&inv), 0.0);
        // Raw negative extents (constructed directly) are equally safe.
        let neg = BBox::new(0.5, 0.5, -0.3, -0.1);
        assert_eq!(neg.iou(&neg), 0.0);
        assert!(!neg.iou(&BBox::new(0.5, 0.5, 0.2, 0.2)).is_nan());
    }

    #[test]
    fn non_finite_inputs_collapse_to_zero() {
        let nan = BBox::new(f32::NAN, f32::NAN, f32::NAN, f32::NAN);
        let inf = BBox::new(0.5, 0.5, f32::INFINITY, f32::INFINITY);
        let ok = BBox::new(0.5, 0.5, 0.2, 0.2);
        for v in [nan.iou(&ok), ok.iou(&nan), nan.iou(&nan), inf.iou(&inf)] {
            assert!(!v.is_nan(), "iou leaked a NaN");
        }
    }

    #[test]
    fn clamp_keeps_box_inside_frame() {
        let b = BBox::new(0.02, 0.98, 0.2, 0.2).clamp_to_frame();
        let (x1, y1, x2, y2) = b.corners();
        assert!(x1 >= -1e-6 && y1 >= -1e-6 && x2 <= 1.0 + 1e-6 && y2 <= 1.0 + 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.4, 0.4, 0.3, 0.25);
        let b = BBox::new(0.5, 0.45, 0.2, 0.3);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }
}
