//! Abstract network descriptors.
//!
//! A [`NetDesc`] is a framework-independent description of a network's
//! layer sequence: enough information to count parameters and MACs and to
//! drive the hardware models in `skynet-hw` (FPGA IP sizing, GPU roofline)
//! without instantiating any weights. The trainable models in this crate
//! and in `skynet-zoo` all know how to emit their own descriptor.

/// One layer of an abstract network description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerDesc {
    /// Dense convolution `in_c → out_c`, square kernel `k`, stride `s`,
    /// padding `p`.
    Conv {
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel edge.
        k: usize,
        /// Stride.
        s: usize,
        /// Padding.
        p: usize,
    },
    /// Depth-wise convolution over `c` channels.
    DwConv {
        /// Channel count (input = output).
        c: usize,
        /// Kernel edge.
        k: usize,
        /// Stride.
        s: usize,
        /// Padding.
        p: usize,
    },
    /// Non-overlapping max pooling with window `k`.
    Pool {
        /// Channel count.
        c: usize,
        /// Window/stride.
        k: usize,
    },
    /// Batch normalization over `c` channels.
    Bn {
        /// Channel count.
        c: usize,
    },
    /// Element-wise activation over `c` channels.
    Act {
        /// Channel count.
        c: usize,
    },
    /// Space-to-depth reordering with block `s`.
    Reorg {
        /// Input channel count.
        c: usize,
        /// Block size.
        s: usize,
    },
    /// Channel concatenation of the main path (`c_main`) with a stored
    /// bypass feature map (`c_bypass`).
    Concat {
        /// Channels arriving on the main path.
        c_main: usize,
        /// Channels arriving over the bypass.
        c_bypass: usize,
    },
}

impl LayerDesc {
    /// Trainable parameter count of the layer.
    pub fn params(&self) -> usize {
        match *self {
            LayerDesc::Conv { in_c, out_c, k, .. } => in_c * out_c * k * k,
            LayerDesc::DwConv { c, k, .. } => c * k * k,
            LayerDesc::Bn { c } => 2 * c,
            _ => 0,
        }
    }

    /// Multiply-accumulate count for an `h×w` input to this layer.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        match *self {
            LayerDesc::Conv {
                in_c,
                out_c,
                k,
                s,
                p,
            } => {
                let oh = (h + 2 * p).saturating_sub(k) / s + 1;
                let ow = (w + 2 * p).saturating_sub(k) / s + 1;
                (in_c * out_c * k * k * oh * ow) as u64
            }
            LayerDesc::DwConv { c, k, s, p } => {
                let oh = (h + 2 * p).saturating_sub(k) / s + 1;
                let ow = (w + 2 * p).saturating_sub(k) / s + 1;
                (c * k * k * oh * ow) as u64
            }
            // Element-wise / data-movement layers contribute one op per
            // element; negligible but tracked for completeness.
            LayerDesc::Pool { c, k } => ((h / k) * (w / k) * c * k * k) as u64,
            LayerDesc::Bn { c } | LayerDesc::Act { c } => (c * h * w) as u64,
            LayerDesc::Reorg { c, .. } => (c * h * w) as u64,
            LayerDesc::Concat { c_main, c_bypass } => ((c_main + c_bypass) * h * w) as u64,
        }
    }

    /// Spatial extent and channel count after this layer, given the input
    /// extent and channels.
    pub fn propagate(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        match *self {
            LayerDesc::Conv { out_c, k, s, p, .. } => {
                let oh = (h + 2 * p).saturating_sub(k) / s + 1;
                let ow = (w + 2 * p).saturating_sub(k) / s + 1;
                (out_c, oh, ow)
            }
            LayerDesc::DwConv { k, s, p, .. } => {
                let oh = (h + 2 * p).saturating_sub(k) / s + 1;
                let ow = (w + 2 * p).saturating_sub(k) / s + 1;
                (c, oh, ow)
            }
            LayerDesc::Pool { k, .. } => (c, h / k, w / k),
            LayerDesc::Bn { .. } | LayerDesc::Act { .. } => (c, h, w),
            LayerDesc::Reorg { s, .. } => (c * s * s, h / s, w / s),
            LayerDesc::Concat { c_main, c_bypass } => (c_main + c_bypass, h, w),
        }
    }
}

/// An abstract network: input geometry plus the layer sequence. The
/// bypass is flattened into the main sequence (reorg runs where the
/// bypass forks; concat where it rejoins), which is also how the shared-IP
/// FPGA schedule executes it.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDesc {
    /// Input channel count.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Layer sequence.
    pub layers: Vec<LayerDesc>,
}

/// Per-layer geometry annotation produced by [`NetDesc::walk`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerShape {
    /// The layer.
    pub layer: LayerDesc,
    /// Input channels at this layer.
    pub c_in: usize,
    /// Input height.
    pub h_in: usize,
    /// Input width.
    pub w_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Output height.
    pub h_out: usize,
    /// Output width.
    pub w_out: usize,
}

impl NetDesc {
    /// Creates a descriptor.
    pub fn new(in_c: usize, in_h: usize, in_w: usize, layers: Vec<LayerDesc>) -> Self {
        NetDesc {
            in_c,
            in_h,
            in_w,
            layers,
        }
    }

    /// Walks the layer sequence, annotating each layer with its input and
    /// output geometry.
    ///
    /// For [`LayerDesc::Concat`] the main-path channel count is taken from
    /// the running state; the descriptor's `c_main` field is a
    /// cross-check.
    pub fn walk(&self) -> Vec<LayerShape> {
        let (mut c, mut h, mut w) = (self.in_c, self.in_h, self.in_w);
        let mut out = Vec::with_capacity(self.layers.len());
        for &layer in &self.layers {
            // Reorg on the bypass path consumes the *stored* feature map,
            // not the running one; descriptors list it with its true
            // input, so we trust the layer's own channel field where it
            // has one and otherwise the running state.
            let (cin, hin, win) = match layer {
                LayerDesc::Reorg { c: rc, s } => {
                    // Bypass reorg: geometry of the stored map is implied
                    // by where it forked; descriptors built by this crate
                    // always place Reorg at fork position, so the running
                    // spatial extent at that point applies.
                    let _ = s;
                    (rc, h, w)
                }
                _ => (c, h, w),
            };
            let (oc, oh, ow) = match layer {
                // Concat joins the stored bypass channels onto the main
                // path at the main path's spatial extent.
                LayerDesc::Concat { c_main, c_bypass } => {
                    debug_assert_eq!(c_main, c, "concat main-path channels disagree");
                    (c_main + c_bypass, h, w)
                }
                _ => layer.propagate(cin, hin, win),
            };
            out.push(LayerShape {
                layer,
                c_in: cin,
                h_in: hin,
                w_in: win,
                c_out: oc,
                h_out: oh,
                w_out: ow,
            });
            match layer {
                // The bypass reorg does not advance the main path.
                LayerDesc::Reorg { .. } => {}
                _ => {
                    c = oc;
                    h = oh;
                    w = ow;
                }
            }
        }
        out
    }

    /// Total trainable parameter count.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.params()).sum()
    }

    /// Total MAC count for one forward pass.
    pub fn total_macs(&self) -> u64 {
        self.walk()
            .iter()
            .map(|ls| ls.layer.macs(ls.h_in, ls.w_in))
            .sum()
    }

    /// Peak feature-map size (in elements) across all layer outputs —
    /// the quantity that drives on-chip buffer sizing (Fig. 2(b)).
    pub fn peak_activation(&self) -> usize {
        self.walk()
            .iter()
            .map(|ls| ls.c_out * ls.h_out * ls.w_out)
            .max()
            .unwrap_or(0)
            .max(self.in_c * self.in_h * self.in_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetDesc {
        NetDesc::new(
            3,
            8,
            16,
            vec![
                LayerDesc::DwConv {
                    c: 3,
                    k: 3,
                    s: 1,
                    p: 1,
                },
                LayerDesc::Conv {
                    in_c: 3,
                    out_c: 8,
                    k: 1,
                    s: 1,
                    p: 0,
                },
                LayerDesc::Bn { c: 8 },
                LayerDesc::Act { c: 8 },
                LayerDesc::Pool { c: 8, k: 2 },
            ],
        )
    }

    #[test]
    fn params_match_hand_count() {
        let d = tiny();
        // DW: 3·9 = 27, PW: 3·8 = 24, BN: 16.
        assert_eq!(d.total_params(), 27 + 24 + 16);
    }

    #[test]
    fn walk_propagates_geometry() {
        let d = tiny();
        let shapes = d.walk();
        assert_eq!(shapes.len(), 5);
        assert_eq!(
            (shapes[0].c_out, shapes[0].h_out, shapes[0].w_out),
            (3, 8, 16)
        );
        assert_eq!((shapes[1].c_out, shapes[1].h_out), (8, 8));
        assert_eq!(
            (shapes[4].c_out, shapes[4].h_out, shapes[4].w_out),
            (8, 4, 8)
        );
    }

    #[test]
    fn macs_match_hand_count() {
        let d = tiny();
        // DW: 3·9·8·16, PW: 3·8·8·16.
        let dw = 3 * 9 * 8 * 16;
        let pw = 3 * 8 * 8 * 16;
        let shapes = d.walk();
        assert_eq!(shapes[0].layer.macs(8, 16), dw as u64);
        assert_eq!(shapes[1].layer.macs(8, 16), pw as u64);
    }

    #[test]
    fn concat_and_reorg_geometry() {
        let d = NetDesc::new(
            4,
            8,
            8,
            vec![
                LayerDesc::Reorg { c: 4, s: 2 }, // bypass fork (stored)
                LayerDesc::Pool { c: 4, k: 2 },
                LayerDesc::Concat {
                    c_main: 4,
                    c_bypass: 16,
                },
            ],
        );
        let shapes = d.walk();
        // Reorg sees the 8×8 map, produces 16×4×4 but does not advance
        // the main path.
        assert_eq!(
            (shapes[0].c_out, shapes[0].h_out, shapes[0].w_out),
            (16, 4, 4)
        );
        assert_eq!((shapes[1].c_in, shapes[1].h_in), (4, 8));
        // After pool the main path is 4×4×4; concat adds 16 channels.
        assert_eq!(
            (shapes[2].c_out, shapes[2].h_out, shapes[2].w_out),
            (20, 4, 4)
        );
    }

    #[test]
    fn peak_activation_is_max_over_layers() {
        let d = tiny();
        // Input 3·8·16 = 384, after PW 8·8·16 = 1024 (the peak).
        assert_eq!(d.peak_activation(), 1024);
    }
}
