//! Graph-level execution plan with operator fusion.
//!
//! [`SkyNet`]'s layer objects execute one at a time, materializing every
//! intermediate feature map. This module builds a small static **graph
//! IR** ([`Graph`]) from the bundle structure once, rewrites it with
//! three fusion passes, and compiles the result into an executable
//! [`ExecPlan`] whose steps drive the fused kernels in
//! [`skynet_tensor::fused`]:
//!
//! 1. **BN-fold** ([`Graph::fold_bn`]) — each `Conv → BatchNorm` pair
//!    becomes one conv whose store applies the BN-eval affine as a
//!    per-channel **epilogue**. The epilogue captures
//!    `(μ, 1/√(σ²+ε), γ, β)` at plan-build time and replays the eval
//!    path's exact f32 sequence `y = γ·(x − μ)·inv_std + β`, so —
//!    unlike the classic fold-into-weights rewrite
//!    ([`Conv2d::fold_bn`], which re-rounds every weight product and is
//!    kept for deployment-style transforms like INT8 — this is its
//!    float analogue with the rounding question designed away) — the
//!    output bits are unchanged.
//! 2. **Fused activation** ([`Graph::fuse_act`]) — the ReLU/ReLU6 clamp
//!    moves into the producing kernel's store loop
//!    (`max(x, 0)`/`min(·, 6)` with the elementwise kernels'
//!    `maxps`/`minps` lane semantics, position-independent per element).
//! 3. **Bundle fusion** ([`Graph::fuse_bundles`]) — the
//!    `DW-Conv3+BN+Act → PW+BN+Act` pair executes over cache-resident
//!    row tiles in the scratch arena, never materializing the
//!    intermediate ([`skynet_tensor::fused::fused_bundle_forward`]).
//!
//! Every pass preserves **bit-identity** with the unfused layer path
//! across SIMD backends and thread counts; the unfused path stays on as
//! the runtime oracle behind `SKYNET_FUSION`
//! ([`skynet_tensor::fusion`]). Plans are cached per network and
//! invalidated whenever weights can change (optimizer visits, training
//! forwards) — see `SkyNet::forward`.

use crate::skynet::{SkyNet, Variant};
use skynet_nn::{Activation, BatchNorm2d, Conv2d, DwConv2d, Sequential};
use skynet_tensor::conv::{conv2d, ConvGeometry};
use skynet_tensor::fused::{fused_bundle_forward, BnAct};
use skynet_tensor::ops::concat_channels;
use skynet_tensor::pool::maxpool2d;
use skynet_tensor::reorg::reorg;
use skynet_tensor::{telemetry, Result, Tensor};

/// One node of the inference graph IR. `bundle` is the 0-based bundle
/// position (5 = Bundle 6); `stage` distinguishes the DW-side (`0`)
/// from the PW-side (`1`) BN/activation within a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Depth-wise 3×3 convolution of a bundle.
    DwConv3 {
        /// Bundle position.
        bundle: usize,
    },
    /// Point-wise convolution of a bundle.
    PwConv {
        /// Bundle position.
        bundle: usize,
    },
    /// BatchNorm after the DW (`stage` 0) or PW (`stage` 1) conv.
    Bn {
        /// Bundle position.
        bundle: usize,
        /// 0 = after DW, 1 = after PW.
        stage: usize,
    },
    /// ReLU/ReLU6 activation.
    Act {
        /// Bundle position.
        bundle: usize,
        /// 0 = after DW, 1 = after PW.
        stage: usize,
    },
    /// DW conv with the BN affine folded into its store epilogue
    /// (after [`Graph::fold_bn`]).
    DwConvBn {
        /// Bundle position.
        bundle: usize,
    },
    /// PW conv with the BN affine folded into its store epilogue.
    PwConvBn {
        /// Bundle position.
        bundle: usize,
    },
    /// DW conv with BN **and** activation fused into the store loop
    /// (after [`Graph::fuse_act`]).
    DwConvBnAct {
        /// Bundle position.
        bundle: usize,
    },
    /// PW conv with BN and activation fused into the store loop.
    PwConvBnAct {
        /// Bundle position.
        bundle: usize,
    },
    /// A whole bundle over cache-resident row tiles (after
    /// [`Graph::fuse_bundles`]).
    FusedBundle {
        /// Bundle position.
        bundle: usize,
    },
    /// 2×2 max-pool after bundles 1–3.
    Pool {
        /// Pool position (0–2).
        idx: usize,
    },
    /// Fork point: reorg (space-to-depth) the current map and stash it
    /// as the bypass operand for [`Op::Concat`].
    ReorgFork,
    /// Join point: concatenate the stashed bypass onto the current map.
    Concat,
    /// The 1×1 detection head (with bias, no BN/activation).
    Head,
}

/// The linear inference graph over the bundle structure. Control flow
/// (the single fork/join of the bypass) is encoded by
/// [`Op::ReorgFork`]/[`Op::Concat`], which is exactly as much graph as
/// the SkyNet topology has.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    ops: Vec<Op>,
}

impl Graph {
    /// Builds the unfused graph mirroring `SkyNet::forward`'s exact op
    /// order (reorg fork after Bundle 3's body, before pool 3).
    pub fn from_skynet(net: &SkyNet) -> Graph {
        let mut ops = Vec::new();
        let bundle_ops = |ops: &mut Vec<Op>, b: usize| {
            ops.push(Op::DwConv3 { bundle: b });
            ops.push(Op::Bn {
                bundle: b,
                stage: 0,
            });
            ops.push(Op::Act {
                bundle: b,
                stage: 0,
            });
            ops.push(Op::PwConv { bundle: b });
            ops.push(Op::Bn {
                bundle: b,
                stage: 1,
            });
            ops.push(Op::Act {
                bundle: b,
                stage: 1,
            });
        };
        for i in 0..3 {
            bundle_ops(&mut ops, i);
            if i == 2 && net.cfg.variant != Variant::A {
                ops.push(Op::ReorgFork);
            }
            ops.push(Op::Pool { idx: i });
        }
        bundle_ops(&mut ops, 3);
        bundle_ops(&mut ops, 4);
        if net.bundle6.is_some() {
            ops.push(Op::Concat);
            bundle_ops(&mut ops, 5);
        }
        ops.push(Op::Head);
        Graph { ops }
    }

    /// The op list (read-only; tests assert pass results against it).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Pass 1 — BN-fold: `DwConv3/PwConv → Bn` pairs collapse into one
    /// conv-with-epilogue node.
    pub fn fold_bn(&mut self) {
        self.rewrite_pairs(|a, b| match (a, b) {
            (
                Op::DwConv3 { bundle },
                Op::Bn {
                    bundle: b2,
                    stage: 0,
                },
            ) if bundle == b2 => Some(Op::DwConvBn { bundle }),
            (
                Op::PwConv { bundle },
                Op::Bn {
                    bundle: b2,
                    stage: 1,
                },
            ) if bundle == b2 => Some(Op::PwConvBn { bundle }),
            _ => None,
        });
    }

    /// Pass 2 — fused activation: `ConvBn → Act` pairs move the clamp
    /// into the conv's store loop.
    pub fn fuse_act(&mut self) {
        self.rewrite_pairs(|a, b| match (a, b) {
            (
                Op::DwConvBn { bundle },
                Op::Act {
                    bundle: b2,
                    stage: 0,
                },
            ) if bundle == b2 => Some(Op::DwConvBnAct { bundle }),
            (
                Op::PwConvBn { bundle },
                Op::Act {
                    bundle: b2,
                    stage: 1,
                },
            ) if bundle == b2 => Some(Op::PwConvBnAct { bundle }),
            _ => None,
        });
    }

    /// Pass 3 — bundle fusion: adjacent `DwConvBnAct → PwConvBnAct` of
    /// the same bundle become one cache-blocked fused bundle.
    pub fn fuse_bundles(&mut self) {
        self.rewrite_pairs(|a, b| match (a, b) {
            (Op::DwConvBnAct { bundle }, Op::PwConvBnAct { bundle: b2 }) if bundle == b2 => {
                Some(Op::FusedBundle { bundle })
            }
            _ => None,
        });
    }

    /// Runs all three passes in their documented order.
    pub fn optimize(&mut self) {
        self.fold_bn();
        self.fuse_act();
        self.fuse_bundles();
    }

    /// One left-to-right sweep replacing adjacent pairs; linear passes
    /// over a linear graph, so one sweep reaches the fixed point.
    fn rewrite_pairs(&mut self, rule: impl Fn(Op, Op) -> Option<Op>) {
        let mut out: Vec<Op> = Vec::with_capacity(self.ops.len());
        for &op in &self.ops {
            if let Some(&prev) = out.last() {
                if let Some(merged) = rule(prev, op) {
                    *out.last_mut().expect("non-empty") = merged;
                    continue;
                }
            }
            out.push(op);
        }
        self.ops = out;
    }
}

/// Why a plan could not be built. Structural mismatches fall back to the
/// unfused path (counted as `fusion.fallback`), never fail the forward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "execution plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// Per-bundle span names for the fused kernels (`fused.<bundle>`): the
/// fused op **replaces** `skynet.bundleN` in the profiler's table, so
/// `telemetry::aggregate` never sees the same work under two names.
const FUSED_SPANS: [&str; 6] = [
    "fused.bundle1",
    "fused.bundle2",
    "fused.bundle3",
    "fused.bundle4",
    "fused.bundle5",
    "fused.bundle6",
];
const POOL_SPANS: [&str; 3] = ["skynet.pool1", "skynet.pool2", "skynet.pool3"];

/// Captured weights + epilogues of one fused bundle (boxed inside
/// [`Step`] to keep the step list's per-element size small).
struct FusedStep {
    span: &'static str,
    dw_w: Tensor,
    dw_geo: ConvGeometry,
    bn1: BnAct,
    pw_w: Tensor,
    bn2: BnAct,
}

/// One executable step of a compiled plan.
enum Step {
    /// A fused bundle: weights + captured epilogues.
    Fused(Box<FusedStep>),
    Pool {
        span: &'static str,
        k: usize,
    },
    ReorgFork {
        block: usize,
    },
    Concat,
    Head {
        w: Tensor,
        bias: Option<Vec<f32>>,
        geo: ConvGeometry,
    },
}

/// A compiled, immutable inference plan for one [`SkyNet`]: the
/// optimized [`Graph`] plus captured weights/epilogues. Built lazily on
/// the first fused eval forward and cached until the owner's weights can
/// change (see `SkyNet::forward` / `SkyNet::visit_params`).
pub struct ExecPlan {
    graph: Graph,
    steps: Vec<Step>,
}

impl std::fmt::Debug for ExecPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExecPlan[{} steps]", self.steps.len())
    }
}

/// Downcasts one bundle chain into its six typed layers.
fn bundle_parts(
    seq: &Sequential,
    idx: usize,
) -> std::result::Result<
    (
        &DwConv2d,
        &BatchNorm2d,
        &Activation,
        &Conv2d,
        &BatchNorm2d,
        &Activation,
    ),
    PlanError,
> {
    let mismatch = |what: &str| {
        PlanError(format!(
            "bundle {}: expected DW→BN→Act→PW→BN→Act, {what}",
            idx + 1
        ))
    };
    let layers = seq.layers();
    if layers.len() != 6 {
        return Err(mismatch(&format!("found {} layers", layers.len())));
    }
    let cast = |i: usize| layers[i].as_any();
    Ok((
        cast(0)
            .and_then(|a| a.downcast_ref::<DwConv2d>())
            .ok_or_else(|| mismatch("layer 1 is not DwConv2d"))?,
        cast(1)
            .and_then(|a| a.downcast_ref::<BatchNorm2d>())
            .ok_or_else(|| mismatch("layer 2 is not BatchNorm2d"))?,
        cast(2)
            .and_then(|a| a.downcast_ref::<Activation>())
            .ok_or_else(|| mismatch("layer 3 is not Activation"))?,
        cast(3)
            .and_then(|a| a.downcast_ref::<Conv2d>())
            .ok_or_else(|| mismatch("layer 4 is not Conv2d"))?,
        cast(4)
            .and_then(|a| a.downcast_ref::<BatchNorm2d>())
            .ok_or_else(|| mismatch("layer 5 is not BatchNorm2d"))?,
        cast(5)
            .and_then(|a| a.downcast_ref::<Activation>())
            .ok_or_else(|| mismatch("layer 6 is not Activation"))?,
    ))
}

/// Captures one bundle's weights and epilogues as a fused step.
fn compile_bundle(seq: &Sequential, idx: usize) -> std::result::Result<Step, PlanError> {
    let (dw, bn1, act1, pw, bn2, act2) = bundle_parts(seq, idx)?;
    let geo = dw.geometry();
    if geo.kernel != 3 || (geo.stride != 1 && geo.stride != 2) {
        return Err(PlanError(format!(
            "bundle {}: DW geometry k={} s={} not fusable",
            idx + 1,
            geo.kernel,
            geo.stride
        )));
    }
    let pgeo = pw.geometry();
    if pgeo.kernel != 1 || pgeo.stride != 1 || pgeo.pad != 0 || pw.bias_values().is_some() {
        return Err(PlanError(format!(
            "bundle {}: PW stage is not a bias-free point-wise conv",
            idx + 1
        )));
    }
    let ep = |bn: &BatchNorm2d, ceiling: Option<f32>| {
        BnAct::new(
            bn.running_mean().to_vec(),
            bn.running_var(),
            bn.eps(),
            bn.gamma().to_vec(),
            bn.beta().to_vec(),
            ceiling,
        )
    };
    Ok(Step::Fused(Box::new(FusedStep {
        span: FUSED_SPANS[idx],
        dw_w: dw.weight().clone(),
        dw_geo: geo,
        bn1: ep(bn1, act1.kind().output_ceiling()),
        pw_w: pw.weight().clone(),
        bn2: ep(bn2, act2.kind().output_ceiling()),
    })))
}

impl ExecPlan {
    /// Builds and optimizes the plan for a network: IR construction, the
    /// three fusion passes, then weight/epilogue capture.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] when the network's structure does not
    /// match the fusable bundle shape (the caller falls back to the
    /// unfused path).
    pub fn build(net: &SkyNet) -> std::result::Result<ExecPlan, PlanError> {
        let mut graph = Graph::from_skynet(net);
        graph.optimize();
        let mut steps = Vec::with_capacity(graph.ops().len());
        for &op in graph.ops() {
            steps.push(match op {
                Op::FusedBundle { bundle } => {
                    let seq = if bundle < net.bundles.len() {
                        &net.bundles[bundle]
                    } else {
                        net.bundle6
                            .as_ref()
                            .ok_or_else(|| PlanError("bundle 6 missing".into()))?
                    };
                    compile_bundle(seq, bundle)?
                }
                Op::Pool { idx } => Step::Pool {
                    span: POOL_SPANS[idx],
                    k: net.pools[idx].window(),
                },
                Op::ReorgFork => Step::ReorgFork {
                    block: net.reorg.block(),
                },
                Op::Concat => Step::Concat,
                Op::Head => Step::Head {
                    w: net.head.weight().clone(),
                    bias: net.head.bias_values().map(<[f32]>::to_vec),
                    geo: net.head.geometry(),
                },
                other => {
                    return Err(PlanError(format!(
                        "op {other:?} survived fusion — not executable"
                    )))
                }
            });
        }
        telemetry::counter("fusion.plan_builds").inc();
        Ok(ExecPlan { graph, steps })
    }

    /// The optimized graph (for tests and diagnostics).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Executes the plan. Bit-identical to the unfused
    /// `SkyNet::forward` in eval mode on every SIMD backend and thread
    /// count (see [`skynet_tensor::fused`] for the argument).
    ///
    /// # Errors
    ///
    /// Propagates kernel shape errors (none occur for inputs the
    /// unfused path accepts).
    pub fn run(&self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        let mut bypass = None;
        for step in &self.steps {
            cur = match step {
                Step::Fused(f) => {
                    let _s = telemetry::span(f.span);
                    fused_bundle_forward(&cur, &f.dw_w, f.dw_geo, &f.bn1, &f.pw_w, &f.bn2)?
                }
                Step::Pool { span, k } => {
                    let _s = telemetry::span(span);
                    maxpool2d(&cur, *k)?.output
                }
                Step::ReorgFork { block } => {
                    let _s = telemetry::span("skynet.reorg");
                    bypass = Some(reorg(&cur, *block)?);
                    cur
                }
                Step::Concat => {
                    let _s = telemetry::span("skynet.concat");
                    let by = bypass.take().expect("ReorgFork precedes Concat");
                    concat_channels(&cur, &by)?
                }
                Step::Head { w, bias, geo } => {
                    let _s = telemetry::span("skynet.head");
                    conv2d(&cur, w, bias.as_deref(), *geo)?
                }
            };
        }
        Ok(cur)
    }
}

/// One step of the quantized (INT8) execution plan.
///
/// The integer engine has a much coarser op vocabulary than the float
/// graph: its stages are *already* BN-folded and activation-fused at
/// [`crate::quant::QuantizedSkyNet::build`] time, so the only fusion
/// decision left is whether a bundle's DW→PW pair runs as two full-map
/// kernels or as one cache-resident fused tile
/// ([`skynet_tensor::fused::qfused_bundle_forward`]). That decision is
/// the `fused` flag on [`QOp::Bundle`], set by
/// [`QExecPlan::lower_fused`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QOp {
    /// Quantize the f32 input into the `i8` activation domain.
    Quantize,
    /// One DW→PW stage pair of the integer engine.
    Bundle {
        /// Bundle position (0-based; 5 = Bundle 6).
        bundle: usize,
        /// Lowered to the fused INT8 row-tile kernel. The engine still
        /// checks the runtime [`skynet_tensor::fusion`] toggle at each
        /// forward and counts `quant.fused.fallback` when a
        /// fused-lowered bundle has to run unfused.
        fused: bool,
    },
    /// 2×2 max-pool after bundles 1–3.
    Pool {
        /// Pool position (0–2).
        idx: usize,
    },
    /// Fork point: reorg the current map and stash it as the bypass
    /// operand for [`QOp::Concat`] (variants B/C only).
    ReorgFork,
    /// Join point: concatenate the stashed bypass onto the current map.
    Concat,
    /// The dequantizing 1×1 head (`i8×i8→i32` accumulate, f32 exit).
    Head,
}

/// The compiled step list of the INT8 engine: the same topology
/// [`Graph::from_skynet`] encodes for the float path, at bundle
/// granularity. Built once in `QuantizedSkyNet::build` and walked on
/// every integer forward — the fuse/don't-fuse decision is made at
/// plan time, not per call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QExecPlan {
    ops: Vec<QOp>,
}

impl QExecPlan {
    /// Builds the unlowered (all-unfused) plan for a variant, mirroring
    /// the integer engine's op order exactly: quantize, bundles 1–3
    /// each followed by a pool (with the reorg fork after Bundle 3's
    /// body, before pool 3), bundles 4–5, the concat + Bundle 6 join
    /// for B/C, then the head.
    pub fn for_variant(variant: Variant) -> QExecPlan {
        let has_b6 = variant != Variant::A;
        let mut ops = vec![QOp::Quantize];
        for i in 0..3 {
            ops.push(QOp::Bundle {
                bundle: i,
                fused: false,
            });
            if i == 2 && has_b6 {
                ops.push(QOp::ReorgFork);
            }
            ops.push(QOp::Pool { idx: i });
        }
        for b in 3..5 {
            ops.push(QOp::Bundle {
                bundle: b,
                fused: false,
            });
        }
        if has_b6 {
            ops.push(QOp::Concat);
            ops.push(QOp::Bundle {
                bundle: 5,
                fused: false,
            });
        }
        ops.push(QOp::Head);
        QExecPlan { ops }
    }

    /// The lowering pass: marks every bundle the predicate accepts as
    /// fused. The engine passes "does the PW stage requantize back to
    /// `i8`?" — a head-style stage with no output scale exits to f32
    /// and can never feed the fused epilogue.
    pub fn lower_fused(&mut self, fusable: impl Fn(usize) -> bool) {
        for op in &mut self.ops {
            if let QOp::Bundle { bundle, fused } = op {
                *fused = fusable(*bundle);
            }
        }
    }

    /// The step list (read-only; tests assert the lowering against it).
    pub fn ops(&self) -> &[QOp] {
        &self.ops
    }

    /// Number of bundles lowered to the fused kernel.
    pub fn fused_bundles(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, QOp::Bundle { fused: true, .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skynet::SkyNetConfig;
    use skynet_nn::Act;
    use skynet_tensor::rng::SkyRng;

    fn net(variant: Variant) -> SkyNet {
        let mut rng = SkyRng::new(3);
        let cfg = SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(16);
        SkyNet::new(cfg, &mut rng)
    }

    #[test]
    fn unfused_graph_shape() {
        let g = Graph::from_skynet(&net(Variant::C));
        // 6 bundles × 6 ops + 3 pools + fork + join + head = 42.
        assert_eq!(g.ops().len(), 42);
        assert_eq!(g.ops()[0], Op::DwConv3 { bundle: 0 });
        // The fork sits after Bundle 3's chain, before pool 3.
        let fork = g.ops().iter().position(|o| *o == Op::ReorgFork).unwrap();
        assert_eq!(g.ops()[fork + 1], Op::Pool { idx: 2 });
        assert_eq!(
            g.ops()[fork - 1],
            Op::Act {
                bundle: 2,
                stage: 1
            }
        );
        // Variant A: no fork/join/bundle 6.
        let ga = Graph::from_skynet(&net(Variant::A));
        assert_eq!(ga.ops().len(), 5 * 6 + 3 + 1);
        assert!(!ga.ops().contains(&Op::ReorgFork));
    }

    #[test]
    fn passes_rewrite_in_order() {
        let mut g = Graph::from_skynet(&net(Variant::C));
        g.fold_bn();
        assert!(g.ops().contains(&Op::DwConvBn { bundle: 0 }));
        assert!(!g.ops().iter().any(|o| matches!(o, Op::Bn { .. })));
        // Activations survive pass 1 untouched.
        assert!(g.ops().contains(&Op::Act {
            bundle: 0,
            stage: 0
        }));
        g.fuse_act();
        assert!(g.ops().contains(&Op::DwConvBnAct { bundle: 0 }));
        assert!(!g.ops().iter().any(|o| matches!(o, Op::Act { .. })));
        g.fuse_bundles();
        // 6 fused bundles + 3 pools + fork + join + head = 12 ops.
        assert_eq!(g.ops().len(), 12);
        for b in 0..6 {
            assert!(g.ops().contains(&Op::FusedBundle { bundle: b }));
        }
    }

    #[test]
    fn plan_builds_for_all_variants() {
        for v in [Variant::A, Variant::B, Variant::C] {
            let plan = ExecPlan::build(&net(v)).unwrap();
            let fused = plan
                .graph()
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::FusedBundle { .. }))
                .count();
            assert_eq!(fused, if v == Variant::A { 5 } else { 6 });
        }
    }

    #[test]
    fn qplan_mirrors_engine_op_order() {
        let p = QExecPlan::for_variant(Variant::C);
        // quantize + 6 bundles + 3 pools + fork + join + head = 13.
        assert_eq!(p.ops().len(), 13);
        assert_eq!(p.ops()[0], QOp::Quantize);
        assert_eq!(*p.ops().last().unwrap(), QOp::Head);
        // The fork sits after Bundle 3, before pool 3 — same topology
        // as the float graph.
        let fork = p.ops().iter().position(|o| *o == QOp::ReorgFork).unwrap();
        assert_eq!(
            p.ops()[fork - 1],
            QOp::Bundle {
                bundle: 2,
                fused: false
            }
        );
        assert_eq!(p.ops()[fork + 1], QOp::Pool { idx: 2 });
        let join = p.ops().iter().position(|o| *o == QOp::Concat).unwrap();
        assert_eq!(
            p.ops()[join + 1],
            QOp::Bundle {
                bundle: 5,
                fused: false
            }
        );
        // Variant A: 1 + 5 + 3 + 1 = 10 steps, no fork/join.
        let pa = QExecPlan::for_variant(Variant::A);
        assert_eq!(pa.ops().len(), 10);
        assert!(!pa.ops().contains(&QOp::ReorgFork));
        assert!(!pa.ops().contains(&QOp::Concat));
    }

    #[test]
    fn qplan_lowering_marks_exactly_the_accepted_bundles() {
        let mut p = QExecPlan::for_variant(Variant::C);
        assert_eq!(p.fused_bundles(), 0);
        p.lower_fused(|b| b != 3);
        assert_eq!(p.fused_bundles(), 5);
        for op in p.ops() {
            if let QOp::Bundle { bundle, fused } = op {
                assert_eq!(*fused, *bundle != 3, "bundle {bundle}");
            }
        }
        p.lower_fused(|_| true);
        assert_eq!(p.fused_bundles(), 6);
    }
}
