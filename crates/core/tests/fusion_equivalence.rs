//! Net-level fusion equivalence: a SkyNet eval forward through the
//! fused execution plan (`SKYNET_FUSION=on`) must be **bit-identical**
//! to the unfused layer-by-layer path — per variant, per `SKYNET_SIMD`
//! backend, pooled and forced-serial (CI re-runs the suite under
//! `SKYNET_THREADS=1` and the default pool) — and the plan must track
//! every weight/statistic mutation (training steps, optimizer visits)
//! without going stale. Training itself never runs fused, so the
//! trained-weight hash is identical with the toggle on or off.
//!
//! `fusion::force` and `simd::force` are process-global, so tests
//! serialize on a mutex (same discipline as `simd_equivalence`).

use skynet_core::checkpoint::weight_hash;
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{TrainConfig, Trainer};
use skynet_core::{BBox, Sample};
use skynet_nn::{Act, Layer, LrSchedule, Mode, Sgd};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{crc32, fusion, parallel, telemetry, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

/// Runs `f` with the fusion toggle pinned to `on`, restoring after.
fn with_fusion<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = fusion::enabled();
    fusion::force(on);
    let out = f();
    fusion::force(prev);
    out
}

fn net(variant: Variant, seed: u64) -> SkyNet {
    let mut rng = SkyRng::new(seed);
    SkyNet::new(
        SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(16),
        &mut rng,
    )
}

fn random_input(seed: u64, n: usize) -> Tensor {
    let mut rng = SkyRng::new(seed);
    let shape = Shape::new(n, 3, 16, 32);
    Tensor::from_vec(
        shape,
        (0..shape.numel()).map(|_| rng.range(-1.0, 1.0)).collect(),
    )
    .unwrap()
}

/// CRC-32 over the exact bit patterns of a forward output — the
/// workspace's standard witness for "these two forwards are identical".
fn crc(t: &Tensor) -> u32 {
    let mut h = crc32::Crc32::new();
    for v in t.as_slice() {
        h.update(&v.to_bits().to_le_bytes());
    }
    h.finalize()
}

/// Fused vs unfused eval forward, bitwise, for one net and input, on
/// every available backend, pooled and serial.
fn assert_fused_matches_unfused(variant: Variant, seed: u64, n: usize) {
    let x = random_input(seed ^ 0x5eed, n);
    let unfused = with_fusion(false, || {
        net(variant, seed).forward(&x, Mode::Eval).unwrap()
    });
    let anchor = crc(&unfused);
    for be in simd::available_backends() {
        let label = be.name();
        let unf = with_backend(be, || {
            with_fusion(false, || {
                net(variant, seed).forward(&x, Mode::Eval).unwrap()
            })
        });
        assert_eq!(
            anchor,
            crc(&unf),
            "{variant:?}/{label}: unfused cross-backend"
        );
        let fus = with_backend(be, || {
            with_fusion(true, || net(variant, seed).forward(&x, Mode::Eval).unwrap())
        });
        assert_eq!(anchor, crc(&fus), "{variant:?}/{label}: fused (pooled)");
        let fus_serial = with_backend(be, || {
            with_fusion(true, || {
                parallel::serial(|| net(variant, seed).forward(&x, Mode::Eval).unwrap())
            })
        });
        assert_eq!(
            anchor,
            crc(&fus_serial),
            "{variant:?}/{label}: fused (serial)"
        );
    }
}

#[test]
fn fused_forward_matches_unfused_all_variants() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for variant in [Variant::A, Variant::B, Variant::C] {
        assert_fused_matches_unfused(variant, 11, 1);
    }
    // Batched input exercises the (item × band) task decomposition.
    assert_fused_matches_unfused(Variant::C, 12, 3);
}

/// Guards the suite against vacuity: with the toggle on, the eval
/// forward must actually run through the plan (all bundles fused, no
/// fallback), witnessed by the `fusion.*` counters.
#[test]
fn fused_forward_actually_executes_the_plan() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(true).trace(false).apply();
    telemetry::reset_metrics();
    let x = random_input(41, 1);
    let _ = with_fusion(true, || {
        net(Variant::C, 42).forward(&x, Mode::Eval).unwrap()
    });
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("fusion.plan_builds"), Some(1));
    // Variant C fuses all six bundles (five backbone + the post-concat).
    assert_eq!(snap.counter("fusion.bundles_executed"), Some(6));
    assert_eq!(snap.counter("fusion.fallback"), None);
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

/// A training step mutates BN running statistics without going through
/// the optimizer; the next fused eval must see the new statistics, not a
/// stale plan built before the step.
#[test]
fn plan_tracks_bn_stats_across_training_steps() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut m = net(Variant::C, 21);
    let x = random_input(22, 2);
    // Build a plan first so staleness would be observable.
    let _ = with_fusion(true, || m.forward(&x, Mode::Eval).unwrap());
    let _ = m.forward(&x, Mode::Train).unwrap();
    let fused = with_fusion(true, || m.forward(&x, Mode::Eval).unwrap());
    let unfused = with_fusion(false, || m.forward(&x, Mode::Eval).unwrap());
    assert_eq!(
        crc(&fused),
        crc(&unfused),
        "plan went stale after a train step"
    );
}

/// `visit_params` hands out mutable parameter references (optimizer
/// steps, checkpoint restores); any visit must invalidate the plan.
#[test]
fn plan_tracks_param_mutation_via_visit() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut m = net(Variant::A, 31);
    let x = random_input(32, 1);
    let _ = with_fusion(true, || m.forward(&x, Mode::Eval).unwrap());
    m.visit_params(&mut |p| {
        for v in p.value.as_mut_slice() {
            *v += 0.0625;
        }
    });
    let fused = with_fusion(true, || m.forward(&x, Mode::Eval).unwrap());
    let unfused = with_fusion(false, || m.forward(&x, Mode::Eval).unwrap());
    assert_eq!(
        crc(&fused),
        crc(&unfused),
        "plan went stale after visit_params"
    );
}

/// With the plan active, each bundle's work is traced under a single
/// `fused.bundleN` span that **replaces** the unfused `skynet.bundleN`
/// span — the two names never coexist in one forward, so per-op
/// aggregation cannot double-count bundle time.
#[test]
fn fused_spans_replace_bundle_spans() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::Builder::new().metrics(false).trace(true).apply();
    telemetry::drain_spans();
    let x = random_input(51, 1);
    let _ = with_fusion(true, || {
        net(Variant::C, 52).forward(&x, Mode::Eval).unwrap()
    });
    let spans = telemetry::drain_spans();
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    for b in 1..=6 {
        assert_eq!(count(&format!("fused.bundle{b}")), 1, "fused.bundle{b}");
        assert_eq!(count(&format!("skynet.bundle{b}")), 0, "skynet.bundle{b}");
    }
    assert_eq!(count("skynet.forward"), 1);
    // The whole-forward span still encloses every fused bundle, so the
    // aggregate view keeps its single root.
    let root = spans.iter().find(|s| s.name == "skynet.forward").unwrap();
    for s in spans.iter().filter(|s| s.name.starts_with("fused.bundle")) {
        assert!(root.start_ns <= s.start_ns && s.end_ns() <= root.end_ns());
    }
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = SkyRng::new(seed);
    (0..n)
        .map(|_| {
            let (h, w) = (16usize, 32usize);
            let cx = rng.range(0.2, 0.8);
            let cy = rng.range(0.3, 0.7);
            let mut img = Tensor::zeros(Shape::new(1, 3, h, w));
            for y in 0..h {
                for x in 0..w {
                    let fx = (x as f32 + 0.5) / w as f32;
                    let fy = (y as f32 + 0.5) / h as f32;
                    if (fx - cx).abs() < 0.1 && (fy - cy).abs() < 0.175 {
                        for c in 0..3 {
                            *img.at_mut(0, c, y, x) = 1.0;
                        }
                    }
                }
            }
            Sample::new(img, BBox::new(cx, cy, 0.2, 0.35), 0)
        })
        .collect()
}

fn train_hash(fuse: bool) -> u64 {
    with_fusion(fuse, || {
        let mut rng = SkyRng::new(77);
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
        let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
        let mut opt = Sgd::new(LrSchedule::Constant(2e-3), 0.9, 1e-4);
        let samples = toy_samples(8, 3);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 4,
            scales: Vec::new(),
            seed: 5,
        });
        trainer.train(&mut det, &samples, &mut opt).expect("train");
        // An eval forward mid-stream must not perturb subsequent weights.
        let _ = det
            .backbone_mut()
            .forward(&random_input(9, 1), Mode::Eval)
            .unwrap();
        weight_hash(det.backbone_mut())
    })
}

/// Training never executes fused (plans are Eval-only), so the trained
/// weights are bit-identical whichever way the toggle points.
#[test]
fn trained_weight_hash_identical_fusion_on_off() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(train_hash(false), train_hash(true));
}
