//! Recovery-path coverage for the training checkpoint format and
//! `Trainer::train_resumable`: property tests over random checkpoint
//! contents (roundtrip, truncation, bit-flips) and end-to-end
//! kill-and-resume equivalence.

use proptest::prelude::*;
use skynet_core::checkpoint::{self, ResumeError, TrainCheckpoint};
use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{TrainConfig, Trainer};
use skynet_core::{BBox, Sample};
use skynet_nn::{Act, LrSchedule, Sgd, SgdState};
use skynet_tensor::rng::{RngState, SkyRng};
use skynet_tensor::{Shape, Tensor};

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "skynet-resume-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    p
}

/// Builds a checkpoint with shapes and values derived from a few sampled
/// scalars (the stand-in proptest crate samples flat values, so the
/// structure is expanded here deterministically).
fn build_ckpt(n_params: usize, max_len: usize, seed: u64) -> TrainCheckpoint {
    let mut rng = SkyRng::new(seed);
    let lens: Vec<usize> = (0..n_params).map(|_| 1 + rng.below(max_len)).collect();
    let params: Vec<Vec<f32>> = lens
        .iter()
        .map(|&l| (0..l).map(|_| rng.range(-4.0, 4.0)).collect())
        .collect();
    let velocity: Vec<Vec<f32>> = lens
        .iter()
        .map(|&l| (0..l).map(|_| rng.range(-1.0, 1.0)).collect())
        .collect();
    let n_order = 1 + rng.below(64);
    let mut order: Vec<u32> = (0..n_order as u32).collect();
    let mut order_usize: Vec<usize> = order.iter().map(|&i| i as usize).collect();
    rng.shuffle(&mut order_usize);
    order = order_usize.iter().map(|&i| i as u32).collect();
    TrainCheckpoint {
        epochs_done: rng.below(1000) as u32,
        sgd: SgdState {
            step: rng.below(100_000),
            velocity,
        },
        rng: RngState {
            s: [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ],
            gauss_spare: rng.chance(0.5).then(|| rng.range(-2.0, 2.0)),
        },
        order,
        params,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_random_shapes(n in 1usize..12, max_len in 1usize..80, seed in 0u64..u64::MAX) {
        let ck = build_ckpt(n, max_len, seed);
        let path = tmp("prop-roundtrip");
        checkpoint::save(&ck, &path).expect("save");
        let loaded = checkpoint::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, ck);
    }

    #[test]
    fn truncated_files_are_rejected(n in 1usize..8, max_len in 1usize..40, seed in 0u64..u64::MAX, cut in 0.0f64..1.0) {
        let ck = build_ckpt(n, max_len, seed);
        let path = tmp("prop-trunc");
        checkpoint::save(&ck, &path).expect("save");
        let bytes = std::fs::read(&path).unwrap();
        // Keep at least one byte off the end, down to an empty file.
        let keep = ((bytes.len() - 1) as f64 * cut) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let res = checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(res.is_err(), "truncation to {} of {} bytes accepted", keep, bytes.len());
    }

    #[test]
    fn bit_flips_are_rejected(n in 1usize..8, max_len in 1usize..40, seed in 0u64..u64::MAX, pos in 0.0f64..1.0, bit in 0u32..8) {
        let ck = build_ckpt(n, max_len, seed);
        let path = tmp("prop-flip");
        checkpoint::save(&ck, &path).expect("save");
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        let res = checkpoint::load(&path);
        std::fs::remove_file(&path).ok();
        // Any single-bit corruption must surface as an error — magic/version
        // flips as BadHeader, everything else via the CRC.
        prop_assert!(res.is_err(), "bit flip at byte {} bit {} accepted", idx, bit);
    }
}

// ---------------------------------------------------------------------------
// End-to-end resume equivalence
// ---------------------------------------------------------------------------

/// A dataset the width/16 detector trains on quickly.
fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = SkyRng::new(seed);
    (0..n)
        .map(|_| {
            let (h, w) = (16usize, 32usize);
            let cx = rng.range(0.2, 0.8);
            let cy = rng.range(0.3, 0.7);
            let mut img = Tensor::zeros(Shape::new(1, 3, h, w));
            for y in 0..h {
                for x in 0..w {
                    let fx = (x as f32 + 0.5) / w as f32;
                    let fy = (y as f32 + 0.5) / h as f32;
                    if (fx - cx).abs() < 0.1 && (fy - cy).abs() < 0.175 {
                        for c in 0..3 {
                            *img.at_mut(0, c, y, x) = 1.0;
                        }
                    }
                }
            }
            Sample::new(img, BBox::new(cx, cy, 0.2, 0.35), 0)
        })
        .collect()
}

fn fresh_detector() -> Detector {
    let mut rng = SkyRng::new(77);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
    Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc())
}

fn trainer(epochs: usize) -> Trainer {
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 4,
        scales: vec![(16, 32), (24, 48)],
        seed: 5,
    })
}

fn opt() -> Sgd {
    Sgd::new(LrSchedule::Constant(2e-3), 0.9, 1e-4)
}

#[test]
fn resumed_run_is_bit_identical_to_uninterrupted() {
    let samples = toy_samples(12, 3);

    // Uninterrupted reference: 4 epochs straight through.
    let path_a = tmp("uninterrupted");
    std::fs::remove_file(&path_a).ok();
    let mut det_a = fresh_detector();
    let mut opt_a = opt();
    let stats_a = trainer(4)
        .train_resumable(&mut det_a, &samples, &mut opt_a, &path_a)
        .expect("uninterrupted run");
    assert_eq!(stats_a.len(), 4);

    // "Killed" run: first invocation stops after 2 epochs (as if the
    // process died right after the epoch-2 checkpoint), second invocation
    // resumes from the checkpoint with a fresh detector/optimizer/trainer.
    let path_b = tmp("resumed");
    std::fs::remove_file(&path_b).ok();
    let mut det_b1 = fresh_detector();
    let mut opt_b1 = opt();
    let stats_b1 = trainer(2)
        .train_resumable(&mut det_b1, &samples, &mut opt_b1, &path_b)
        .expect("first half");
    assert_eq!(stats_b1.len(), 2);
    drop(det_b1); // the dead process's memory is gone

    let mut det_b2 = fresh_detector();
    let mut opt_b2 = opt();
    let stats_b2 = trainer(4)
        .train_resumable(&mut det_b2, &samples, &mut opt_b2, &path_b)
        .expect("resumed half");
    assert_eq!(stats_b2.len(), 2, "resume must only run the missing epochs");

    assert_eq!(
        checkpoint::weight_hash(det_a.backbone_mut()),
        checkpoint::weight_hash(det_b2.backbone_mut()),
        "resumed weights diverged from the uninterrupted run"
    );
    // Per-epoch statistics line up too.
    for (a, b) in stats_a[2..].iter().zip(&stats_b2) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
    }
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn fully_trained_checkpoint_resumes_as_noop() {
    let samples = toy_samples(8, 4);
    let path = tmp("noop");
    std::fs::remove_file(&path).ok();
    let mut det = fresh_detector();
    let mut o = opt();
    trainer(2)
        .train_resumable(&mut det, &samples, &mut o, &path)
        .expect("train");
    let before = checkpoint::weight_hash(det.backbone_mut());
    let again = trainer(2)
        .train_resumable(&mut det, &samples, &mut o, &path)
        .expect("noop resume");
    assert!(again.is_empty());
    assert_eq!(before, checkpoint::weight_hash(det.backbone_mut()));
    std::fs::remove_file(&path).ok();
}

#[test]
fn nonfinite_loss_rolls_back_to_last_checkpoint() {
    let samples = toy_samples(8, 5);
    let path = tmp("nanguard");
    std::fs::remove_file(&path).ok();
    let mut det = fresh_detector();
    let initial_hash = checkpoint::weight_hash(det.backbone_mut());
    // An absurd learning rate blows the weights up to inf within an epoch.
    let mut o = Sgd::new(LrSchedule::Constant(1e30), 0.9, 0.0);
    let err = trainer(3)
        .train_resumable(&mut det, &samples, &mut o, &path)
        .expect_err("divergence must trip the guard");
    match err {
        ResumeError::NonFiniteLoss { loss, .. } => assert!(!loss.is_finite()),
        other => panic!("expected NonFiniteLoss, got {other}"),
    }
    assert_eq!(
        initial_hash,
        checkpoint::weight_hash(det.backbone_mut()),
        "weights must be rolled back to the pre-training checkpoint"
    );
    assert_eq!(o.steps_taken(), 0, "optimizer must be rolled back too");
    std::fs::remove_file(&path).ok();
}

#[test]
fn checkpoint_from_wrong_architecture_is_rejected() {
    let samples = toy_samples(6, 6);
    let path = tmp("wrongarch");
    std::fs::remove_file(&path).ok();
    let mut det = fresh_detector();
    let mut o = opt();
    trainer(1)
        .train_resumable(&mut det, &samples, &mut o, &path)
        .expect("train");
    // A structurally different backbone must refuse the checkpoint.
    let mut rng = SkyRng::new(1);
    let cfg = SkyNetConfig::new(Variant::A, Act::Relu6).with_width_divisor(8);
    let mut other = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
    let mut o2 = opt();
    let err = trainer(2)
        .train_resumable(&mut other, &samples, &mut o2, &path)
        .expect_err("architecture mismatch");
    assert!(matches!(err, ResumeError::ModelMismatch(_)), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_checkpoint_is_rejected_on_resume() {
    let samples = toy_samples(6, 7);
    let path = tmp("corruptresume");
    std::fs::remove_file(&path).ok();
    let mut det = fresh_detector();
    let mut o = opt();
    trainer(1)
        .train_resumable(&mut det, &samples, &mut o, &path)
        .expect("train");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let mut det2 = fresh_detector();
    let mut o2 = opt();
    let err = trainer(2)
        .train_resumable(&mut det2, &samples, &mut o2, &path)
        .expect_err("corrupt checkpoint");
    assert!(matches!(err, ResumeError::Corrupt(_)), "{err}");
    std::fs::remove_file(&path).ok();
}
