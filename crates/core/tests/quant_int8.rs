//! End-to-end INT8 engine determinism: the full quantized forward pass
//! (quantize → 6 bundles of integer DW/PW stages → pool/reorg/concat →
//! dequantizing head) must produce **CRC-identical** f32 prediction
//! maps on every available SIMD backend, on the worker pool and under
//! forced-serial execution — the serving determinism contract extended
//! to the integer path. Also pins the detector-level dispatch:
//! `predict` routes through an attached engine, and a blueprint
//! publishing one spawns replicas that agree bit-for-bit.

use skynet_core::head::Anchors;
use skynet_core::quant::{CalibMethod, Calibrator, QuantizedSkyNet};
use skynet_core::replica::DetectorBlueprint;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_nn::{Act, Layer};
use skynet_tensor::crc32::crc32;
use skynet_tensor::rng::SkyRng;
use skynet_tensor::simd::{self, Backend};
use skynet_tensor::{fusion, parallel, telemetry, Shape, Tensor};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn with_backend<T>(be: Backend, f: impl FnOnce() -> T) -> T {
    let prev = simd::active();
    simd::force(be);
    let out = f();
    simd::force(prev);
    out
}

fn with_fusion<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = fusion::enabled();
    fusion::force(on);
    let out = f();
    fusion::force(prev);
    out
}

fn random_images(n: usize, h: usize, w: usize, seed: u64) -> Tensor {
    let mut rng = SkyRng::new(seed);
    let shape = Shape::new(n, 3, h, w);
    Tensor::from_vec(
        shape,
        (0..shape.numel()).map(|_| rng.normal(0.5, 0.25)).collect(),
    )
    .unwrap()
}

fn calibrated_engine(variant: Variant, seed: u64) -> (SkyNet, QuantizedSkyNet) {
    let cfg = SkyNetConfig::new(variant, Act::Relu6).with_width_divisor(16);
    let mut net = SkyNet::new(cfg, &mut SkyRng::new(seed));
    let mut cal = Calibrator::new(variant, CalibMethod::MaxAbs);
    for s in 0..3 {
        cal.observe(&mut net, &random_images(2, 16, 32, 500 + s))
            .unwrap();
    }
    let plan = cal.finish().unwrap();
    let engine = QuantizedSkyNet::build(&net, &plan).unwrap();
    (net, engine)
}

fn output_crc(t: &Tensor) -> u32 {
    let bytes: Vec<u8> = t
        .as_slice()
        .iter()
        .flat_map(|v| v.to_bits().to_le_bytes())
        .collect();
    crc32(&bytes)
}

#[test]
fn int8_forward_is_crc_identical_across_backends_and_thread_modes() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for variant in [Variant::A, Variant::C] {
        let (_, engine) = calibrated_engine(variant, 11);
        let x = random_images(2, 16, 32, 21);
        let run = || output_crc(&engine.forward(&x).unwrap());
        let oracle = with_backend(Backend::Scalar, run);
        for be in simd::available_backends() {
            let pooled = with_backend(be, run);
            let serial = with_backend(be, || parallel::serial(run));
            assert_eq!(
                oracle,
                pooled,
                "{variant}: {} pooled diverged from scalar oracle",
                be.name()
            );
            assert_eq!(
                oracle,
                serial,
                "{variant}: {} serial diverged from scalar oracle",
                be.name()
            );
        }
    }
}

/// The tentpole equivalence: the fused INT8 engine (DW tile → requant →
/// PW → requant, all inside one scratch-resident band) is CRC-identical
/// to the unfused stage-pair walk — per variant, per backend, pooled
/// and forced-serial. Wrapping-i32 accumulation is grouping-independent
/// and the requant epilogue is per-element, so this holds structurally;
/// the test is the witness.
#[test]
fn fused_engine_is_crc_identical_to_unfused_across_backends() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for variant in [Variant::A, Variant::C] {
        let (_, engine) = calibrated_engine(variant, 17);
        let x = random_images(2, 16, 32, 27);
        let run = || output_crc(&engine.forward(&x).unwrap());
        let oracle = with_backend(Backend::Scalar, || with_fusion(false, run));
        for be in simd::available_backends() {
            for fused in [false, true] {
                let pooled = with_backend(be, || with_fusion(fused, run));
                let serial = with_backend(be, || with_fusion(fused, || parallel::serial(run)));
                assert_eq!(
                    oracle,
                    pooled,
                    "{variant}: {} fused={fused} pooled diverged",
                    be.name()
                );
                assert_eq!(
                    oracle,
                    serial,
                    "{variant}: {} fused={fused} serial diverged",
                    be.name()
                );
            }
        }
    }
}

/// Guards the fused-engine suite against vacuity: with the toggle on,
/// every bundle must actually execute through the fused kernel (no
/// fallback); with it off, every fused-lowered bundle must count a
/// fallback. The per-bundle `quant.bundle<N>.{dw,pw}.saturated`
/// counters must read identically either way — saturation totals are
/// commutative `u64` sums, so the fused band schedule cannot change
/// them.
#[test]
fn fused_engine_counters_prove_the_fused_path_ran() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (_, engine) = calibrated_engine(Variant::C, 19);
    assert_eq!(engine.plan().fused_bundles(), 6);
    let x = random_images(1, 16, 32, 29);
    let sat_counters = |snap: &telemetry::Snapshot| -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for b in 1..=6 {
            for stage in ["dw", "pw"] {
                let name = format!("quant.bundle{b}.{stage}.saturated");
                out.push((name.clone(), snap.counter(&name).unwrap_or(0)));
            }
        }
        out
    };

    telemetry::Builder::new().metrics(true).trace(false).apply();
    telemetry::reset_metrics();
    let _ = with_fusion(true, || engine.forward(&x).unwrap());
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("quant.fused.bundles_executed"), Some(6));
    assert_eq!(snap.counter("quant.fused.fallback").unwrap_or(0), 0);
    let fused_sats = sat_counters(&snap);

    telemetry::reset_metrics();
    let _ = with_fusion(false, || engine.forward(&x).unwrap());
    let snap = telemetry::snapshot();
    assert_eq!(snap.counter("quant.fused.bundles_executed").unwrap_or(0), 0);
    assert_eq!(snap.counter("quant.fused.fallback"), Some(6));
    assert_eq!(
        fused_sats,
        sat_counters(&snap),
        "per-bundle saturation totals depend on the schedule"
    );
    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}

#[test]
fn detector_predict_dispatches_to_attached_engine() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (mut net, engine) = calibrated_engine(Variant::C, 13);
    let x = random_images(1, 16, 32, 23);

    // An undispatched detector without an engine rejects predict_int8.
    let cfg = net.config().clone();
    let mut blobs = Vec::new();
    net.visit_params(&mut |p| blobs.push(p.value.as_slice().to_vec()));
    let bp = DetectorBlueprint::from_weights(cfg, Anchors::dac_sdc(), blobs);
    let mut float_det = bp.spawn().unwrap();
    assert!(float_det.int8_engine().is_none());
    assert!(float_det.predict_int8(&x).is_err());

    // The int8-published blueprint spawns replicas that dispatch
    // predict through the engine and agree bit-for-bit.
    let bp_q = bp.with_int8(std::sync::Arc::new(engine));
    let mut a = bp_q.spawn().unwrap();
    let mut b = bp_q.spawn().unwrap();
    assert!(a.int8_engine().is_some());
    let da = a.predict(&x).unwrap();
    let db = b.predict_int8(&x).unwrap();
    assert_eq!(da.len(), db.len());
    for (p, q) in da.iter().zip(&db) {
        assert_eq!(p.confidence.to_bits(), q.confidence.to_bits());
        assert_eq!(p.bbox.cx.to_bits(), q.bbox.cx.to_bits());
        assert_eq!(p.bbox.cy.to_bits(), q.bbox.cy.to_bits());
        assert_eq!(p.bbox.w.to_bits(), q.bbox.w.to_bits());
        assert_eq!(p.bbox.h.to_bits(), q.bbox.h.to_bits());
    }
}
