//! Property coverage for the IoU metric: over arbitrary (including
//! degenerate and inverted) boxes, `iou` must never produce NaN, must
//! stay inside `[0, 1]`, and must be symmetric — the serving metrics and
//! accuracy sweeps fold IoU values into running means, so a single NaN
//! would silently poison an entire report.

use proptest::prelude::*;
use skynet_core::BBox;

/// Expands a handful of sampled scalars into a box, covering the whole
/// constructor surface: direct center+extent (extents may be negative)
/// and `from_corners` with corners in either order.
fn build_box(seed: u64, from_corners: bool) -> BBox {
    let mut rng = skynet_tensor::rng::SkyRng::new(seed);
    let a = rng.range(-0.5, 1.5);
    let b = rng.range(-0.5, 1.5);
    let c = rng.range(-1.0, 1.0); // may be negative: degenerate extents
    let d = rng.range(-1.0, 1.0);
    if from_corners {
        // Corners deliberately unordered: x2 < x1 half the time.
        BBox::from_corners(a, b, a + c, b + d)
    } else {
        BBox::new(a, b, c, d)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn iou_is_nan_free_bounded_and_symmetric(
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
        corners_a in 0usize..2,
        corners_b in 0usize..2,
    ) {
        let a = build_box(seed_a, corners_a == 1);
        let b = build_box(seed_b, corners_b == 1);
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!(!ab.is_nan(), "iou({a:?}, {b:?}) is NaN");
        prop_assert!((0.0..=1.0).contains(&ab), "iou {ab} out of [0,1]");
        prop_assert!((ab - ba).abs() < 1e-6, "asymmetric: {ab} vs {ba}");
    }

    #[test]
    fn self_iou_is_one_for_proper_boxes_and_zero_for_degenerate(
        seed in 0u64..u64::MAX,
    ) {
        let b = build_box(seed, false);
        let v = b.iou(&b);
        prop_assert!(!v.is_nan());
        if b.w > 0.0 && b.h > 0.0 {
            prop_assert!((v - 1.0).abs() < 1e-5, "self-iou {v} for {b:?}");
        } else {
            prop_assert!(v == 0.0, "degenerate self-iou {v} for {b:?}");
        }
    }
}
