//! Training-loop telemetry determinism: for a fixed-seed toy run the
//! `train.*` metric family (batch/epoch counters, loss / learning-rate /
//! gradient-norm gauges) must be bit-identical whether the tensor
//! kernels execute on the worker pool or fully inline, because the
//! computation itself is bit-deterministic. Scheduling metrics
//! (`pool.*`) are excluded — see OBSERVABILITY.md.

use skynet_core::detector::Detector;
use skynet_core::head::Anchors;
use skynet_core::skynet::{SkyNet, SkyNetConfig, Variant};
use skynet_core::trainer::{TrainConfig, Trainer};
use skynet_core::{BBox, Sample};
use skynet_nn::{Act, LrSchedule, Sgd};
use skynet_tensor::rng::SkyRng;
use skynet_tensor::{parallel, telemetry, Shape, Tensor};

fn toy_samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = SkyRng::new(seed);
    (0..n)
        .map(|_| {
            let (h, w) = (16usize, 32usize);
            let cx = rng.range(0.2, 0.8);
            let cy = rng.range(0.3, 0.7);
            let mut img = Tensor::zeros(Shape::new(1, 3, h, w));
            for y in 0..h {
                for x in 0..w {
                    let fx = (x as f32 + 0.5) / w as f32;
                    let fy = (y as f32 + 0.5) / h as f32;
                    if (fx - cx).abs() < 0.1 && (fy - cy).abs() < 0.175 {
                        for c in 0..3 {
                            *img.at_mut(0, c, y, x) = 1.0;
                        }
                    }
                }
            }
            Sample::new(img, BBox::new(cx, cy, 0.2, 0.35), 0)
        })
        .collect()
}

fn run_training() {
    let mut rng = SkyRng::new(77);
    let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(16);
    let mut det = Detector::new(Box::new(SkyNet::new(cfg, &mut rng)), Anchors::dac_sdc());
    let mut opt = Sgd::new(LrSchedule::Constant(2e-3), 0.9, 1e-4);
    let samples = toy_samples(8, 3);
    let mut trainer = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        scales: Vec::new(),
        seed: 5,
    });
    trainer
        .train(&mut det, &samples, &mut opt)
        .expect("toy training run");
}

#[test]
fn train_metrics_identical_serial_vs_pooled() {
    telemetry::Builder::new().metrics(true).trace(false).apply();

    telemetry::reset_metrics();
    run_training(); // default pool
    let pooled = telemetry::snapshot().retain(|n| n.starts_with("train."));

    telemetry::reset_metrics();
    parallel::serial(run_training); // forced inline (SKYNET_THREADS=1)
    let serial = telemetry::snapshot().retain(|n| n.starts_with("train."));

    assert_eq!(pooled.counter("train.epochs"), Some(2));
    assert_eq!(pooled.counter("train.batches"), Some(4));
    let grad_norm = pooled.gauge("train.grad_norm").expect("grad-norm gauge");
    assert!(grad_norm.is_finite() && grad_norm > 0.0);
    assert_eq!(
        pooled.gauge("train.lr"),
        Some(2e-3f32 as f64),
        "lr gauge mirrors the schedule"
    );

    // Bit-exact across thread counts: gauges compare as f64 bits via the
    // snapshot's PartialEq on identical values.
    assert_eq!(pooled, serial, "train.* telemetry diverged across pools");

    telemetry::Builder::new()
        .metrics(false)
        .trace(false)
        .apply();
}
