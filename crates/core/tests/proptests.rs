//! Property-based tests of the detection-layer invariants: IoU algebra,
//! head decode/loss consistency, and descriptor arithmetic.

use proptest::prelude::*;
use skynet_core::bundle::BundleSpec;
use skynet_core::desc::NetDesc;
use skynet_core::head::{decode_best, Anchors, DetectionLoss};
use skynet_core::skynet::{SkyNetConfig, Variant};
use skynet_core::BBox;
use skynet_nn::Act;
use skynet_tensor::{Shape, Tensor};

fn bbox_strategy() -> impl Strategy<Value = BBox> {
    (0.05f32..0.95, 0.05f32..0.95, 0.01f32..0.5, 0.01f32..0.5)
        .prop_map(|(cx, cy, w, h)| BBox::new(cx, cy, w, h).clamp_to_frame())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IoU is symmetric, bounded, and 1 only for self-overlap.
    #[test]
    fn iou_axioms(a in bbox_strategy(), b in bbox_strategy()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
        if a.area() > 1e-6 {
            prop_assert!((a.iou(&a) - 1.0).abs() < 1e-5);
        }
        // Intersection bounded by both areas.
        prop_assert!(a.intersection(&b) <= a.area() + 1e-6);
        prop_assert!(a.intersection(&b) <= b.area() + 1e-6);
    }

    /// Translating both boxes together preserves IoU.
    #[test]
    fn iou_translation_invariant(
        a in bbox_strategy(),
        b in bbox_strategy(),
        dx in -0.2f32..0.2,
        dy in -0.2f32..0.2,
    ) {
        let before = a.iou(&b);
        let after = a.translated(dx, dy).iou(&b.translated(dx, dy));
        prop_assert!((before - after).abs() < 1e-5);
    }

    /// A perfectly planted prediction decodes back to the ground truth
    /// and produces near-zero loss (head decode/loss consistency).
    #[test]
    fn planted_boxes_roundtrip_through_the_head(gt in bbox_strategy()) {
        // Keep the box compatible with the anchor range so ln() targets
        // stay bounded.
        let gt = BBox::new(gt.cx, gt.cy, gt.w.clamp(0.03, 0.5), gt.h.clamp(0.03, 0.5));
        let anchors = Anchors::dac_sdc();
        let (gh, gw) = (4usize, 8usize);
        let mut pred = Tensor::full(Shape::new(1, 10, gh, gw), -20.0);
        let cx = ((gt.cx * gw as f32) as usize).min(gw - 1);
        let cy = ((gt.cy * gh as f32) as usize).min(gh - 1);
        let a = anchors.best_match(gt.w, gt.h);
        let (aw, ah) = anchors.sizes()[a];
        let inv = |p: f32| {
            let p = p.clamp(1e-4, 1.0 - 1e-4);
            (p / (1.0 - p)).ln()
        };
        *pred.at_mut(0, a * 5, cy, cx) = inv(gt.cx * gw as f32 - cx as f32);
        *pred.at_mut(0, a * 5 + 1, cy, cx) = inv(gt.cy * gh as f32 - cy as f32);
        *pred.at_mut(0, a * 5 + 2, cy, cx) = (gt.w / aw).ln();
        *pred.at_mut(0, a * 5 + 3, cy, cx) = (gt.h / ah).ln();
        *pred.at_mut(0, a * 5 + 4, cy, cx) = 20.0;

        let det = decode_best(&pred, &anchors).unwrap()[0];
        prop_assert!(det.bbox.iou(&gt) > 0.95, "iou {}", det.bbox.iou(&gt));
        let (loss, _) = DetectionLoss::default()
            .loss_and_grad(&pred, &[gt], &anchors)
            .unwrap();
        prop_assert!(loss < 0.01, "loss {loss}");
    }

    /// Width scaling follows the closed form: a same-width SkyNet Bundle
    /// has c² + 13c parameters (PW c², DW 9c, two BNs 4c), so doubling
    /// the width gives exactly 4·p(c) − 26c.
    #[test]
    fn bundle_params_scale_with_width(c in 4usize..64) {
        let spec = BundleSpec::skynet(Act::Relu6);
        let p1 = spec.params(c, c);
        prop_assert_eq!(p1, c * c + 13 * c);
        let p2 = spec.params(2 * c, 2 * c);
        prop_assert_eq!(p2, 4 * p1 - 26 * c);
    }

    /// Descriptor parameter counts are invariant to input resolution and
    /// MACs grow monotonically with it.
    #[test]
    fn descriptor_resolution_properties(div in 1usize..8) {
        let cfg = SkyNetConfig::new(Variant::C, Act::Relu6).with_width_divisor(div);
        let small: NetDesc = cfg.descriptor(40, 80);
        let large: NetDesc = cfg.descriptor(80, 160);
        prop_assert_eq!(small.total_params(), large.total_params());
        prop_assert!(large.total_macs() > small.total_macs());
        prop_assert!(large.peak_activation() > small.peak_activation());
    }
}
