//! Shape-classification dataset for the Fig. 2(a) quantization study.
//!
//! The paper's Fig. 2(a) measures how an AlexNet classifier's accuracy
//! responds to quantizing parameters vs. feature maps. We reproduce the
//! study with a mini-AlexNet trained on this 6-way shape classification
//! task (one centered shape per image, background clutter, photometric
//! variation).

use crate::draw::{category_color, draw_shape, fill_background, ShapeKind, SHAPE_KINDS};
use skynet_core::BBox;
use skynet_tensor::{rng::SkyRng, Shape, Tensor};

/// One labelled classification image.
#[derive(Debug, Clone)]
pub struct ClassifSample {
    /// Image tensor, `1×3×H×W`.
    pub image: Tensor,
    /// Class index in `0..NUM_CLASSES`.
    pub label: usize,
}

/// Number of classes (one per shape family).
pub const NUM_CLASSES: usize = SHAPE_KINDS.len();

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifConfig {
    /// Image edge (square images).
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassifConfig {
    fn default() -> Self {
        ClassifConfig {
            size: 32,
            seed: 0xC1A55,
        }
    }
}

/// The classification-set generator.
#[derive(Debug)]
pub struct ClassifGen {
    cfg: ClassifConfig,
    rng: SkyRng,
}

impl ClassifGen {
    /// Creates a generator.
    pub fn new(cfg: ClassifConfig) -> Self {
        let rng = SkyRng::new(cfg.seed);
        ClassifGen { cfg, rng }
    }

    /// Generates one sample.
    pub fn sample(&mut self) -> ClassifSample {
        let rng = &mut self.rng;
        let label = rng.below(NUM_CLASSES);
        let kind = SHAPE_KINDS[label];
        let mut img = Tensor::zeros(Shape::new(1, 3, self.cfg.size, self.cfg.size));
        fill_background(&mut img, rng, 4);
        let size = rng.range(0.4, 0.7);
        let bbox = BBox::new(
            rng.range(0.35, 0.65),
            rng.range(0.35, 0.65),
            size,
            size * rng.range(0.85, 1.2),
        );
        let color = category_color(label, rng.below(24));
        draw_shape(&mut img, &bbox, kind, color, rng.range(0.0, 6.0), 1.0);
        ClassifSample { image: img, label }
    }

    /// Generates `n` samples.
    pub fn generate(&mut self, n: usize) -> Vec<ClassifSample> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Sanity accessor: the shape kind of a class index.
pub fn class_shape(label: usize) -> ShapeKind {
    SHAPE_KINDS[label % NUM_CLASSES]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_cover_all_classes() {
        let mut g = ClassifGen::new(ClassifConfig::default());
        let samples = g.generate(200);
        let mut seen = [false; NUM_CLASSES];
        for s in &samples {
            assert!(s.label < NUM_CLASSES);
            seen[s.label] = true;
        }
        assert!(seen.iter().all(|&b| b), "all classes present in 200 draws");
    }

    #[test]
    fn images_have_expected_shape() {
        let mut g = ClassifGen::new(ClassifConfig { size: 24, seed: 1 });
        let s = g.sample();
        assert_eq!(s.image.shape(), Shape::new(1, 3, 24, 24));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClassifGen::new(ClassifConfig::default()).sample();
        let b = ClassifGen::new(ClassifConfig::default()).sample();
        assert_eq!(a.label, b.label);
        assert_eq!(a.image, b.image);
    }
}
