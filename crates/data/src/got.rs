//! Synthetic GOT-10k-style tracking sequences (§7).
//!
//! GOT-10k is a large high-diversity benchmark of real videos with rich
//! motion trajectories; we synthesize the properties the Siamese-tracker
//! comparison depends on: a target with consistent appearance moving along
//! a smooth trajectory with scale/aspect drift, a static textured
//! background, and optional same-class distractors crossing the frame.

use crate::draw::{category_color, draw_shape, fill_background, ShapeKind};
use skynet_core::BBox;
use skynet_tensor::{rng::SkyRng, Shape, Tensor};

/// One tracking sequence: frames plus the per-frame ground-truth box.
#[derive(Debug, Clone)]
pub struct TrackSequence {
    /// Frames, each `1×3×H×W`.
    pub frames: Vec<Tensor>,
    /// Ground-truth box per frame.
    pub boxes: Vec<BBox>,
    /// Category of the target object.
    pub category: u32,
}

impl TrackSequence {
    /// Sequence length in frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GotConfig {
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Frames per sequence.
    pub seq_len: usize,
    /// Mean object extent (normalized).
    pub base_size: f32,
    /// Velocity smoothness: AR(1) coefficient in `[0, 1)`; higher =
    /// smoother trajectories.
    pub smoothness: f32,
    /// Probability a sequence contains a moving distractor.
    pub distractor_prob: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GotConfig {
    fn default() -> Self {
        GotConfig {
            height: 64,
            width: 64,
            seq_len: 20,
            base_size: 0.22,
            smoothness: 0.85,
            distractor_prob: 0.4,
            seed: 0x0006_0710,
        }
    }
}

/// The synthetic tracking-sequence generator.
#[derive(Debug)]
pub struct GotGen {
    cfg: GotConfig,
    rng: SkyRng,
}

impl GotGen {
    /// Creates a generator.
    pub fn new(cfg: GotConfig) -> Self {
        let rng = SkyRng::new(cfg.seed);
        GotGen { cfg, rng }
    }

    /// Generates one sequence.
    pub fn sequence(&mut self) -> TrackSequence {
        let cfg = self.cfg.clone();
        let rng = &mut self.rng;
        let main = rng.below(6);
        let sub = rng.below(24);
        let kind = ShapeKind::for_category(main);
        let color = category_color(main, sub);
        let phase = rng.range(0.0, 6.0);

        // Static background shared by the whole sequence (camera is
        // near-still in most GOT clips; appearance change comes from the
        // object).
        let mut bg = Tensor::zeros(Shape::new(1, 3, cfg.height, cfg.width));
        fill_background(&mut bg, rng, 5);

        // Target kinematics: AR(1) velocity random walk.
        let mut cx = rng.range(0.3, 0.7);
        let mut cy = rng.range(0.3, 0.7);
        let mut vx = rng.range(-0.02, 0.02);
        let mut vy = rng.range(-0.02, 0.02);
        let mut size = cfg.base_size * rng.range(0.8, 1.2);
        let mut aspect = rng.range(0.8, 1.25);

        // Distractor state.
        let has_distractor = rng.chance(cfg.distractor_prob);
        let d_color = category_color(main, (sub + 3) % 24);
        let mut dx_pos = rng.range(0.1, 0.9);
        let mut dy_pos = rng.range(0.1, 0.9);
        let (ddx, ddy) = (rng.range(-0.02, 0.02), rng.range(-0.02, 0.02));

        let mut frames = Vec::with_capacity(cfg.seq_len);
        let mut boxes = Vec::with_capacity(cfg.seq_len);
        for _ in 0..cfg.seq_len {
            // Evolve kinematics.
            vx = cfg.smoothness * vx + (1.0 - cfg.smoothness) * rng.range(-0.04, 0.04);
            vy = cfg.smoothness * vy + (1.0 - cfg.smoothness) * rng.range(-0.04, 0.04);
            cx += vx;
            cy += vy;
            // Reflect at frame edges.
            if !(0.15..=0.85).contains(&cx) {
                vx = -vx;
                cx = cx.clamp(0.15, 0.85);
            }
            if !(0.15..=0.85).contains(&cy) {
                vy = -vy;
                cy = cy.clamp(0.15, 0.85);
            }
            size = (size * rng.range(0.97, 1.03)).clamp(0.1, 0.4);
            aspect = (aspect * rng.range(0.985, 1.015)).clamp(0.6, 1.6);
            let bbox = BBox::new(cx, cy, size * aspect.sqrt(), size / aspect.sqrt());

            let mut frame = bg.clone();
            if has_distractor {
                dx_pos = (dx_pos + ddx).rem_euclid(1.0);
                dy_pos = (dy_pos + ddy).rem_euclid(1.0);
                let d_box = BBox::new(dx_pos, dy_pos, size * 0.9, size * 0.9);
                if d_box.iou(&bbox) < 0.05 {
                    draw_shape(&mut frame, &d_box, kind, d_color, phase + 1.0, 0.85);
                }
            }
            draw_shape(&mut frame, &bbox, kind, color, phase, 1.0);
            frames.push(frame);
            boxes.push(bbox);
        }
        TrackSequence {
            frames,
            boxes,
            category: (main * 24 + sub) as u32,
        }
    }

    /// Generates `n` sequences.
    pub fn generate(&mut self, n: usize) -> Vec<TrackSequence> {
        (0..n).map(|_| self.sequence()).collect()
    }
}

/// Crops a square patch of normalized half-extent `context` around
/// `center` from `frame` and resizes it to `out×out` — the
/// exemplar/search-window extraction used by the Siamese trackers.
pub fn crop_patch(frame: &Tensor, cx: f32, cy: f32, context: f32, out: usize) -> Tensor {
    let s = frame.shape();
    let mut patch = Tensor::zeros(Shape::new(1, s.c, out, out));
    for c in 0..s.c {
        for y in 0..out {
            let fy = cy + ((y as f32 + 0.5) / out as f32 - 0.5) * 2.0 * context;
            for x in 0..out {
                let fx = cx + ((x as f32 + 0.5) / out as f32 - 0.5) * 2.0 * context;
                // Nearest-neighbour sample with zero padding outside.
                if (0.0..1.0).contains(&fx) && (0.0..1.0).contains(&fy) {
                    let px = ((fx * s.w as f32) as usize).min(s.w - 1);
                    let py = ((fy * s.h as f32) as usize).min(s.h - 1);
                    *patch.at_mut(0, c, y, x) = frame.at(0, c, py, px);
                }
            }
        }
    }
    patch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_have_consistent_lengths() {
        let mut g = GotGen::new(GotConfig::default());
        let seq = g.sequence();
        assert_eq!(seq.len(), 20);
        assert_eq!(seq.frames.len(), seq.boxes.len());
        assert!(!seq.is_empty());
    }

    #[test]
    fn motion_is_smooth() {
        let mut g = GotGen::new(GotConfig::default());
        let seq = g.sequence();
        for win in seq.boxes.windows(2) {
            let d = ((win[1].cx - win[0].cx).powi(2) + (win[1].cy - win[0].cy).powi(2)).sqrt();
            assert!(d < 0.1, "jump of {d} between frames");
        }
    }

    #[test]
    fn boxes_stay_in_frame() {
        let mut g = GotGen::new(GotConfig::default());
        for seq in g.generate(5) {
            for b in &seq.boxes {
                assert!(b.cx > 0.0 && b.cx < 1.0 && b.cy > 0.0 && b.cy < 1.0);
                assert!(b.w > 0.0 && b.h > 0.0);
            }
        }
    }

    #[test]
    fn target_is_visible_in_every_frame() {
        let cfg = GotConfig {
            distractor_prob: 0.0,
            ..Default::default()
        };
        let mut g = GotGen::new(cfg);
        let seq = g.sequence();
        for (frame, b) in seq.frames.iter().zip(&seq.boxes) {
            // Mean intensity inside the box should differ from the frame
            // mean (object painted over background).
            let s = frame.shape();
            let px = ((b.cx * s.w as f32) as usize).min(s.w - 1);
            let py = ((b.cy * s.h as f32) as usize).min(s.h - 1);
            let mut center = 0.0;
            for c in 0..3 {
                center += frame.at(0, c, py, px);
            }
            // Not a strict guarantee for ring shapes, but the default
            // categories draw solid shapes most of the time; accept if
            // any probe in a 3×3 neighbourhood is non-background.
            let bgv: f32 = (0..3).map(|c| frame.at(0, c, 0, 0)).sum();
            let visible = (center - bgv).abs() > 0.05
                || (0..3).any(|c| {
                    (frame.at(0, c, py.saturating_sub(1), px) - frame.at(0, c, 0, 0)).abs() > 0.05
                });
            assert!(visible, "target invisible");
        }
    }

    #[test]
    fn crop_patch_extracts_object() {
        let cfg = GotConfig {
            distractor_prob: 0.0,
            ..Default::default()
        };
        let mut g = GotGen::new(cfg);
        let seq = g.sequence();
        let b = seq.boxes[0];
        let patch = crop_patch(&seq.frames[0], b.cx, b.cy, b.w.max(b.h), 16);
        assert_eq!(patch.shape(), Shape::new(1, 3, 16, 16));
        // Center of patch = center of object.
        let mut center = 0.0;
        for c in 0..3 {
            center += patch.at(0, c, 8, 8);
        }
        assert!(center > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GotGen::new(GotConfig::default()).sequence();
        let b = GotGen::new(GotConfig::default()).sequence();
        assert_eq!(a.boxes[5], b.boxes[5]);
    }
}
