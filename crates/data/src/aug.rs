//! Training-time data augmentation (§6.1): "we use data augmentations to
//! distort, jitter, crop, and resize inputs".
//!
//! All transforms keep the label consistent: geometric transforms move the
//! bounding box with the pixels; photometric transforms leave it alone.

use skynet_core::{BBox, Sample};
use skynet_tensor::ops::resize_bilinear;
use skynet_tensor::{rng::SkyRng, Shape, Tensor};

/// Augmentation policy with per-transform probabilities and strengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AugmentConfig {
    /// Probability of a horizontal flip.
    pub flip_prob: f32,
    /// Maximum brightness shift (additive, per image).
    pub brightness: f32,
    /// Maximum contrast scale deviation (multiplicative, per image).
    pub contrast: f32,
    /// Maximum per-channel color jitter (additive).
    pub color_jitter: f32,
    /// Maximum crop fraction removed per edge (0 disables cropping).
    pub max_crop: f32,
    /// Additive pixel-noise amplitude ("distort").
    pub noise: f32,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            flip_prob: 0.5,
            brightness: 0.12,
            contrast: 0.2,
            color_jitter: 0.06,
            max_crop: 0.15,
            noise: 0.02,
        }
    }
}

/// A reusable augmenter with its own RNG stream.
#[derive(Debug)]
pub struct Augmenter {
    cfg: AugmentConfig,
    rng: SkyRng,
}

impl Augmenter {
    /// Creates an augmenter.
    pub fn new(cfg: AugmentConfig, seed: u64) -> Self {
        Augmenter {
            cfg,
            rng: SkyRng::new(seed),
        }
    }

    /// Applies the policy to a sample, returning a new sample.
    pub fn apply(&mut self, sample: &Sample) -> Sample {
        let mut img = sample.image.clone();
        let mut bbox = sample.bbox;
        if self.rng.chance(self.cfg.flip_prob) {
            img = flip_horizontal(&img);
            bbox = BBox::new(1.0 - bbox.cx, bbox.cy, bbox.w, bbox.h);
        }
        if self.cfg.max_crop > 0.0 {
            let (ci, cb) = random_crop(&img, &bbox, self.cfg.max_crop, &mut self.rng);
            img = ci;
            bbox = cb;
        }
        // Photometric transforms.
        let b = self.rng.range(-self.cfg.brightness, self.cfg.brightness);
        let c = 1.0 + self.rng.range(-self.cfg.contrast, self.cfg.contrast);
        let jitter: [f32; 3] = [
            self.rng
                .range(-self.cfg.color_jitter, self.cfg.color_jitter),
            self.rng
                .range(-self.cfg.color_jitter, self.cfg.color_jitter),
            self.rng
                .range(-self.cfg.color_jitter, self.cfg.color_jitter),
        ];
        let s = img.shape();
        for (ch, &jit) in jitter.iter().enumerate().take(s.c) {
            for y in 0..s.h {
                for x in 0..s.w {
                    let noise = self.rng.range(-self.cfg.noise, self.cfg.noise);
                    let v = img.at(0, ch, y, x);
                    *img.at_mut(0, ch, y, x) =
                        (((v - 0.5) * c + 0.5) + b + jit + noise).clamp(0.0, 1.0);
                }
            }
        }
        Sample::new(img, bbox, sample.category)
    }
}

/// Horizontally mirrors a `1×C×H×W` image.
pub fn flip_horizontal(img: &Tensor) -> Tensor {
    let s = img.shape();
    let mut out = Tensor::zeros(s);
    for c in 0..s.c {
        for y in 0..s.h {
            for x in 0..s.w {
                *out.at_mut(0, c, y, x) = img.at(0, c, y, s.w - 1 - x);
            }
        }
    }
    out
}

/// Randomly crops up to `max_crop` of each edge — always keeping the whole
/// ground-truth box — then resizes back to the original extent and maps
/// the box into the crop frame.
pub fn random_crop(img: &Tensor, bbox: &BBox, max_crop: f32, rng: &mut SkyRng) -> (Tensor, BBox) {
    let (bx1, by1, bx2, by2) = bbox.corners();
    // Crop window in normalized coordinates, clamped to contain the box.
    let left = rng.range(0.0, max_crop).min(bx1.max(0.0));
    let top = rng.range(0.0, max_crop).min(by1.max(0.0));
    let right = (1.0 - rng.range(0.0, max_crop)).max(bx2.min(1.0));
    let bottom = (1.0 - rng.range(0.0, max_crop)).max(by2.min(1.0));
    let s = img.shape();
    let px1 = (left * s.w as f32) as usize;
    let py1 = (top * s.h as f32) as usize;
    let px2 = ((right * s.w as f32).ceil() as usize).clamp(px1 + 2, s.w);
    let py2 = ((bottom * s.h as f32).ceil() as usize).clamp(py1 + 2, s.h);
    let (cw, ch) = (px2 - px1, py2 - py1);
    let mut crop = Tensor::zeros(Shape::new(1, s.c, ch, cw));
    for c in 0..s.c {
        for y in 0..ch {
            for x in 0..cw {
                *crop.at_mut(0, c, y, x) = img.at(0, c, py1 + y, px1 + x);
            }
        }
    }
    let resized = resize_bilinear(&crop, s.h, s.w).expect("positive extents");
    // Remap the box into the crop frame using actual pixel bounds.
    let (l, t) = (px1 as f32 / s.w as f32, py1 as f32 / s.h as f32);
    let (w_frac, h_frac) = (cw as f32 / s.w as f32, ch as f32 / s.h as f32);
    let nb = BBox::new(
        (bbox.cx - l) / w_frac,
        (bbox.cy - t) / h_frac,
        bbox.w / w_frac,
        bbox.h / h_frac,
    )
    .clamp_to_frame();
    (resized, nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_sample() -> Sample {
        // Bright square at a known off-center location.
        let mut img = Tensor::zeros(Shape::new(1, 3, 16, 32));
        let bbox = BBox::new(0.25, 0.5, 0.2, 0.3);
        for y in 0..16 {
            for x in 0..32 {
                let fx = (x as f32 + 0.5) / 32.0;
                let fy = (y as f32 + 0.5) / 16.0;
                if (fx - 0.25).abs() < 0.1 && (fy - 0.5).abs() < 0.15 {
                    for c in 0..3 {
                        *img.at_mut(0, c, y, x) = 1.0;
                    }
                }
            }
        }
        Sample::new(img, bbox, 3)
    }

    #[test]
    fn flip_mirrors_box_and_pixels() {
        let s = probe_sample();
        let flipped = flip_horizontal(&s.image);
        assert_eq!(flipped.at(0, 0, 8, 31 - 8), s.image.at(0, 0, 8, 8));
        // Applying flip twice is the identity.
        assert_eq!(flip_horizontal(&flipped), s.image);
    }

    #[test]
    fn crop_keeps_object_inside() {
        let s = probe_sample();
        let mut rng = SkyRng::new(3);
        for _ in 0..20 {
            let (img, nb) = random_crop(&s.image, &s.bbox, 0.2, &mut rng);
            assert_eq!(img.shape(), s.image.shape());
            let (x1, y1, x2, y2) = nb.corners();
            assert!(
                x1 >= -0.05 && y1 >= -0.05 && x2 <= 1.05 && y2 <= 1.05,
                "{nb:?}"
            );
            // Object must still be bright near the new center.
            let px = ((nb.cx * 32.0) as usize).min(31);
            let py = ((nb.cy * 16.0) as usize).min(15);
            assert!(img.at(0, 0, py, px) > 0.3, "object lost after crop");
        }
    }

    #[test]
    fn augmenter_preserves_category_and_range() {
        let s = probe_sample();
        let mut aug = Augmenter::new(AugmentConfig::default(), 7);
        for _ in 0..10 {
            let out = aug.apply(&s);
            assert_eq!(out.category, 3);
            for &v in out.image.as_slice() {
                assert!((0.0..=1.0).contains(&v));
            }
            assert!(out.bbox.w > 0.0 && out.bbox.h > 0.0);
        }
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let s = probe_sample();
        let a = Augmenter::new(AugmentConfig::default(), 11).apply(&s);
        let b = Augmenter::new(AugmentConfig::default(), 11).apply(&s);
        assert_eq!(a.image, b.image);
    }
}
