//! The synthetic DAC-SDC stand-in: single-object UAV-style frames.
//!
//! The generator is calibrated so the bounding-box relative-size
//! distribution reproduces Fig. 6 of the paper: ~31 % of objects occupy
//! < 1 % of the image area and ~91 % occupy < 9 %. A log-normal with
//! `μ = −4.01`, `σ = 1.20` on the area ratio hits both quantiles
//! (`Φ((ln 0.01 − μ)/σ) ≈ 0.31`, `Φ((ln 0.09 − μ)/σ) ≈ 0.91`).
//!
//! Category structure mirrors the contest data: 12 main categories (shape
//! family × size regime) with 95 sub-categories (color/texture variants).
//! Frames may also contain *distractor* objects of a similar category at
//! lower contrast — the "distinguish multiple similar objects" challenge
//! of Fig. 7's first row.

use crate::draw::{category_color, draw_shape, fill_background, ShapeKind};
use skynet_core::{BBox, Sample};
use skynet_tensor::{parallel, rng::SkyRng, Shape, Tensor};

/// Number of main categories in the contest dataset.
pub const MAIN_CATEGORIES: usize = 12;
/// Number of sub-categories in the contest dataset.
pub const SUB_CATEGORIES: usize = 95;

/// Log-normal size sampler matched to the Fig. 6 distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeSampler {
    /// Mean of `ln(area ratio)`.
    pub mu: f32,
    /// Std-dev of `ln(area ratio)`.
    pub sigma: f32,
    /// Lower clamp on the area ratio (keeps objects at least ~1 px).
    pub min_ratio: f32,
    /// Upper clamp on the area ratio.
    pub max_ratio: f32,
}

impl Default for SizeSampler {
    fn default() -> Self {
        SizeSampler {
            mu: -4.01,
            sigma: 1.20,
            min_ratio: 4e-4,
            max_ratio: 0.5,
        }
    }
}

impl SizeSampler {
    /// Draws a box area ratio (box area / image area).
    pub fn sample(&self, rng: &mut SkyRng) -> f32 {
        (self.mu + self.sigma * rng.gaussian())
            .exp()
            .clamp(self.min_ratio, self.max_ratio)
    }
}

/// Generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DacSdcConfig {
    /// Frame height in pixels (paper: 160; default scaled for CPU).
    pub height: usize,
    /// Frame width in pixels (paper: 320).
    pub width: usize,
    /// Probability that a frame contains a similar-looking distractor.
    pub distractor_prob: f32,
    /// Size distribution.
    pub sizes: SizeSampler,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DacSdcConfig {
    fn default() -> Self {
        DacSdcConfig {
            height: 48,
            width: 96,
            distractor_prob: 0.3,
            sizes: SizeSampler::default(),
            seed: 0xDAC_5DC,
        }
    }
}

impl DacSdcConfig {
    /// A configuration whose size distribution is truncated to objects the
    /// scaled-down training resolution can actually resolve (≥ ~3 px).
    /// Used for the training experiments; the unmodified distribution is
    /// used for the Fig. 6 reproduction.
    pub fn trainable(mut self) -> Self {
        self.sizes.min_ratio = 4.0 / (self.height * self.width) as f32 * 9.0;
        self
    }
}

/// The synthetic DAC-SDC dataset generator.
#[derive(Debug)]
pub struct DacSdc {
    cfg: DacSdcConfig,
    rng: SkyRng,
}

impl DacSdc {
    /// Creates a generator.
    pub fn new(cfg: DacSdcConfig) -> Self {
        let rng = SkyRng::new(cfg.seed);
        DacSdc { cfg, rng }
    }

    /// The configuration.
    pub fn config(&self) -> &DacSdcConfig {
        &self.cfg
    }

    /// Generates one labelled frame.
    pub fn sample(&mut self) -> Sample {
        let mut frame_rng = self.rng.fork(0);
        render_frame(&self.cfg, &mut frame_rng)
    }

    /// Generates `n` frames.
    ///
    /// Each frame renders from its own generator forked off the master
    /// stream, so frames are mutually independent and the whole batch
    /// renders on the parallel pool while staying deterministic: the
    /// fork sequence depends only on the master seed, never on thread
    /// count or scheduling.
    pub fn generate(&mut self, n: usize) -> Vec<Sample> {
        let frame_rngs: Vec<SkyRng> = (0..n).map(|i| self.rng.fork(i as u64)).collect();
        let cfg = &self.cfg;
        parallel::par_iter_indexed(n, |i| {
            let mut rng = frame_rngs[i].clone();
            render_frame(cfg, &mut rng)
        })
    }

    /// Generates disjoint train/validation splits.
    pub fn generate_split(&mut self, n_train: usize, n_val: usize) -> (Vec<Sample>, Vec<Sample>) {
        (self.generate(n_train), self.generate(n_val))
    }

    /// Draws `n` box size ratios without rendering frames (for the Fig. 6
    /// histogram).
    pub fn size_ratios(&mut self, n: usize) -> Vec<f32> {
        let cfg = self.cfg.clone();
        (0..n)
            .map(|_| {
                let b = sample_box(&cfg, &mut self.rng);
                b.relative_size()
            })
            .collect()
    }
}

/// Renders one labelled frame from a dedicated generator.
fn render_frame(cfg: &DacSdcConfig, rng: &mut SkyRng) -> Sample {
    let main = rng.below(MAIN_CATEGORIES);
    let sub = rng.below(SUB_CATEGORIES);
    let bbox = sample_box(cfg, rng);

    let mut img = Tensor::zeros(Shape::new(1, 3, cfg.height, cfg.width));
    fill_background(&mut img, rng, 5);

    let kind = ShapeKind::for_category(main);
    let color = category_color(main, sub);
    // Optional distractor: same shape family, neighbouring
    // sub-category, drawn first so the target overdraws on overlap.
    if rng.chance(cfg.distractor_prob) {
        let d_sub = (sub + 1) % SUB_CATEGORIES;
        let d_color = category_color(main, d_sub);
        let d_box = sample_box(cfg, rng);
        // Keep the distractor away from the target to keep the label
        // unambiguous.
        if d_box.iou(&bbox) == 0.0 {
            draw_shape(&mut img, &d_box, kind, d_color, rng.range(0.0, 6.0), 0.8);
        }
    }
    draw_shape(&mut img, &bbox, kind, color, rng.range(0.0, 6.0), 1.0);

    Sample::new(img, bbox, (main * SUB_CATEGORIES + sub) as u32)
}

fn sample_box(cfg: &DacSdcConfig, rng: &mut SkyRng) -> BBox {
    let ratio = cfg.sizes.sample(rng);
    // Aspect ratio in [0.5, 2.0] relative to the frame.
    let aspect = rng.range(0.5, 2.0);
    let w = (ratio * aspect).sqrt().min(0.95);
    let h = (ratio / aspect).sqrt().min(0.95);
    let cx = rng.range(w / 2.0, 1.0 - w / 2.0);
    let cy = rng.range(h / 2.0, 1.0 - h / 2.0);
    BBox::new(cx, cy, w, h)
}

/// Histogram of size ratios over the Fig. 6 buckets; returns
/// `(bucket_uppers, fraction_in_bucket, cumulative_fraction)`.
pub fn size_histogram(ratios: &[f32], buckets: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut counts = vec![0usize; buckets.len()];
    for &r in ratios {
        for (i, &ub) in buckets.iter().enumerate() {
            if r <= ub {
                counts[i] += 1;
                break;
            }
        }
    }
    let n = ratios.len().max(1) as f32;
    let frac: Vec<f32> = counts.iter().map(|&c| c as f32 / n).collect();
    let mut cum = Vec::with_capacity(frac.len());
    let mut acc = 0.0;
    for &f in &frac {
        acc += f;
        cum.push(acc);
    }
    (buckets.to_vec(), frac, cum)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_distribution_matches_fig6_quantiles() {
        let mut gen = DacSdc::new(DacSdcConfig::default());
        let ratios = gen.size_ratios(20_000);
        let below = |t: f32| ratios.iter().filter(|&&r| r < t).count() as f32 / 20_000.0;
        let p1 = below(0.01);
        let p9 = below(0.09);
        // Paper: 31% below 1%, 91% below 9%.
        assert!((p1 - 0.31).abs() < 0.04, "P(r<1%) = {p1}");
        assert!((p9 - 0.91).abs() < 0.03, "P(r<9%) = {p9}");
    }

    #[test]
    fn samples_have_valid_boxes_and_categories() {
        let mut gen = DacSdc::new(DacSdcConfig::default());
        for s in gen.generate(50) {
            let (x1, y1, x2, y2) = s.bbox.corners();
            assert!(x1 >= -1e-5 && y1 >= -1e-5 && x2 <= 1.0 + 1e-5 && y2 <= 1.0 + 1e-5);
            assert!((s.category as usize) < MAIN_CATEGORIES * SUB_CATEGORIES);
            assert_eq!(s.image.shape(), Shape::new(1, 3, 48, 96));
        }
    }

    #[test]
    fn object_region_differs_from_background() {
        let mut cfg = DacSdcConfig::default();
        cfg.sizes.min_ratio = 0.02; // force visible objects for this test
        cfg.distractor_prob = 0.0;
        let mut gen = DacSdc::new(cfg);
        let mut distinct = 0;
        let total = 20;
        for s in gen.generate(total) {
            let shape = s.image.shape();
            let px = ((s.bbox.cx * shape.w as f32) as usize).min(shape.w - 1);
            let py = ((s.bbox.cy * shape.h as f32) as usize).min(shape.h - 1);
            // Compare object center pixel to a far corner.
            let mut diff = 0.0;
            for c in 0..3 {
                diff += (s.image.at(0, c, py, px) - s.image.at(0, c, 0, 0)).abs();
            }
            if diff > 0.15 {
                distinct += 1;
            }
        }
        // Shapes with holes (ring/cross) may miss the center pixel, so
        // require a clear majority rather than all.
        assert!(distinct * 3 > total * 2, "{distinct}/{total} distinct");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = DacSdc::new(DacSdcConfig::default()).sample();
        let b = DacSdc::new(DacSdcConfig::default()).sample();
        assert_eq!(a.image, b.image);
        assert_eq!(a.bbox, b.bbox);
    }

    #[test]
    fn generation_is_independent_of_thread_count() {
        // Frames render from per-frame forked generators, so a batch
        // generated on the pool is bit-identical to one generated with
        // every parallel region forced onto the calling thread.
        let pooled = DacSdc::new(DacSdcConfig::default()).generate(16);
        let serial = parallel::serial(|| DacSdc::new(DacSdcConfig::default()).generate(16));
        assert_eq!(pooled.len(), serial.len());
        for (a, b) in pooled.iter().zip(&serial) {
            assert_eq!(a.image, b.image);
            assert_eq!(a.bbox, b.bbox);
            assert_eq!(a.category, b.category);
        }
    }

    #[test]
    fn sample_matches_first_generated_frame() {
        let one = DacSdc::new(DacSdcConfig::default()).sample();
        let batch = DacSdc::new(DacSdcConfig::default()).generate(3);
        assert_eq!(one.image, batch[0].image);
        assert_eq!(one.bbox, batch[0].bbox);
    }

    #[test]
    fn histogram_sums_to_one() {
        let mut gen = DacSdc::new(DacSdcConfig::default());
        let ratios = gen.size_ratios(5000);
        let buckets: Vec<f32> = (1..=20).map(|i| i as f32 * 0.01).collect();
        let (_, frac, cum) = size_histogram(&ratios, &buckets);
        let covered: f32 = frac.iter().sum();
        // Nearly all mass below 20%.
        assert!(covered > 0.95);
        assert!((cum.last().unwrap() - covered).abs() < 1e-6);
    }

    #[test]
    fn trainable_config_raises_min_size() {
        let cfg = DacSdcConfig::default().trainable();
        assert!(cfg.sizes.min_ratio > DacSdcConfig::default().sizes.min_ratio);
    }
}
