//! Procedural drawing primitives shared by the dataset generators.
//!
//! Everything operates on `1×3×H×W` RGB tensors with values roughly in
//! `[0, 1]`. Backgrounds are low-frequency noise fields (bilinear
//! upsampling of a coarse random grid) over a vertical gradient, which
//! reads as terrain/sky in a downsampled aerial frame; objects are filled
//! parametric shapes with a texture phase so that two objects of the same
//! category are similar but not identical.

use skynet_core::BBox;
use skynet_tensor::ops::resize_bilinear;
use skynet_tensor::{rng::SkyRng, Shape, Tensor};

/// Shape families used as main categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShapeKind {
    /// Filled rectangle.
    Rect,
    /// Filled ellipse.
    Ellipse,
    /// Upward triangle.
    Triangle,
    /// Plus / cross.
    Cross,
    /// Ring (ellipse with hole).
    Ring,
    /// Diamond (rotated square).
    Diamond,
}

/// All shape kinds, indexable by category id.
pub const SHAPE_KINDS: [ShapeKind; 6] = [
    ShapeKind::Rect,
    ShapeKind::Ellipse,
    ShapeKind::Triangle,
    ShapeKind::Cross,
    ShapeKind::Ring,
    ShapeKind::Diamond,
];

impl ShapeKind {
    /// Shape kind for a main-category index (wraps around).
    pub fn for_category(cat: usize) -> ShapeKind {
        SHAPE_KINDS[cat % SHAPE_KINDS.len()]
    }

    /// Signed membership test: is normalized offset `(dx, dy)` (each in
    /// `[-1, 1]` across the box) inside the shape?
    pub fn contains(&self, dx: f32, dy: f32) -> bool {
        match self {
            ShapeKind::Rect => dx.abs() <= 1.0 && dy.abs() <= 1.0,
            ShapeKind::Ellipse => dx * dx + dy * dy <= 1.0,
            ShapeKind::Triangle => (-1.0..=1.0).contains(&dy) && dx.abs() <= (1.0 + dy) / 2.0,
            ShapeKind::Cross => dx.abs() <= 0.33 || dy.abs() <= 0.33,
            ShapeKind::Ring => {
                let r = dx * dx + dy * dy;
                (0.25..=1.0).contains(&r)
            }
            ShapeKind::Diamond => dx.abs() + dy.abs() <= 1.0,
        }
    }
}

/// Fills `img` with a low-frequency noise background over a vertical
/// gradient. `detail` controls the coarse-grid resolution (≥ 2).
pub fn fill_background(img: &mut Tensor, rng: &mut SkyRng, detail: usize) {
    let s = img.shape();
    let d = detail.max(2);
    // Coarse random field, bilinearly upsampled.
    let mut coarse = Tensor::zeros(Shape::new(1, s.c, d, d));
    for v in coarse.as_mut_slice() {
        *v = rng.range(0.15, 0.55);
    }
    let field = resize_bilinear(&coarse, s.h, s.w).expect("positive extents");
    let grad_top = rng.range(-0.08, 0.08);
    for c in 0..s.c {
        for y in 0..s.h {
            let g = grad_top * (1.0 - y as f32 / s.h as f32);
            for x in 0..s.w {
                let noise = rng.range(-0.03, 0.03);
                *img.at_mut(0, c, y, x) = (field.at(0, c, y, x) + g + noise).clamp(0.0, 1.0);
            }
        }
    }
}

/// Draws a filled shape of the given kind and RGB color into the box
/// `bbox` (normalized coordinates). `texture_phase` modulates the fill so
/// instances differ; `alpha` blends over the background.
pub fn draw_shape(
    img: &mut Tensor,
    bbox: &BBox,
    kind: ShapeKind,
    color: [f32; 3],
    texture_phase: f32,
    alpha: f32,
) {
    let s = img.shape();
    let (x1, y1, x2, y2) = bbox.corners();
    let px1 = ((x1 * s.w as f32).floor().max(0.0)) as usize;
    let py1 = ((y1 * s.h as f32).floor().max(0.0)) as usize;
    let px2 = ((x2 * s.w as f32).ceil().min(s.w as f32)) as usize;
    let py2 = ((y2 * s.h as f32).ceil().min(s.h as f32)) as usize;
    let subpixel = ((x2 - x1) * s.w as f32) < 1.0 || ((y2 - y1) * s.h as f32) < 1.0;
    if px2 <= px1 || py2 <= py1 || subpixel {
        // Sub-pixel object: stamp the nearest pixel so tiny objects stay
        // visible (they are 31% of the DAC-SDC distribution).
        let px = ((bbox.cx * s.w as f32) as usize).min(s.w - 1);
        let py = ((bbox.cy * s.h as f32) as usize).min(s.h - 1);
        for (c, &col) in color.iter().enumerate().take(s.c) {
            let v = img.at(0, c, py, px);
            *img.at_mut(0, c, py, px) = v * (1.0 - alpha) + col * alpha;
        }
        return;
    }
    let bw = (x2 - x1).max(1e-6);
    let bh = (y2 - y1).max(1e-6);
    for py in py1..py2 {
        let fy = (py as f32 + 0.5) / s.h as f32;
        let dy = 2.0 * (fy - bbox.cy) / bh;
        for px in px1..px2 {
            let fx = (px as f32 + 0.5) / s.w as f32;
            let dx = 2.0 * (fx - bbox.cx) / bw;
            if kind.contains(dx, dy) {
                // Cheap procedural texture: sinusoidal shading.
                let tex = 0.12 * ((dx * 4.0 + texture_phase).sin() * (dy * 4.0).cos());
                for (c, &col) in color.iter().enumerate().take(s.c) {
                    let v = img.at(0, c, py, px);
                    let target = (col + tex).clamp(0.0, 1.0);
                    *img.at_mut(0, c, py, px) = v * (1.0 - alpha) + target * alpha;
                }
            }
        }
    }
}

/// Deterministic color for a (main, sub) category pair: hue from the sub
/// category, brightness from the main category. High saturation keeps
/// tiny objects separable from the muted background.
pub fn category_color(main: usize, sub: usize) -> [f32; 3] {
    let hue = (sub as f32 * 0.137 + main as f32 * 0.31).fract() * 6.0;
    let v = 0.75 + 0.25 * ((main % 3) as f32 / 2.0);
    let c = v;
    let x = c * (1.0 - ((hue % 2.0) - 1.0).abs());
    let (r, g, b) = match hue as usize {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    [r, g, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_is_in_range_and_nonuniform() {
        let mut rng = SkyRng::new(1);
        let mut img = Tensor::zeros(Shape::new(1, 3, 16, 32));
        fill_background(&mut img, &mut rng, 4);
        let (mut lo, mut hi) = (f32::MAX, f32::MIN);
        for &v in img.as_slice() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo >= 0.0 && hi <= 1.0);
        assert!(hi - lo > 0.05, "background should vary: {lo}..{hi}");
    }

    #[test]
    fn shape_membership_basics() {
        assert!(ShapeKind::Rect.contains(0.9, -0.9));
        assert!(!ShapeKind::Ellipse.contains(0.9, 0.9));
        assert!(ShapeKind::Ellipse.contains(0.0, 0.0));
        assert!(!ShapeKind::Ring.contains(0.0, 0.0));
        assert!(ShapeKind::Ring.contains(0.9, 0.0));
        assert!(ShapeKind::Diamond.contains(0.4, 0.4));
        assert!(!ShapeKind::Diamond.contains(0.8, 0.8));
    }

    #[test]
    fn drawn_shape_changes_pixels_inside_box() {
        let mut img = Tensor::zeros(Shape::new(1, 3, 32, 32));
        let bbox = BBox::new(0.5, 0.5, 0.4, 0.4);
        draw_shape(&mut img, &bbox, ShapeKind::Rect, [1.0, 0.0, 0.0], 0.0, 1.0);
        assert!(img.at(0, 0, 16, 16) > 0.5, "center painted red");
        assert_eq!(img.at(0, 0, 2, 2), 0.0, "outside untouched");
    }

    #[test]
    fn subpixel_object_still_stamps_a_pixel() {
        let mut img = Tensor::zeros(Shape::new(1, 3, 16, 16));
        let bbox = BBox::new(0.5, 0.5, 0.001, 0.001);
        draw_shape(
            &mut img,
            &bbox,
            ShapeKind::Ellipse,
            [0.0, 1.0, 0.0],
            0.0,
            1.0,
        );
        assert!(img.sum() > 0.0);
    }

    #[test]
    fn category_colors_are_valid_and_distinct() {
        let a = category_color(0, 0);
        let b = category_color(0, 1);
        assert_ne!(a, b);
        for col in [a, b] {
            for ch in col {
                assert!((0.0..=1.0).contains(&ch));
            }
        }
    }
}
