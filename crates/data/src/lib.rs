//! # skynet-data
//!
//! Synthetic stand-ins for the paper's proprietary datasets.
//!
//! * [`dacsdc`] — a procedural UAV-like single-object detection set. The
//!   real DAC-SDC data (100 k DJI drone images, hidden 50 k test set) is
//!   not redistributable; this generator reproduces the property the
//!   paper's design decisions hinge on — the bounding-box relative-size
//!   distribution of Fig. 6 (31 % of objects under 1 % of the image area,
//!   91 % under 9 %) — plus the 12-main-category structure and
//!   similar-object distractors visible in Fig. 7.
//! * [`aug`] — the §6.1 training augmentations: distort, jitter, crop and
//!   resize.
//! * [`got`] — synthetic GOT-10k-style tracking sequences with smooth
//!   random-walk motion, scale drift and distractors (for Tables 8–9).
//! * [`classif`] — a small shape-classification set for the AlexNet
//!   quantization study of Fig. 2(a);
//! * [`io`] — binary export/import of materialized datasets.
//!
//! All generators are deterministic given a seed.

#![deny(missing_docs)]

pub mod aug;
pub mod classif;
pub mod dacsdc;
pub mod draw;
pub mod got;
pub mod io;
