//! Binary import/export of synthetic datasets.
//!
//! Generators are deterministic, but exporting a materialized dataset
//! lets the same frames be shared across machines, diffed between
//! versions, or inspected offline. Format (little-endian):
//!
//! ```text
//! magic "SKYD" | version u32 | sample count u32
//! per sample: category u32 | cx f32 | cy f32 | w f32 | h f32
//!             | c u32 | h u32 | w u32 | h*w*c f32 pixels
//! v2 only:    crc32 u32 of every preceding byte
//! ```
//!
//! Version 2 appends a CRC-32 trailer (the same helper the training
//! checkpoint format uses) so a silent bit-flip in storage surfaces as
//! [`DatasetIoError::Corrupt`] instead of silently feeding garbage
//! tensors into training. Version-1 files (no trailer) still load.

use skynet_core::{BBox, Sample};
use skynet_tensor::crc32::Crc32;
use skynet_tensor::{Shape, Tensor};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SKYD";
const VERSION: u32 = 2;
/// Smallest possible serialized sample: 8 header words plus one pixel.
const MIN_SAMPLE_BYTES: u64 = 9 * 4;

/// Errors produced by dataset I/O.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// Not a dataset file, or an unsupported version.
    BadHeader(String),
    /// Structurally invalid payload.
    Corrupt(String),
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "dataset i/o error: {e}"),
            DatasetIoError::BadHeader(d) => write!(f, "bad dataset header: {d}"),
            DatasetIoError::Corrupt(d) => write!(f, "corrupt dataset: {d}"),
        }
    }
}

impl std::error::Error for DatasetIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetIoError {
    fn from(e: io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

/// Pass-through writer that folds every byte into a CRC-32 digest.
struct CrcWriter<W: Write> {
    inner: W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Pass-through reader that folds every byte into a CRC-32 digest.
struct CrcReader<R: Read> {
    inner: R,
    crc: Crc32,
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

/// Writes samples to `path`.
///
/// # Errors
///
/// Returns [`DatasetIoError::Io`] on filesystem failures.
pub fn save_samples(samples: &[Sample], path: impl AsRef<Path>) -> Result<(), DatasetIoError> {
    let mut w = CrcWriter {
        inner: BufWriter::new(File::create(path)?),
        crc: Crc32::new(),
    };
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, samples.len() as u32)?;
    for s in samples {
        write_u32(&mut w, s.category)?;
        write_f32(&mut w, s.bbox.cx)?;
        write_f32(&mut w, s.bbox.cy)?;
        write_f32(&mut w, s.bbox.w)?;
        write_f32(&mut w, s.bbox.h)?;
        let shape = s.image.shape();
        write_u32(&mut w, shape.c as u32)?;
        write_u32(&mut w, shape.h as u32)?;
        write_u32(&mut w, shape.w as u32)?;
        for &v in s.image.as_slice() {
            write_f32(&mut w, v)?;
        }
    }
    // The trailer itself is written to the inner sink so it is not folded
    // into the digest it stores.
    let digest = w.crc.finalize();
    write_u32(&mut w.inner, digest)?;
    w.inner.flush()?;
    Ok(())
}

/// Reads samples written by [`save_samples`], including version-1 files
/// (which carry no CRC trailer and therefore skip the integrity check).
///
/// # Errors
///
/// Returns [`DatasetIoError::BadHeader`] for foreign files,
/// [`DatasetIoError::Corrupt`] for impossible geometry, a sample count
/// that cannot fit in the file, or (v2) a CRC mismatch.
pub fn load_samples(path: impl AsRef<Path>) -> Result<Vec<Sample>, DatasetIoError> {
    let path = path.as_ref();
    let file_len = std::fs::metadata(path)?.len();
    let mut r = CrcReader {
        inner: BufReader::new(File::open(path)?),
        crc: Crc32::new(),
    };
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(DatasetIoError::BadHeader("wrong magic bytes".into()));
    }
    let version = read_u32(&mut r)?;
    if !(1..=VERSION).contains(&version) {
        return Err(DatasetIoError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let count = read_u32(&mut r)? as usize;
    // The count field is untrusted: a corrupt 0xFFFFFFFF must not trigger
    // a multi-gigabyte pre-allocation. Bound it by what the file could
    // physically hold, then cap the initial capacity regardless.
    let header_and_trailer = 12 + if version >= 2 { 4 } else { 0 };
    let payload_len = file_len.saturating_sub(header_and_trailer);
    if count as u64 > payload_len / MIN_SAMPLE_BYTES {
        return Err(DatasetIoError::Corrupt(format!(
            "sample count {count} cannot fit in a {file_len}-byte file"
        )));
    }
    let mut samples = Vec::with_capacity(count.min(4096));
    // Bytes of payload already consumed by earlier samples; each
    // sample's pixel block is validated against what is actually left.
    let mut consumed: u64 = 0;
    for _ in 0..count {
        let category = read_u32(&mut r)?;
        let bbox = BBox::new(
            read_f32(&mut r)?,
            read_f32(&mut r)?,
            read_f32(&mut r)?,
            read_f32(&mut r)?,
        );
        let c = read_u32(&mut r)? as usize;
        let h = read_u32(&mut r)? as usize;
        let w = read_u32(&mut r)? as usize;
        // The geometry words are untrusted. The element count must be
        // computed with checked arithmetic: `c * h * w` on three u32-range
        // factors can exceed usize (wrapping to a small value in release
        // builds, sailing past every plausibility check) — and even a
        // non-wrapping product must not drive `Vec::with_capacity` before
        // the file can prove it holds that many pixels.
        let elems = c
            .checked_mul(h)
            .and_then(|p| p.checked_mul(w))
            .ok_or_else(|| {
                DatasetIoError::Corrupt(format!(
                    "image geometry {c}x{h}x{w} overflows the element count"
                ))
            })?;
        if c == 0 || h == 0 || w == 0 || elems > 64 << 20 {
            return Err(DatasetIoError::Corrupt(format!(
                "implausible image geometry {c}x{h}x{w}"
            )));
        }
        consumed += 8 * 4; // this sample's 8 header words
        let pixel_bytes = elems as u64 * 4;
        if pixel_bytes > payload_len.saturating_sub(consumed) {
            return Err(DatasetIoError::Corrupt(format!(
                "image geometry {c}x{h}x{w} needs {pixel_bytes} bytes but only {} remain",
                payload_len.saturating_sub(consumed)
            )));
        }
        consumed += pixel_bytes;
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(read_f32(&mut r)?);
        }
        let image = Tensor::from_vec(Shape::new(1, c, h, w), data)
            .map_err(|e| DatasetIoError::Corrupt(e.to_string()))?;
        samples.push(Sample::new(image, bbox, category));
    }
    if version >= 2 {
        let computed = r.crc.finalize();
        let mut trailer = [0u8; 4];
        r.inner.read_exact(&mut trailer)?;
        let stored = u32::from_le_bytes(trailer);
        if stored != computed {
            return Err(DatasetIoError::Corrupt(format!(
                "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            )));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dacsdc::{DacSdc, DacSdcConfig};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skynet-data-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let cfg = DacSdcConfig {
            height: 12,
            width: 20,
            ..Default::default()
        };
        let mut gen = DacSdc::new(cfg);
        let samples = gen.generate(5);
        let path = tmp("roundtrip");
        save_samples(&samples, &path).unwrap();
        let loaded = load_samples(&path).unwrap();
        assert_eq!(loaded.len(), samples.len());
        for (a, b) in loaded.iter().zip(&samples) {
            assert_eq!(a.category, b.category);
            assert_eq!(a.bbox, b.bbox);
            assert_eq!(a.image, b.image);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a dataset").unwrap();
        assert!(matches!(
            load_samples(&path),
            Err(DatasetIoError::BadHeader(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let cfg = DacSdcConfig {
            height: 8,
            width: 8,
            ..Default::default()
        };
        let mut gen = DacSdc::new(cfg);
        let samples = gen.generate(2);
        let path = tmp("truncated");
        save_samples(&samples, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        // Either structured failure is acceptable: the remaining-length
        // check usually catches the cut as Corrupt before any allocation;
        // a cut landing inside a sample header surfaces as a short read.
        assert!(matches!(
            load_samples(&path),
            Err(DatasetIoError::Corrupt(_) | DatasetIoError::Io(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let path = tmp("empty");
        save_samples(&[], &path).unwrap();
        assert!(load_samples(&path).unwrap().is_empty());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flip_is_detected_by_crc() {
        let cfg = DacSdcConfig {
            height: 8,
            width: 8,
            ..Default::default()
        };
        let mut gen = DacSdc::new(cfg);
        let samples = gen.generate(3);
        let path = tmp("bitflip");
        save_samples(&samples, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the middle of the pixel payload: the geometry
        // stays plausible, only the CRC can catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_samples(&path),
            Err(DatasetIoError::Corrupt(_))
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn absurd_count_is_rejected_before_allocation() {
        let path = tmp("hugecount");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&0xFFFF_FFFFu32.to_le_bytes()); // corrupt count
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_samples(&path),
            Err(DatasetIoError::Corrupt(_))
        ));
        std::fs::remove_file(path).ok();
    }

    /// A minimal file holding one sample header with attacker-chosen
    /// geometry words and `pixels` f32 pixels behind it.
    fn fixture_with_geometry(c: u32, h: u32, w: u32, pixels: usize) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // v1: no CRC trailer
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one sample
        bytes.extend_from_slice(&0u32.to_le_bytes()); // category
        for _ in 0..4 {
            bytes.extend_from_slice(&0.5f32.to_le_bytes()); // bbox
        }
        bytes.extend_from_slice(&c.to_le_bytes());
        bytes.extend_from_slice(&h.to_le_bytes());
        bytes.extend_from_slice(&w.to_le_bytes());
        for _ in 0..pixels {
            bytes.extend_from_slice(&0.0f32.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn overflowing_geometry_product_is_rejected() {
        // 2^22 · 2^21 · 2^21 = 2^64 wraps to 0 under an unchecked usize
        // multiply, slipping past the size cap and yielding a bogus empty
        // tensor; checked_mul must reject it as Corrupt instead.
        let path = tmp("overflowgeom");
        std::fs::write(&path, fixture_with_geometry(1 << 22, 1 << 21, 1 << 21, 4)).unwrap();
        match load_samples(&path) {
            Err(DatasetIoError::Corrupt(d)) => assert!(d.contains("overflow"), "detail: {d}"),
            other => panic!("expected Corrupt(overflow), got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn geometry_exceeding_remaining_file_is_rejected_before_allocating() {
        // A plausible product (3·1024·1024 ≈ 3M elements, under the 64M
        // cap) that the 4-pixel file cannot possibly hold must fail the
        // remaining-length check — *before* a 12 MB allocation is made —
        // not just bail with a short-read error afterwards.
        let path = tmp("hugegeom");
        std::fs::write(&path, fixture_with_geometry(3, 1024, 1024, 4)).unwrap();
        match load_samples(&path) {
            Err(DatasetIoError::Corrupt(d)) => assert!(d.contains("remain"), "detail: {d}"),
            other => panic!("expected Corrupt(remaining-length), got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_without_trailer_still_load() {
        let cfg = DacSdcConfig {
            height: 8,
            width: 8,
            ..Default::default()
        };
        let mut gen = DacSdc::new(cfg);
        let samples = gen.generate(2);
        let path = tmp("v1compat");
        save_samples(&samples, &path).unwrap();
        // Rewrite as v1: patch the version field and strip the trailer.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&path, &bytes).unwrap();
        let loaded = load_samples(&path).unwrap();
        assert_eq!(loaded.len(), samples.len());
        for (a, b) in loaded.iter().zip(&samples) {
            assert_eq!(a.image, b.image);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn future_version_is_rejected() {
        let path = tmp("future");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_samples(&path),
            Err(DatasetIoError::BadHeader(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
