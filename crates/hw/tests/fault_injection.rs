//! End-to-end recovery-path coverage for the supervised pipeline under
//! the deterministic fault-injection harness: every fault kind
//! (panic / error / stall) against both degradation policies, transient
//! retry recovery, and the ISSUE acceptance scenario — a scheduled mix of
//! persistent faults across ≥5% of frames with `CoastLastGood` still
//! emitting every frame and accounting each one exactly.

use skynet_hw::fault::{
    silence_injected_panics, Fault, FaultKind, FaultPlan, FaultRates, InjectedFault,
};
use skynet_hw::pipeline::{
    run_pipelined, run_supervised, DegradePolicy, FrameCtx, PipelineError, StageId, Stages,
    SupStages, SupervisorConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Identity stages over frame indices: output `i` for frame `i`, so frame
/// provenance is visible in the emitted stream.
fn identity() -> SupStages<usize, usize, usize> {
    SupStages {
        pre: Box::new(|ctx: &FrameCtx| Ok(ctx.frame)),
        infer: Box::new(|_, i| Ok(i)),
        post: Box::new(|_, i| Ok(i)),
    }
}

fn fast_cfg(policy: DegradePolicy) -> SupervisorConfig {
    SupervisorConfig {
        max_retries: 2,
        backoff: Duration::ZERO,
        deadline: None,
        policy,
        channel_depth: 4,
    }
}

/// A permanent fault of each kind on a distinct frame ≥ 1, in a distinct
/// stage, so coasting has a previous good output to re-emit.
fn one_of_each_permanent() -> FaultPlan {
    FaultPlan::new()
        .inject(StageId::Pre, 2, Fault::permanent(FaultKind::Panic))
        .inject(StageId::Infer, 5, Fault::permanent(FaultKind::Error))
        .inject(
            StageId::Post,
            8,
            Fault::permanent(FaultKind::Stall(Duration::from_millis(30))),
        )
}

#[test]
fn coast_emits_every_frame_under_each_fault_kind() {
    silence_injected_panics();
    let frames = 12;
    for (name, fault, needs_deadline) in [
        ("panic", Fault::permanent(FaultKind::Panic), false),
        ("error", Fault::permanent(FaultKind::Error), false),
        (
            "stall",
            Fault::permanent(FaultKind::Stall(Duration::from_millis(30))),
            true,
        ),
    ] {
        let plan = Arc::new(FaultPlan::new().inject(StageId::Infer, 4, fault));
        let mut cfg = fast_cfg(DegradePolicy::CoastLastGood);
        if needs_deadline {
            // A stall only becomes a *failure* once the watchdog deadline
            // is shorter than the stall.
            cfg.deadline = Some(Duration::from_millis(5));
        }
        let run = run_supervised(frames, identity().with_faults(plan), &cfg);
        assert_eq!(
            run.outputs.len(),
            frames,
            "{name}: CoastLastGood must emit exactly one output per frame"
        );
        // Frame 4 coasts on frame 3's output; everything else is intact.
        let mut expect: Vec<usize> = (0..frames).collect();
        expect[4] = 3;
        assert_eq!(run.outputs, expect, "{name}");
        assert_eq!(run.report.counters.degraded, 1, "{name}");
        assert_eq!(run.report.counters.processed, frames - 1, "{name}");
        assert_eq!(run.report.counters.dropped, 0, "{name}");
        // All retries were burned on the permanently faulted frame.
        assert_eq!(run.report.counters.retried, 2, "{name}");
    }
}

#[test]
fn drop_policy_omits_failed_frames_under_each_fault_kind() {
    silence_injected_panics();
    let frames = 12;
    let plan = Arc::new(one_of_each_permanent());
    let mut cfg = fast_cfg(DegradePolicy::DropFrame);
    cfg.deadline = Some(Duration::from_millis(5)); // makes the stall count as failure
    let run = run_supervised(frames, identity().with_faults(plan), &cfg);
    let expect: Vec<usize> = (0..frames).filter(|i| ![2, 5, 8].contains(i)).collect();
    assert_eq!(run.outputs, expect);
    assert_eq!(run.report.counters.dropped, 3);
    assert_eq!(run.report.counters.degraded, 0);
    assert_eq!(run.report.counters.processed, frames - 3);
}

#[test]
fn transient_faults_are_absorbed_by_retries() {
    silence_injected_panics();
    let frames = 10;
    let plan = Arc::new(
        FaultPlan::new()
            .inject(StageId::Pre, 1, Fault::transient(FaultKind::Panic))
            .inject(StageId::Infer, 3, Fault::transient(FaultKind::Error))
            .inject(
                StageId::Post,
                6,
                // Fires on the first two attempts; third succeeds.
                Fault {
                    kind: FaultKind::Error,
                    persist_attempts: 2,
                },
            ),
    );
    let run = run_supervised(
        frames,
        identity().with_faults(plan),
        &fast_cfg(DegradePolicy::CoastLastGood),
    );
    // Every frame recovers: no degradation, no drops, and the retry
    // counter records each failed attempt (1 + 1 + 2).
    assert_eq!(run.outputs, (0..frames).collect::<Vec<_>>());
    assert_eq!(run.report.counters.processed, frames);
    assert_eq!(run.report.counters.degraded, 0);
    assert_eq!(run.report.counters.dropped, 0);
    assert_eq!(run.report.counters.retried, 4);
}

#[test]
fn coast_with_no_prior_good_output_drops_instead() {
    silence_injected_panics();
    let plan =
        Arc::new(FaultPlan::new().inject(StageId::Pre, 0, Fault::permanent(FaultKind::Error)));
    let run = run_supervised(
        4,
        identity().with_faults(plan),
        &fast_cfg(DegradePolicy::CoastLastGood),
    );
    // Frame 0 has nothing to coast on.
    assert_eq!(run.outputs, vec![1, 2, 3]);
    assert_eq!(run.report.counters.dropped, 1);
    assert_eq!(run.report.counters.degraded, 0);
}

/// Frame 0 is the one coordinate where `CoastLastGood` has no last good
/// output to re-emit. The specified fallback — degrade to `DropFrame`
/// for exactly that frame, count it as `dropped`, resume coasting once a
/// good frame exists — must hold for every stage and every fault kind.
#[test]
fn coast_before_first_good_frame_drops_frame_zero_for_every_stage_and_kind() {
    silence_injected_panics();
    let frames = 5;
    for stage in [StageId::Pre, StageId::Infer, StageId::Post] {
        for (name, kind) in [
            ("panic", FaultKind::Panic),
            ("error", FaultKind::Error),
            ("stall", FaultKind::Stall(Duration::from_millis(40))),
        ] {
            let plan = Arc::new(FaultPlan::new().inject(stage, 0, Fault::permanent(kind)));
            let mut cfg = fast_cfg(DegradePolicy::CoastLastGood);
            // A permanent stall only fails via the watchdog.
            cfg.deadline = Some(Duration::from_millis(10));
            let run = run_supervised(frames, identity().with_faults(plan), &cfg);
            let tag = format!("{stage}/{name}");
            // Frame 0 is dropped (not degraded: nothing to re-emit), the
            // stream recovers from frame 1 onward.
            assert_eq!(run.outputs, vec![1, 2, 3, 4], "{tag}");
            assert_eq!(run.report.counters.dropped, 1, "{tag}");
            assert_eq!(run.report.counters.degraded, 0, "{tag}");
            assert_eq!(run.report.counters.processed, frames - 1, "{tag}");
        }
    }
}

/// A failure streak at the head of the stream drops every frame until
/// the first success, then coasting covers later failures.
#[test]
fn coast_drops_entire_leading_failure_streak_then_coasts() {
    silence_injected_panics();
    let plan = Arc::new(
        FaultPlan::new()
            .inject(StageId::Infer, 0, Fault::permanent(FaultKind::Error))
            .inject(StageId::Infer, 1, Fault::permanent(FaultKind::Error))
            .inject(StageId::Infer, 4, Fault::permanent(FaultKind::Error)),
    );
    let run = run_supervised(
        6,
        identity().with_faults(plan),
        &fast_cfg(DegradePolicy::CoastLastGood),
    );
    // Frames 0–1 have nothing to coast on; frame 4 coasts on frame 3.
    assert_eq!(run.outputs, vec![2, 3, 3, 5]);
    assert_eq!(run.report.counters.dropped, 2);
    assert_eq!(run.report.counters.degraded, 1);
    assert_eq!(run.report.counters.processed, 3);
}

/// The ISSUE acceptance scenario: a seeded schedule mixing persistent
/// panics, errors and stalls across at least 5% of frames. The supervised
/// pipeline must complete all frames under `CoastLastGood` with counters
/// that account for every frame exactly.
#[test]
fn scheduled_mixed_faults_complete_all_frames_with_exact_accounting() {
    silence_injected_panics();
    let frames = 120;
    let rates = FaultRates {
        panic: 0.04,
        error: 0.04,
        stall: 0.02,
        stall_for: Duration::from_millis(20),
        persist_attempts: u32::MAX, // permanent: retries cannot save these
    };
    // Pick a seed whose schedule leaves frame 0 clean (so coasting always
    // has a seed output) and faults ≥ 5% of frames; seed 11 does.
    let plan = FaultPlan::scheduled(11, frames, &rates);
    let faulted = plan.faulted_frames(frames);
    assert!(
        faulted * 20 >= frames,
        "schedule must cover ≥5% of frames, got {faulted}/{frames}"
    );
    assert!(
        plan.fault_at(StageId::Pre, 0).is_none()
            && plan.fault_at(StageId::Infer, 0).is_none()
            && plan.fault_at(StageId::Post, 0).is_none(),
        "seed must leave frame 0 clean for this scenario"
    );
    let cfg = SupervisorConfig {
        max_retries: 1,
        backoff: Duration::ZERO,
        deadline: Some(Duration::from_millis(5)),
        policy: DegradePolicy::CoastLastGood,
        channel_depth: 4,
    };
    let run = run_supervised(frames, identity().with_faults(Arc::new(plan)), &cfg);
    let c = run.report.counters;
    assert_eq!(
        run.outputs.len(),
        frames,
        "all frames must be emitted: {c:?}"
    );
    assert_eq!(c.degraded, faulted, "every faulted frame degrades: {c:?}");
    assert_eq!(c.processed, frames - faulted, "{c:?}");
    assert_eq!(c.dropped, 0, "{c:?}");
    assert_eq!(c.processed + c.degraded + c.dropped, frames, "{c:?}");
    // Degraded frames re-emit the most recent good output, which is
    // always a smaller-or-equal frame index; clean frames emit their own.
    for (i, &out) in run.outputs.iter().enumerate() {
        assert!(out <= i, "frame {i} emitted future output {out}");
    }
}

#[test]
fn scheduled_runs_replay_identically_from_the_seed() {
    silence_injected_panics();
    let frames = 60;
    let rates = FaultRates {
        stall: 0.0, // keep the replay fast; panics and errors suffice
        ..FaultRates::default()
    };
    let mk = || {
        let plan = Arc::new(FaultPlan::scheduled(21, frames, &rates));
        run_supervised(
            frames,
            identity().with_faults(plan),
            &fast_cfg(DegradePolicy::CoastLastGood),
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.outputs, b.outputs);
    assert_eq!(a.report.counters, b.report.counters);
}

#[test]
fn legacy_pipeline_surfaces_injected_panic_as_error() {
    silence_injected_panics();
    let stages: Stages<usize, usize, usize> = Stages {
        pre: Box::new(|i| i),
        infer: Box::new(|i| {
            if i == 7 {
                std::panic::panic_any(InjectedFault {
                    stage: StageId::Infer,
                    frame: i,
                });
            }
            i
        }),
        post: Box::new(|i| i),
    };
    match run_pipelined(20, stages) {
        Err(PipelineError::StagePanicked(StageId::Infer)) => {}
        other => panic!("expected StagePanicked(Infer), got {other:?}"),
    }
}
