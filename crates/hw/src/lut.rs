//! Look-up-table latency approximation — the estimator the paper argues
//! **against** (§2.2).
//!
//! FBNet/ProxylessNAS-style searches approximate device latency with a
//! per-op-type look-up table: `latency = Σ_layers cost[type] × MACs`.
//! That captures compute but misses exactly what dominates embedded FPGA
//! deployments — off-chip feature-map traffic, shared-IP serialization
//! and resource feasibility. SkyNet instead uses "realistic hardware
//! performance feedbacks" (the [`crate::fpga`] model here).
//!
//! This module implements the LUT estimator faithfully so the difference
//! is measurable: [`rank_divergence`] quantifies how differently the two
//! estimators order a candidate set (used by the `ablations` bench and
//! the `skynet-nas` documentation).

use crate::fpga::{estimate, FpgaDevice};
use crate::quant::QuantScheme;
use skynet_core::desc::{LayerDesc, NetDesc};

/// Per-MAC cost table in nanoseconds, one entry per op family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyLut {
    /// Dense convolution cost per MAC.
    pub conv_ns: f64,
    /// Depth-wise convolution cost per MAC.
    pub dwconv_ns: f64,
    /// Element-wise / data-movement cost per element.
    pub elementwise_ns: f64,
}

impl LatencyLut {
    /// A table calibrated the way the LUT papers calibrate them: time a
    /// few isolated ops on the device and divide. On a 200 MHz fabric
    /// with 256-wide dense and 32-wide depth-wise IPs the per-MAC costs
    /// come out to roughly the values below.
    pub fn ultra96_calibrated() -> Self {
        LatencyLut {
            conv_ns: 5.0 / 256.0,
            dwconv_ns: 5.0 / 32.0,
            // LUT calibrations typically time the conv ops and treat the
            // glue (BN, activations, pooling) as fused/free — part of why
            // they miss real end-to-end latency.
            elementwise_ns: 5.0 / 128.0,
        }
    }

    /// Estimated latency of `net` in milliseconds: the pure per-op sum,
    /// with no memory, scheduling or feasibility modeling.
    pub fn latency_ms(&self, net: &NetDesc) -> f64 {
        let mut ns = 0.0;
        for ls in net.walk() {
            let macs = ls.layer.macs(ls.h_in, ls.w_in) as f64;
            ns += macs
                * match ls.layer {
                    LayerDesc::Conv { .. } => self.conv_ns,
                    LayerDesc::DwConv { .. } => self.dwconv_ns,
                    _ => self.elementwise_ns,
                };
        }
        ns / 1e6
    }
}

/// Normalized Kendall-tau-style rank divergence between the LUT estimator
/// and the full FPGA model over a candidate set: the fraction of candidate
/// pairs the two estimators order differently (0 = identical ranking,
/// 1 = fully reversed).
pub fn rank_divergence(
    candidates: &[NetDesc],
    lut: &LatencyLut,
    device: &FpgaDevice,
    scheme: QuantScheme,
) -> f64 {
    let lut_lat: Vec<f64> = candidates.iter().map(|c| lut.latency_ms(c)).collect();
    let full_lat: Vec<f64> = candidates
        .iter()
        .map(|c| estimate(c, device, scheme, 4).latency_ms)
        .collect();
    let n = candidates.len();
    if n < 2 {
        return 0.0;
    }
    let mut discordant = 0usize;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            pairs += 1;
            let a = (lut_lat[i] - lut_lat[j]).signum();
            let b = (full_lat[i] - full_lat[j]).signum();
            if a != b {
                discordant += 1;
            }
        }
    }
    discordant as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_core::skynet::{SkyNetConfig, Variant};
    use skynet_nn::Act;

    fn skynet_desc() -> NetDesc {
        SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320)
    }

    #[test]
    fn lut_is_monotone_in_compute() {
        let lut = LatencyLut::ultra96_calibrated();
        let small = SkyNetConfig::new(Variant::A, Act::Relu6).descriptor(160, 320);
        let big = skynet_desc();
        assert!(lut.latency_ms(&big) > lut.latency_ms(&small));
    }

    #[test]
    fn lut_underestimates_memory_bound_networks() {
        // SkyNet on the Ultra96 is memory-bound (see fpga tests); a pure
        // compute LUT misses that entirely.
        let lut = LatencyLut::ultra96_calibrated();
        let desc = skynet_desc();
        let lut_ms = lut.latency_ms(&desc);
        let full = estimate(&desc, &FpgaDevice::ultra96(), QuantScheme::new(11, 9), 4);
        assert!(
            lut_ms < full.latency_ms * 0.7,
            "LUT {lut_ms:.1} ms vs full model {:.1} ms",
            full.latency_ms
        );
    }

    #[test]
    fn estimators_disagree_on_dw_heavy_vs_dense_candidates() {
        // Construct a candidate set mixing DW-heavy (low compute, high
        // traffic) and dense (high compute, lower traffic) networks: the
        // LUT and the full model must order at least one pair differently.
        let mut candidates = Vec::new();
        for &c in &[32usize, 64, 128] {
            // DW-heavy chain.
            let mut dw = Vec::new();
            let mut in_c = 3;
            for _ in 0..6 {
                dw.push(LayerDesc::DwConv {
                    c: in_c,
                    k: 3,
                    s: 1,
                    p: 1,
                });
                dw.push(LayerDesc::Conv {
                    in_c,
                    out_c: c,
                    k: 1,
                    s: 1,
                    p: 0,
                });
                in_c = c;
            }
            candidates.push(NetDesc::new(3, 80, 160, dw));
            // Dense chain with similar parameter mass.
            let mut dense = Vec::new();
            let mut in_c = 3;
            for _ in 0..3 {
                dense.push(LayerDesc::Conv {
                    in_c,
                    out_c: c,
                    k: 3,
                    s: 1,
                    p: 1,
                });
                in_c = c;
            }
            candidates.push(NetDesc::new(3, 80, 160, dense));
        }
        let div = rank_divergence(
            &candidates,
            &LatencyLut::ultra96_calibrated(),
            &FpgaDevice::ultra96(),
            QuantScheme::new(11, 9),
        );
        assert!(div > 0.0, "estimators should disagree somewhere");
        assert!(div <= 1.0);
    }

    #[test]
    fn identical_candidates_have_zero_divergence() {
        let candidates = vec![skynet_desc()];
        let div = rank_divergence(
            &candidates,
            &LatencyLut::ultra96_calibrated(),
            &FpgaDevice::ultra96(),
            QuantScheme::new(11, 9),
        );
        assert_eq!(div, 0.0);
    }
}
