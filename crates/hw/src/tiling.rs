//! The input batch-and-tiling scheme of Fig. 9 (§6.4.1).
//!
//! The shared-IP accelerator owns one on-chip feature-map buffer sized for
//! the largest single-image layer. Deeper layers shrink 4× at every pool,
//! so most of that buffer idles — and naive batching can't help because
//! the early layers would overflow it. The paper's fix: **stitch four
//! inputs into one 2×2 tiled frame**. Early layers run tile-by-tile
//! (same per-tile footprint as before), and once the per-image map has
//! shrunk 4×, the whole stitched map fits the unchanged buffer — so the
//! deep layers process all four images in one pass, reusing each weight
//! load 4× and eliminating the idle buffer space.
//!
//! [`stitch4`] is the actual tensor operation (verified against
//! per-image execution in the tests), and [`plan`] quantifies the buffer
//! utilization and weight-reuse effects on a [`NetDesc`].

use skynet_core::desc::NetDesc;
use skynet_tensor::{ops::concat_channels, Result, Shape, Tensor, TensorError};

/// Stitches four `1×C×H×W` images into one `1×C×2H×2W` frame in a 2×2
/// grid (row-major: `[0][1]` over `[2][3]`).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] unless exactly four same-shaped
/// single-batch images are given.
pub fn stitch4(images: &[Tensor]) -> Result<Tensor> {
    if images.len() != 4 {
        return Err(TensorError::ShapeMismatch {
            op: "stitch4",
            expected: "4 images".into(),
            got: format!("{} images", images.len()),
        });
    }
    let s = images[0].shape();
    for img in images {
        if img.shape() != s || s.n != 1 {
            return Err(TensorError::ShapeMismatch {
                op: "stitch4",
                expected: format!("four 1×{}×{}×{} images", s.c, s.h, s.w),
                got: img.shape().to_string(),
            });
        }
    }
    let os = Shape::new(1, s.c, 2 * s.h, 2 * s.w);
    let mut out = Tensor::zeros(os);
    for (idx, img) in images.iter().enumerate() {
        let (oy, ox) = (idx / 2 * s.h, idx % 2 * s.w);
        for c in 0..s.c {
            for y in 0..s.h {
                for x in 0..s.w {
                    *out.at_mut(0, c, oy + y, ox + x) = img.at(0, c, y, x);
                }
            }
        }
    }
    Ok(out)
}

/// Splits a stitched `1×C×2H×2W` map back into four `1×C×H×W` quadrants
/// (inverse of [`stitch4`]).
///
/// # Errors
///
/// Returns [`TensorError::InvalidDimension`] for odd spatial extents.
pub fn unstitch4(stitched: &Tensor) -> Result<Vec<Tensor>> {
    let s = stitched.shape();
    if !s.h.is_multiple_of(2) || !s.w.is_multiple_of(2) {
        return Err(TensorError::InvalidDimension {
            op: "unstitch4",
            detail: format!("extents {}×{} not even", s.h, s.w),
        });
    }
    let (h, w) = (s.h / 2, s.w / 2);
    let mut out = Vec::with_capacity(4);
    for idx in 0..4 {
        let (oy, ox) = (idx / 2 * h, idx % 2 * w);
        let mut img = Tensor::zeros(Shape::new(1, s.c, h, w));
        for c in 0..s.c {
            for y in 0..h {
                for x in 0..w {
                    *img.at_mut(0, c, y, x) = stitched.at(0, c, oy + y, ox + x);
                }
            }
        }
        out.push(img);
    }
    Ok(out)
}

/// Stitches four images channel-wise instead of spatially — a strawman
/// used by the ablation bench to contrast against Fig. 9's spatial tiling
/// (channel stacking changes every layer's channel count and therefore
/// cannot share the conv IPs).
///
/// # Errors
///
/// Propagates concatenation shape errors.
pub fn stack_channels4(images: &[Tensor]) -> Result<Tensor> {
    let ab = concat_channels(&images[0], &images[1])?;
    let cd = concat_channels(&images[2], &images[3])?;
    concat_channels(&ab, &cd)
}

/// Quantified effect of the tiling plan on a network.
#[derive(Debug, Clone, PartialEq)]
pub struct TilingPlan {
    /// Shared buffer size in elements (largest single-image layer output).
    pub buffer_elems: usize,
    /// Per-layer single-image output sizes.
    pub layer_elems: Vec<usize>,
    /// Per-layer flag: can this layer process the whole 4-image stitched
    /// map inside the shared buffer (vs. tile-by-tile execution)?
    pub merged: Vec<bool>,
    /// Mean buffer utilization without tiling (batch 1).
    pub utilization_plain: f64,
    /// Mean buffer utilization with the 4-input tiling.
    pub utilization_tiled: f64,
    /// Average images sharing each weight load under tiling, weighted by
    /// each layer's parameter count (1.0 without tiling; approaches 4 as
    /// the parameter-heavy deep layers merge).
    pub weight_reuse: f64,
}

impl TilingPlan {
    /// Number of layers that execute in whole-batch mode.
    pub fn merged_layers(&self) -> usize {
        self.merged.iter().filter(|&&m| m).count()
    }
}

/// Computes the Fig. 9 plan for `net`. A layer executes the 4-image
/// stitched map in one pass when that map fits the shared buffer;
/// otherwise it runs tile-by-tile (4 passes, weights re-read per tile).
pub fn plan(net: &NetDesc) -> TilingPlan {
    let shapes = net.walk();
    let layer_elems: Vec<usize> = shapes
        .iter()
        .map(|ls| ls.c_out * ls.h_out * ls.w_out)
        .collect();
    let buffer = layer_elems.iter().copied().max().unwrap_or(0);
    let merged: Vec<bool> = layer_elems.iter().map(|&e| e * 4 <= buffer).collect();
    let n = layer_elems.len().max(1) as f64;
    let utilization_plain = layer_elems
        .iter()
        .map(|&e| e as f64 / buffer as f64)
        .sum::<f64>()
        / n;
    let utilization_tiled = layer_elems
        .iter()
        .zip(&merged)
        .map(|(&e, &m)| if m { (4 * e) as f64 } else { e as f64 } / buffer as f64)
        .sum::<f64>()
        / n;
    // Weight reuse weighted by parameter mass: merged layers read weights
    // once per 4 images, tiled layers once per image.
    let mut total_params = 0f64;
    let mut weighted = 0f64;
    for (ls, &m) in shapes.iter().zip(&merged) {
        let p = ls.layer.params() as f64;
        total_params += p;
        weighted += p * if m { 4.0 } else { 1.0 };
    }
    let weight_reuse = if total_params > 0.0 {
        weighted / total_params
    } else {
        1.0
    };
    TilingPlan {
        buffer_elems: buffer,
        layer_elems,
        merged,
        utilization_plain,
        utilization_tiled,
        weight_reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_core::skynet::{SkyNetConfig, Variant};
    use skynet_nn::{Act, Conv2d, Layer, Mode};
    use skynet_tensor::{conv::ConvGeometry, rng::SkyRng};

    fn image(seed: u64, c: usize, h: usize, w: usize) -> Tensor {
        let mut rng = SkyRng::new(seed);
        let s = Shape::new(1, c, h, w);
        Tensor::from_vec(s, (0..s.numel()).map(|_| rng.uniform()).collect()).unwrap()
    }

    #[test]
    fn stitch_unstitch_roundtrip() {
        let imgs: Vec<Tensor> = (0..4).map(|i| image(i, 3, 4, 6)).collect();
        let stitched = stitch4(&imgs).unwrap();
        assert_eq!(stitched.shape(), Shape::new(1, 3, 8, 12));
        let back = unstitch4(&stitched).unwrap();
        for (a, b) in back.iter().zip(&imgs) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn pointwise_conv_commutes_with_stitching_exactly() {
        // 1×1 convolutions have no cross-pixel taps, so tiled execution is
        // bit-exact — the property that lets the PW IP process stitched
        // frames unchanged.
        let mut rng = SkyRng::new(9);
        let mut conv = Conv2d::pointwise(3, 5, &mut rng);
        let imgs: Vec<Tensor> = (0..4).map(|i| image(i + 10, 3, 4, 4)).collect();
        let tiled_out = conv.forward(&stitch4(&imgs).unwrap(), Mode::Eval).unwrap();
        let quads = unstitch4(&tiled_out).unwrap();
        for (img, quad) in imgs.iter().zip(&quads) {
            let single = conv.forward(img, Mode::Eval).unwrap();
            for (a, b) in single.as_slice().iter().zip(quad.as_slice()) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn conv3x3_matches_on_interior_pixels() {
        // 3×3 convolutions only differ along the 1-pixel stitch seam.
        let mut rng = SkyRng::new(11);
        let mut conv = Conv2d::new_no_bias(2, 2, ConvGeometry::same3x3(), &mut rng);
        let imgs: Vec<Tensor> = (0..4).map(|i| image(i + 20, 2, 6, 6)).collect();
        let tiled_out = conv.forward(&stitch4(&imgs).unwrap(), Mode::Eval).unwrap();
        let quads = unstitch4(&tiled_out).unwrap();
        let single = conv.forward(&imgs[0], Mode::Eval).unwrap();
        for c in 0..2 {
            for y in 1..5 {
                for x in 1..5 {
                    let a = single.at(0, c, y, x);
                    let b = quads[0].at(0, c, y, x);
                    assert!((a - b).abs() < 1e-5, "interior ({c},{y},{x})");
                }
            }
        }
    }

    #[test]
    fn skynet_plan_improves_utilization_and_reuse() {
        let desc = SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320);
        let p = plan(&desc);
        assert!(p.buffer_elems > 0);
        assert!(
            p.utilization_tiled > p.utilization_plain * 1.5,
            "tiled {} vs plain {}",
            p.utilization_tiled,
            p.utilization_plain
        );
        assert!(p.weight_reuse > 2.0, "reuse {}", p.weight_reuse);
        assert!(p.merged_layers() > 0 && p.merged_layers() < p.merged.len());
    }

    #[test]
    fn stitch_rejects_wrong_inputs() {
        let imgs: Vec<Tensor> = (0..3).map(|i| image(i, 1, 2, 2)).collect();
        assert!(stitch4(&imgs).is_err());
        let mixed = vec![
            image(0, 1, 2, 2),
            image(1, 1, 2, 2),
            image(2, 1, 4, 4),
            image(3, 1, 2, 2),
        ];
        assert!(stitch4(&mixed).is_err());
    }
}
