//! Deterministic fault injection for the supervised pipeline.
//!
//! Recovery code that is only exercised by real hardware flaking is
//! untested code. This module makes every failure mode of
//! [`run_supervised`](crate::pipeline::run_supervised) reproducible on
//! demand: a [`FaultPlan`] is a seed- and frame-index-keyed schedule of
//! panics, stage errors and stalls that can be armed onto any
//! [`SupStages`] with [`SupStages::with_faults`]. Because the schedule is
//! a pure function of `(seed, stage, frame)`, a failing CI run replays
//! bit-for-bit from its seed — no Heisenbugs.
//!
//! ```
//! use skynet_hw::fault::{FaultKind, FaultPlan, FaultRates};
//! use skynet_hw::pipeline::{run_supervised, FrameCtx, SupervisorConfig, SupStages};
//! use std::sync::Arc;
//!
//! let plan = Arc::new(FaultPlan::scheduled(7, 100, &FaultRates::default()));
//! let stages: SupStages<usize, usize, usize> = SupStages {
//!     pre: Box::new(|ctx: &FrameCtx| Ok(ctx.frame)),
//!     infer: Box::new(|_, i| Ok(i)),
//!     post: Box::new(|_, i| Ok(i)),
//! }
//! .with_faults(plan);
//! let run = run_supervised(100, stages, &SupervisorConfig::default());
//! assert_eq!(run.outputs.len(), 100); // CoastLastGood keeps streaming
//! ```

use crate::pipeline::{FrameCtx, StageError, StageId, SupStages};
use skynet_tensor::rng::SkyRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::Once;
use std::time::Duration;

/// Panic payload used by injected [`FaultKind::Panic`] faults, so test
/// harnesses can tell deliberate panics from real bugs (see
/// [`silence_injected_panics`]).
#[derive(Debug)]
pub struct InjectedFault {
    /// Stage the fault fired in.
    pub stage: StageId,
    /// Frame the fault fired on.
    pub frame: usize,
}

/// The kinds of faults the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The stage panics (caught by the supervisor's unwind guard).
    Panic,
    /// The stage returns a [`StageError`].
    Error,
    /// The stage stalls for the given duration before succeeding. With a
    /// supervisor deadline shorter than the stall this trips the
    /// watchdog; without one it only slows the stream down.
    Stall(Duration),
}

/// One scheduled fault at a `(stage, frame)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// What happens.
    pub kind: FaultKind,
    /// The fault fires while `attempt < persist_attempts`; later retries
    /// succeed. `u32::MAX` makes it permanent, which exhausts the retry
    /// budget and exercises the degradation policy.
    pub persist_attempts: u32,
}

impl Fault {
    /// A fault that fires once (the first attempt) and then recovers —
    /// the transient-hiccup case a single retry absorbs.
    pub fn transient(kind: FaultKind) -> Self {
        Fault {
            kind,
            persist_attempts: 1,
        }
    }

    /// A fault that fires on every attempt — retries cannot save the
    /// frame, so the degradation policy must.
    pub fn permanent(kind: FaultKind) -> Self {
        Fault {
            kind,
            persist_attempts: u32::MAX,
        }
    }
}

/// Per-kind probabilities for [`FaultPlan::scheduled`]. Each `(stage,
/// frame)` coordinate draws once; the probabilities partition the unit
/// interval, so they must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability of an injected panic.
    pub panic: f32,
    /// Probability of an injected stage error.
    pub error: f32,
    /// Probability of an injected stall.
    pub stall: f32,
    /// Stall duration.
    pub stall_for: Duration,
    /// Persistence of every scheduled fault (see
    /// [`Fault::persist_attempts`]).
    pub persist_attempts: u32,
}

impl Default for FaultRates {
    /// ~6% of `(stage, frame)` coordinates faulted: 2.5% panics, 2.5%
    /// errors, 1% stalls of 50 ms, each transient (recovered by one
    /// retry).
    fn default() -> Self {
        FaultRates {
            panic: 0.025,
            error: 0.025,
            stall: 0.01,
            stall_for: Duration::from_millis(50),
            persist_attempts: 1,
        }
    }
}

/// How a replica-targeted fault manifests when its window fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFaultKind {
    /// A stage fault (panic / error / stall) injected into the replica's
    /// batched forward — caught by the serving engine's unwind guard and
    /// absorbed by its retry budget or degrade policy.
    Fault(FaultKind),
    /// The replica **thread dies**: the injected panic escapes the
    /// engine's per-batch unwind guard, modelling a replica lost to a
    /// bug outside the supervised region. The engine must answer the
    /// replica's orphaned requests at shutdown and report the loss
    /// instead of panicking its own drain path.
    Kill,
}

/// A replica-targeted fault **window**: fires for every replica-local
/// batch sequence number in `[from_batch, until_batch)` while the
/// replica's restart count is below `clears_after_restarts`.
///
/// The two knobs compose into the persistent-failure shapes the replica
/// lifecycle layer is tested with:
///
/// * `clears_after_restarts == 1` — a *wedged* replica: every batch
///   fails until the supervisor restarts it once, after which it is
///   cured (quarantine → restart → healthy).
/// * `clears_after_restarts == u32::MAX` — *dead hardware*: restarts
///   never help, the restart budget drains, and the replica must be
///   permanently retired.
///
/// Like every schedule in this module the window is a pure function of
/// its coordinates — here `(replica, batch_seq, restarts)` — so a chaos
/// run replays bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaFault {
    /// What fires inside the window.
    pub kind: ReplicaFaultKind,
    /// First replica-local batch sequence the window covers.
    pub from_batch: u64,
    /// One past the last covered batch sequence (`u64::MAX` = open).
    pub until_batch: u64,
    /// The window stops firing once the replica has been restarted at
    /// least this many times (`u32::MAX` = a restart never cures it).
    pub clears_after_restarts: u32,
}

impl ReplicaFault {
    /// An open-ended failure a restart **cures**: fires from
    /// `from_batch` on, until the first supervised restart.
    pub fn until_restarted(kind: FaultKind, from_batch: u64) -> Self {
        ReplicaFault {
            kind: ReplicaFaultKind::Fault(kind),
            from_batch,
            until_batch: u64::MAX,
            clears_after_restarts: 1,
        }
    }

    /// An open-ended failure no restart cures — drives the replica
    /// through its whole restart budget and into retirement.
    pub fn persistent(kind: FaultKind, from_batch: u64) -> Self {
        ReplicaFault {
            kind: ReplicaFaultKind::Fault(kind),
            from_batch,
            until_batch: u64::MAX,
            clears_after_restarts: u32::MAX,
        }
    }

    /// Kills the replica thread at exactly one batch coordinate.
    pub fn kill(at_batch: u64) -> Self {
        ReplicaFault {
            kind: ReplicaFaultKind::Kill,
            from_batch: at_batch,
            until_batch: at_batch.saturating_add(1),
            clears_after_restarts: u32::MAX,
        }
    }

    /// Bounds the window to `[from_batch, until_batch)` (builder style).
    pub fn with_window(mut self, from_batch: u64, until_batch: u64) -> Self {
        self.from_batch = from_batch;
        self.until_batch = until_batch;
        self
    }

    /// Whether the window fires at `(batch, restarts)`.
    pub fn fires(&self, batch: u64, restarts: u32) -> bool {
        batch >= self.from_batch
            && batch < self.until_batch
            && restarts < self.clears_after_restarts
    }
}

/// A deterministic fault schedule over `(stage, frame)` coordinates,
/// plus replica-targeted windows (keyed by `(replica, batch, restarts)`)
/// and swap-window canary faults (keyed by weight generation) for the
/// serving engine's lifecycle layer.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<(StageId, usize), Fault>,
    replica_faults: HashMap<usize, Vec<ReplicaFault>>,
    canary_faults: HashMap<u64, Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one fault at a coordinate (builder style).
    pub fn inject(mut self, stage: StageId, frame: usize, fault: Fault) -> Self {
        self.faults.insert((stage, frame), fault);
        self
    }

    /// Builds a randomized-but-deterministic schedule: every `(stage,
    /// frame)` coordinate of a `frames`-long run draws its fate from an
    /// RNG derived *only* from `(seed, stage, frame)`, so the same seed
    /// always yields the same schedule regardless of how the plan is
    /// iterated or sharded.
    pub fn scheduled(seed: u64, frames: usize, rates: &FaultRates) -> Self {
        let mut faults = HashMap::new();
        for frame in 0..frames {
            for stage in [StageId::Pre, StageId::Infer, StageId::Post] {
                let tag = match stage {
                    StageId::Pre => 1u64,
                    StageId::Infer => 2,
                    StageId::Post => 3,
                };
                let mut rng = SkyRng::new(
                    seed ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (tag << 56),
                );
                let draw = rng.uniform();
                let kind = if draw < rates.panic {
                    Some(FaultKind::Panic)
                } else if draw < rates.panic + rates.error {
                    Some(FaultKind::Error)
                } else if draw < rates.panic + rates.error + rates.stall {
                    Some(FaultKind::Stall(rates.stall_for))
                } else {
                    None
                };
                if let Some(kind) = kind {
                    faults.insert(
                        (stage, frame),
                        Fault {
                            kind,
                            persist_attempts: rates.persist_attempts,
                        },
                    );
                }
            }
        }
        FaultPlan {
            faults,
            ..FaultPlan::default()
        }
    }

    /// Overlays `other` onto this plan; where both schedule a fault at
    /// the same coordinate, `other`'s wins (replica windows accumulate —
    /// both sets stay armed). Useful for composing a baseline schedule
    /// (e.g. a fixed service-time stall on every frame) with a sparse
    /// chaos schedule.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.faults.extend(other.faults);
        for (replica, windows) in other.replica_faults {
            self.replica_faults
                .entry(replica)
                .or_default()
                .extend(windows);
        }
        self.canary_faults.extend(other.canary_faults);
        self
    }

    /// Arms a replica-targeted fault window (builder style). Windows for
    /// the same replica accumulate; the first firing window wins.
    pub fn inject_replica(mut self, replica: usize, fault: ReplicaFault) -> Self {
        self.replica_faults.entry(replica).or_default().push(fault);
        self
    }

    /// Arms a canary fault for one weight generation: it fires during
    /// the validation probe of a hot swap publishing that generation —
    /// the deterministic way to force a canary failure (and therefore a
    /// rollback) in a swap-window schedule.
    pub fn inject_canary(mut self, generation: u64, fault: Fault) -> Self {
        self.canary_faults.insert(generation, fault);
        self
    }

    /// The first replica window firing at `(replica, batch, restarts)`.
    pub fn replica_fault_at(
        &self,
        replica: usize,
        batch: u64,
        restarts: u32,
    ) -> Option<ReplicaFault> {
        self.replica_faults
            .get(&replica)?
            .iter()
            .find(|w| w.fires(batch, restarts))
            .copied()
    }

    /// Whether a [`ReplicaFaultKind::Kill`] window fires at this
    /// coordinate — checked by the engine *outside* its unwind guard.
    pub fn replica_kill_at(&self, replica: usize, batch: u64, restarts: u32) -> bool {
        matches!(
            self.replica_fault_at(replica, batch, restarts),
            Some(ReplicaFault {
                kind: ReplicaFaultKind::Kill,
                ..
            })
        )
    }

    /// Executes the stage-fault replica window firing at this
    /// coordinate, if any: panics, errors or stalls exactly like
    /// [`apply`](Self::apply). [`ReplicaFaultKind::Kill`] windows are
    /// *not* fired here — the engine handles those outside its unwind
    /// guard via [`replica_kill_at`](Self::replica_kill_at).
    ///
    /// # Errors
    ///
    /// Returns the injected [`StageError`] for [`FaultKind::Error`].
    ///
    /// # Panics
    ///
    /// Panics (with an [`InjectedFault`] payload) for
    /// [`FaultKind::Panic`].
    pub fn apply_replica(
        &self,
        replica: usize,
        batch: u64,
        restarts: u32,
    ) -> Result<(), StageError> {
        let Some(ReplicaFault {
            kind: ReplicaFaultKind::Fault(kind),
            ..
        }) = self.replica_fault_at(replica, batch, restarts)
        else {
            return Ok(());
        };
        match kind {
            FaultKind::Panic => std::panic::panic_any(InjectedFault {
                stage: StageId::Infer,
                frame: batch as usize,
            }),
            FaultKind::Error => Err(StageError::new(format!(
                "injected replica fault: replica {replica}, batch {batch}"
            ))),
            FaultKind::Stall(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// The canary fault armed for `generation`, if any.
    pub fn canary_fault_at(&self, generation: u64) -> Option<Fault> {
        self.canary_faults.get(&generation).copied()
    }

    /// Executes the canary fault armed for `generation` at the given
    /// probe attempt, if any — same semantics as [`apply`](Self::apply).
    ///
    /// # Errors
    ///
    /// Returns the injected [`StageError`] for [`FaultKind::Error`].
    ///
    /// # Panics
    ///
    /// Panics (with an [`InjectedFault`] payload) for
    /// [`FaultKind::Panic`].
    pub fn apply_canary(&self, generation: u64, attempt: u32) -> Result<(), StageError> {
        let Some(fault) = self.canary_fault_at(generation) else {
            return Ok(());
        };
        if attempt >= fault.persist_attempts {
            return Ok(());
        }
        match fault.kind {
            FaultKind::Panic => std::panic::panic_any(InjectedFault {
                stage: StageId::Infer,
                frame: generation as usize,
            }),
            FaultKind::Error => Err(StageError::new(format!(
                "injected canary fault at generation {generation}"
            ))),
            FaultKind::Stall(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// The fault scheduled at a coordinate, if any.
    pub fn fault_at(&self, stage: StageId, frame: usize) -> Option<Fault> {
        self.faults.get(&(stage, frame)).copied()
    }

    /// Number of scheduled faults (stage coordinates, replica windows
    /// and canary faults combined).
    pub fn len(&self) -> usize {
        self.faults.len()
            + self.replica_faults.values().map(Vec::len).sum::<usize>()
            + self.canary_faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.replica_faults.is_empty() && self.canary_faults.is_empty()
    }

    /// Number of distinct frames with at least one fault in `0..frames`.
    pub fn faulted_frames(&self, frames: usize) -> usize {
        (0..frames)
            .filter(|&f| {
                [StageId::Pre, StageId::Infer, StageId::Post]
                    .iter()
                    .any(|&s| self.faults.contains_key(&(s, f)))
            })
            .count()
    }

    /// Executes whatever is scheduled for this attempt: panics, returns a
    /// stage error, or stalls. Returns `Ok(())` when nothing fires — the
    /// wrapped stage then runs normally.
    ///
    /// # Errors
    ///
    /// Returns the injected [`StageError`] for [`FaultKind::Error`].
    ///
    /// # Panics
    ///
    /// Panics (with an [`InjectedFault`] payload) for
    /// [`FaultKind::Panic`] — by design; the supervisor's unwind guard
    /// catches it.
    pub fn apply(&self, stage: StageId, ctx: &FrameCtx) -> Result<(), StageError> {
        let Some(fault) = self.fault_at(stage, ctx.frame) else {
            return Ok(());
        };
        if ctx.attempt >= fault.persist_attempts {
            return Ok(());
        }
        match fault.kind {
            FaultKind::Panic => std::panic::panic_any(InjectedFault {
                stage,
                frame: ctx.frame,
            }),
            FaultKind::Error => Err(StageError::new(format!(
                "injected error at {stage} stage, frame {}",
                ctx.frame
            ))),
            FaultKind::Stall(d) => {
                std::thread::sleep(d);
                Ok(())
            }
        }
    }
}

impl<T, U, V> SupStages<T, U, V>
where
    T: 'static,
    U: 'static,
    V: 'static,
{
    /// Arms a fault plan onto these stages: before each stage body runs,
    /// the plan gets a chance to panic, error or stall that attempt.
    pub fn with_faults(self, plan: Arc<FaultPlan>) -> Self {
        let SupStages { pre, infer, post } = self;
        let (p1, p2, p3) = (plan.clone(), plan.clone(), plan);
        SupStages {
            pre: Box::new(move |ctx: &FrameCtx| {
                p1.apply(StageId::Pre, ctx)?;
                pre(ctx)
            }),
            infer: Box::new(move |ctx: &FrameCtx, t: T| {
                p2.apply(StageId::Infer, ctx)?;
                infer(ctx, t)
            }),
            post: Box::new(move |ctx: &FrameCtx, u: U| {
                p3.apply(StageId::Post, ctx)?;
                post(ctx, u)
            }),
        }
    }
}

/// Installs (once per process) a panic hook that stays silent for
/// [`InjectedFault`] payloads and delegates everything else to the
/// previous hook. Injected panics are expected and caught by the
/// supervisor; without this, a fault-heavy test run floods stderr with
/// scary-but-intentional backtrace headers.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_plan_is_deterministic() {
        let rates = FaultRates::default();
        let a = FaultPlan::scheduled(99, 500, &rates);
        let b = FaultPlan::scheduled(99, 500, &rates);
        for frame in 0..500 {
            for stage in [StageId::Pre, StageId::Infer, StageId::Post] {
                assert_eq!(a.fault_at(stage, frame), b.fault_at(stage, frame));
            }
        }
        let c = FaultPlan::scheduled(100, 500, &rates);
        assert_ne!(a.len(), 0);
        // Different seeds produce different schedules (overwhelmingly).
        assert!(
            (0..500).any(|f| a.fault_at(StageId::Pre, f) != c.fault_at(StageId::Pre, f))
                || a.len() != c.len()
        );
    }

    #[test]
    fn scheduled_rates_are_plausible() {
        let rates = FaultRates {
            panic: 0.05,
            error: 0.05,
            stall: 0.05,
            stall_for: Duration::from_millis(1),
            persist_attempts: 1,
        };
        let plan = FaultPlan::scheduled(3, 2000, &rates);
        // 15% of 6000 coordinates = 900 expected; accept a wide band.
        assert!(
            (600..1200).contains(&plan.len()),
            "scheduled {} faults",
            plan.len()
        );
    }

    #[test]
    fn transient_fault_clears_after_persistence() {
        let plan = FaultPlan::new().inject(StageId::Infer, 4, Fault::transient(FaultKind::Error));
        let hit = plan.apply(
            StageId::Infer,
            &FrameCtx {
                frame: 4,
                attempt: 0,
            },
        );
        assert!(hit.is_err());
        let retry = plan.apply(
            StageId::Infer,
            &FrameCtx {
                frame: 4,
                attempt: 1,
            },
        );
        assert!(retry.is_ok());
        // Other coordinates unaffected.
        assert!(plan
            .apply(
                StageId::Pre,
                &FrameCtx {
                    frame: 4,
                    attempt: 0
                }
            )
            .is_ok());
    }

    #[test]
    fn replica_window_fires_until_restart_clears_it() {
        let plan =
            FaultPlan::new().inject_replica(1, ReplicaFault::until_restarted(FaultKind::Error, 3));
        // Outside the window / wrong replica: nothing.
        assert!(plan.apply_replica(1, 2, 0).is_ok());
        assert!(plan.apply_replica(0, 5, 0).is_ok());
        // Inside the window, no restarts yet: fires, open-ended.
        assert!(plan.apply_replica(1, 3, 0).is_err());
        assert!(plan.apply_replica(1, 1_000, 0).is_err());
        // One restart cures it.
        assert!(plan.apply_replica(1, 1_000, 1).is_ok());
    }

    #[test]
    fn persistent_replica_window_survives_restarts() {
        let plan =
            FaultPlan::new().inject_replica(0, ReplicaFault::persistent(FaultKind::Error, 0));
        for restarts in [0, 1, 7, u32::MAX - 1] {
            assert!(plan.apply_replica(0, 4, restarts).is_err());
        }
    }

    #[test]
    fn kill_window_is_reported_but_not_applied() {
        let plan = FaultPlan::new().inject_replica(2, ReplicaFault::kill(5));
        assert!(plan.replica_kill_at(2, 5, 0));
        assert!(!plan.replica_kill_at(2, 4, 0));
        assert!(!plan.replica_kill_at(2, 6, 0));
        assert!(!plan.replica_kill_at(1, 5, 0));
        // apply_replica never fires a Kill window.
        assert!(plan.apply_replica(2, 5, 0).is_ok());
    }

    #[test]
    fn bounded_window_and_merge_accumulate() {
        let a = FaultPlan::new().inject_replica(
            0,
            ReplicaFault::persistent(FaultKind::Error, 0).with_window(2, 4),
        );
        let b = FaultPlan::new()
            .inject_replica(
                0,
                ReplicaFault::persistent(FaultKind::Error, 0).with_window(8, 9),
            )
            .inject_canary(3, Fault::permanent(FaultKind::Error));
        let merged = a.merge(b);
        assert!(merged.apply_replica(0, 1, 0).is_ok());
        assert!(merged.apply_replica(0, 2, 0).is_err());
        assert!(merged.apply_replica(0, 4, 0).is_ok());
        assert!(merged.apply_replica(0, 8, 0).is_err());
        assert_eq!(merged.len(), 3);
        assert!(!merged.is_empty());
    }

    #[test]
    fn canary_fault_keys_on_generation_and_attempt() {
        let plan = FaultPlan::new().inject_canary(2, Fault::transient(FaultKind::Error));
        assert!(plan.apply_canary(1, 0).is_ok());
        assert!(plan.apply_canary(2, 0).is_err());
        assert!(plan.apply_canary(2, 1).is_ok(), "transient clears on retry");
        assert_eq!(
            plan.canary_fault_at(2),
            Some(Fault::transient(FaultKind::Error))
        );
    }

    #[test]
    fn injected_panic_carries_marker_payload() {
        silence_injected_panics();
        let plan = FaultPlan::new().inject(StageId::Post, 0, Fault::permanent(FaultKind::Panic));
        let caught = std::panic::catch_unwind(|| {
            let _ = plan.apply(
                StageId::Post,
                &FrameCtx {
                    frame: 0,
                    attempt: 3,
                },
            );
        })
        .expect_err("must panic");
        let fault = caught
            .downcast_ref::<InjectedFault>()
            .expect("payload is InjectedFault");
        assert_eq!(fault.stage, StageId::Post);
        assert_eq!(fault.frame, 0);
    }
}
