//! The official DAC-SDC scoring (§6.2, Eqs. 2–5).
//!
//! * Eq. 2 — `R_IoU` is the mean IoU over the hidden test set (computed by
//!   [`skynet_core::trainer::evaluate`] on our synthetic set).
//! * Eq. 3 — `Ē_I` is the average energy over all `I` entries.
//! * Eq. 4 — `ES_i = max(0, 1 + 0.2·log_x(Ē_I / E_i))`, with `x = 2` for
//!   the FPGA track and `x = 10` for the GPU track.
//! * Eq. 5 — `TS_i = R_IoU_i · (1 + ES_i)`.

/// Which contest track an entry competes in (sets `x` of Eq. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// GPU track: `x = 10`.
    Gpu,
    /// FPGA track: `x = 2`.
    Fpga,
}

impl Track {
    /// The logarithm base of Eq. 4.
    pub fn log_base(&self) -> f64 {
        match self {
            Track::Gpu => 10.0,
            Track::Fpga => 2.0,
        }
    }
}

/// One contest entry's raw measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Team name.
    pub name: String,
    /// Mean IoU on the test set (Eq. 2).
    pub iou: f64,
    /// Throughput in frames per second.
    pub fps: f64,
    /// Average board power in watts.
    pub power_w: f64,
}

impl Entry {
    /// Creates an entry.
    pub fn new(name: &str, iou: f64, fps: f64, power_w: f64) -> Self {
        Entry {
            name: name.into(),
            iou,
            fps,
            power_w,
        }
    }

    /// Energy in joules to process `images` frames (Eq. 3 numerator).
    pub fn energy_j(&self, images: usize) -> f64 {
        self.power_w * images as f64 / self.fps
    }
}

/// An entry with its computed scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredEntry {
    /// The raw entry.
    pub entry: Entry,
    /// Energy over the test set, joules.
    pub energy_j: f64,
    /// Energy score `ES_i` (Eq. 4).
    pub energy_score: f64,
    /// Total score `TS_i` (Eq. 5).
    pub total_score: f64,
}

/// Number of images in the hidden contest test set.
pub const TEST_IMAGES: usize = 50_000;

/// Scores a field of entries per Eqs. 3–5, returning them in descending
/// total-score order.
pub fn score_field(entries: &[Entry], track: Track) -> Vec<ScoredEntry> {
    let energies: Vec<f64> = entries.iter().map(|e| e.energy_j(TEST_IMAGES)).collect();
    let avg = energies.iter().sum::<f64>() / energies.len().max(1) as f64;
    let base = track.log_base();
    let mut scored: Vec<ScoredEntry> = entries
        .iter()
        .zip(&energies)
        .map(|(e, &energy)| {
            let es = (1.0 + 0.2 * (avg / energy).log(base)).max(0.0);
            ScoredEntry {
                entry: e.clone(),
                energy_j: energy,
                energy_score: es,
                total_score: e.iou * (1.0 + es),
            }
        })
        .collect();
    scored.sort_by(|a, b| b.total_score.total_cmp(&a.total_score));
    scored
}

/// The published GPU-track top-3 of DAC-SDC'19 and '18 (Table 5),
/// as `(name, iou, fps, power)` rows.
pub fn table5_entries() -> Vec<Entry> {
    vec![
        Entry::new("SkyNet", 0.731, 67.33, 13.50),
        Entry::new("Thinker", 0.713, 28.79, 8.55),
        Entry::new("DeepZS", 0.723, 26.37, 15.12),
        Entry::new("ICT-CAS'18", 0.698, 24.55, 12.58),
        Entry::new("DeepZ'18", 0.691, 25.30, 13.27),
        Entry::new("SDU-Legend'18", 0.685, 23.64, 10.31),
    ]
}

/// The published FPGA-track top-3 of DAC-SDC'19 and '18 (Table 6).
pub fn table6_entries() -> Vec<Entry> {
    vec![
        Entry::new("SkyNet", 0.716, 25.05, 7.26),
        Entry::new("XJTU Tripler", 0.615, 50.91, 9.25),
        Entry::new("SystemsETHZ", 0.553, 55.13, 6.69),
        Entry::new("TGIIF'18", 0.624, 11.96, 4.20),
        Entry::new("SystemsETHZ'18", 0.492, 25.97, 2.45),
        Entry::new("iSmart2'18", 0.573, 7.35, 2.59),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skynet_wins_both_tracks_with_published_numbers() {
        // Re-scoring the published measurements with our implementation of
        // Eqs. 3–5 must reproduce the winner (exact score values differ
        // slightly because the real Ē averages all ~50 entries, not just
        // the published top-3 of each year).
        let gpu = score_field(&table5_entries(), Track::Gpu);
        assert_eq!(gpu[0].entry.name, "SkyNet");
        let fpga = score_field(&table6_entries(), Track::Fpga);
        assert_eq!(fpga[0].entry.name, "SkyNet");
    }

    #[test]
    fn gpu_scores_reproduce_table5_ordering() {
        let gpu = score_field(&table5_entries(), Track::Gpu);
        let names: Vec<&str> = gpu.iter().map(|s| s.entry.name.as_str()).collect();
        // Table 5 order: SkyNet > Thinker > DeepZS > ICT-CAS > DeepZ > SDU.
        assert_eq!(names[0], "SkyNet");
        let pos = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert!(pos("Thinker") < pos("ICT-CAS'18"));
        assert!(pos("DeepZS") < pos("SDU-Legend'18"));
    }

    #[test]
    fn total_score_matches_formula_for_average_entry() {
        // An entry exactly at the field-average energy has ES = 1 ⇒
        // TS = 2·IoU.
        let entries = vec![
            Entry::new("a", 0.5, 10.0, 10.0),
            Entry::new("b", 0.5, 10.0, 10.0),
        ];
        let scored = score_field(&entries, Track::Fpga);
        for s in scored {
            assert!((s.energy_score - 1.0).abs() < 1e-12);
            assert!((s.total_score - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn energy_score_floors_at_zero() {
        // Eq. 4 floors at zero once an entry is ≥ 2⁵× the field-average
        // energy (FPGA track). With 63 efficient entries and one that is
        // catastrophically inefficient, the average sits ~64× below it.
        let mut entries: Vec<Entry> = (0..63)
            .map(|i| Entry::new(&format!("team{i}"), 0.5, 100.0, 1.0))
            .collect();
        entries.push(Entry::new("bad", 0.7, 100.0, 100_000.0));
        let scored = score_field(&entries, Track::Fpga);
        let bad = scored.iter().find(|s| s.entry.name == "bad").unwrap();
        assert_eq!(bad.energy_score, 0.0);
        assert!((bad.total_score - 0.7).abs() < 1e-12);
    }

    #[test]
    fn skynet_published_total_scores_are_close() {
        // With the top-6 field stand-in, SkyNet's recomputed totals should
        // land near the published 1.504 (GPU) and 1.526 (FPGA).
        let gpu = score_field(&table5_entries(), Track::Gpu);
        let sky_gpu = &gpu[0];
        assert!(
            (sky_gpu.total_score - 1.504).abs() < 0.1,
            "{}",
            sky_gpu.total_score
        );
        let fpga = score_field(&table6_entries(), Track::Fpga);
        let sky_fpga = &fpga[0];
        assert!(
            (sky_fpga.total_score - 1.526).abs() < 0.15,
            "{}",
            sky_fpga.total_score
        );
    }
}
