//! IP-based FPGA performance and resource model (after Hao et al.,
//! DAC'19 — the model the paper's NAS loop uses for FPGA feedback).
//!
//! The key idea matches §6.4: because a SkyNet-style network is built from
//! a *single* Bundle type, one shared set of hardware IPs (a PW-Conv IP, a
//! DW-Conv IP and a pool/data-mover IP) executes every layer in sequence.
//! The model therefore:
//!
//! 1. sizes the IPs' multiply parallelism against the device DSP budget
//!    using the DSP-packing rule of Fig. 2(c),
//! 2. sizes the shared on-chip buffers against the network's peak feature
//!    map using the BRAM rule of Fig. 2(b), and
//! 3. walks the [`NetDesc`] accumulating per-layer compute cycles plus
//!    off-chip feature-map traffic, which on these boards dominates —
//!    this is why the measured contest FPS (25) sits far below the
//!    compute-bound roofline.

use crate::quant::QuantScheme;
use skynet_core::desc::{LayerDesc, NetDesc};

/// An embedded FPGA device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaDevice {
    /// Board name.
    pub name: &'static str,
    /// DSP slice count.
    pub dsp: usize,
    /// BRAM capacity in 18 Kb blocks.
    pub bram18: usize,
    /// LUT count.
    pub luts: usize,
    /// Fabric clock in MHz.
    pub freq_mhz: f64,
    /// Effective DDR bandwidth available to the accelerator, GB/s.
    /// Embedded PS–PL interfaces sustain well under their nominal rate on
    /// short, strided feature-map bursts; 0.40 GB/s reproduces the
    /// contest-measured SkyNet throughput on the Ultra96.
    pub eff_bandwidth_gbps: f64,
}

impl FpgaDevice {
    /// Ultra96 (Zynq UltraScale+ ZU3EG): 360 DSP48E2, 216 BRAM36
    /// (432 × 18 Kb), ~70 k LUTs; the paper runs it at 200 MHz for
    /// 144 GOPS peak (§6.4).
    pub fn ultra96() -> Self {
        FpgaDevice {
            name: "Ultra96",
            dsp: 360,
            bram18: 432,
            luts: 70_560,
            freq_mhz: 200.0,
            eff_bandwidth_gbps: 0.40,
        }
    }

    /// Pynq-Z1 (Zynq-7020): 220 DSP48E1, 140 BRAM36 (280 × 18 Kb),
    /// 53.2 k LUTs, typically clocked near 100 MHz by contest designs.
    pub fn pynq_z1() -> Self {
        FpgaDevice {
            name: "Pynq-Z1",
            dsp: 220,
            bram18: 280,
            luts: 53_200,
            freq_mhz: 100.0,
            eff_bandwidth_gbps: 0.30,
        }
    }

    /// Peak GOPS of the multiplier array under a quantization scheme
    /// (2 ops per MAC).
    pub fn peak_gops(&self, scheme: QuantScheme) -> f64 {
        let mults = (self.dsp as f64 / dsp_per_mac(scheme.weight_bits, scheme.fm_bits)).floor();
        2.0 * mults * self.freq_mhz * 1e6 / 1e9
    }
}

/// DSP slices needed per multiplier for a `w_bits × fm_bits` product —
/// the Fig. 2(c) packing rule.
///
/// A DSP48E2 offers a 27×18 multiplier. Two weight operands can share one
/// DSP (the standard low-bit packing trick) when both weights plus a guard
/// bit fit the 27-bit port alongside the feature-map operand:
/// `2·w + fm + 1 ≤ 45`. Under FM16 this flips exactly between W15
/// (2·15+16+1 = 47 → 1 DSP each) and W14 (2·14+16+1 = 45 → packed), the
/// 128 → 64 step the figure reports.
pub fn dsp_per_mac(w_bits: u8, fm_bits: u8) -> f64 {
    if 2 * w_bits as usize + (fm_bits as usize) < 45 {
        0.5
    } else {
        1.0
    }
}

/// DSP usage of an accelerator with `parallelism` concurrent multipliers
/// under the given quantization (Fig. 2(c)).
pub fn dsp_usage(parallelism: usize, scheme: QuantScheme) -> usize {
    (parallelism as f64 * dsp_per_mac(scheme.weight_bits, scheme.fm_bits)).ceil() as usize
}

/// BRAM blocks (18 Kb) needed to double-buffer an on-chip working set of
/// `elems` values at `fm_bits` bits each (Fig. 2(b)).
pub fn bram_usage(elems: usize, fm_bits: u8) -> usize {
    let bits = 2 * elems * fm_bits as usize;
    bits.div_ceil(18 * 1024)
}

/// Rows of the feature map each IP holds on chip: a 3×3 IP needs `k + 1`
/// rows of line buffer, so four rows cover every kernel in the Bundle.
/// The shared-IP design streams row bands through this window rather than
/// holding whole maps (which would need megabytes — see the Fig. 2(b)
/// sweep).
pub const TILE_ROWS: usize = 4;

/// On-chip working-set size (elements) of the shared feature-map buffer:
/// the widest layer's `channels × width × TILE_ROWS` band.
pub fn fm_tile_elems(net: &NetDesc) -> usize {
    net.walk()
        .iter()
        .map(|ls| ls.c_out * ls.w_out * TILE_ROWS.min(ls.h_out))
        .max()
        .unwrap_or(0)
}

/// How the shared-IP accelerator is configured for a network + scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpPool {
    /// Concurrent multipliers in the point-wise/dense conv IP.
    pub pw_parallel: usize,
    /// Concurrent multipliers in the depth-wise conv IP.
    pub dw_parallel: usize,
    /// Quantization scheme the IPs are built for.
    pub scheme: QuantScheme,
}

impl IpPool {
    /// Sizes the IPs as large as the device DSP budget allows (the paper
    /// configures IPs "to be as large as possible within the available
    /// FPGA resources"), splitting 7:1 between the PW and DW IPs (PW
    /// carries >80 % of SkyNet's MACs) and rounding down to powers of two.
    pub fn fit(device: &FpgaDevice, scheme: QuantScheme) -> IpPool {
        let budget = device.dsp as f64 * 0.9; // leave headroom for control
        let mults = budget / dsp_per_mac(scheme.weight_bits, scheme.fm_bits);
        let pw = pow2_floor((mults * 7.0 / 8.0) as usize).max(8);
        let dw = pow2_floor((mults / 8.0) as usize).max(4);
        IpPool {
            pw_parallel: pw,
            dw_parallel: dw,
            scheme,
        }
    }

    /// Total DSP slices the pool occupies.
    pub fn dsp(&self) -> usize {
        dsp_usage(self.pw_parallel + self.dw_parallel, self.scheme)
    }
}

fn pow2_floor(x: usize) -> usize {
    if x == 0 {
        0
    } else {
        1 << (usize::BITS - 1 - x.leading_zeros())
    }
}

/// End-to-end estimate for one network on one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaEstimate {
    /// Batch-amortized time per frame in milliseconds (total batch time
    /// including the shared weight load, divided by the batch size). A
    /// single frame's end-to-end latency is higher at `batch > 1`.
    pub latency_ms: f64,
    /// Throughput, frames per second (accounting for batch amortization).
    pub fps: f64,
    /// DSP slices used.
    pub dsp: usize,
    /// BRAM 18 Kb blocks used.
    pub bram18: usize,
    /// Rough LUT usage.
    pub luts: usize,
    /// Whether the design fits the device.
    pub feasible: bool,
    /// Compute-only share of the latency (ms) — the roofline component.
    pub compute_ms: f64,
    /// Memory-traffic share of the latency (ms).
    pub memory_ms: f64,
}

/// Estimates latency, throughput and resources for `net` on `device`
/// under `scheme`, processing `batch` frames per weight load (the Fig. 9
/// tiling scheme sets `batch = 4`).
pub fn estimate(
    net: &NetDesc,
    device: &FpgaDevice,
    scheme: QuantScheme,
    batch: usize,
) -> FpgaEstimate {
    let pool = IpPool::fit(device, scheme);
    let batch = batch.max(1);
    let mut compute_cycles = 0f64;
    let mut fm_bytes = 0f64;
    for ls in net.walk() {
        let macs = ls.layer.macs(ls.h_in, ls.w_in) as f64;
        match ls.layer {
            LayerDesc::Conv { .. } => compute_cycles += macs / pool.pw_parallel as f64,
            LayerDesc::DwConv { .. } => compute_cycles += macs / pool.dw_parallel as f64,
            // Data movers: 8 elements per cycle.
            _ => compute_cycles += macs / 8.0,
        }
        // Per-layer pipeline fill/drain.
        compute_cycles += 1024.0;
        // BN and activations are fused into the preceding convolution IP
        // (standard practice and what the paper's IP template does), so
        // only convolution/pool/reorg outputs travel to DDR between IP
        // invocations of the shared-IP schedule.
        let materializes = matches!(
            ls.layer,
            LayerDesc::Conv { .. }
                | LayerDesc::DwConv { .. }
                | LayerDesc::Pool { .. }
                | LayerDesc::Reorg { .. }
        );
        if materializes {
            let out_elems = (ls.c_out * ls.h_out * ls.w_out) as f64;
            fm_bytes += out_elems * scheme.fm_bits.min(16) as f64 / 8.0;
        }
    }
    // Input image (8-bit RGB) in, final map out — small next to the FMs.
    fm_bytes += (net.in_c * net.in_h * net.in_w) as f64;

    // Weight loading, amortized over the batch.
    let weight_bytes = net.total_params() as f64 * scheme.weight_bits.min(16) as f64 / 8.0;

    let compute_ms = compute_cycles / (device.freq_mhz * 1e6) * 1e3;
    let memory_ms = fm_bytes / (device.eff_bandwidth_gbps * 1e9) * 1e3;
    let weight_ms = weight_bytes / (device.eff_bandwidth_gbps * 1e9) * 1e3;
    // Compute and memory overlap imperfectly on a shared-IP schedule;
    // charge the max plus 30% of the min (partial serialization).
    let (hi, lo) = if compute_ms > memory_ms {
        (compute_ms, memory_ms)
    } else {
        (memory_ms, compute_ms)
    };
    let per_frame = hi + 0.3 * lo;
    let batch_ms = per_frame * batch as f64 + weight_ms;
    let latency_ms = batch_ms / batch as f64;
    let fps = 1e3 / latency_ms;

    let bram = bram_usage(fm_tile_elems(net), scheme.fm_bits)
        + (weight_bytes.min(64.0 * 18.0 * 1024.0 / 8.0) * 8.0 / (18.0 * 1024.0)).ceil() as usize;
    let dsp = pool.dsp();
    // LUT model: control + muxing scales with parallelism.
    let luts = 12_000 + 40 * (pool.pw_parallel + pool.dw_parallel);
    FpgaEstimate {
        latency_ms,
        fps,
        dsp,
        bram18: bram,
        luts,
        feasible: dsp <= device.dsp && bram <= device.bram18 && luts <= device.luts,
        compute_ms,
        memory_ms,
    }
}

/// Estimates latency when every convolution layer owns a **dedicated**
/// IP instead of sharing one — the ablation against the paper's
/// IP-shared mapping. The DSP budget is split evenly across the conv
/// layers, so each IP's parallelism collapses and per-layer latency
/// balloons; this is why the paper shares IPs on resource-starved
/// devices ("all DNN layers of the same type share the same hardware
/// computational IP ... to save FPGA resources").
pub fn estimate_dedicated(net: &NetDesc, device: &FpgaDevice, scheme: QuantScheme) -> FpgaEstimate {
    let shapes = net.walk();
    let conv_layers = shapes
        .iter()
        .filter(|ls| matches!(ls.layer, LayerDesc::Conv { .. } | LayerDesc::DwConv { .. }))
        .count()
        .max(1);
    let budget = device.dsp as f64 * 0.9;
    let per_layer = pow2_floor(
        ((budget / dsp_per_mac(scheme.weight_bits, scheme.fm_bits)) / conv_layers as f64) as usize,
    )
    .max(1);
    let mut compute_cycles = 0f64;
    let mut fm_bytes = 0f64;
    for ls in &shapes {
        let macs = ls.layer.macs(ls.h_in, ls.w_in) as f64;
        match ls.layer {
            LayerDesc::Conv { .. } | LayerDesc::DwConv { .. } => {
                compute_cycles += macs / per_layer as f64;
            }
            _ => compute_cycles += macs / 8.0,
        }
        compute_cycles += 1024.0;
        if matches!(
            ls.layer,
            LayerDesc::Conv { .. }
                | LayerDesc::DwConv { .. }
                | LayerDesc::Pool { .. }
                | LayerDesc::Reorg { .. }
        ) {
            fm_bytes +=
                (ls.c_out * ls.h_out * ls.w_out) as f64 * scheme.fm_bits.min(16) as f64 / 8.0;
        }
    }
    let compute_ms = compute_cycles / (device.freq_mhz * 1e6) * 1e3;
    let memory_ms = fm_bytes / (device.eff_bandwidth_gbps * 1e9) * 1e3;
    let (hi, lo) = if compute_ms > memory_ms {
        (compute_ms, memory_ms)
    } else {
        (memory_ms, compute_ms)
    };
    let latency_ms = hi + 0.3 * lo;
    let dsp = dsp_usage(per_layer * conv_layers, scheme);
    let bram = bram_usage(fm_tile_elems(net), scheme.fm_bits) * conv_layers.min(8);
    let luts = 12_000 + 40 * per_layer * conv_layers;
    FpgaEstimate {
        latency_ms,
        fps: 1e3 / latency_ms,
        dsp,
        bram18: bram,
        luts,
        feasible: dsp <= device.dsp && bram <= device.bram18 && luts <= device.luts,
        compute_ms,
        memory_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_core::skynet::{SkyNetConfig, Variant};
    use skynet_nn::Act;

    fn skynet_desc() -> NetDesc {
        SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320)
    }

    #[test]
    fn fig2c_packing_step() {
        // FM16: W15 needs a full DSP per mult, W14 packs two per DSP.
        assert_eq!(dsp_per_mac(15, 16), 1.0);
        assert_eq!(dsp_per_mac(14, 16), 0.5);
        assert_eq!(dsp_usage(128, QuantScheme::new(15, 16)), 128);
        assert_eq!(dsp_usage(128, QuantScheme::new(14, 16)), 64);
    }

    #[test]
    fn fig2b_bram_monotone_in_bits_and_size() {
        let peak = 100_000;
        let b12 = bram_usage(peak, 12);
        let b16 = bram_usage(peak, 16);
        assert!(b12 < b16);
        // Resize factor 0.78 ⇒ 0.78² ≈ 0.61 of the elements ⇒ roughly
        // 0.6× the blocks (the "save half memory below 0.9" effect).
        let small = bram_usage((peak as f64 * 0.78 * 0.78) as usize, 16);
        assert!((small as f64) < b16 as f64 * 0.65);
    }

    #[test]
    fn skynet_fits_ultra96_and_hits_contest_fps_band() {
        let est = estimate(
            &skynet_desc(),
            &FpgaDevice::ultra96(),
            QuantScheme::new(11, 9),
            4,
        );
        assert!(est.feasible, "{est:?}");
        // The contest result is 25.05 FPS; the model should land in the
        // same band (memory-bound regime), not at the compute roofline.
        assert!(
            est.fps > 10.0 && est.fps < 60.0,
            "fps {} (compute {} ms, memory {} ms)",
            est.fps,
            est.compute_ms,
            est.memory_ms
        );
        assert!(
            est.memory_ms > est.compute_ms,
            "SkyNet on Ultra96 is memory-bound"
        );
    }

    #[test]
    fn resnet50_is_much_slower_than_skynet_on_fpga() {
        let sky = estimate(
            &skynet_desc(),
            &FpgaDevice::ultra96(),
            QuantScheme::new(11, 9),
            4,
        );
        let res = estimate(
            &skynet_zoo_resnet50_desc(),
            &FpgaDevice::ultra96(),
            QuantScheme::new(11, 9),
            4,
        );
        assert!(res.latency_ms > 4.0 * sky.latency_ms);
    }

    fn skynet_zoo_resnet50_desc() -> NetDesc {
        // A local stand-in with ResNet-50-like mass to avoid a dev-dep
        // cycle: 50 convs of 256→256×3×3 at 40×80.
        let mut layers = Vec::new();
        let mut in_c = 3;
        for _ in 0..50 {
            layers.push(LayerDesc::Conv {
                in_c,
                out_c: 256,
                k: 3,
                s: 1,
                p: 1,
            });
            in_c = 256;
        }
        NetDesc::new(3, 40, 80, layers)
    }

    #[test]
    fn batching_amortizes_weight_loads() {
        let d = FpgaDevice::ultra96();
        let s = QuantScheme::new(11, 9);
        let b1 = estimate(&skynet_desc(), &d, s, 1);
        let b4 = estimate(&skynet_desc(), &d, s, 4);
        assert!(b4.fps > b1.fps, "batch 4 {} ≤ batch 1 {}", b4.fps, b1.fps);
    }

    #[test]
    fn pynq_is_slower_than_ultra96() {
        let s = QuantScheme::new(11, 9);
        let u = estimate(&skynet_desc(), &FpgaDevice::ultra96(), s, 4);
        let p = estimate(&skynet_desc(), &FpgaDevice::pynq_z1(), s, 4);
        assert!(p.fps < u.fps);
    }

    #[test]
    fn ip_pool_respects_budget() {
        let d = FpgaDevice::ultra96();
        for (w, f) in [(11u8, 9u8), (14, 16), (15, 16), (8, 8)] {
            let pool = IpPool::fit(&d, QuantScheme::new(w, f));
            assert!(pool.dsp() <= d.dsp, "{pool:?}");
        }
    }

    #[test]
    fn dedicated_ips_are_slower_and_hungrier_than_shared() {
        let desc = skynet_desc();
        let s = QuantScheme::new(11, 9);
        let shared = estimate(&desc, &FpgaDevice::ultra96(), s, 4);
        let dedicated = estimate_dedicated(&desc, &FpgaDevice::ultra96(), s);
        assert!(dedicated.compute_ms > shared.compute_ms * 2.0);
        assert!(!dedicated.feasible || dedicated.latency_ms > shared.latency_ms);
    }

    #[test]
    fn peak_gops_near_paper_number() {
        // §6.4: 144 GOPS @ 200 MHz. With 360 DSPs at 1 DSP/MAC the raw
        // array peak is 2·360·200 MHz = 144 GOPS.
        let gops = FpgaDevice::ultra96().peak_gops(QuantScheme::new(16, 16));
        assert!((gops - 144.0).abs() < 1.0, "{gops}");
    }
}
