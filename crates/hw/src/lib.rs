//! # skynet-hw
//!
//! The hardware co-design layer of the reproduction:
//!
//! * [`quant`] — fixed-point quantization of weights and feature maps
//!   (Table 7 schemes, Fig. 2(a) sweeps) on top of
//!   [`skynet_nn::Mode::QuantEval`],
//! * [`fpga`] — the IP-based FPGA model after Hao et al. (DAC'19): shared
//!   DW/PW/pool IPs, DSP-packing arithmetic (Fig. 2(c)), BRAM buffer
//!   sizing (Fig. 2(b)), end-to-end latency and resource estimation for
//!   Ultra96 and Pynq-Z1,
//! * [`gpu`] — roofline latency model for the TX2 and 1080Ti,
//! * [`energy`] — the power/energy model feeding the contest score,
//! * [`score`] — the official DAC-SDC scoring (Eqs. 2–5),
//! * [`tiling`] — the input batch-and-tiling buffer plan of Fig. 9,
//! * [`lut`] — the look-up-table latency approximation the paper argues
//!   against (§2.2), for head-to-head comparison,
//! * [`pipeline`] — the task-partitioned three-stage pipeline of Fig. 10,
//!   implemented with real threads and measured for the §6.3 speedup,
//!   plus a supervised, fault-tolerant variant (deadline watchdog,
//!   bounded retries, degrade-don't-die policies) for unattended
//!   deployment,
//! * [`fault`] — a deterministic fault-injection harness (seeded,
//!   frame-index-keyed schedules of panics, errors and stalls) that makes
//!   every recovery path of the supervised pipeline testable.
//!
//! Device constants come from the paper (§6.4: Ultra96 = 144 GOPS @
//! 200 MHz, TX2 = 665 GFLOPS @ 1300 MHz) and public datasheets; each
//! constant is documented where it is defined.

#![deny(missing_docs)]

pub mod energy;
pub mod fault;
pub mod fpga;
pub mod gpu;
pub mod lut;
pub mod pipeline;
pub mod quant;
pub mod score;
pub mod tiling;
