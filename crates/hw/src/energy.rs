//! Power and energy model feeding the DAC-SDC score (Eqs. 3–4).
//!
//! The contest measures wall power while the system processes the test
//! set; energy per entry is `P · K / FPS` for `K` images. We model power
//! as an idle floor plus a dynamic term proportional to accelerator
//! utilization, calibrated to the published SkyNet measurements
//! (13.50 W on TX2, 7.26 W on Ultra96 — Tables 5–6).

/// Platform power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Idle (board + host CPU) power in watts.
    pub idle_w: f64,
    /// Dynamic power at full accelerator utilization, watts.
    pub dynamic_w: f64,
}

impl PowerModel {
    /// Jetson TX2 board: ~5 W idle at max clocks, ~9.5 W dynamic under a
    /// pipelined full-utilization detection workload (total ≈ 13.5 W, the
    /// Table 5 SkyNet figure).
    pub fn tx2() -> Self {
        PowerModel {
            idle_w: 4.5,
            dynamic_w: 9.5,
        }
    }

    /// Ultra96 board: ~3 W idle, ~4.5 W dynamic (total ≈ 7.3 W, the
    /// Table 6 SkyNet figure).
    pub fn ultra96() -> Self {
        PowerModel {
            idle_w: 3.0,
            dynamic_w: 4.5,
        }
    }

    /// Total board power at a given accelerator utilization in `[0, 1]`.
    pub fn power_w(&self, utilization: f64) -> f64 {
        self.idle_w + self.dynamic_w * utilization.clamp(0.0, 1.0)
    }

    /// Energy in joules to process `images` frames at `fps` under the
    /// given utilization.
    pub fn energy_j(&self, images: usize, fps: f64, utilization: f64) -> f64 {
        assert!(fps > 0.0, "fps must be positive");
        self.power_w(utilization) * images as f64 / fps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_published_power() {
        assert!((PowerModel::tx2().power_w(0.95) - 13.5).abs() < 0.6);
        assert!((PowerModel::ultra96().power_w(0.95) - 7.26).abs() < 0.4);
    }

    #[test]
    fn energy_scales_inversely_with_fps() {
        let m = PowerModel::ultra96();
        let slow = m.energy_j(50_000, 10.0, 1.0);
        let fast = m.energy_j(50_000, 40.0, 1.0);
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::tx2();
        assert_eq!(m.power_w(2.0), m.power_w(1.0));
        assert_eq!(m.power_w(-1.0), m.power_w(0.0));
    }
}
