//! Roofline-style GPU latency model for the TX2 (contest device) and the
//! 1080Ti (tracking evaluation device, §7).
//!
//! Per layer, the model charges `max(FLOPs / (peak × efficiency),
//! bytes / bandwidth)` plus a fixed kernel-launch overhead. Efficiency is
//! per layer type: dense convolutions map well onto cuDNN; depth-wise
//! convolutions are notoriously memory-bound on GPUs (one of the reasons
//! SkyNet's GPU win margin comes from the *system* pipeline rather than
//! raw kernel speed, §6.3).

use skynet_core::desc::{LayerDesc, NetDesc};

/// A GPU device model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDevice {
    /// Device name.
    pub name: &'static str,
    /// Peak fp32 throughput, GFLOPS.
    pub peak_gflops: f64,
    /// Effective DRAM bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Per-kernel launch overhead, microseconds.
    pub launch_us: f64,
    /// Achieved fraction of peak for dense convolutions.
    pub conv_efficiency: f64,
    /// Achieved fraction of peak for depth-wise convolutions.
    pub dw_efficiency: f64,
}

impl GpuDevice {
    /// NVIDIA Jetson TX2: 665 GFLOPS fp32 @ 1300 MHz (§1, §6.4), ~40 GB/s
    /// LPDDR4. Launch overhead is high on embedded Tegra drivers.
    pub fn tx2() -> Self {
        GpuDevice {
            name: "TX2",
            peak_gflops: 665.0,
            bandwidth_gbps: 40.0,
            launch_us: 60.0,
            conv_efficiency: 0.45,
            dw_efficiency: 0.06,
        }
    }

    /// NVIDIA GTX 1080Ti: 11 340 GFLOPS fp32, 484 GB/s GDDR5X.
    pub fn gtx1080ti() -> Self {
        GpuDevice {
            name: "1080Ti",
            peak_gflops: 11_340.0,
            bandwidth_gbps: 484.0,
            launch_us: 8.0,
            conv_efficiency: 0.55,
            dw_efficiency: 0.10,
        }
    }
}

/// GPU latency estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuEstimate {
    /// Latency per frame, milliseconds.
    pub latency_ms: f64,
    /// Throughput, frames per second (inference only; the system pipeline
    /// of Fig. 10 multiplies this by overlapping pre/post-processing).
    pub fps: f64,
    /// Compute share of the latency, ms.
    pub compute_ms: f64,
    /// Launch-overhead share of the latency, ms.
    pub overhead_ms: f64,
}

/// Estimates per-frame inference latency of `net` on `device`.
pub fn estimate(net: &NetDesc, device: &GpuDevice) -> GpuEstimate {
    let mut compute_ms = 0f64;
    let mut overhead_ms = 0f64;
    for ls in net.walk() {
        let macs = ls.layer.macs(ls.h_in, ls.w_in) as f64;
        let flops = 2.0 * macs;
        let (eff, is_kernel) = match ls.layer {
            LayerDesc::Conv { .. } => (device.conv_efficiency, true),
            LayerDesc::DwConv { .. } => (device.dw_efficiency, true),
            LayerDesc::Pool { .. } | LayerDesc::Bn { .. } | LayerDesc::Act { .. } => (0.05, true),
            LayerDesc::Reorg { .. } | LayerDesc::Concat { .. } => (0.05, true),
        };
        let t_compute = flops / (device.peak_gflops * 1e9 * eff) * 1e3;
        // Memory floor: inputs + outputs at 4 bytes.
        let bytes = 4.0 * ((ls.c_in * ls.h_in * ls.w_in) + (ls.c_out * ls.h_out * ls.w_out)) as f64;
        let t_mem = bytes / (device.bandwidth_gbps * 1e9) * 1e3;
        compute_ms += t_compute.max(t_mem);
        if is_kernel {
            overhead_ms += device.launch_us / 1e3;
        }
    }
    let latency_ms = compute_ms + overhead_ms;
    GpuEstimate {
        latency_ms,
        fps: 1e3 / latency_ms,
        compute_ms,
        overhead_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_core::skynet::{SkyNetConfig, Variant};
    use skynet_nn::Act;

    fn skynet_desc() -> NetDesc {
        SkyNetConfig::new(Variant::C, Act::Relu6).descriptor(160, 320)
    }

    #[test]
    fn skynet_tx2_in_contest_band() {
        // The contest system achieves 67 FPS with a pipelined system;
        // §6.3 reports a 3.35× system speedup, implying raw inference in
        // the ~20–80 FPS band. The model should land there.
        let est = estimate(&skynet_desc(), &GpuDevice::tx2());
        assert!(
            est.fps > 20.0 && est.fps < 120.0,
            "fps {} (compute {} ms, overhead {} ms)",
            est.fps,
            est.compute_ms,
            est.overhead_ms
        );
    }

    #[test]
    fn faster_device_is_faster() {
        let d = skynet_desc();
        let tx2 = estimate(&d, &GpuDevice::tx2());
        let ti = estimate(&d, &GpuDevice::gtx1080ti());
        assert!(ti.latency_ms < tx2.latency_ms);
    }

    #[test]
    fn bigger_network_is_slower() {
        let small = SkyNetConfig::new(Variant::A, Act::Relu6).descriptor(160, 320);
        let big = skynet_desc();
        let d = GpuDevice::tx2();
        assert!(estimate(&big, &d).latency_ms > estimate(&small, &d).latency_ms);
    }

    #[test]
    fn overhead_matters_on_embedded_gpu() {
        let est = estimate(&skynet_desc(), &GpuDevice::tx2());
        // Many small layers ⇒ launch overhead is a visible fraction.
        assert!(est.overhead_ms > 0.2 * est.compute_ms);
    }
}
