//! The task-partitioned system pipeline of Fig. 10 (§6.3, §6.4.2).
//!
//! Running SkyNet end-to-end involves four steps — batched input fetch,
//! pre-processing (resize + normalize), DNN inference, and
//! post-processing (box decode + buffering). The straightforward serial
//! schedule wastes resources; the paper merges fetch into pre-processing
//! and overlaps the three remaining stages with multithreading, reporting
//! a 3.35× speedup on the TX2 and enabling 25.05 FPS on the Ultra96.
//!
//! This module is a **real** three-stage pipeline built on the standard
//! library's bounded channels: [`run_serial`] and [`run_pipelined`]
//! execute the same stage closures over the same frames and are timed
//! with `Instant`, so the reported speedup is measured, not modeled.

use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

/// The three pipeline stages as boxed closures over a frame payload `T`.
///
/// Stages must be `Send` so the pipelined schedule can move them onto
/// worker threads.
pub struct Stages<T, U, V> {
    /// Pre-processing: fetch + resize + normalize.
    pub pre: Box<dyn Fn(usize) -> T + Send>,
    /// DNN inference.
    pub infer: Box<dyn Fn(T) -> U + Send>,
    /// Post-processing: decode + buffer.
    pub post: Box<dyn Fn(U) -> V + Send>,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Frames processed.
    pub frames: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Throughput in frames per second.
    pub fps: f64,
}

impl RunReport {
    fn new(frames: usize, elapsed: Duration) -> Self {
        RunReport {
            frames,
            elapsed,
            fps: frames as f64 / elapsed.as_secs_f64().max(1e-9),
        }
    }
}

/// Executes the stages strictly serially over `frames` frames (the
/// baseline schedule of Fig. 10).
pub fn run_serial<T, U, V>(frames: usize, stages: &Stages<T, U, V>) -> RunReport {
    let start = Instant::now();
    for i in 0..frames {
        let t = (stages.pre)(i);
        let u = (stages.infer)(t);
        let _ = (stages.post)(u);
    }
    RunReport::new(frames, start.elapsed())
}

/// Executes the stages as a three-thread pipeline with bounded channels
/// (depth 4), overlapping pre-processing, inference and post-processing.
pub fn run_pipelined<T, U, V>(frames: usize, stages: Stages<T, U, V>) -> RunReport
where
    T: Send,
    U: Send,
    V: Send,
{
    let Stages { pre, infer, post } = stages;
    let (tx_pre, rx_pre) = sync_channel::<T>(4);
    let (tx_inf, rx_inf) = sync_channel::<U>(4);
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..frames {
                if tx_pre.send(pre(i)).is_err() {
                    return;
                }
            }
        });
        scope.spawn(move || {
            for t in rx_pre {
                if tx_inf.send(infer(t)).is_err() {
                    return;
                }
            }
        });
        let sink = scope.spawn(move || {
            let mut n = 0usize;
            for u in rx_inf {
                let _ = post(u);
                n += 1;
            }
            n
        });
        let done = sink.join().expect("post stage panicked");
        assert_eq!(done, frames, "pipeline dropped frames");
        start.elapsed()
    });
    RunReport::new(frames, elapsed)
}

/// Serial-vs-pipelined comparison (the §6.3 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupReport {
    /// Serial schedule result.
    pub serial: RunReport,
    /// Pipelined schedule result.
    pub pipelined: RunReport,
    /// `pipelined.fps / serial.fps`.
    pub speedup: f64,
}

/// Runs both schedules over `frames` frames with stage workloads of the
/// given durations (microseconds). Used by the Fig. 10 bench; real-model
/// pipelines build their own [`Stages`].
///
/// Stage waits use [`wait_us`] (a sleep), which models the contest
/// systems faithfully: pre- and post-processing occupy the host CPU while
/// *inference occupies a different device* (the TX2's GPU or the
/// Ultra96's fabric), so from the scheduling thread's perspective each
/// stage is a wait on an external resource. This also keeps the
/// measurement meaningful on single-core CI machines, where compute-bound
/// spins cannot physically overlap.
pub fn measure_synthetic(frames: usize, pre_us: u64, infer_us: u64, post_us: u64) -> SpeedupReport {
    let mk = || Stages {
        pre: Box::new(move |i: usize| {
            wait_us(pre_us);
            i
        }),
        infer: Box::new(move |i: usize| {
            wait_us(infer_us);
            i
        }),
        post: Box::new(move |i: usize| {
            wait_us(post_us);
            i
        }),
    };
    let serial = run_serial(frames, &mk());
    let pipelined = run_pipelined(frames, mk());
    SpeedupReport {
        serial,
        pipelined,
        speedup: pipelined.fps / serial.fps,
    }
}

/// Spins for approximately `us` microseconds — a compute-bound CPU stage.
/// Only meaningful for overlap measurements on multi-core hosts.
pub fn busy_us(us: u64) {
    let end = Instant::now() + Duration::from_micros(us);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Waits `us` microseconds by sleeping — a stage bound by an external
/// device (accelerator, storage), which is what each pipeline stage waits
/// on in the paper's system designs.
pub fn wait_us(us: u64) {
    std::thread::sleep(Duration::from_micros(us));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_balanced_stages_approaches_3x() {
        // Three equal 300 µs stages: serial = 900 µs/frame, pipelined →
        // ~300 µs/frame. Accept ≥ 1.8× under CI noise (the bench binary
        // reports the precise figure).
        let report = measure_synthetic(60, 300, 300, 300);
        assert!(
            report.speedup > 1.8,
            "speedup {} (serial {:.1} fps, pipelined {:.1} fps)",
            report.speedup,
            report.serial.fps,
            report.pipelined.fps
        );
    }

    #[test]
    fn pipelined_bounded_by_slowest_stage() {
        let report = measure_synthetic(40, 100, 500, 100);
        // Pipe rate ≤ 1/500 µs with some slack.
        assert!(report.pipelined.fps <= 1e6 / 500.0 * 1.25);
        // And serial is slower than the pipe.
        assert!(report.speedup > 1.0);
    }

    #[test]
    fn all_frames_pass_through() {
        let counted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = counted.clone();
        let stages = Stages {
            pre: Box::new(|i: usize| i),
            infer: Box::new(|i: usize| i * 2),
            post: Box::new(move |i: usize| {
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                i
            }),
        };
        let report = run_pipelined(25, stages);
        assert_eq!(report.frames, 25);
        assert_eq!(counted.load(std::sync::atomic::Ordering::SeqCst), 25);
    }

    #[test]
    fn serial_report_counts_frames() {
        let stages = Stages {
            pre: Box::new(|i: usize| i),
            infer: Box::new(|i: usize| i),
            post: Box::new(|i: usize| i),
        };
        let r = run_serial(10, &stages);
        assert_eq!(r.frames, 10);
        assert!(r.fps > 0.0);
    }
}
