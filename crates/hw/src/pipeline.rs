//! The task-partitioned system pipeline of Fig. 10 (§6.3, §6.4.2).
//!
//! Running SkyNet end-to-end involves four steps — batched input fetch,
//! pre-processing (resize + normalize), DNN inference, and
//! post-processing (box decode + buffering). The straightforward serial
//! schedule wastes resources; the paper merges fetch into pre-processing
//! and overlaps the three remaining stages with multithreading, reporting
//! a 3.35× speedup on the TX2 and enabling 25.05 FPS on the Ultra96.
//!
//! This module provides **two** executions of that three-stage design:
//!
//! * [`run_serial`] / [`run_pipelined`] — the measured Fig. 10
//!   comparison, built on the standard library's bounded channels. A
//!   stage panic or a dropped frame is reported as a [`PipelineError`]
//!   instead of aborting the process.
//! * [`run_supervised`] — the fault-tolerant variant for unattended
//!   deployment: stages return `Result`, every attempt is guarded
//!   against panics, a per-frame deadline watchdog flags stalls, failed
//!   attempts are retried a bounded number of times with deterministic
//!   backoff, and frames whose retries are exhausted are handled by a
//!   configurable [`DegradePolicy`] — dropped, or *coasted* by
//!   re-emitting the last good output, exactly as a single-object
//!   tracker coasts through occlusion on a continuous video stream.
//!
//! The supervised path pairs with [`crate::fault`], a deterministic
//! fault-injection harness, so every recovery branch is testable.

use skynet_tensor::telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::sync_channel;
use std::time::{Duration, Instant};

/// The three pipeline stages as boxed closures over a frame payload `T`.
///
/// Stages must be `Send` so the pipelined schedule can move them onto
/// worker threads.
pub struct Stages<T, U, V> {
    /// Pre-processing: fetch + resize + normalize.
    pub pre: Box<dyn Fn(usize) -> T + Send>,
    /// DNN inference.
    pub infer: Box<dyn Fn(T) -> U + Send>,
    /// Post-processing: decode + buffer.
    pub post: Box<dyn Fn(U) -> V + Send>,
}

/// Identifies a pipeline stage in errors, fault schedules and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Fetch + pre-processing.
    Pre,
    /// DNN inference.
    Infer,
    /// Post-processing.
    Post,
}

impl std::fmt::Display for StageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageId::Pre => write!(f, "pre"),
            StageId::Infer => write!(f, "infer"),
            StageId::Post => write!(f, "post"),
        }
    }
}

/// Error raised by a fallible stage ([`SupStages`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageError {
    /// Human-readable failure description.
    pub reason: String,
}

impl StageError {
    /// Creates a stage error from any displayable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        StageError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stage failed: {}", self.reason)
    }
}

impl std::error::Error for StageError {}

/// A failed pipeline run (legacy `run_pipelined` schedule).
#[derive(Debug)]
pub enum PipelineError {
    /// A stage thread panicked; the run was abandoned cleanly.
    StagePanicked(StageId),
    /// The sink observed fewer frames than were submitted.
    FramesDropped {
        /// Frames submitted to the pipeline.
        expected: usize,
        /// Frames that reached the sink.
        emitted: usize,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::StagePanicked(s) => write!(f, "pipeline {s} stage panicked"),
            PipelineError::FramesDropped { expected, emitted } => {
                write!(f, "pipeline dropped frames: {emitted}/{expected} emitted")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// Per-frame outcome counters of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameCounters {
    /// Frames that completed every stage cleanly (possibly after retries).
    pub processed: usize,
    /// Frames that exhausted retries and were handled by
    /// [`DegradePolicy::CoastLastGood`] (the previous output re-emitted).
    pub degraded: usize,
    /// Frames that produced no output: failures under
    /// [`DegradePolicy::DropFrame`], or coast failures with no previous
    /// good output to re-emit.
    pub dropped: usize,
    /// Total retry attempts across all stages and frames (each retry is
    /// counted, whether or not it eventually succeeded).
    pub retried: usize,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Frames emitted by the sink (equals the submitted count unless a
    /// degradation policy dropped some).
    pub frames: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Throughput in frames per second.
    pub fps: f64,
    /// Per-frame outcome counters. For the non-supervised schedules every
    /// frame is `processed`.
    pub counters: FrameCounters,
}

impl RunReport {
    fn new(frames: usize, elapsed: Duration) -> Self {
        RunReport::with_counters(
            frames,
            elapsed,
            FrameCounters {
                processed: frames,
                ..FrameCounters::default()
            },
        )
    }

    fn with_counters(frames: usize, elapsed: Duration, counters: FrameCounters) -> Self {
        RunReport {
            frames,
            elapsed,
            fps: frames as f64 / elapsed.as_secs_f64().max(1e-9),
            counters,
        }
    }
}

/// Executes the stages strictly serially over `frames` frames (the
/// baseline schedule of Fig. 10).
pub fn run_serial<T, U, V>(frames: usize, stages: &Stages<T, U, V>) -> RunReport {
    let start = Instant::now();
    for i in 0..frames {
        let t = (stages.pre)(i);
        let u = (stages.infer)(t);
        let _ = (stages.post)(u);
    }
    RunReport::new(frames, start.elapsed())
}

/// Executes the stages as a three-thread pipeline with bounded channels
/// (depth 4), overlapping pre-processing, inference and post-processing.
///
/// # Errors
///
/// Returns [`PipelineError::StagePanicked`] when a stage panics (the
/// remaining stages wind down via closed channels) and
/// [`PipelineError::FramesDropped`] if the sink observed fewer frames
/// than were submitted. The process is never aborted; the Fig. 10 bench
/// binaries report a failed run instead of dying.
pub fn run_pipelined<T, U, V>(
    frames: usize,
    stages: Stages<T, U, V>,
) -> Result<RunReport, PipelineError>
where
    T: Send,
    U: Send,
    V: Send,
{
    let Stages { pre, infer, post } = stages;
    let (tx_pre, rx_pre) = sync_channel::<T>(4);
    let (tx_inf, rx_inf) = sync_channel::<U>(4);
    let start = Instant::now();
    let (elapsed, joins) = std::thread::scope(|scope| {
        let h_pre = scope.spawn(move || {
            for i in 0..frames {
                if tx_pre.send(pre(i)).is_err() {
                    return;
                }
            }
        });
        let h_inf = scope.spawn(move || {
            for t in rx_pre {
                if tx_inf.send(infer(t)).is_err() {
                    return;
                }
            }
        });
        let sink = scope.spawn(move || {
            let mut n = 0usize;
            for u in rx_inf {
                let _ = post(u);
                n += 1;
            }
            n
        });
        let done = sink.join();
        let elapsed = start.elapsed();
        // Upstream workers have necessarily finished (their send targets
        // are gone), so these joins do not wait.
        (elapsed, (h_pre.join(), h_inf.join(), done))
    });
    let (pre_join, inf_join, done) = joins;
    if pre_join.is_err() {
        return Err(PipelineError::StagePanicked(StageId::Pre));
    }
    if inf_join.is_err() {
        return Err(PipelineError::StagePanicked(StageId::Infer));
    }
    let emitted = done.map_err(|_| PipelineError::StagePanicked(StageId::Post))?;
    if emitted != frames {
        return Err(PipelineError::FramesDropped {
            expected: frames,
            emitted,
        });
    }
    Ok(RunReport::new(frames, elapsed))
}

/// Serial-vs-pipelined comparison (the §6.3 experiment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupReport {
    /// Serial schedule result.
    pub serial: RunReport,
    /// Pipelined schedule result.
    pub pipelined: RunReport,
    /// `pipelined.fps / serial.fps`.
    pub speedup: f64,
}

/// Runs both schedules over `frames` frames with stage workloads of the
/// given durations (microseconds). Used by the Fig. 10 bench; real-model
/// pipelines build their own [`Stages`].
///
/// Stage waits use [`wait_us`] (a sleep), which models the contest
/// systems faithfully: pre- and post-processing occupy the host CPU while
/// *inference occupies a different device* (the TX2's GPU or the
/// Ultra96's fabric), so from the scheduling thread's perspective each
/// stage is a wait on an external resource. This also keeps the
/// measurement meaningful on single-core CI machines, where compute-bound
/// spins cannot physically overlap.
///
/// # Errors
///
/// Propagates [`PipelineError`] from the pipelined schedule.
pub fn measure_synthetic(
    frames: usize,
    pre_us: u64,
    infer_us: u64,
    post_us: u64,
) -> Result<SpeedupReport, PipelineError> {
    let mk = || Stages {
        pre: Box::new(move |i: usize| {
            wait_us(pre_us);
            i
        }),
        infer: Box::new(move |i: usize| {
            wait_us(infer_us);
            i
        }),
        post: Box::new(move |i: usize| {
            wait_us(post_us);
            i
        }),
    };
    let serial = run_serial(frames, &mk());
    let pipelined = run_pipelined(frames, mk())?;
    Ok(SpeedupReport {
        serial,
        pipelined,
        speedup: pipelined.fps / serial.fps,
    })
}

// ---------------------------------------------------------------------------
// Supervised, fault-tolerant execution
// ---------------------------------------------------------------------------

/// Per-attempt context handed to fallible stages: which frame is being
/// processed and which attempt this is (0 = first try). Fault-injection
/// schedules key on both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCtx {
    /// Frame index in `0..frames`.
    pub frame: usize,
    /// Attempt number for this stage on this frame (0-based).
    pub attempt: u32,
}

/// A fallible source stage: produces the frame payload from the context.
pub type SourceStage<T> = Box<dyn Fn(&FrameCtx) -> Result<T, StageError> + Send>;

/// A fallible transform stage: consumes the upstream payload.
pub type TransformStage<I, O> = Box<dyn Fn(&FrameCtx, I) -> Result<O, StageError> + Send>;

/// Fallible pipeline stages for the supervised schedule.
///
/// Unlike [`Stages`], each closure receives the [`FrameCtx`] and returns
/// a `Result`; the supervisor retries failures, so inputs are passed by
/// value and re-cloned per attempt (`T`/`U` must be `Clone`).
pub struct SupStages<T, U, V> {
    /// Pre-processing: fetch + resize + normalize.
    pub pre: SourceStage<T>,
    /// DNN inference.
    pub infer: TransformStage<T, U>,
    /// Post-processing: decode + buffer.
    pub post: TransformStage<U, V>,
}

impl<T, U, V> SupStages<T, U, V>
where
    T: 'static,
    U: 'static,
    V: 'static,
{
    /// Lifts infallible [`Stages`] into the supervised signature.
    pub fn from_stages(stages: Stages<T, U, V>) -> Self {
        let Stages { pre, infer, post } = stages;
        SupStages {
            pre: Box::new(move |ctx: &FrameCtx| Ok(pre(ctx.frame))),
            infer: Box::new(move |_: &FrameCtx, t: T| Ok(infer(t))),
            post: Box::new(move |_: &FrameCtx, u: U| Ok(post(u))),
        }
    }
}

/// What the supervisor does with a frame whose stage retries are
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Omit the frame from the output stream.
    DropFrame,
    /// Re-emit the last successfully processed output — the
    /// single-object-tracking degradation of both SkyNet papers: on a
    /// continuous video stream the best guess for a lost frame is the
    /// previous detection.
    ///
    /// **Before the first good frame there is nothing to coast on.** A
    /// frame that exhausts its retries while `last_good` is still empty
    /// degrades to [`DegradePolicy::DropFrame`] semantics for that frame alone: it is
    /// omitted from the output stream and accounted in
    /// [`FrameCounters::dropped`] (not `degraded` — nothing was
    /// re-emitted). Coasting resumes as soon as any frame completes
    /// cleanly. The serving engine's per-stream coast fallback follows
    /// the same rule.
    #[default]
    CoastLastGood,
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupervisorConfig {
    /// Extra attempts per stage per frame after the first (0 = no retry).
    pub max_retries: u32,
    /// Base backoff slept before retry `n` (1-based): `backoff · 2^(n-1)`.
    /// Deterministic — no jitter — so recovery timelines are reproducible.
    pub backoff: Duration,
    /// Per-stage, per-attempt wall-clock budget. An attempt whose stage
    /// call outlives the deadline is treated as failed even though it
    /// eventually returned (the result is discarded). `None` disables the
    /// watchdog. Note this is detection, not preemption: a blocked stage
    /// thread cannot be killed, only outwaited and its frame degraded.
    pub deadline: Option<Duration>,
    /// Failure handling once retries are exhausted.
    pub policy: DegradePolicy,
    /// Bounded-channel depth between stages.
    pub channel_depth: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            backoff: Duration::from_millis(1),
            deadline: None,
            policy: DegradePolicy::CoastLastGood,
            channel_depth: 4,
        }
    }
}

/// Outcome of a supervised run: the report plus the emitted outputs in
/// frame order.
#[derive(Debug, Clone)]
pub struct SupervisedRun<V> {
    /// Timing and per-frame outcome counters.
    pub report: RunReport,
    /// Emitted outputs, in frame order. Under
    /// [`DegradePolicy::CoastLastGood`] this has one entry per input
    /// frame (unless an early frame failed before any good output);
    /// under [`DegradePolicy::DropFrame`] failed frames are absent.
    pub outputs: Vec<V>,
}

/// Message passed down the supervised pipeline. A frame that has already
/// failed upstream flows through as `Err(())` so ordering and counters
/// stay exact.
struct Flow<P> {
    payload: Result<P, ()>,
    /// Retry attempts accumulated by upstream stages for this frame.
    retried: u32,
}

/// Telemetry identifiers per stage — static so span guards and latency
/// histograms never allocate on the frame path.
fn stage_telemetry(stage: StageId) -> (&'static str, &'static str) {
    match stage {
        StageId::Pre => ("pipeline.pre", "pipeline.pre.ms"),
        StageId::Infer => ("pipeline.infer", "pipeline.infer.ms"),
        StageId::Post => ("pipeline.post", "pipeline.post.ms"),
    }
}

/// Runs one stage with panic isolation, the deadline watchdog and
/// bounded deterministic-backoff retry. Returns the output (or `Err` when
/// every attempt failed) and the number of retries consumed.
///
/// Every attempt is traced as a `pipeline.<stage>` span and its latency
/// recorded into the `pipeline.<stage>.ms` histogram, so a Perfetto view
/// of a supervised run shows stage occupancy per thread, retries
/// included.
fn supervise_stage<I: Clone, O>(
    stage: impl Fn(&FrameCtx, I) -> Result<O, StageError>,
    stage_id: StageId,
    frame: usize,
    input: &I,
    cfg: &SupervisorConfig,
) -> (Result<O, ()>, u32) {
    let (span_name, hist_name) = stage_telemetry(stage_id);
    let mut retries = 0u32;
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            retries += 1;
            let factor = 1u32 << (attempt - 1).min(16);
            std::thread::sleep(cfg.backoff.saturating_mul(factor));
        }
        let ctx = FrameCtx { frame, attempt };
        let span = telemetry::span(span_name);
        let started = Instant::now();
        // The closure is re-entered per attempt; AssertUnwindSafe is
        // sound because a failed attempt's partial state is confined to
        // the cloned input, which is discarded.
        let outcome = catch_unwind(AssertUnwindSafe(|| stage(&ctx, input.clone())));
        drop(span);
        if telemetry::metrics_enabled() {
            telemetry::histogram(hist_name, &telemetry::MS_BOUNDS)
                .record(started.elapsed().as_secs_f64() * 1e3);
        }
        match outcome {
            Ok(Ok(out)) => {
                if cfg.deadline.is_some_and(|d| started.elapsed() > d) {
                    continue; // watchdog: too late, discard and retry
                }
                return (Ok(out), retries);
            }
            Ok(Err(_)) | Err(_) => continue,
        }
    }
    (Err(()), retries)
}

/// Executes fallible stages under supervision: three worker threads with
/// bounded channels, per-attempt panic isolation, deadline watchdog,
/// bounded retries with deterministic backoff, and degradation instead of
/// abortion. The run always completes — there is no error return; frames
/// that could not be processed are accounted in
/// [`RunReport::counters`] and handled per [`SupervisorConfig::policy`].
pub fn run_supervised<T, U, V>(
    frames: usize,
    stages: SupStages<T, U, V>,
    cfg: &SupervisorConfig,
) -> SupervisedRun<V>
where
    T: Send + Clone,
    U: Send + Clone,
    V: Send + Clone,
{
    let SupStages { pre, infer, post } = stages;
    let (tx_pre, rx_pre) = sync_channel::<Flow<T>>(cfg.channel_depth.max(1));
    let (tx_inf, rx_inf) = sync_channel::<Flow<U>>(cfg.channel_depth.max(1));
    // Queue-depth gauges: std's bounded channels expose no length, so the
    // producer increments on send and the consumer decrements on receive.
    // The `&'static` registry handles move freely into the stage threads.
    let depth_pre = telemetry::gauge("pipeline.queue.pre_infer.depth");
    let depth_inf = telemetry::gauge("pipeline.queue.infer_post.depth");
    let start = Instant::now();
    let (outputs, counters, elapsed) = std::thread::scope(|scope| {
        let pre_cfg = *cfg;
        scope.spawn(move || {
            for i in 0..frames {
                let (payload, retried) =
                    supervise_stage(|ctx, (): ()| pre(ctx), StageId::Pre, i, &(), &pre_cfg);
                if tx_pre.send(Flow { payload, retried }).is_err() {
                    return;
                }
                if telemetry::metrics_enabled() {
                    depth_pre.add(1.0);
                }
            }
        });
        let inf_cfg = *cfg;
        scope.spawn(move || {
            for (i, msg) in rx_pre.into_iter().enumerate() {
                if telemetry::metrics_enabled() {
                    depth_pre.add(-1.0);
                }
                let flow = match msg.payload {
                    Ok(t) => {
                        let (payload, retried) =
                            supervise_stage(&infer, StageId::Infer, i, &t, &inf_cfg);
                        Flow {
                            payload,
                            retried: msg.retried + retried,
                        }
                    }
                    Err(()) => Flow {
                        payload: Err(()),
                        retried: msg.retried,
                    },
                };
                if tx_inf.send(flow).is_err() {
                    return;
                }
                if telemetry::metrics_enabled() {
                    depth_inf.add(1.0);
                }
            }
        });
        let sink_cfg = *cfg;
        let sink = scope.spawn(move || {
            let mut outputs: Vec<V> = Vec::with_capacity(frames);
            let mut counters = FrameCounters::default();
            let mut last_good: Option<V> = None;
            for (i, msg) in rx_inf.into_iter().enumerate() {
                if telemetry::metrics_enabled() {
                    depth_inf.add(-1.0);
                }
                counters.retried += msg.retried as usize;
                let result = match msg.payload {
                    Ok(u) => {
                        let (out, retried) =
                            supervise_stage(&post, StageId::Post, i, &u, &sink_cfg);
                        counters.retried += retried as usize;
                        out
                    }
                    Err(()) => Err(()),
                };
                match result {
                    Ok(v) => {
                        counters.processed += 1;
                        last_good = Some(v.clone());
                        outputs.push(v);
                    }
                    Err(()) => match (sink_cfg.policy, &last_good) {
                        (DegradePolicy::CoastLastGood, Some(good)) => {
                            counters.degraded += 1;
                            outputs.push(good.clone());
                        }
                        (DegradePolicy::CoastLastGood, None) | (DegradePolicy::DropFrame, _) => {
                            counters.dropped += 1;
                        }
                    },
                }
            }
            (outputs, counters)
        });
        let (outputs, counters) = sink.join().expect("supervised sink cannot panic");
        (outputs, counters, start.elapsed())
    });
    let emitted = outputs.len();
    // Fold the run's frame counters into the process-wide registry so a
    // long-lived deployment accumulates totals across runs; the same
    // values are returned in `RunReport::counters` for this run alone.
    if telemetry::metrics_enabled() {
        telemetry::counter("pipeline.frames.processed").add(counters.processed as u64);
        telemetry::counter("pipeline.frames.degraded").add(counters.degraded as u64);
        telemetry::counter("pipeline.frames.dropped").add(counters.dropped as u64);
        telemetry::counter("pipeline.frames.retried").add(counters.retried as u64);
    }
    SupervisedRun {
        report: RunReport::with_counters(emitted, elapsed, counters),
        outputs,
    }
}

/// Spins for approximately `us` microseconds — a compute-bound CPU stage.
/// Only meaningful for overlap measurements on multi-core hosts.
pub fn busy_us(us: u64) {
    let end = Instant::now() + Duration::from_micros(us);
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}

/// Waits `us` microseconds by sleeping — a stage bound by an external
/// device (accelerator, storage), which is what each pipeline stage waits
/// on in the paper's system designs.
pub fn wait_us(us: u64) {
    std::thread::sleep(Duration::from_micros(us));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_balanced_stages_approaches_3x() {
        // Three equal 300 µs stages: serial = 900 µs/frame, pipelined →
        // ~300 µs/frame. Accept ≥ 1.8× under CI noise (the bench binary
        // reports the precise figure).
        let report = measure_synthetic(60, 300, 300, 300).unwrap();
        assert!(
            report.speedup > 1.8,
            "speedup {} (serial {:.1} fps, pipelined {:.1} fps)",
            report.speedup,
            report.serial.fps,
            report.pipelined.fps
        );
    }

    #[test]
    fn pipelined_bounded_by_slowest_stage() {
        let report = measure_synthetic(40, 100, 500, 100).unwrap();
        // Pipe rate ≤ 1/500 µs with some slack.
        assert!(report.pipelined.fps <= 1e6 / 500.0 * 1.25);
        // And serial is slower than the pipe.
        assert!(report.speedup > 1.0);
    }

    #[test]
    fn all_frames_pass_through() {
        let counted = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let c2 = counted.clone();
        let stages = Stages {
            pre: Box::new(|i: usize| i),
            infer: Box::new(|i: usize| i * 2),
            post: Box::new(move |i: usize| {
                c2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                i
            }),
        };
        let report = run_pipelined(25, stages).unwrap();
        assert_eq!(report.frames, 25);
        assert_eq!(report.counters.processed, 25);
        assert_eq!(counted.load(std::sync::atomic::Ordering::SeqCst), 25);
    }

    #[test]
    fn serial_report_counts_frames() {
        let stages = Stages {
            pre: Box::new(|i: usize| i),
            infer: Box::new(|i: usize| i),
            post: Box::new(|i: usize| i),
        };
        let r = run_serial(10, &stages);
        assert_eq!(r.frames, 10);
        assert!(r.fps > 0.0);
    }

    fn identity_sup() -> SupStages<usize, usize, usize> {
        SupStages {
            pre: Box::new(|ctx: &FrameCtx| Ok(ctx.frame)),
            infer: Box::new(|_, i| Ok(i)),
            post: Box::new(|_, i| Ok(i)),
        }
    }

    #[test]
    fn supervised_clean_run_processes_everything_in_order() {
        let run = run_supervised(30, identity_sup(), &SupervisorConfig::default());
        assert_eq!(run.outputs, (0..30).collect::<Vec<_>>());
        assert_eq!(run.report.counters.processed, 30);
        assert_eq!(run.report.counters.degraded, 0);
        assert_eq!(run.report.counters.dropped, 0);
        assert_eq!(run.report.counters.retried, 0);
    }

    #[test]
    fn supervised_retry_recovers_transient_error() {
        // Infer fails on its first attempt for frame 5 only.
        let mut stages = identity_sup();
        stages.infer = Box::new(|ctx: &FrameCtx, i: usize| {
            if ctx.frame == 5 && ctx.attempt == 0 {
                Err(StageError::new("transient"))
            } else {
                Ok(i)
            }
        });
        let cfg = SupervisorConfig {
            backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        let run = run_supervised(10, stages, &cfg);
        assert_eq!(run.outputs, (0..10).collect::<Vec<_>>());
        assert_eq!(run.report.counters.processed, 10);
        assert_eq!(run.report.counters.retried, 1);
    }

    #[test]
    fn supervised_coasts_on_permanent_failure() {
        let mut stages = identity_sup();
        stages.post = Box::new(|ctx: &FrameCtx, i: usize| {
            if ctx.frame == 3 {
                Err(StageError::new("permanent"))
            } else {
                Ok(i)
            }
        });
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        let run = run_supervised(6, stages, &cfg);
        // Frame 3 re-emits frame 2's output.
        assert_eq!(run.outputs, vec![0, 1, 2, 2, 4, 5]);
        assert_eq!(run.report.counters.processed, 5);
        assert_eq!(run.report.counters.degraded, 1);
        assert_eq!(run.report.counters.retried, 1);
    }

    #[test]
    fn supervised_drop_policy_omits_failed_frames() {
        let mut stages = identity_sup();
        stages.pre = Box::new(|ctx: &FrameCtx| {
            if ctx.frame.is_multiple_of(2) {
                Err(StageError::new("permanent"))
            } else {
                Ok(ctx.frame)
            }
        });
        let cfg = SupervisorConfig {
            max_retries: 0,
            backoff: Duration::ZERO,
            policy: DegradePolicy::DropFrame,
            ..SupervisorConfig::default()
        };
        let run = run_supervised(8, stages, &cfg);
        assert_eq!(run.outputs, vec![1, 3, 5, 7]);
        assert_eq!(run.report.counters.dropped, 4);
        assert_eq!(run.report.counters.processed, 4);
    }

    #[test]
    fn supervised_deadline_flags_stalls() {
        let mut stages = identity_sup();
        stages.infer = Box::new(|ctx: &FrameCtx, i: usize| {
            if ctx.frame == 2 && ctx.attempt == 0 {
                wait_us(100_000); // 100 ms stall, way past the deadline
            }
            Ok(i)
        });
        let cfg = SupervisorConfig {
            max_retries: 1,
            backoff: Duration::ZERO,
            deadline: Some(Duration::from_millis(20)),
            ..SupervisorConfig::default()
        };
        let run = run_supervised(5, stages, &cfg);
        // The stalled attempt is discarded; the retry succeeds.
        assert_eq!(run.outputs, (0..5).collect::<Vec<_>>());
        assert_eq!(run.report.counters.processed, 5);
        assert_eq!(run.report.counters.retried, 1);
    }

    #[test]
    fn legacy_pipeline_reports_stage_panic_as_error() {
        let stages: Stages<usize, usize, usize> = Stages {
            pre: Box::new(|i| i),
            infer: Box::new(|i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            }),
            post: Box::new(|i| i),
        };
        match run_pipelined(10, stages) {
            Err(PipelineError::StagePanicked(StageId::Infer)) => {}
            other => panic!("expected infer panic error, got {other:?}"),
        }
    }
}
