//! Post-training fixed-point quantization (§6.4.1).
//!
//! A [`QuantScheme`] pairs a weight bit-width with a feature-map
//! bit-width. Applying a scheme fake-quantizes every parameter in place
//! (symmetric per-tensor, as [`skynet_tensor::ops::fake_quantize`]) and
//! evaluation then runs under [`Mode::QuantEval`] so each compute layer's
//! output feature map is quantized too. Table 7's four schemes are
//! provided as constants.

use skynet_nn::{Layer, Mode};
use skynet_tensor::ops::fake_quantize;

/// A weight/feature-map bit-width pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantScheme {
    /// Bits for weights.
    pub weight_bits: u8,
    /// Bits for intermediate feature maps.
    pub fm_bits: u8,
}

impl QuantScheme {
    /// Creates a scheme.
    pub fn new(weight_bits: u8, fm_bits: u8) -> Self {
        QuantScheme {
            weight_bits,
            fm_bits,
        }
    }

    /// Float32 baseline (scheme 0 of Table 7): no quantization.
    pub fn float32() -> Self {
        QuantScheme::new(32, 32)
    }

    /// The four fixed-point schemes explored in Table 7, from most to
    /// least precise. Note the argument order of
    /// [`QuantScheme::new(weight_bits, fm_bits)`](QuantScheme::new) is
    /// **weight-first**, while the paper's table reads feature-map-first;
    /// spelled out both ways, the four schemes are:
    ///
    /// | index | `weight_bits` | `fm_bits` | paper notation |
    /// |-------|---------------|-----------|----------------|
    /// | 0     | 11            | 9         | FM 9 / W 11    |
    /// | 1     | 10            | 9         | FM 9 / W 10    |
    /// | 2     | 11            | 8         | FM 8 / W 11    |
    /// | 3     | 10            | 8         | FM 8 / W 10    |
    ///
    /// These schemes are **analytic** (fake-quant): weights snap to a
    /// `weight_bits` grid but arithmetic stays f32, and feature maps are
    /// rounded after each layer under [`Mode::QuantEval`]. The
    /// *executable* integer path (`skynet_core::quant`) is a separate
    /// W8/FM8 design — `i8` storage, `i8×i8→i32` kernels — which is
    /// strictly narrower than every scheme here; the `quant_sweep` bench
    /// compares its measured IoU against scheme 3 (FM 8 / W 10), the
    /// closest analytic point.
    pub fn table7() -> [QuantScheme; 4] {
        [
            QuantScheme::new(11, 9),
            QuantScheme::new(10, 9),
            QuantScheme::new(11, 8),
            QuantScheme::new(10, 8),
        ]
    }

    /// Whether the scheme is effectively float (no quantization applied).
    pub fn is_float(&self) -> bool {
        self.weight_bits >= 24 && self.fm_bits >= 24
    }

    /// The evaluation mode implementing this scheme's feature-map side.
    pub fn eval_mode(&self) -> Mode {
        if self.fm_bits >= 24 {
            Mode::Eval
        } else {
            Mode::QuantEval {
                fm_bits: self.fm_bits,
            }
        }
    }

    /// Model parameter size in megabytes for `params` scalars under this
    /// scheme's weight width (float32 baseline: 4 bytes each).
    pub fn param_megabytes(&self, params: usize) -> f64 {
        let bits = if self.weight_bits >= 24 {
            32
        } else {
            self.weight_bits as usize
        };
        (params * bits) as f64 / 8.0 / (1024.0 * 1024.0)
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_float() {
            write!(f, "Float32/Float32")
        } else {
            write!(f, "FM{} bits / W{} bits", self.fm_bits, self.weight_bits)
        }
    }
}

/// Fake-quantizes every trainable parameter of `model` in place to
/// `weight_bits`. No-op for widths ≥ 24 bits.
pub fn quantize_weights(model: &mut dyn Layer, weight_bits: u8) {
    if weight_bits >= 24 {
        return;
    }
    model.visit_params(&mut |p| {
        p.value = fake_quantize(&p.value, weight_bits);
    });
}

/// Applies a full scheme to a model: weights in place, and returns the
/// [`Mode`] to evaluate under for the feature-map side.
pub fn apply_scheme(model: &mut dyn Layer, scheme: QuantScheme) -> Mode {
    quantize_weights(model, scheme.weight_bits);
    scheme.eval_mode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skynet_nn::{Conv2d, Sequential};
    use skynet_tensor::{conv::ConvGeometry, rng::SkyRng, Shape, Tensor};

    #[test]
    fn table7_schemes_are_ordered_most_to_least_precise() {
        let s = QuantScheme::table7();
        // Pin all four (weight_bits, fm_bits) pairs: the constructor is
        // weight-first even though the paper's table reads FM-first.
        assert_eq!(s[0], QuantScheme::new(11, 9)); // FM 9 / W 11
        assert_eq!(s[1], QuantScheme::new(10, 9)); // FM 9 / W 10
        assert_eq!(s[2], QuantScheme::new(11, 8)); // FM 8 / W 11
        assert_eq!(s[3], QuantScheme::new(10, 8)); // FM 8 / W 10
        for sch in s {
            assert_eq!(
                sch.to_string(),
                format!("FM{} bits / W{} bits", sch.fm_bits, sch.weight_bits)
            );
        }
        // The first dominates the last in both axes.
        assert!(s[0].weight_bits >= s[3].weight_bits && s[0].fm_bits >= s[3].fm_bits);
    }

    #[test]
    fn quantize_weights_snaps_parameters() {
        let mut rng = SkyRng::new(0);
        let mut net = Sequential::new(vec![Box::new(Conv2d::new(
            2,
            2,
            ConvGeometry::same3x3(),
            &mut rng,
        ))]);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.push(p.value.clone()));
        quantize_weights(&mut net, 4);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.push(p.value.clone()));
        // Weights changed (coarse grid) but stayed close.
        let w0 = &before[0];
        let w1 = &after[0];
        assert_ne!(w0, w1);
        assert!(w0.sub(w1).unwrap().max_abs() < w0.max_abs() / 4.0);
    }

    #[test]
    fn float_scheme_is_identity() {
        let mut rng = SkyRng::new(1);
        let mut net = Sequential::new(vec![Box::new(Conv2d::pointwise(3, 3, &mut rng))]);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.push(p.value.clone()));
        let mode = apply_scheme(&mut net, QuantScheme::float32());
        assert_eq!(mode, Mode::Eval);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.push(p.value.clone()));
        assert_eq!(before, after);
    }

    #[test]
    fn quant_eval_perturbs_but_tracks_float_output() {
        let mut rng = SkyRng::new(2);
        let mut net = Sequential::new(vec![
            Box::new(Conv2d::new(3, 8, ConvGeometry::same3x3(), &mut rng)),
            Box::new(Conv2d::pointwise(8, 4, &mut rng)),
        ]);
        let x = Tensor::from_vec(
            Shape::new(1, 3, 6, 6),
            (0..108).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect(),
        )
        .unwrap();
        let y_float = net.forward(&x, Mode::Eval).unwrap();
        let mode = apply_scheme(&mut net, QuantScheme::new(11, 9));
        let y_q = net.forward(&x, mode).unwrap();
        let err = y_float.sub(&y_q).unwrap().max_abs();
        let scale = y_float.max_abs();
        assert!(err > 0.0, "quantization must perturb");
        assert!(
            err < scale * 0.1,
            "9/11-bit error should be small: {err} vs {scale}"
        );
    }

    #[test]
    fn param_megabytes_matches_hand_math() {
        let s = QuantScheme::new(11, 9);
        // 1 M params × 11 bits = 11 Mbit = 1.375 MB ÷ 1.048576.
        let mb = s.param_megabytes(1_000_000);
        assert!((mb - 11.0e6 / 8.0 / 1048576.0).abs() < 1e-9);
        assert!(
            (QuantScheme::float32().param_megabytes(1_000_000) - 4.0e6 / 1048576.0).abs() < 1e-9
        );
    }
}
