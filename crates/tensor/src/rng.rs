//! Deterministic random number helpers.
//!
//! Every stochastic component in the workspace (weight init, data synthesis,
//! augmentation, PSO search) draws from a seeded [`SkyRng`] so that each
//! experiment in `EXPERIMENTS.md` is exactly reproducible.

/// A small, fast, seedable PRNG (xoshiro256**) with the few sampling
/// helpers the workspace needs.
///
/// We ship our own generator instead of threading `rand`'s trait objects
/// through every crate: the algorithm is 10 lines, fully deterministic
/// across platforms, and keeps `skynet-tensor`'s public API free of
/// third-party types (C-STABLE).
///
/// ```
/// use skynet_tensor::rng::SkyRng;
/// let mut a = SkyRng::new(42);
/// let mut b = SkyRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SkyRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f32>,
}

/// A serializable snapshot of a [`SkyRng`], used by training checkpoints
/// to resume a run with a bit-identical random stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RngState {
    /// The four xoshiro256** state words.
    pub s: [u64; 4],
    /// The cached second Box-Muller output, if one is pending.
    pub gauss_spare: Option<f32>,
}

impl SkyRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SkyRng {
            s: [next(), next(), next(), next()],
            gauss_spare: None,
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn gaussian(&mut self) -> f32 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each worker or
    /// experiment arm its own stream.
    pub fn fork(&mut self, stream: u64) -> SkyRng {
        SkyRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Captures the full generator state for checkpointing.
    pub fn state(&self) -> RngState {
        RngState {
            s: self.s,
            gauss_spare: self.gauss_spare,
        }
    }

    /// Rebuilds a generator from a [`RngState`] snapshot; the restored
    /// generator produces exactly the stream the captured one would have.
    pub fn from_state(state: RngState) -> SkyRng {
        SkyRng {
            s: state.s,
            gauss_spare: state.gauss_spare,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SkyRng::new(7);
        let mut b = SkyRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SkyRng::new(1);
        let mut b = SkyRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SkyRng::new(3);
        for _ in 0..10_000 {
            let v = r.uniform();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SkyRng::new(4);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SkyRng::new(5);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.gaussian()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SkyRng::new(6);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_snapshot_resumes_identically() {
        let mut a = SkyRng::new(11);
        // Burn some outputs, including a gaussian so the spare is pending.
        for _ in 0..17 {
            a.next_u64();
        }
        let _ = a.gaussian();
        let mut b = SkyRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.gaussian(), b.gaussian());
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = SkyRng::new(9);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
