//! Quantized integer kernels: `i8`×`i8`→`i32` with a **32-lane
//! integer determinism contract**.
//!
//! This is the executable INT8 counterpart of the f32 kernel family
//! ([`dwconv`](crate::dwconv), [`matmul`](crate::matmul)). The hot
//! kernels are written once as generic functions over the [`QI8x32`]
//! trait — the integer sibling of [`F32x8`](crate::simd::F32x8) — and
//! instantiated for the same three backends under the same
//! `SKYNET_SIMD` runtime dispatch ([`simd::active`]):
//!
//! * [`ScalarQ`] — plain Rust replaying the 32-lane structure;
//! * [`Sse2Q`] — `__m128i` lanes (sign-extend via unpack, exact
//!   `mullo_epi16` products, `add_epi32` accumulate);
//! * [`Avx2Q`] — `__m256i` lanes (`cvtepi8_epi16` / `cvtepi16_epi32`).
//!
//! A fourth tier, [`Backend::Avx2Pair`], does not go through the
//! [`QI8x32`] axpy at all: it restructures the reduction so adjacent
//! `i8×i8` products are summed **in pairs** by `vpmaddwd`
//! (`_mm256_madd_epi16`) — one instruction per pair instead of the
//! widen-multiply-widen-add chain — roughly doubling integer multiply
//! throughput. See *Why pairing keeps bit-identity* below.
//!
//! ## Why pairing keeps bit-identity
//!
//! `vpmaddwd` multiplies eight pairs of `i16`s and adds each pair into
//! an `i32`. Our operands are sign-extended `i8`s, so |x| ≤ 128, every
//! product is ≤ 16384, and a pair sum is ≤ 32768 — produced directly
//! in `i32`, these sums are **exact** for all `i8` inputs including
//! `i8::MIN` (the instruction's only saturating case is
//! `(−32768)² + (−32768)²`, unreachable from 8-bit operands). In the
//! quantized activation domain the bound is tighter still:
//! [`quantize_i8`] never emits −128, so products are ≤ 16129 and pair
//! sums ≤ 32258 — exact even as `i16`s. Either way the pair sums are
//! exact integers, and two's-complement wrapping `i32` addition is
//! associative and commutative, so regrouping the same multiset of
//! products into pairs cannot change a single accumulator bit — the
//! pairing tier is bit-identical to [`ScalarQ`] by construction, and
//! the `qint_equivalence` suite (which plants `±127` and `i8::MIN`
//! extremes) asserts it bitwise.
//!
//! ## Why the integer contract is *stronger* than the f32 one
//!
//! The f32 kernels are bit-identical across backends because every
//! backend performs the same IEEE-754 operations in the same order —
//! a carefully engineered property (no FMA, fixed reduction trees).
//! The integer kernels get bit-identity **structurally**: an `i8`×`i8`
//! product always fits exactly in `i16` (|−128·−128| = 16384 < 2¹⁵),
//! its sign-extension to `i32` is exact, and two's-complement wrapping
//! `i32` addition is associative *and* commutative. Any grouping of
//! the same multiset of products — 32-wide blocks, scalar tails,
//! different thread splits — produces the same accumulator bits. The
//! `qint_equivalence` proptest suite still asserts it bitwise, wrap
//! boundaries included.
//!
//! Requantization (`i32` accumulator → `i8` activation) runs in
//! scalar f32 on every backend — one multiply, one add, one
//! `f32::round` (ties away from zero), one clamp per element, in
//! element order — so it is deterministic by the same
//! replay-the-exact-sequence argument as the f32 kernels.
//!
//! ## Lane width
//!
//! [`QLANES`] is 32: one AVX2 register holds 32 `i8`s, four times the
//! 8-lane f32 ceiling — the bigger win the ROADMAP's quantization item
//! promises. SSE2 processes the same 32-element block as two 16-byte
//! halves and the scalar backend replays it as a 32-iteration loop;
//! the block structure (not the register width) defines the contract.
//!
//! ## Telemetry
//!
//! When metrics are on, `quant.<op>.lanes_used` counters tally the
//! elements processed through full 32-lane blocks, and the saturation
//! helpers return clamp counts their callers publish as
//! `quant.<op>.saturated` (see OBSERVABILITY.md).

use crate::parallel::par_chunks_mut;
use crate::simd::{self, Backend};
use crate::telemetry;

/// Lane count of the integer kernel family: one AVX2 register of
/// `i8`s. Fixed on every backend so the block structure — and the
/// vector-vs-tail split — never depends on the ISA.
pub const QLANES: usize = 32;

/// Quantized activations saturate to this magnitude: the symmetric
/// `i8` range `[-127, 127]`. `-128` is excluded so that negation is
/// always representable and the range is symmetric around zero
/// (zero-point is identically 0 in this scheme).
pub const QMAX: i32 = 127;

/// Rows per parallel stripe of [`matmul_i8_acc`]. 32 rows of `i32`
/// accumulators keep a stripe's working set near the f32 kernel's
/// (which uses 64 f32 rows).
const QBLOCK: usize = 32;

/// Number of elements of a `len`-element loop that the 32-lane kernels
/// process as full blocks (the remainder runs scalar).
#[inline]
pub fn qvector_cover(len: usize) -> usize {
    len / QLANES * QLANES
}

/// Tallies `quant.<op>.lanes_used` when metrics are enabled.
#[inline]
pub fn record_qlanes(op: &'static str, lanes: usize) {
    if lanes > 0 && telemetry::metrics_enabled() {
        telemetry::counter(&format!("quant.{op}.lanes_used")).add(lanes as u64);
    }
}

// ---------------------------------------------------------------------------
// The integer lane abstraction
// ---------------------------------------------------------------------------

/// A broadcast `i8` weight that can axpy one 32-element block:
/// `acc[j] = acc[j] ⊞ w · x[j]` for `j in 0..32`, where `⊞` is
/// two's-complement wrapping `i32` addition and `w · x[j]` is the exact
/// integer product (always representable: |w·x| ≤ 16384).
///
/// Implementations must be **exact**: no saturating arithmetic inside
/// the accumulation (saturation happens only at requantization), so
/// every backend produces identical accumulator bits by the
/// associativity of wrapping addition.
pub trait QI8x32: Copy {
    /// Broadcasts a weight into the backend's lane type.
    fn splat(w: i8) -> Self;
    /// `acc[j] = acc[j].wrapping_add(w * x[j])` for `j in 0..QLANES`.
    ///
    /// # Safety
    ///
    /// `acc` must be valid for reads and writes of `QLANES` consecutive
    /// `i32`s and `x` for reads of `QLANES` consecutive `i8`s.
    unsafe fn axpy(self, acc: *mut i32, x: *const i8);
}

/// The scalar backend: a 32-iteration loop replaying the lane
/// structure literally. This is the oracle the `qint_equivalence`
/// suite compares the ISA backends against (they must agree bitwise —
/// and do, structurally; see the module docs).
#[derive(Debug, Clone, Copy)]
pub struct ScalarQ(i32);

impl QI8x32 for ScalarQ {
    #[inline(always)]
    fn splat(w: i8) -> Self {
        ScalarQ(i32::from(w))
    }

    #[inline(always)]
    unsafe fn axpy(self, acc: *mut i32, x: *const i8) {
        for j in 0..QLANES {
            // SAFETY: caller guarantees QLANES readable/writable elements.
            unsafe {
                let p = acc.add(j);
                *p = (*p).wrapping_add(self.0 * i32::from(*x.add(j)));
            }
        }
    }
}

/// SSE2 backend: 16-byte halves, sign-extended to `i16` by interleaving
/// with a compare-derived sign mask, multiplied exactly with
/// `mullo_epi16`, widened to `i32` the same way, and accumulated with
/// `add_epi32` (inherently wrapping). SSE2 is the x86_64 baseline.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Sse2Q(std::arch::x86_64::__m128i);

#[cfg(target_arch = "x86_64")]
impl QI8x32 for Sse2Q {
    #[inline(always)]
    fn splat(w: i8) -> Self {
        use std::arch::x86_64::*;
        unsafe { Sse2Q(_mm_set1_epi16(i16::from(w))) }
    }

    #[inline(always)]
    unsafe fn axpy(self, acc: *mut i32, x: *const i8) {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees QLANES readable x bytes and QLANES
        // readable/writable acc elements; all loads/stores unaligned.
        unsafe {
            let zero = _mm_setzero_si128();
            for half in 0..2 {
                let xb = _mm_loadu_si128(x.add(16 * half) as *const __m128i);
                // Sign-extend i8 → i16: interleave with the sign mask.
                let xneg = _mm_cmpgt_epi8(zero, xb);
                let xlo = _mm_unpacklo_epi8(xb, xneg); // elements 0..8 as i16
                let xhi = _mm_unpackhi_epi8(xb, xneg); // elements 8..16
                for (q, prod) in [
                    (0usize, _mm_mullo_epi16(xlo, self.0)),
                    (1usize, _mm_mullo_epi16(xhi, self.0)),
                ] {
                    // Exact: |i8·i8| ≤ 16384 fits i16, so mullo never
                    // truncates. Widen to i32 by the same interleave.
                    let pneg = _mm_cmpgt_epi16(zero, prod);
                    let p0 = _mm_unpacklo_epi16(prod, pneg); // 4 i32
                    let p1 = _mm_unpackhi_epi16(prod, pneg); // 4 i32
                    let base = acc.add(16 * half + 8 * q) as *mut __m128i;
                    _mm_storeu_si128(base, _mm_add_epi32(_mm_loadu_si128(base), p0));
                    let base1 = base.add(1);
                    _mm_storeu_si128(base1, _mm_add_epi32(_mm_loadu_si128(base1), p1));
                }
            }
        }
    }
}

/// AVX2 backend: `cvtepi8_epi16` → exact `mullo_epi16` →
/// `cvtepi16_epi32` → `add_epi32`, 32 elements per call. Only
/// instantiated behind `#[target_feature(enable = "avx2")]` wrappers
/// after runtime detection, exactly like
/// [`Avx2V`](crate::simd::Avx2V).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2Q(std::arch::x86_64::__m256i);

#[cfg(target_arch = "x86_64")]
impl QI8x32 for Avx2Q {
    #[inline(always)]
    fn splat(w: i8) -> Self {
        use std::arch::x86_64::*;
        unsafe { Avx2Q(_mm256_set1_epi16(i16::from(w))) }
    }

    #[inline(always)]
    unsafe fn axpy(self, acc: *mut i32, x: *const i8) {
        use std::arch::x86_64::*;
        // SAFETY: caller guarantees QLANES readable x bytes and QLANES
        // readable/writable acc elements; all loads/stores unaligned.
        unsafe {
            for half in 0..2 {
                let xb = _mm_loadu_si128(x.add(16 * half) as *const __m128i);
                let x16 = _mm256_cvtepi8_epi16(xb); // 16 i16, order kept
                let prod = _mm256_mullo_epi16(x16, self.0); // exact (see Sse2Q)
                let lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(prod));
                let hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256::<1>(prod));
                let base = acc.add(16 * half) as *mut __m256i;
                _mm256_storeu_si256(base, _mm256_add_epi32(_mm256_loadu_si256(base), lo));
                let base1 = base.add(1);
                _mm256_storeu_si256(base1, _mm256_add_epi32(_mm256_loadu_si256(base1), hi));
            }
        }
    }
}

/// 32-lane axpy over a row: full blocks through the backend, wrapping
/// scalar tail. Exact on every backend, so the split point never
/// affects results.
#[inline(always)]
fn axpy_row_q<Q: QI8x32>(c: &mut [i32], w: i8, x: &[i8]) {
    let n = c.len().min(x.len());
    let nq = qvector_cover(n);
    let wv = Q::splat(w);
    for j in (0..nq).step_by(QLANES) {
        // SAFETY: j + QLANES <= nq <= n bounds both slices.
        unsafe { wv.axpy(c.as_mut_ptr().add(j), x.as_ptr().add(j)) }
    }
    let wi = i32::from(w);
    for (cv, &xv) in c[nq..n].iter_mut().zip(&x[nq..n]) {
        *cv = cv.wrapping_add(wi * i32::from(xv));
    }
}

// ---------------------------------------------------------------------------
// Integer matmul (point-wise convolutions)
// ---------------------------------------------------------------------------

/// Serial row-stripe body of [`matmul_i8_acc`], generic over the
/// backend.
#[inline(always)]
fn matmul_i8_rows_g<Q: QI8x32>(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        let crow = &mut c[i * n..i * n + n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue; // exact for integers: the skipped axpy adds 0
            }
            axpy_row_q::<Q>(crow, av, &b[p * n..p * n + n]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_rows_avx2(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    matmul_i8_rows_g::<Avx2Q>(a, b, c, m, k, n)
}

/// Packs two `i8` weights into the `[w0, w1]` `i16` pair `vpmaddwd`
/// expects, replicated across a register by `_mm256_set1_epi32`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn pair_weights(w0: i8, w1: i8) -> i32 {
    (((w1 as i16 as u16 as u32) << 16) | (w0 as i16 as u16 as u32)) as i32
}

/// The pairing-tier matmul body: 16-column register blocks whose
/// accumulators stay in `vpmaddwd`'s interleaved pair layout across the
/// whole `k` loop (no accumulator memory traffic per `k`), reducing two
/// `i8×i8` products per instruction.
///
/// Layout: `_mm256_unpacklo_epi16(x0, x1)` interleaves in-lane, so the
/// `madd` of the lo/hi unpacks yields columns `[0..4, 8..12]` and
/// `[4..8, 12..16]`. The same two `_mm256_permute2x128_si256` shuffles
/// (selectors `0x20`/`0x31`) convert between that layout and the
/// natural `[0..8]`/`[8..16]` order in both directions, so existing
/// accumulator values are permuted in once and the finished block is
/// permuted back out once.
///
/// Exactness: pair sums from sign-extended `i8`s are exact in `i32`
/// (see the module docs), and wrapping addition is associative, so
/// this produces the same bits as [`matmul_i8_rows_g`] for every
/// input, wrap-arounds included. A pair whose two weights are both
/// zero is skipped — exact, since it contributes nothing; an odd final
/// weight is processed as the pair `[w, 0]`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_rows_avx2pair(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;
    let nb = n / 16 * 16;
    for i in 0..m {
        let arow = &a[i * k..i * k + k];
        let crow = &mut c[i * n..i * n + n];
        for j in (0..nb).step_by(16) {
            // SAFETY: j + 16 <= nb <= n bounds every 16-wide access in
            // this block; p + 1 < k bounds the paired rows of `b`.
            unsafe {
                let cp = crow.as_mut_ptr().add(j);
                let acc0 = _mm256_loadu_si256(cp as *const __m256i);
                let acc1 = _mm256_loadu_si256((cp as *const __m256i).add(1));
                let mut m0 = _mm256_permute2x128_si256::<0x20>(acc0, acc1);
                let mut m1 = _mm256_permute2x128_si256::<0x31>(acc0, acc1);
                let mut p = 0usize;
                while p + 1 < k {
                    let (w0, w1) = (arow[p], arow[p + 1]);
                    if w0 != 0 || w1 != 0 {
                        let wp = _mm256_set1_epi32(pair_weights(w0, w1));
                        let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            b.as_ptr().add(p * n + j) as *const __m128i
                        ));
                        let x1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            b.as_ptr().add((p + 1) * n + j) as *const __m128i,
                        ));
                        m0 = _mm256_add_epi32(
                            m0,
                            _mm256_madd_epi16(_mm256_unpacklo_epi16(x0, x1), wp),
                        );
                        m1 = _mm256_add_epi32(
                            m1,
                            _mm256_madd_epi16(_mm256_unpackhi_epi16(x0, x1), wp),
                        );
                    }
                    p += 2;
                }
                if p < k {
                    let w0 = arow[p];
                    if w0 != 0 {
                        let wp = _mm256_set1_epi32(pair_weights(w0, 0));
                        let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            b.as_ptr().add(p * n + j) as *const __m128i
                        ));
                        m0 = _mm256_add_epi32(
                            m0,
                            _mm256_madd_epi16(_mm256_unpacklo_epi16(x0, x0), wp),
                        );
                        m1 = _mm256_add_epi32(
                            m1,
                            _mm256_madd_epi16(_mm256_unpackhi_epi16(x0, x0), wp),
                        );
                    }
                }
                _mm256_storeu_si256(
                    cp as *mut __m256i,
                    _mm256_permute2x128_si256::<0x20>(m0, m1),
                );
                _mm256_storeu_si256(
                    (cp as *mut __m256i).add(1),
                    _mm256_permute2x128_si256::<0x31>(m0, m1),
                );
            }
        }
        // Column tail: plain wrapping scalar (any order is bit-identical).
        for j in nb..n {
            let mut acc = crow[j];
            for (p, &w) in arow.iter().enumerate() {
                acc = acc.wrapping_add(i32::from(w) * i32::from(b[p * n + j]));
            }
            crow[j] = acc;
        }
    }
}

pub(crate) fn matmul_i8_rows(
    be: Backend,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    match be {
        Backend::Scalar => matmul_i8_rows_g::<ScalarQ>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => matmul_i8_rows_g::<Sse2Q>(a, b, c, m, k, n),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 => unsafe { matmul_i8_rows_avx2(a, b, c, m, k, n) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — `Avx2Pair` requires the same `avx2` detection.
        Backend::Avx2Pair => unsafe { matmul_i8_rows_avx2pair(a, b, c, m, k, n) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

/// Computes `c ⊞= a * b` where `a` is `m×k` `i8`, `b` is `k×n` `i8` and
/// `c` is `m×n` `i32`, all dense row-major; `⊞` is wrapping addition.
///
/// Output rows are distributed over the [`parallel`](crate::parallel)
/// pool in fixed 32-row stripes; wrapping integer addition is
/// associative, so the stripe split, thread count, and SIMD backend
/// can never change a single output bit.
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul_i8_acc(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "lhs too short: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "rhs too short: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "out too short: {} < {}", c.len(), m * n);
    if m * n == 0 {
        return;
    }
    let be = simd::active();
    let _span = telemetry::span("tensor.qmatmul");
    if telemetry::metrics_enabled() {
        telemetry::counter("quant.matmul.calls").inc();
        // Nominal: the `a == 0` skip is not deducted.
        record_qlanes("matmul", m * k * qvector_cover(n));
    }
    par_chunks_mut(&mut c[..m * n], QBLOCK * n, |stripe, c_rows| {
        let i0 = stripe * QBLOCK;
        matmul_i8_rows(be, &a[i0 * k..], b, c_rows, c_rows.len() / n, k, n);
    });
}

/// Computes `c = a * b` (overwriting `c`) with the same conventions as
/// [`matmul_i8_acc`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn matmul_i8(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    c[..m * n].fill(0);
    matmul_i8_acc(a, b, c, m, k, n);
}

// ---------------------------------------------------------------------------
// Integer 3×3 depth-wise convolution (stride 1, padding 1)
// ---------------------------------------------------------------------------

/// One guarded output cell of the 3×3 stencil: taps outside the plane
/// contribute nothing (zero padding). Shared verbatim by every backend
/// for border columns and narrow planes.
#[inline(always)]
fn dw_cell_scalar(x: &[i8], w9: &[i8], h: usize, wd: usize, y: usize, xc: usize) -> i32 {
    let mut acc = 0i32;
    for ky in 0..3 {
        let iy = y + ky;
        if iy < 1 || iy > h {
            continue;
        }
        let row = (iy - 1) * wd;
        for kx in 0..3 {
            let ix = xc + kx;
            if ix < 1 || ix > wd {
                continue;
            }
            acc = acc.wrapping_add(i32::from(w9[ky * 3 + kx]) * i32::from(x[row + ix - 1]));
        }
    }
    acc
}

/// Output rows `y0..y1` of one `(item, channel)` plane of
/// [`dwconv3_i8`], generic over the backend: 32-wide blocks across the
/// interior columns (all nine taps in-bounds horizontally, rows
/// guarded), guarded scalar cells for the borders and the interior
/// remainder. `o` covers exactly the destination rows (`(y1-y0)·wd`
/// elements) and is **overwritten** — stale contents are zeroed before
/// the interior accumulation, so callers may hand in dirty scratch.
///
/// Rows are computed independently (the stencil reads only `x`), so any
/// row banding produces the same bits as a full-plane pass — the fused
/// INT8 bundle leans on this.
#[inline(always)]
fn dw_plane_rows_g<Q: QI8x32>(
    x: &[i8],
    w9: &[i8],
    o: &mut [i32],
    h: usize,
    wd: usize,
    y0: usize,
    y1: usize,
) {
    let wi = wd.saturating_sub(2); // interior columns 1..=wd-2
    let nq = qvector_cover(wi);
    for y in y0..y1 {
        let orow = &mut o[(y - y0) * wd..(y - y0 + 1) * wd];
        orow[1..1 + nq].fill(0);
        for bx in 0..nq / QLANES {
            let xs = 1 + bx * QLANES;
            for ky in 0..3 {
                let iy = y + ky;
                if iy < 1 || iy > h {
                    continue;
                }
                let row = (iy - 1) * wd;
                for kx in 0..3 {
                    // In-bounds: xs-1 >= 0 and xs+1 + (QLANES-1) <= wd-1.
                    let src = row + xs + kx - 1;
                    // SAFETY: src + QLANES <= row + wd <= x.len(), and the
                    // orow block is QLANES long starting at xs <= wd-QLANES-1.
                    unsafe {
                        Q::splat(w9[ky * 3 + kx])
                            .axpy(orow.as_mut_ptr().add(xs), x.as_ptr().add(src));
                    }
                }
            }
        }
        orow[0] = dw_cell_scalar(x, w9, h, wd, y, 0);
        for (xc, cell) in orow.iter_mut().enumerate().skip(1 + nq) {
            *cell = dw_cell_scalar(x, w9, h, wd, y, xc);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dw_plane_rows_avx2(
    x: &[i8],
    w9: &[i8],
    o: &mut [i32],
    h: usize,
    wd: usize,
    y0: usize,
    y1: usize,
) {
    dw_plane_rows_g::<Avx2Q>(x, w9, o, h, wd, y0, y1)
}

/// One 16-column pairing block of the DW stencil at column `xs`:
/// reduces the row's in-bounds tap list two taps per `vpmaddwd` into
/// zeroed register accumulators and stores once (overwrite semantics),
/// in the same permuted layout as [`matmul_i8_rows_avx2pair`]. The
/// taps of a pair may come from different input rows, each carrying
/// its own base offset.
///
/// # Safety
///
/// Requires AVX2, `1 <= xs` and `xs + 15 <= wd - 2` (so every 16-byte
/// tap load and the 16-wide store stay inside their rows), and `orow`
/// spanning a full `wd`-column output row of the plane `x`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn dw_block16_avx2pair(
    x: &[i8],
    taps: &[(i8, usize); 9],
    nt: usize,
    orow: *mut i32,
    xs: usize,
) {
    use std::arch::x86_64::*;
    let mut m0 = _mm256_setzero_si256();
    let mut m1 = _mm256_setzero_si256();
    let mut t = 0usize;
    while t + 1 < nt {
        let ((wa, ba), (wb, bb)) = (taps[t], taps[t + 1]);
        if wa != 0 || wb != 0 {
            let wp = _mm256_set1_epi32(pair_weights(wa, wb));
            let xa = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                x.as_ptr().add(ba + xs - 1) as *const __m128i
            ));
            let xb = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                x.as_ptr().add(bb + xs - 1) as *const __m128i
            ));
            m0 = _mm256_add_epi32(m0, _mm256_madd_epi16(_mm256_unpacklo_epi16(xa, xb), wp));
            m1 = _mm256_add_epi32(m1, _mm256_madd_epi16(_mm256_unpackhi_epi16(xa, xb), wp));
        }
        t += 2;
    }
    if t < nt {
        let (wa, ba) = taps[t];
        if wa != 0 {
            let wp = _mm256_set1_epi32(pair_weights(wa, 0));
            let xa = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                x.as_ptr().add(ba + xs - 1) as *const __m128i
            ));
            m0 = _mm256_add_epi32(m0, _mm256_madd_epi16(_mm256_unpacklo_epi16(xa, xa), wp));
            m1 = _mm256_add_epi32(m1, _mm256_madd_epi16(_mm256_unpackhi_epi16(xa, xa), wp));
        }
    }
    let op = orow.add(xs);
    _mm256_storeu_si256(
        op as *mut __m256i,
        _mm256_permute2x128_si256::<0x20>(m0, m1),
    );
    _mm256_storeu_si256(
        (op as *mut __m256i).add(1),
        _mm256_permute2x128_si256::<0x31>(m0, m1),
    );
}

/// The pairing-tier DW body: per output row the in-bounds taps are
/// collected into a flat list (nine entries in the interior, six or
/// three at the vertical borders) and reduced over 16-column register
/// blocks ([`dw_block16_avx2pair`]). Because each block computes its
/// cells from scratch and stores once — it never accumulates into the
/// output — an interior column remainder is covered by one extra block
/// **overlapping** the previous one (re-storing identical bits), so
/// only the two border columns ever take the guarded scalar path.
/// Bit-identity is the same exact-pairs argument: every output cell is
/// the same wrapping-i32 tap sum no matter which block computes it.
/// Planes too narrow for a block (interior < 16 columns) fall back to
/// [`dw_cell_scalar`] for every cell, shared with every other backend.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dw_plane_rows_avx2pair(
    x: &[i8],
    w9: &[i8],
    o: &mut [i32],
    h: usize,
    wd: usize,
    y0: usize,
    y1: usize,
) {
    let wi = wd.saturating_sub(2); // interior columns 1..=wd-2
    for y in y0..y1 {
        let orow = &mut o[(y - y0) * wd..(y - y0 + 1) * wd];
        // In-bounds taps for this output row: (weight, row base + kx),
        // so a block at column xs loads 16 bytes from base + xs - 1.
        let mut taps = [(0i8, 0usize); 9];
        let mut nt = 0;
        for ky in 0..3 {
            let iy = y + ky;
            if iy < 1 || iy > h {
                continue;
            }
            let row = (iy - 1) * wd;
            for kx in 0..3 {
                taps[nt] = (w9[ky * 3 + kx], row + kx);
                nt += 1;
            }
        }
        if wi >= 16 {
            // SAFETY: every xs satisfies 1 <= xs and xs + 15 <= wi <=
            // wd - 2, so loads and stores stay inside their rows.
            unsafe {
                let op = orow.as_mut_ptr();
                for bx in 0..wi / 16 {
                    dw_block16_avx2pair(x, &taps, nt, op, 1 + bx * 16);
                }
                if !wi.is_multiple_of(16) {
                    // Overlapping tail block: recomputes some cells of
                    // the previous block to the same bits.
                    dw_block16_avx2pair(x, &taps, nt, op, 1 + wi - 16);
                }
            }
            orow[0] = dw_cell_scalar(x, w9, h, wd, y, 0);
            orow[wd - 1] = dw_cell_scalar(x, w9, h, wd, y, wd - 1);
        } else {
            for (xc, cell) in orow.iter_mut().enumerate() {
                *cell = dw_cell_scalar(x, w9, h, wd, y, xc);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn dw_plane_rows(
    be: Backend,
    x: &[i8],
    w9: &[i8],
    o: &mut [i32],
    h: usize,
    wd: usize,
    y0: usize,
    y1: usize,
) {
    match be {
        Backend::Scalar => dw_plane_rows_g::<ScalarQ>(x, w9, o, h, wd, y0, y1),
        #[cfg(target_arch = "x86_64")]
        Backend::Sse2 => dw_plane_rows_g::<Sse2Q>(x, w9, o, h, wd, y0, y1),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the Avx2 backends are only ever active after runtime
        // detection succeeded (`simd::active`/`simd::force` enforce it).
        Backend::Avx2 => unsafe { dw_plane_rows_avx2(x, w9, o, h, wd, y0, y1) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above — `Avx2Pair` requires the same `avx2` detection.
        Backend::Avx2Pair => unsafe { dw_plane_rows_avx2pair(x, w9, o, h, wd, y0, y1) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => unreachable!("vector backends are never active off x86_64"),
    }
}

fn dw_plane(be: Backend, x: &[i8], w9: &[i8], o: &mut [i32], h: usize, wd: usize) {
    dw_plane_rows(be, x, w9, o, h, wd, 0, h)
}

/// Integer 3×3 depth-wise convolution, stride 1, zero padding 1 (the
/// "same" geometry every SkyNet DW-Conv uses). `x` is `n×c×h×w` `i8`,
/// `w` holds `c` filters of 9 taps (`c×1×3×3` flattened), and `out`
/// receives `n×c×h×w` raw `i32` accumulators (overwritten), one plane
/// per parallel task. Bit-identical across backends and thread counts
/// for the same structural reason as [`matmul_i8_acc`].
///
/// # Panics
///
/// Panics if any slice is shorter than its implied extent.
pub fn dwconv3_i8(x: &[i8], w: &[i8], out: &mut [i32], n: usize, c: usize, h: usize, wd: usize) {
    let plane = h * wd;
    assert!(x.len() >= n * c * plane, "input too short");
    assert!(w.len() >= c * 9, "weights too short");
    assert!(out.len() >= n * c * plane, "out too short");
    if n * c * plane == 0 {
        return;
    }
    let be = simd::active();
    let _span = telemetry::span("tensor.qdwconv3");
    if telemetry::metrics_enabled() {
        telemetry::counter("quant.dwconv3.calls").inc();
        record_qlanes("dwconv3", n * c * h * qvector_cover(wd.saturating_sub(2)));
    }
    par_chunks_mut(&mut out[..n * c * plane], plane, |pi, o| {
        let ch = pi % c;
        dw_plane(
            be,
            &x[pi * plane..(pi + 1) * plane],
            &w[ch * 9..ch * 9 + 9],
            o,
            h,
            wd,
        );
    });
}

// ---------------------------------------------------------------------------
// Quantize / requantize / dequantize (scalar, shared by all backends)
// ---------------------------------------------------------------------------

/// Quantizes `src` to symmetric `i8`: `q = round(v / scale)` clamped to
/// `[-QMAX, QMAX]`, zero-point 0. `f32::round` ties away from zero —
/// the requantization rounding mode of the whole INT8 path. Returns the
/// number of elements that clamped (callers publish it as a
/// `quant.<op>.saturated` counter). Non-finite inputs quantize to 0 and
/// count as saturated.
///
/// # Panics
///
/// Panics when `dst` is shorter than `src` or `scale` is not a
/// strictly positive finite number.
pub fn quantize_i8(src: &[f32], scale: f32, dst: &mut [i8]) -> u64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    assert!(dst.len() >= src.len(), "dst too short");
    let mut saturated = 0u64;
    for (d, &v) in dst.iter_mut().zip(src) {
        let q = (v / scale).round();
        if q.abs() > QMAX as f32 || !q.is_finite() {
            saturated += 1;
        }
        *d = if q.is_finite() {
            q.clamp(-(QMAX as f32), QMAX as f32) as i8
        } else {
            0
        };
    }
    saturated
}

/// Requantizes raw `i32` accumulators to the next stage's `i8`
/// activations:
///
/// ```text
/// v = (acc as f32) · mult + bias          // dequantized pre-activation
/// v = clamp(v, lo, hi)                    // fused activation (optional)
/// q = clamp(round(v / out_scale), ±127)   // next stage's i8 domain
/// ```
///
/// `mult` is `in_scale · w_scale` for the producing channel; `bias` is
/// the (BN-folded) f32 bias. Every operation is a scalar f32 op in
/// element order on every backend — the deterministic epilogue of the
/// integer kernels. Returns the clamp count at the `i8` step (the
/// activation clamp is semantics, not saturation).
///
/// # Panics
///
/// Panics when `dst` is shorter than `acc` or `out_scale` is not a
/// strictly positive finite number.
pub fn requant_i8(
    acc: &[i32],
    mult: f32,
    bias: f32,
    clamp: Option<(f32, f32)>,
    out_scale: f32,
    dst: &mut [i8],
) -> u64 {
    assert!(
        out_scale.is_finite() && out_scale > 0.0,
        "out_scale must be positive"
    );
    assert!(dst.len() >= acc.len(), "dst too short");
    let mut saturated = 0u64;
    for (d, &a) in dst.iter_mut().zip(acc) {
        let mut v = (a as f32) * mult + bias;
        if let Some((lo, hi)) = clamp {
            v = if v > lo { v } else { lo };
            v = if v < hi { v } else { hi };
        }
        let q = (v / out_scale).round();
        if q.abs() > QMAX as f32 {
            saturated += 1;
        }
        *d = q.clamp(-(QMAX as f32), QMAX as f32) as i8;
    }
    saturated
}

/// Dequantizes raw `i32` accumulators straight to f32:
/// `dst[j] = (acc[j] as f32) · mult + bias` — the network-exit epilogue
/// (the detection head leaves the integer domain here).
///
/// # Panics
///
/// Panics when `dst` is shorter than `acc`.
pub fn dequant_f32(acc: &[i32], mult: f32, bias: f32, dst: &mut [f32]) {
    assert!(dst.len() >= acc.len(), "dst too short");
    for (d, &a) in dst.iter_mut().zip(acc) {
        *d = (a as f32) * mult + bias;
    }
}

// ---------------------------------------------------------------------------
// Integer data movement: max-pool and reorg (pure permutations/selects)
// ---------------------------------------------------------------------------

/// 2-D max pooling on `i8` planes with a square `k×k` window and stride
/// `k`, mirroring [`maxpool2d`](crate::pool::maxpool2d). Legal directly
/// in the quantized domain: with a positive scale and zero zero-point,
/// `q ↦ q·scale` is monotone, so the integer max picks the same winner
/// the f32 max would.
///
/// # Panics
///
/// Panics when `k == 0`, the spatial extents are not divisible by `k`,
/// or `src` is shorter than `n·c·h·w`.
pub fn maxpool2d_i8(src: &[i8], n: usize, c: usize, h: usize, w: usize, k: usize) -> Vec<i8> {
    assert!(k > 0, "window size must be positive");
    assert!(
        h.is_multiple_of(k) && w.is_multiple_of(k),
        "spatial extents {h}×{w} not divisible by {k}"
    );
    assert!(src.len() >= n * c * h * w, "input too short");
    let (oh, ow) = (h / k, w / k);
    let mut out = vec![0i8; n * c * oh * ow];
    for pi in 0..n * c {
        let base = pi * h * w;
        let obase = pi * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = i8::MIN;
                for ky in 0..k {
                    let row = base + (oy * k + ky) * w + ox * k;
                    for kx in 0..k {
                        let v = src[row + kx];
                        if v > best {
                            best = v;
                        }
                    }
                }
                out[obase + oy * ow + ox] = best;
            }
        }
    }
    out
}

/// Space-to-depth reordering on `i8` planes with block size `s`,
/// mirroring [`reorg`](crate::reorg::reorg): input channel `c` and
/// intra-block offset `(dy, dx)` land in output channel
/// `c·s² + dy·s + dx`. A pure permutation, so the quantization scale
/// rides along unchanged.
///
/// # Panics
///
/// Panics when `s == 0`, the spatial extents are not divisible by `s`,
/// or `src` is shorter than `n·c·h·w`.
pub fn reorg_i8(src: &[i8], n: usize, c: usize, h: usize, w: usize, s: usize) -> Vec<i8> {
    assert!(s > 0, "block size must be positive");
    assert!(
        h.is_multiple_of(s) && w.is_multiple_of(s),
        "spatial extents {h}×{w} not divisible by {s}"
    );
    assert!(src.len() >= n * c * h * w, "input too short");
    let (oh, ow, oc) = (h / s, w / s, c * s * s);
    let mut out = vec![0i8; n * oc * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            for dy in 0..s {
                for dx in 0..s {
                    let och = ci * s * s + dy * s + dx;
                    let out_base = (ni * oc + och) * oh * ow;
                    for oy in 0..oh {
                        let in_row = in_base + (oy * s + dy) * w + dx;
                        let out_row = out_base + oy * ow;
                        for ox in 0..ow {
                            out[out_row + ox] = src[in_row + ox * s];
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] = c[i * n + j]
                        .wrapping_add(i32::from(a[i * k + p]) * i32::from(b[p * n + j]));
                }
            }
        }
        c
    }

    fn seq_i8(len: usize, stride: usize) -> Vec<i8> {
        (0..len)
            .map(|i| ((i * stride + 13) % 255) as u8 as i8)
            .collect()
    }

    #[test]
    fn matmul_matches_naive_across_tail_boundaries() {
        for n in [1, 31, 32, 33, 64, 67] {
            let (m, k) = (5, 7);
            let a = seq_i8(m * k, 3);
            let b = seq_i8(k * n, 5);
            let mut c = vec![0i32; m * n];
            matmul_i8(&a, &b, &mut c, m, k, n);
            assert_eq!(c, naive_matmul(&a, &b, m, k, n), "n={n}");
        }
    }

    #[test]
    fn matmul_acc_adds_to_existing() {
        let a = vec![1i8, 0, 0, 1];
        let b = vec![5i8, 6, 7, 8];
        let mut c = vec![1i32; 4];
        matmul_i8_acc(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![6, 7, 8, 9]);
    }

    fn naive_dw(x: &[i8], w9: &[i8], h: usize, wd: usize) -> Vec<i32> {
        let mut o = vec![0i32; h * wd];
        for y in 0..h {
            for xc in 0..wd {
                let mut acc = 0i32;
                for ky in 0..3 {
                    for kx in 0..3 {
                        let (iy, ix) = (y + ky, xc + kx);
                        if iy < 1 || iy > h || ix < 1 || ix > wd {
                            continue;
                        }
                        acc = acc.wrapping_add(
                            i32::from(w9[ky * 3 + kx]) * i32::from(x[(iy - 1) * wd + ix - 1]),
                        );
                    }
                }
                o[y * wd + xc] = acc;
            }
        }
        o
    }

    #[test]
    fn dwconv3_matches_naive_across_widths() {
        for wd in [1, 2, 3, 33, 34, 40, 70] {
            let h = 5;
            let x = seq_i8(h * wd, 7);
            let w9 = seq_i8(9, 11);
            let mut out = vec![0i32; h * wd];
            dwconv3_i8(&x, &w9, &mut out, 1, 1, h, wd);
            assert_eq!(out, naive_dw(&x, &w9, h, wd), "wd={wd}");
        }
    }

    #[test]
    fn dwconv3_multichannel_uses_per_channel_filters() {
        let (n, c, h, wd) = (2, 3, 4, 36);
        let x = seq_i8(n * c * h * wd, 3);
        let w = seq_i8(c * 9, 5);
        let mut out = vec![0i32; n * c * h * wd];
        dwconv3_i8(&x, &w, &mut out, n, c, h, wd);
        for pi in 0..n * c {
            let ch = pi % c;
            let want = naive_dw(
                &x[pi * h * wd..(pi + 1) * h * wd],
                &w[ch * 9..ch * 9 + 9],
                h,
                wd,
            );
            assert_eq!(
                &out[pi * h * wd..(pi + 1) * h * wd],
                &want[..],
                "plane {pi}"
            );
        }
    }

    #[test]
    fn quantize_clamps_and_counts() {
        let src = [0.0f32, 0.5, -0.5, 100.0, -100.0, 1.49, f32::NAN];
        let mut dst = [0i8; 7];
        let sat = quantize_i8(&src, 0.5, &mut dst);
        // 100/0.5 = 200 and -200 clamp; NaN counts and maps to 0.
        assert_eq!(sat, 3);
        assert_eq!(dst, [0, 1, -1, 127, -127, 3, 0]);
    }

    #[test]
    fn requant_rounds_ties_away_and_clamps() {
        // acc·mult+bias = [1.5, -1.5, 300, -0.5] with out_scale 1.
        let acc = [3i32, -3, 600, -1];
        let mut dst = [0i8; 4];
        let sat = requant_i8(&acc, 0.5, 0.0, None, 1.0, &mut dst);
        assert_eq!(sat, 1);
        // round ties away from zero: 1.5 → 2, -1.5 → -2, -0.5 → -1.
        assert_eq!(dst, [2, -2, 127, -1]);
    }

    #[test]
    fn requant_applies_activation_clamp() {
        let acc = [-10i32, 4, 100];
        let mut dst = [0i8; 3];
        let sat = requant_i8(&acc, 1.0, 0.0, Some((0.0, 6.0)), 0.5, &mut dst);
        assert_eq!(sat, 0);
        assert_eq!(dst, [0, 8, 12]); // clamp to [0,6] then /0.5
    }

    #[test]
    fn dequant_is_affine() {
        let acc = [2i32, -4];
        let mut dst = [0f32; 2];
        dequant_f32(&acc, 0.25, 1.0, &mut dst);
        assert_eq!(dst, [1.5, 0.0]);
    }

    #[test]
    fn maxpool_i8_picks_winner() {
        let src = [1i8, 5, 3, 2, 4, 0, -1, 9];
        let out = maxpool2d_i8(&src, 1, 1, 2, 4, 2);
        assert_eq!(out, vec![5, 9]);
    }

    #[test]
    fn reorg_i8_matches_fig5() {
        let src: Vec<i8> = (0..16).collect();
        let out = reorg_i8(&src, 1, 1, 4, 4, 2);
        assert_eq!(
            out,
            vec![0, 2, 8, 10, 1, 3, 9, 11, 4, 6, 12, 14, 5, 7, 13, 15]
        );
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn pairing_matmul_matches_scalar_generic_across_shapes() {
        if !Backend::Avx2Pair.is_available() {
            return;
        }
        for (m, k, n) in [
            (1, 1, 1),
            (3, 4, 16),
            (5, 7, 33),
            (2, 9, 64),
            (4, 5, 17),
            (3, 8, 16),
            (6, 2, 80),
        ] {
            let a = seq_i8(m * k, 3);
            let b = seq_i8(k * n, 5);
            // Pre-seeded accumulators exercise the permute-in path.
            let mut want = vec![7i32; m * n];
            let mut got = want.clone();
            matmul_i8_rows_g::<ScalarQ>(&a, &b, &mut want, m, k, n);
            // SAFETY: guarded by the availability check above.
            unsafe { matmul_i8_rows_avx2pair(&a, &b, &mut got, m, k, n) };
            assert_eq!(want, got, "m={m} k={k} n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn pairing_matmul_wraps_identically() {
        if !Backend::Avx2Pair.is_available() {
            return;
        }
        let k = 1 << 18; // 262144 · 16384 = 2^32: wraps the i32 accumulator
        let (a, b) = (vec![i8::MIN; k], vec![i8::MIN; k * 16]);
        let mut want = vec![0i32; 16];
        let mut got = vec![0i32; 16];
        matmul_i8_rows_g::<ScalarQ>(&a, &b, &mut want, 1, k, 16);
        // SAFETY: guarded by the availability check above.
        unsafe { matmul_i8_rows_avx2pair(&a, &b, &mut got, 1, k, 16) };
        assert_eq!(want, got);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn pairing_dwconv_matches_scalar_generic_across_widths() {
        if !Backend::Avx2Pair.is_available() {
            return;
        }
        for wd in [1, 2, 3, 16, 17, 18, 19, 33, 40, 70] {
            let h = 5;
            let x = seq_i8(h * wd, 7);
            let w9 = seq_i8(9, 11);
            // Dirty scratch: dw_plane_rows has overwrite semantics.
            let mut want = vec![-1i32; h * wd];
            let mut got = vec![13i32; h * wd];
            dw_plane_rows_g::<ScalarQ>(&x, &w9, &mut want, h, wd, 0, h);
            // SAFETY: guarded by the availability check above.
            unsafe { dw_plane_rows_avx2pair(&x, &w9, &mut got, h, wd, 0, h) };
            assert_eq!(want, got, "wd={wd}");
        }
    }

    #[test]
    fn dw_row_bands_match_full_plane_on_every_backend() {
        let (h, wd) = (7, 40);
        let x = seq_i8(h * wd, 7);
        let w9 = seq_i8(9, 11);
        for be in simd::available_backends() {
            let mut full = vec![0i32; h * wd];
            dw_plane_rows(be, &x, &w9, &mut full, h, wd, 0, h);
            let mut banded = vec![-7i32; h * wd];
            for (y0, y1) in [(0usize, 2usize), (2, 3), (3, 7)] {
                dw_plane_rows(be, &x, &w9, &mut banded[y0 * wd..y1 * wd], h, wd, y0, y1);
            }
            assert_eq!(full, banded, "backend {}", be.name());
        }
    }

    #[test]
    fn wrapping_accumulation_is_backend_stable() {
        // Products of -128·-128 accumulate past i32::MAX and must wrap
        // identically to the naive wrapping loop.
        let k = 1 << 18; // 262144 · 16384 = 2^32 → wraps twice over
        let a = vec![i8::MIN; k];
        let b = vec![i8::MIN; k]; // k×1 matrix
        let mut c = vec![0i32; 1];
        matmul_i8(&a, &b, &mut c, 1, k, 1);
        let mut want = 0i32;
        for _ in 0..k {
            want = want.wrapping_add(16384);
        }
        assert_eq!(c[0], want);
    }
}
