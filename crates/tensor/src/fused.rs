//! Cache-resident fused execution of one SkyNet bundle:
//! `DW-Conv3 → BN → Act → PW-Conv → BN → Act` in a single pass over row
//! tiles.
//!
//! The unfused path materializes five full feature maps per bundle
//! (DW output, two BN outputs, two activation outputs) and streams each
//! through DRAM between layers. This executor instead walks the output
//! in **row bands**: for each `(item, band)` task the DW-Conv3 output
//! tile (all `C` channels × `R` rows) is produced straight into the
//! thread-local [`scratch`] arena with the BN+activation epilogue fused
//! into the store loop ([`crate::dwconv`]'s fused band kernel), then fed
//! directly into the point-wise matmul whose output tile gets the second
//! BN+activation epilogue before the only DRAM write — the final output
//! rows. The full-size intermediates never exist.
//!
//! ## Bit-identity
//!
//! The fused output is **bit-identical** to the unfused layer-by-layer
//! path on every `SKYNET_SIMD` backend and thread count, because each
//! stage reuses the unfused kernels' exact per-element f32 operation
//! sequences and none of them depends on position or tile extent:
//!
//! * DW rows are row-local (output row `y` reads input rows
//!   `y·s − p ..= y·s − p + 2` only) and replay `dw_plane_fwd`'s
//!   border/interior split per row;
//! * the BN+activation epilogues replay `bn_apply_eval` +
//!   `relu/relu6`'s per-element sequence, which is independent of the
//!   vector/tail boundary ([`simd::bn_act_inplace`]);
//! * [`matmul_acc`](crate::matmul::matmul_acc) accumulates each output
//!   element over `k` in a fixed ascending chain, independent of the
//!   column count of the call — so a band tile (`n = R·W`) produces the
//!   same bits as the whole plane (`n = H·W`);
//! * the band decomposition is a fixed function of the shape, never of
//!   the thread count.
//!
//! `core::plan` drives this executor from the graph-level execution
//! plan; [`crate::fusion`] (`SKYNET_FUSION`) toggles it, keeping the
//! unfused path as the equivalence oracle.

use crate::conv::{pw_bnact_tile, ConvGeometry};
use crate::dwconv::dw3_bnact_band;
use crate::{parallel, scratch, simd, telemetry};
use crate::{Result, Shape, Tensor, TensorError};

/// Per-channel BatchNorm-eval + activation epilogue parameters, captured
/// at plan-build time from a `BatchNorm2d` + `Activation` pair.
///
/// `inv_std[c]` is computed as `1.0 / (var[c] + eps).sqrt()` — the exact
/// f32 expression the unfused BN eval path evaluates per forward — so
/// the epilogue `y = γ·(x − μ)·inv_std + β` reproduces its bits.
#[derive(Debug, Clone)]
pub struct BnAct {
    /// Per-channel running mean `μ`.
    pub mean: Vec<f32>,
    /// Per-channel `1/√(σ² + ε)`, precomputed from the running variance.
    pub inv_std: Vec<f32>,
    /// Per-channel scale `γ`.
    pub gamma: Vec<f32>,
    /// Per-channel shift `β`.
    pub beta: Vec<f32>,
    /// Activation ceiling: `6.0` for ReLU6, `f32::INFINITY` for ReLU
    /// (value-neutral upper clamp).
    pub ceiling: f32,
}

impl BnAct {
    /// Builds the epilogue from BN statistics and an activation ceiling
    /// (`None` = plain ReLU).
    pub fn new(
        mean: Vec<f32>,
        var: &[f32],
        eps: f32,
        gamma: Vec<f32>,
        beta: Vec<f32>,
        ceiling: Option<f32>,
    ) -> Self {
        let inv_std = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        BnAct {
            mean,
            inv_std,
            gamma,
            beta,
            ceiling: ceiling.unwrap_or(f32::INFINITY),
        }
    }

    /// Number of channels this epilogue covers.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    fn check(&self, c: usize, which: &'static str) -> Result<()> {
        if self.mean.len() != c
            || self.inv_std.len() != c
            || self.gamma.len() != c
            || self.beta.len() != c
        {
            return Err(TensorError::ShapeMismatch {
                op: "fused_bundle_forward",
                expected: format!("{which} epilogue over {c} channels"),
                got: format!("{} channels", self.mean.len()),
            });
        }
        Ok(())
    }

    /// The `(mean, inv_std, gamma, beta, ceiling)` tuple for channel `c`.
    #[inline]
    pub fn channel(&self, c: usize) -> (f32, f32, f32, f32, f32) {
        (
            self.mean[c],
            self.inv_std[c],
            self.gamma[c],
            self.beta[c],
            self.ceiling,
        )
    }
}

/// `*mut f32` wrapper for the disjoint per-task output writes.
struct SendPtr(*mut f32);
// SAFETY: each `(item, band)` task writes a disjoint set of output rows
// (the decomposition partitions `item × band`), so sharing the base
// pointer across the pool is race-free.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Whole-struct access so closures capture `SendPtr` (which is
    /// `Sync`), not the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Row-band height for a fused bundle: a **fixed function of the shape**
/// (never the thread count), chosen so the DW and PW tiles together stay
/// cache-resident while still yielding enough `(item, band)` tasks to
/// feed the pool.
fn band_rows(c: usize, c2: usize, os: Shape) -> usize {
    // Both tiles live in L2: (c + c2) · R · W floats ≲ 384 KiB.
    const TILE_F32_BUDGET: usize = 96 * 1024;
    let per_row = (c + c2) * os.w.max(1);
    let r_cache = (TILE_F32_BUDGET / per_row).max(1);
    // At least ~8 bands per item so single-image inference parallelizes.
    let r_par = os.h.div_ceil(8).max(1);
    r_cache.min(r_par).min(os.h.max(1))
}

/// Executes one fused bundle: `DW-Conv3(w_dw) → BN₁ → Act → PW(w_pw) →
/// BN₂ → Act`, bit-identical to the unfused layer sequence (see the
/// module docs) while keeping every intermediate tile in the scratch
/// arena.
///
/// `dw_weight` is `[c, 1, 3, 3]`, `pw_weight` is `[c2, c, 1, 1]`
/// (bias-free, as in the SkyNet bundle), `bn1`/`bn2` cover `c`/`c2`
/// channels.
///
/// # Errors
///
/// Returns a [`TensorError`] when the geometry is not a 3×3 stride-1/2
/// depth-wise convolution or any shape disagrees.
pub fn fused_bundle_forward(
    input: &Tensor,
    dw_weight: &Tensor,
    dw_geo: ConvGeometry,
    bn1: &BnAct,
    pw_weight: &Tensor,
    bn2: &BnAct,
) -> Result<Tensor> {
    let is = input.shape();
    let c = is.c;
    let (k, s, p) = (dw_geo.kernel, dw_geo.stride, dw_geo.pad);
    if k != 3 || (s != 1 && s != 2) {
        return Err(TensorError::InvalidDimension {
            op: "fused_bundle_forward",
            detail: format!("unsupported DW geometry k={k} s={s} (expected k=3, s=1|2)"),
        });
    }
    let dws = dw_weight.shape();
    if dws.n != c || dws.c != 1 || dws.h != 3 || dws.w != 3 {
        return Err(TensorError::ShapeMismatch {
            op: "fused_bundle_forward",
            expected: format!("DW weight [{c}, 1, 3, 3]"),
            got: dws.to_string(),
        });
    }
    let pws = pw_weight.shape();
    let c2 = pws.n;
    if pws.c != c || pws.h != 1 || pws.w != 1 {
        return Err(TensorError::ShapeMismatch {
            op: "fused_bundle_forward",
            expected: format!("PW weight [c2, {c}, 1, 1]"),
            got: pws.to_string(),
        });
    }
    bn1.check(c, "BN1")?;
    bn2.check(c2, "BN2")?;
    let os_dw = dw_geo.out_shape(is, c);
    let os = Shape::new(is.n, c2, os_dw.h, os_dw.w);
    let mut out = Tensor::zeros(os);

    let r = band_rows(c, c2, os_dw);
    let nbands = os_dw.h.div_ceil(r).max(1);
    let tasks = is.n * nbands;

    let _span = telemetry::span("tensor.fused_fwd");
    if telemetry::metrics_enabled() {
        telemetry::counter("tensor.fused.fwd_calls").inc();
        let dw_flops = 2 * os_dw.numel() * 9;
        let pw_flops = 2 * os.numel() * c;
        telemetry::counter("tensor.fused.fwd_flops").add((dw_flops + pw_flops) as u64);
        telemetry::counter("fusion.bundles_executed").inc();
        // The five per-bundle intermediates the unfused path writes to
        // (and re-reads from) memory: DW out, BN1 out, Act1 out (c
        // planes each), PW out, BN2 out (c2 planes each).
        let saved = (3 * c + 2 * c2) * os_dw.plane() * is.n * std::mem::size_of::<f32>();
        telemetry::counter("fusion.dram_bytes_saved").add(saved as u64);
        telemetry::record_gauge("fusion.band_rows", r as f64);
        simd::record_lanes(
            "fused_fwd",
            is.n * c * os_dw.h * simd::vector_cover(os_dw.w),
        );
    }

    let be = simd::active();
    let out_ptr = SendPtr(out.as_mut_slice().as_mut_ptr());
    let x = input.as_slice();
    let dw_w = dw_weight.as_slice();
    let pw_w = pw_weight.as_slice();
    let in_plane = is.plane();
    let out_plane = os.plane();

    parallel::run_indexed(tasks, |t| {
        let item = t / nbands;
        let band = t % nbands;
        let y0 = band * r;
        let y1 = (y0 + r).min(os_dw.h);
        let l = (y1 - y0) * os_dw.w;
        // Fixed-capacity checkouts (`r`, not `y1-y0`) so every band hits
        // the same arena size class.
        let mut dw_tile = scratch::checkout("tensor.fused_fwd", c * r * os_dw.w);
        let mut pw_tile = scratch::checkout("tensor.fused_fwd", c2 * r * os_dw.w);
        for ch in 0..c {
            let chan_in = &x[(item * c + ch) * in_plane..(item * c + ch + 1) * in_plane];
            dw3_bnact_band(
                be,
                &mut dw_tile[ch * l..(ch + 1) * l],
                chan_in,
                &dw_w[ch * 9..(ch + 1) * 9],
                0.0,
                is,
                os_dw,
                s,
                p,
                (y0, y1),
                bn1.channel(ch),
            );
        }
        pw_bnact_tile(
            pw_w,
            &dw_tile[..c * l],
            &mut pw_tile[..c2 * l],
            c2,
            c,
            l,
            bn2,
        );
        for oc in 0..c2 {
            // SAFETY: `(item, band)` tasks partition the output rows, so
            // this range is written by exactly one task; the range is in
            // bounds by the shape arithmetic above.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(
                    out_ptr.get().add((item * c2 + oc) * out_plane + y0 * os.w),
                    l,
                )
            };
            dst.copy_from_slice(&pw_tile[oc * l..(oc + 1) * l]);
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dwconv::dwconv2d;
    use crate::rng::SkyRng;
    use crate::{conv::conv2d, ops};

    fn rand_tensor(rng: &mut SkyRng, s: Shape) -> Tensor {
        let mut t = Tensor::zeros(s);
        for v in t.as_mut_slice() {
            *v = rng.range(-1.0, 1.0);
        }
        t
    }

    /// The unfused oracle: the exact layer sequence a bundle runs.
    fn unfused(
        x: &Tensor,
        dw_w: &Tensor,
        geo: ConvGeometry,
        bn1: &BnAct,
        pw_w: &Tensor,
        bn2: &BnAct,
    ) -> Tensor {
        let apply_bn_act = |t: &Tensor, bn: &BnAct| {
            let s = t.shape();
            let mut y = Tensor::zeros(s);
            for n in 0..s.n {
                for ch in 0..s.c {
                    let o = (n * s.c + ch) * s.plane();
                    crate::simd::bn_apply_eval(
                        &t.as_slice()[o..o + s.plane()],
                        &mut y.as_mut_slice()[o..o + s.plane()],
                        bn.mean[ch],
                        bn.inv_std[ch],
                        bn.gamma[ch],
                        bn.beta[ch],
                    );
                }
            }
            if bn.ceiling.is_finite() {
                ops::relu6(&y)
            } else {
                ops::relu(&y)
            }
        };
        let t = dwconv2d(x, dw_w, None, geo).unwrap();
        let t = apply_bn_act(&t, bn1);
        let t = conv2d(&t, pw_w, None, ConvGeometry::pointwise()).unwrap();
        apply_bn_act(&t, bn2)
    }

    fn rand_bnact(rng: &mut SkyRng, c: usize, ceiling: Option<f32>) -> BnAct {
        let mean: Vec<f32> = (0..c).map(|_| rng.range(-0.5, 0.5)).collect();
        let var: Vec<f32> = (0..c).map(|_| rng.range(0.1, 1.1)).collect();
        let gamma: Vec<f32> = (0..c).map(|_| rng.range(0.5, 1.5)).collect();
        let beta: Vec<f32> = (0..c).map(|_| rng.range(-0.5, 0.5)).collect();
        BnAct::new(mean, &var, 1e-5, gamma, beta, ceiling)
    }

    #[test]
    fn fused_bundle_matches_unfused_bitwise() {
        let mut rng = SkyRng::new(7);
        for &(n, c, c2, h, w, ceil) in &[
            (1usize, 3usize, 8usize, 11usize, 13usize, Some(6.0)),
            (2, 4, 6, 8, 8, None),
            (1, 8, 16, 20, 40, Some(6.0)),
            (3, 2, 3, 3, 3, Some(6.0)),
            (1, 1, 1, 1, 1, None),
        ] {
            let x = rand_tensor(&mut rng, Shape::new(n, c, h, w));
            let dw_w = rand_tensor(&mut rng, Shape::new(c, 1, 3, 3));
            let pw_w = rand_tensor(&mut rng, Shape::new(c2, c, 1, 1));
            let bn1 = rand_bnact(&mut rng, c, ceil);
            let bn2 = rand_bnact(&mut rng, c2, ceil);
            let geo = ConvGeometry::same3x3();
            let fused = fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap();
            let oracle = unfused(&x, &dw_w, geo, &bn1, &pw_w, &bn2);
            assert_eq!(fused.shape(), oracle.shape());
            let fb: Vec<u32> = fused.as_slice().iter().map(|v| v.to_bits()).collect();
            let ob: Vec<u32> = oracle.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(fb, ob, "fused != unfused for n={n} c={c} c2={c2} {h}x{w}");
        }
    }

    #[test]
    fn fused_bundle_stride2_matches_unfused_bitwise() {
        let mut rng = SkyRng::new(9);
        let (n, c, c2, h, w) = (2usize, 5usize, 7usize, 14usize, 18usize);
        let x = rand_tensor(&mut rng, Shape::new(n, c, h, w));
        let dw_w = rand_tensor(&mut rng, Shape::new(c, 1, 3, 3));
        let pw_w = rand_tensor(&mut rng, Shape::new(c2, c, 1, 1));
        let bn1 = rand_bnact(&mut rng, c, Some(6.0));
        let bn2 = rand_bnact(&mut rng, c2, Some(6.0));
        let geo = ConvGeometry {
            kernel: 3,
            stride: 2,
            pad: 1,
        };
        let fused = fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).unwrap();
        let oracle = unfused(&x, &dw_w, geo, &bn1, &pw_w, &bn2);
        assert_eq!(
            fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_bad_geometry() {
        let x = Tensor::zeros(Shape::new(1, 2, 4, 4));
        let dw_w = Tensor::zeros(Shape::new(2, 1, 3, 3));
        let pw_w = Tensor::zeros(Shape::new(3, 2, 1, 1));
        let bn1 = BnAct::new(
            vec![0.0; 2],
            &[1.0; 2],
            1e-5,
            vec![1.0; 2],
            vec![0.0; 2],
            None,
        );
        let bn2 = BnAct::new(
            vec![0.0; 3],
            &[1.0; 3],
            1e-5,
            vec![1.0; 3],
            vec![0.0; 3],
            None,
        );
        let geo = ConvGeometry {
            kernel: 5,
            stride: 1,
            pad: 2,
        };
        assert!(fused_bundle_forward(&x, &dw_w, geo, &bn1, &pw_w, &bn2).is_err());
    }
}
